//! Block-Jacobi rank study: convergence penalty versus available
//! start-up concurrency (§III-A.1 of the paper).
//!
//! ```text
//! cargo run --release --example distributed_jacobi
//! ```
//!
//! The same problem is solved to a fixed tolerance with 1, 2 and 4
//! simulated ranks under the block-Jacobi global schedule.  More Jacobi
//! blocks mean slower convergence (more inner iterations), but every rank
//! can begin sweeping immediately — unlike the KBA pipeline, whose
//! fill/drain idle time is printed alongside from the analytic model.

use unsnap::prelude::*;

fn main() {
    let problem = ProblemBuilder::tiny()
        .cells(6, 6, 4)
        .phase_space(2, 2)
        .iterations(100, 1)
        .tolerance(1e-7)
        .build()
        .expect("valid problem");

    println!("Block-Jacobi rank study");
    println!(
        "mesh {}x{}x{}, {} angles/octant, {} groups, tolerance {:.0e}",
        problem.nx,
        problem.ny,
        problem.nz,
        problem.angles_per_octant,
        problem.num_groups,
        problem.convergence_tolerance
    );
    println!();
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>18}",
        "ranks", "iterations", "halo faces", "scalar flux", "KBA efficiency"
    );

    for decomp in [
        Decomposition2D::serial(),
        Decomposition2D::new(2, 1),
        Decomposition2D::new(2, 2),
    ] {
        let mut solver =
            BlockJacobiSolver::new(&problem, decomp).expect("decomposition should fit the mesh");
        let outcome = solver.run().expect("solve");
        // KBA model: local wavefront count for a diagonal sweep of the
        // per-rank slab (≈ nx/px + ny/py + nz − 2 stages).
        let (px, py) = (decomp.npx, decomp.npy);
        let local_stages = problem.nx / px + problem.ny / py + problem.nz - 2;
        let kba = KbaModel::evaluate(px, py, local_stages.max(1));
        println!(
            "{:>6} {:>12} {:>12} {:>14.5e} {:>17.1}%",
            outcome.num_ranks,
            outcome
                .iterations_to_tolerance
                .map(|i| i.to_string())
                .unwrap_or_else(|| "> max".into()),
            outcome.halo_faces,
            outcome.scalar_flux_total,
            kba.efficiency * 100.0
        );
    }

    println!();
    println!(
        "(Block Jacobi: every rank starts immediately but needs more iterations as \
         the number of blocks grows.  KBA: fewer iterations but the pipeline \
         efficiency column shows the idle time each octant sweep would incur.)"
    );

    // The same driver dispatches Krylov subdomain solves: with
    // `SweepGmres` every halo exchange buys a converged per-rank GMRES
    // solve instead of one lagged sweep, and per-rank progress streams
    // through the rank-tagged observer hooks in deterministic rank order.
    let krylov_problem = ProblemBuilder::from_problem(&problem)
        .strategy(StrategyKind::SweepGmres)
        .build()
        .expect("valid problem");
    let mut solver = BlockJacobiSolver::new(&krylov_problem, Decomposition2D::new(2, 2))
        .expect("decomposition should fit the mesh");
    let mut recorder = RecordingObserver::default();
    let outcome = solver
        .run_observed(&mut recorder)
        .expect("distributed Krylov solve");
    println!();
    println!("With GMRES subdomain solves on 2x2 ranks:");
    println!("  {outcome}");
    for (rank, record) in recorder.rank_records.iter().enumerate() {
        println!(
            "  rank {rank}: {} sweeps, {} Krylov residual events, final rank residual {:.2e}",
            record.sweep_count,
            record.krylov_residual_history.len(),
            record
                .krylov_residual_history
                .last()
                .copied()
                .unwrap_or(f64::NAN),
        );
    }
}
