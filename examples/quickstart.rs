//! Quickstart: build a small UnSNAP problem, run it, and print a summary.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example exercises the whole public API surface: problem definition,
//! mesh construction, sweep scheduling, the threaded DG assemble/solve
//! sweep, and the reporting helpers (including Table I of the paper).

use unsnap::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Describe the problem.  `Problem::quickstart()` is a small
    //    configuration (6^3 cells, 4 angles/octant, 4 groups, linear
    //    elements) that runs in a few seconds even in debug builds.
    // ------------------------------------------------------------------
    let problem = Problem::quickstart();
    println!("UnSNAP quickstart");
    println!("=================");
    println!(
        "mesh           : {} x {} x {} cells (twist {} rad)",
        problem.nx, problem.ny, problem.nz, problem.twist
    );
    println!(
        "phase space    : {} angles/octant x {} groups, order-{} elements",
        problem.angles_per_octant, problem.num_groups, problem.element_order
    );
    println!(
        "angular flux   : {} unknowns ({:.1} MiB)",
        problem.angular_flux_unknowns(),
        problem.angular_flux_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("scheme         : {}", problem.scheme);
    println!("local solver   : {}", problem.solver);

    // ------------------------------------------------------------------
    // 2. Table I of the paper: local matrix sizes per element order.
    // ------------------------------------------------------------------
    println!();
    println!("Table I — local matrix sizes");
    print!("{}", report::table1_text(5));

    // ------------------------------------------------------------------
    // 3. Inspect the sweep schedule of one direction before solving.
    // ------------------------------------------------------------------
    let mesh = problem.build_mesh();
    let schedule = SweepSchedule::build(&mesh, [0.57, 0.57, 0.59]).unwrap();
    let stats = schedule.stats();
    println!();
    println!(
        "sweep schedule : {} wavefront buckets over {} cells \
         (mean {:.1} cells/bucket, max {})",
        stats.num_buckets, stats.num_cells, stats.mean_bucket, stats.max_bucket
    );

    // ------------------------------------------------------------------
    // 4. Solve.
    // ------------------------------------------------------------------
    let mut solver = TransportSolver::new(&problem).expect("problem should be valid");
    let outcome = solver.run().expect("solve should succeed");

    println!();
    println!("solve summary");
    println!("-------------");
    println!(
        "iterations     : {} inner x {} outer (converged: {})",
        outcome.inner_iterations, outcome.outer_iterations, outcome.converged
    );
    println!(
        "assemble/solve : {:.3} s over {} local systems",
        outcome.assemble_solve_seconds, outcome.kernel_invocations
    );
    println!(
        "scalar flux    : total {:.4e}, max {:.4e}, min {:.4e}",
        outcome.scalar_flux_total, outcome.scalar_flux_max, outcome.scalar_flux_min
    );
    if let Some(last) = outcome.convergence_history.last() {
        println!("last change    : {last:.3e}");
    }
}
