//! Quickstart: build a small UnSNAP problem with the validating
//! [`ProblemBuilder`], open an observable [`Session`], and stream the
//! solve's progress while it runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example exercises the whole public API surface: grouped problem
//! construction with up-front validation, mesh construction, sweep
//! scheduling, the observable session with a custom [`RunObserver`], and
//! the reporting helpers (including Table I of the paper and the JSON
//! outcome dump).
//!
//! The three backend knobs are environment-selectable (all round-trip
//! through `FromStr`/`Display`):
//!
//! * `UNSNAP_STRATEGY` — `si` or `gmres`;
//! * `UNSNAP_SOLVER`   — `ge`, `lu` or `mkl`;
//! * `UNSNAP_SCHEME`   — `best`, `serial` or a figure label like
//!   `angle/element*/group*`.

use unsnap::prelude::*;

/// A tiny observer that narrates the solve as it happens — the streaming
/// the pre-Session API could not offer.
#[derive(Default)]
struct Narrator {
    sweeps: usize,
}

impl RunObserver for Narrator {
    fn on_outer_start(&mut self, outer: usize) {
        println!("  outer {outer} started");
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        println!("    inner {inner:>3}: max relative change {relative_change:.3e}");
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        println!("    krylov {iteration:>3}: relative residual {relative_residual:.3e}");
    }

    fn on_sweep(&mut self, sweep: usize, _cells: u64, _seconds: f64) {
        self.sweeps = sweep;
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        println!("  outer {outer} finished (inner converged: {converged})");
    }
}

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // 1. Describe the problem.  The builder starts from the `quickstart`
    //    preset (6^3 cells, 4 angles/octant, 4 groups, linear elements),
    //    applies any UNSNAP_* environment overrides, and validates every
    //    field — including cross-field invariants — up front.
    // ------------------------------------------------------------------
    let problem = ProblemBuilder::quickstart().env_overrides()?.build()?;
    println!("UnSNAP quickstart");
    println!("=================");
    println!(
        "mesh           : {} x {} x {} cells (twist {} rad)",
        problem.nx, problem.ny, problem.nz, problem.twist
    );
    println!(
        "phase space    : {} angles/octant x {} groups, order-{} elements",
        problem.angles_per_octant, problem.num_groups, problem.element_order
    );
    println!(
        "angular flux   : {} unknowns ({:.1} MiB)",
        problem.angular_flux_unknowns(),
        problem.angular_flux_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("scheme         : {}", problem.scheme);
    println!("local solver   : {}", problem.solver);
    println!("strategy       : {}", problem.strategy);

    // ------------------------------------------------------------------
    // 2. Table I of the paper: local matrix sizes per element order.
    // ------------------------------------------------------------------
    println!();
    println!("Table I — local matrix sizes");
    print!("{}", report::table1_text(5));

    // ------------------------------------------------------------------
    // 3. Inspect the sweep schedule of one direction before solving.
    // ------------------------------------------------------------------
    let mesh = problem.build_mesh();
    let schedule = SweepSchedule::build(&mesh, [0.57, 0.57, 0.59])
        .map_err(|e| Error::schedule("quickstart demo angle", e))?;
    let stats = schedule.stats();
    println!();
    println!(
        "sweep schedule : {} wavefront buckets over {} cells \
         (mean {:.1} cells/bucket, max {})",
        stats.num_buckets, stats.num_cells, stats.mean_bucket, stats.max_bucket
    );

    // ------------------------------------------------------------------
    // 4. Solve inside a Session, streaming progress through an observer.
    // ------------------------------------------------------------------
    println!();
    println!("solving (streamed)");
    let mut session = Session::new(&problem)?;
    let mut narrator = Narrator::default();
    let outcome = session.run_observed(&mut narrator)?;

    println!();
    println!("solve summary");
    println!("-------------");
    println!(
        "iterations     : {} inner x {} outer (converged: {})",
        outcome.inner_iterations, outcome.outer_iterations, outcome.converged
    );
    println!(
        "sweeps         : {} observed live, {} reported",
        narrator.sweeps, outcome.sweep_count
    );
    println!(
        "assemble/solve : {:.3} s over {} local systems",
        outcome.assemble_solve_seconds, outcome.kernel_invocations
    );
    println!(
        "scalar flux    : total {:.4e}, max {:.4e}, min {:.4e}",
        outcome.scalar_flux_total, outcome.scalar_flux_max, outcome.scalar_flux_min
    );
    if let Some(last) = outcome.convergence_history.last() {
        println!("last change    : {last:.3e}");
    }

    // ------------------------------------------------------------------
    // 5. Machine-readable dump for external tooling.
    // ------------------------------------------------------------------
    println!();
    println!("outcome as JSON: {}", outcome.to_json());
    Ok(())
}
