//! Loop-ordering / concurrency-scheme study (a miniature of Figures 3
//! and 4 of the paper).
//!
//! ```text
//! cargo run --release --example loop_ordering_study [-- <threads,...>]
//! ```
//!
//! Runs the scaled-down Figure-3 problem under each of the six concurrency
//! schemes (loop order × which loops are threaded, with the matching data
//! layouts) for a sweep of thread counts, and prints the assemble/solve
//! time of each combination.  The full-size experiment lives in
//! `unsnap-bench` (`cargo run -p unsnap-bench --bin figure3`).

use unsnap::prelude::*;

fn main() {
    let threads: Vec<usize> = std::env::args()
        .nth(1)
        .map(|arg| {
            arg.split(',')
                .filter_map(|t| t.parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| {
            let machine = report::MachineInfo::detect();
            machine.thread_sweep()
        });

    let base = Problem::figure3_scaled();
    println!("Loop-ordering study (scaled Figure 3 problem)");
    println!(
        "mesh {}^3, {} angles/octant, {} groups, order {}",
        base.nx, base.angles_per_octant, base.num_groups, base.element_order
    );
    println!();
    println!("{:<28} assemble/solve seconds per thread count", "scheme");
    print!("{:<28}", "");
    for t in &threads {
        print!(" {t:>9}");
    }
    println!();

    for scheme in ConcurrencyScheme::figure_schemes() {
        print!("{:<28}", scheme.label());
        for &t in &threads {
            let mut session = ProblemBuilder::from_problem(&base)
                .scheme(scheme)
                .threads(t)
                .session()
                .expect("valid problem");
            let outcome = session.run().expect("solve");
            print!(" {:>9.3}", outcome.assemble_solve_seconds);
        }
        println!();
    }

    println!();
    println!(
        "(The paper's conclusion: at high thread counts the angle/element*/group* \
         scheme — threading the collapsed element x group space with the group \
         index fastest in memory — is fastest; see Figures 3 and 4.)"
    );
}
