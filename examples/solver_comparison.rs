//! Local dense-solver comparison (a miniature of Table II of the paper).
//!
//! ```text
//! cargo run --release --example solver_comparison [-- <max_order>]
//! ```
//!
//! For each finite-element order the same transport problem is solved
//! twice: once with the hand-written Gaussian-elimination routine and once
//! with the blocked-LU "MKL" stand-in.  The table reports the
//! assemble/solve time and the fraction of that time spent inside the
//! linear solve — the two quantities of Table II.

use unsnap::prelude::*;

fn main() {
    let max_order: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!("Local solver comparison (scaled Table II problem)");
    println!();
    println!(
        "{:>5}  {:>12} {:>11}   {:>12} {:>11}",
        "Order", "GE time (s)", "% in solve", "MKL time (s)", "% in solve"
    );

    for order in 1..=max_order {
        let mut row = format!("{order:>5}");
        for kind in [SolverKind::GaussianElimination, SolverKind::Mkl] {
            let mut session = ProblemBuilder::table2_scaled(order, kind)
                .session()
                .expect("valid problem");
            let outcome = session.run().expect("solve");
            row.push_str(&format!(
                "  {:>12.3} {:>10.0}%",
                outcome.assemble_solve_seconds,
                outcome.solve_fraction() * 100.0
            ));
        }
        println!("{row}");
    }

    println!();
    println!(
        "(Paper shape: the hand-written GE wins for orders <= 3 where the matrix \
         fits in L1 cache; the blocked library factorisation wins at order 4+, and \
         the solve share of the runtime grows from ~34% at order 1 to >70% at \
         order 3-4.)"
    );
}
