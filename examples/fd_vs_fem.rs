//! Finite-difference (SNAP) versus finite-element (UnSNAP) comparison —
//! the trade-offs of §II-C of the paper.
//!
//! ```text
//! cargo run --release --example fd_vs_fem
//! ```
//!
//! Both discretisations solve the same one-group problem to convergence.
//! The example reports the memory footprint of the angular flux (the FEM
//! stores `(p+1)^3` nodal values per cell where the FD method stores one),
//! the work per cell, and the converged mean scalar flux of both methods
//! (which must agree since they solve the same physics).

use unsnap::prelude::*;

fn main() {
    let problem = ProblemBuilder::tiny()
        .mesh(6)
        .phase_space(4, 1)
        .iterations(80, 1)
        .tolerance(1e-8)
        .twist(0.0)
        .build()
        .expect("valid problem");

    println!("Finite difference (SNAP) vs finite element (UnSNAP)");
    println!(
        "mesh {}^3, {} angles/octant, 1 group, tolerance {:.0e}",
        problem.nx, problem.angles_per_octant, problem.convergence_tolerance
    );
    println!();

    // Finite difference baseline.
    let mut fd = DiamondDifferenceSolver::new(&problem).expect("valid problem");
    let fd_out = fd.run().expect("FD solve");
    let fd_unknowns = fd.angular_flux_unknowns();
    let fd_mean = fd_out.scalar_flux_total / problem.num_cells() as f64;

    // Finite element (linear) solution.
    let mut fem = TransportSolver::new(&problem).expect("valid problem");
    let fem_out = fem.run().expect("FEM solve");
    let fem_unknowns = problem.angular_flux_unknowns();
    let fem_mean =
        fem_out.scalar_flux_total / (problem.num_cells() * problem.nodes_per_element()) as f64;

    println!("{:<34} {:>16} {:>16}", "", "FD (SNAP)", "FEM (UnSNAP, p=1)");
    println!(
        "{:<34} {:>16} {:>16}",
        "angular-flux unknowns", fd_unknowns, fem_unknowns
    );
    println!(
        "{:<34} {:>15.1}x {:>16}",
        "memory ratio vs FD",
        1.0,
        format!("{:.1}x", fem_unknowns as f64 / fd_unknowns as f64)
    );
    println!(
        "{:<34} {:>16} {:>16}",
        "iterations to tolerance", fd_out.inner_iterations, fem_out.inner_iterations
    );
    println!(
        "{:<34} {:>16.6} {:>16.6}",
        "converged mean scalar flux", fd_mean, fem_mean
    );
    println!(
        "{:<34} {:>16.3} {:>16.3}",
        "sweep seconds", fd_out.sweep_seconds, fem_out.assemble_solve_seconds
    );
    println!();
    println!(
        "(The FEM spends far more floating-point work per cell — a small dense \
         assemble+solve instead of one multiply-add per diamond-difference relation \
         — and stores 8x the angular flux for linear elements, but delivers \
         third-order accuracy and supports genuinely unstructured, twisted meshes.)"
    );

    let rel = (fd_mean - fem_mean).abs() / fem_mean;
    println!("relative difference in mean flux: {rel:.3e}");
}
