//! Krylov acceleration demo: sweep-preconditioned GMRES versus classic
//! source iteration as the scattering ratio climbs toward one.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example krylov_acceleration
//! ```
//!
//! Environment knobs (all optional, parsed via `FromStr`):
//!
//! * `UNSNAP_STRATEGY`  — `si` or `gmres`: run only that strategy.
//! * `UNSNAP_SOLVER`    — `ge`, `lu` or `mkl`: local dense back end.
//! * `UNSNAP_SCHEME`    — `best`, `serial` or a figure label like
//!   `angle/element*/group*`.
//! * `UNSNAP_RESTART`   — GMRES restart length (default 20).

use unsnap::prelude::*;

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(e) => {
            eprintln!("ignoring {name}={raw}: {e}");
            None
        }
    }
}

fn main() {
    let only_strategy: Option<StrategyKind> = env_parse("UNSNAP_STRATEGY");
    let solver: SolverKind = env_parse("UNSNAP_SOLVER").unwrap_or_default();
    let scheme: ConcurrencyScheme =
        env_parse("UNSNAP_SCHEME").unwrap_or_else(ConcurrencyScheme::serial);
    let restart: usize = env_parse("UNSNAP_RESTART").unwrap_or(20);

    println!("UnSNAP Krylov acceleration demo");
    println!("  dense back end: {solver}, scheme: {scheme}, GMRES restart: {restart}");
    println!();
    println!("  c = within-group scattering ratio; sweeps = full transport sweeps");
    println!("  to reach a 1e-8 relative tolerance (budget 600 per strategy)");
    println!();

    for c in [0.1, 0.5, 0.9, 0.99] {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.nx = 4;
        p.ny = 4;
        p.nz = 4;
        p.lx = 8.0;
        p.ly = 8.0;
        p.lz = 8.0;
        p.scattering_ratio = Some(c);
        p.convergence_tolerance = 1e-8;
        p.inner_iterations = 600;
        p.outer_iterations = 1;
        p.solver = solver;
        p.scheme = scheme;
        p.gmres_restart = restart;

        println!("c = {c}");
        for strategy in StrategyKind::all() {
            if let Some(only) = only_strategy {
                if only != strategy {
                    continue;
                }
            }
            let problem = p.clone().with_strategy(strategy);
            let mut solver = TransportSolver::new(&problem).expect("problem must validate");
            let outcome = solver.run().expect("solve must run");
            println!(
                "  {:>5}: {}  (flux total {:.9e})",
                strategy.label(),
                report::iteration_summary(&outcome),
                outcome.scalar_flux_total
            );
        }
        println!();
    }

    println!("Sweep-preconditioned GMRES pulls further ahead as c → 1, where");
    println!("source iteration's error contracts by only a factor c per sweep.");
}
