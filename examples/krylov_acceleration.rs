//! Krylov acceleration demo: sweep-preconditioned GMRES versus classic
//! source iteration as the scattering ratio climbs toward one.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example krylov_acceleration
//! ```
//!
//! Environment knobs (all optional, parsed via `FromStr`):
//!
//! * `UNSNAP_STRATEGY`  — `si` or `gmres`: run only that strategy.
//! * `UNSNAP_SOLVER`    — `ge`, `lu` or `mkl`: local dense back end.
//! * `UNSNAP_SCHEME`    — `best`, `serial` or a figure label like
//!   `angle/element*/group*`.
//! * `UNSNAP_RESTART`   — GMRES restart length (default 20).

use unsnap::prelude::*;

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T>
where
    T::Err: std::fmt::Display,
{
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(value) => Some(value),
        Err(e) => {
            eprintln!("ignoring {name}={raw}: {e}");
            None
        }
    }
}

fn main() {
    let only_strategy: Option<StrategyKind> = env_parse("UNSNAP_STRATEGY");
    let solver: SolverKind = env_parse("UNSNAP_SOLVER").unwrap_or_default();
    let scheme: ConcurrencyScheme =
        env_parse("UNSNAP_SCHEME").unwrap_or_else(ConcurrencyScheme::serial);
    let restart: usize = env_parse("UNSNAP_RESTART").unwrap_or(20);

    println!("UnSNAP Krylov acceleration demo");
    println!("  dense back end: {solver}, scheme: {scheme}, GMRES restart: {restart}");
    println!();
    println!("  c = within-group scattering ratio; sweeps = full transport sweeps");
    println!("  to reach a 1e-8 relative tolerance (budget 600 per strategy)");
    println!();

    for c in [0.1, 0.5, 0.9, 0.99] {
        let base = ProblemBuilder::tiny()
            .mesh(4)
            .extents(8.0, 8.0, 8.0)
            .phase_space(2, 1)
            .scattering_ratio(c)
            .tolerance(1e-8)
            .iterations(600, 1)
            .solver(solver)
            .scheme(scheme)
            .gmres_restart(restart);

        println!("c = {c}");
        for strategy in StrategyKind::all() {
            if let Some(only) = only_strategy {
                if only != strategy {
                    continue;
                }
            }
            let mut session = base
                .clone()
                .strategy(strategy)
                .session()
                .expect("problem must validate");
            // Stream the residual trajectory while it happens (the
            // RecordingObserver doubles as a live residual tap).
            let mut recorder = RecordingObserver::default();
            let outcome = session.run_observed(&mut recorder).expect("solve must run");
            println!(
                "  {:>5}: {}  (flux total {:.9e})",
                strategy.label(),
                report::iteration_summary(&outcome),
                outcome.scalar_flux_total
            );
            if !recorder.krylov_residual_history.is_empty() {
                let shown: Vec<String> = recorder
                    .krylov_residual_history
                    .iter()
                    .take(6)
                    .map(|r| format!("{r:.1e}"))
                    .collect();
                println!(
                    "         residual trajectory: {}{}",
                    shown.join(" → "),
                    if recorder.krylov_residual_history.len() > 6 {
                        " → …"
                    } else {
                        ""
                    }
                );
            }
        }
        println!();
    }

    println!("Sweep-preconditioned GMRES pulls further ahead as c → 1, where");
    println!("source iteration's error contracts by only a factor c per sweep.");
}
