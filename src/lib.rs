//! # UnSNAP-rs
//!
//! A Rust reproduction of **UnSNAP**, the discontinuous Galerkin
//! discrete-ordinates neutral-particle transport mini-app for unstructured
//! hexahedral meshes (Deakin et al., *WRAp @ IEEE CLUSTER 2018*).
//!
//! This umbrella crate re-exports the public API of every workspace crate
//! and hosts the runnable examples (`examples/`) and the workspace-wide
//! integration tests (`tests/`).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mesh`] (`unsnap-mesh`) | structured-derived unstructured hex meshes, twisting, KBA decomposition, `MeshError` |
//! | [`fem`] (`unsnap-fem`) | arbitrary-order Lagrange elements, quadrature, per-element integrals |
//! | [`linalg`] (`unsnap-linalg`) | small dense solvers: Gaussian elimination, reference LU, blocked LU (MKL stand-in) |
//! | [`krylov`] (`unsnap-krylov`) | matrix-free Krylov solvers (restarted GMRES, CG) over an abstract `LinearOperator`, with observed solves and reusable workspaces |
//! | [`accel`] (`unsnap-accel`) | diffusion synthetic acceleration: mesh-consistent low-order diffusion operator + CG correction solver |
//! | [`sweep`] (`unsnap-sweep`) | per-angle wavefront (tlevel-bucket) schedules and concurrency schemes |
//! | [`obs`] (`unsnap-obs`) | dependency-free observability: `Clock`/`MockClock`, metrics registry with deterministic/wall-clock split, fixed-bucket histograms, JSON writer/reader, JSONL run logs |
//! | [`core`] (`unsnap-core`) | typed errors, `ProblemBuilder`, the observable `Session` API, Sn quadrature, multigroup data, assemble/solve kernel, sweep driver, iteration strategies, FD baseline |
//! | [`comm`] (`unsnap-comm`) | simulated ranks, halo exchange, block-Jacobi coupling, KBA pipeline model, `CommError` |
//! | [`runlog`] (`unsnap-runlog`) | durable runs: append-only write-ahead run log with checksummed checkpoint frames, torn-tail recovery, bit-for-bit resume for both solver paths, crash fault injection |
//! | [`serve`] (`unsnap-serve`) | solver-as-a-service: hand-rolled HTTP/1.1 front-end, bounded job queue with cooperative cancellation, live JSONL event streaming, content-addressed LRU result cache, checkpointed jobs resumable across server restarts |
//!
//! ## Quickstart
//!
//! Describe a problem with the validating
//! [`ProblemBuilder`](prelude::ProblemBuilder), open a
//! [`Session`](prelude::Session) on it, and run — optionally under a
//! [`RunObserver`](prelude::RunObserver) that streams per-iteration
//! progress:
//!
//! ```
//! use unsnap::prelude::*;
//!
//! let mut session = ProblemBuilder::tiny()
//!     .strategy(StrategyKind::SweepGmres)
//!     .session()
//!     .unwrap();
//! let mut recorder = RecordingObserver::default();
//! let outcome = session.run_observed(&mut recorder).unwrap();
//! assert!(outcome.scalar_flux_total > 0.0);
//! assert_eq!(recorder.sweep_count, outcome.sweep_count);
//! ```
//!
//! Every fallible call returns the workspace-wide typed
//! [`Error`](unsnap_core::error::Error) (re-exported in the prelude), so
//! callers can match on the failure domain — `InvalidProblem { field, .. }`,
//! `Mesh(..)`, `Singular { pivot, .. }`, `KrylovBreakdown { .. }`,
//! `Schedule { .. }`, `Comm { .. }` — instead of parsing strings.
//!
//! ## Migrating from the pre-Session API
//!
//! The old entry points still exist (with the error type upgraded from
//! `String` to [`Error`](unsnap_core::error::Error)); the new surface is
//! a superset:
//!
//! | old call | new call |
//! |----------|----------|
//! | `Problem::tiny()` (then mutate fields) | `ProblemBuilder::tiny().mesh(..).order(..).build()?` |
//! | `Problem { nx: 0, .. }` → error deep in `TransportSolver::new` | `ProblemBuilder::build()` → `Error::InvalidProblem { field: "nx", .. }` up front |
//! | `TransportSolver::new(&p)?` + `solver.run()?` | `Session::new(&p)?` + `session.run()?` (or `ProblemBuilder::session()?`) |
//! | parse `outcome.krylov_residual_history` after the run | implement `RunObserver::on_krylov_residual` and pass it to `session.run_observed(..)` |
//! | re-derive sweep counts from the outcome | `RecordingObserver` reconstructs them from the event stream |
//! | `Err(String)` everywhere | typed [`Error`](unsnap_core::error::Error) with `From` conversions from every crate's local error type |
//! | hand-format outcome fields for tooling | `SolveOutcome::to_json()` (plus `--json` on the `table2`/`ablation_krylov` bins) |
//!
//! ## Execution model
//!
//! Sweeps fan out on a real shared worker pool (sized by
//! `Problem::num_threads` / `ProblemBuilder::threads`, force-overridable
//! with `RAYON_NUM_THREADS`).  Work is split into index-ordered chunks
//! and reassembled in input order, so the physics is **bit-for-bit
//! identical at every thread count** — the invariant
//! `tests/parallel_determinism.rs` pins for both iteration strategies
//! and the CI matrix enforces at widths 1, 2 and 8.  The only exception
//! is the angle-threaded ablation scheme, whose deliberately contended
//! scalar-flux reduction (the paper's non-scaling OpenMP atomic) is
//! reproducible to floating-point reduction accuracy rather than
//! bitwise.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use unsnap_accel as accel;
pub use unsnap_comm as comm;
pub use unsnap_core as core;
pub use unsnap_fem as fem;
pub use unsnap_krylov as krylov;
pub use unsnap_linalg as linalg;
pub use unsnap_mesh as mesh;
pub use unsnap_obs as obs;
pub use unsnap_runlog as runlog;
pub use unsnap_serve as serve;
pub use unsnap_sweep as sweep;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use unsnap_accel::{DiffusionOperator, DiffusionTopology, DsaConfig, DsaSolver};
    pub use unsnap_comm::{
        BlockJacobiOutcome, BlockJacobiSolver, CommError, HaloExchange, JacobiCheckpointSink,
        JacobiCheckpointView, JacobiResumePoint, KbaModel,
    };
    pub use unsnap_core::angular::AngularQuadrature;
    pub use unsnap_core::builder::{
        ExecutionConfig, GridConfig, IterationConfig, PhysicsConfig, ProblemBuilder,
    };
    pub use unsnap_core::cancel::CancelToken;
    pub use unsnap_core::data::{CrossSections, MaterialOption, SourceOption};
    pub use unsnap_core::dsa::DsaAccelerator;
    pub use unsnap_core::error::{Error, Result};
    pub use unsnap_core::fd::DiamondDifferenceSolver;
    pub use unsnap_core::kernel::{KernelEngine, KernelKind};
    pub use unsnap_core::layout::{FluxLayout, FluxStorage, Precision};
    pub use unsnap_core::metrics::{JsonlObserver, MetricsObserver, RunMetrics};
    pub use unsnap_core::problem::Problem;
    pub use unsnap_core::report;
    pub use unsnap_core::session::{
        EventLog, NoopObserver, Phase, ProgressObserver, RecordingObserver, RunObserver, Session,
        SolveEvent, TeeObserver,
    };
    pub use unsnap_core::solver::{
        CheckpointSink, CheckpointView, ResumePoint, RunStats, SolveOutcome, TransportSolver,
    };
    pub use unsnap_core::strategy::{
        AcceleratorKind, InnerSolveContext, IterationStrategy, StrategyKind,
    };
    pub use unsnap_fem::{ElementIntegrals, HexVertices, ReferenceElement};
    pub use unsnap_krylov::{
        CgConfig, CgWorkspace, ConjugateGradient, Gmres, GmresConfig, LinearOperator,
        MatrixOperator, ObservedOperator,
    };
    pub use unsnap_linalg::{DenseMatrix, LinearSolver, SolverKind};
    pub use unsnap_mesh::{Decomposition2D, MeshError, StructuredGrid, UnstructuredMesh};
    pub use unsnap_obs::clock::{Clock, MockClock, SystemClock};
    pub use unsnap_obs::metrics::{Determinism, Histogram, MetricsRegistry};
    pub use unsnap_obs::stream::{ChannelWriter, LineChannel};
    pub use unsnap_runlog::{
        resume_block_jacobi, CheckpointObserver, CheckpointSinkHandle, FaultyWriter, Manifest,
        Recovered, RunMode, SessionResume, SharedBuffer,
    };
    pub use unsnap_serve::{
        CancelDisposition, JobQueue, JobState, JobStatus, ResultStore, ServeConfig, Server,
        SubmitReceipt,
    };
    pub use unsnap_sweep::{ConcurrencyScheme, LoopOrder, SweepSchedule, ThreadedLoops};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.001);
        let schedule = SweepSchedule::build(&mesh, [0.5, 0.6, 0.62]).unwrap();
        assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        let rows = report::table1(3);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn prelude_exposes_the_session_api() {
        let mut session = ProblemBuilder::tiny().session().unwrap();
        let outcome = session.run().unwrap();
        assert!(outcome.converged || outcome.sweep_count > 0);
        // The typed error surfaces through the prelude too.
        let err = ProblemBuilder::tiny().mesh(0).build().unwrap_err();
        assert!(matches!(err, Error::InvalidProblem { field: "nx", .. }));
    }
}
