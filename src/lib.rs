//! # UnSNAP-rs
//!
//! A Rust reproduction of **UnSNAP**, the discontinuous Galerkin
//! discrete-ordinates neutral-particle transport mini-app for unstructured
//! hexahedral meshes (Deakin et al., *WRAp @ IEEE CLUSTER 2018*).
//!
//! This umbrella crate re-exports the public API of every workspace crate
//! and hosts the runnable examples (`examples/`) and the workspace-wide
//! integration tests (`tests/`).
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mesh`] (`unsnap-mesh`) | structured-derived unstructured hex meshes, twisting, KBA decomposition |
//! | [`fem`] (`unsnap-fem`) | arbitrary-order Lagrange elements, quadrature, per-element integrals |
//! | [`linalg`] (`unsnap-linalg`) | small dense solvers: Gaussian elimination, reference LU, blocked LU (MKL stand-in) |
//! | [`krylov`] (`unsnap-krylov`) | matrix-free Krylov solvers (restarted GMRES, CG) over an abstract `LinearOperator` |
//! | [`sweep`] (`unsnap-sweep`) | per-angle wavefront (tlevel-bucket) schedules and concurrency schemes |
//! | [`core`] (`unsnap-core`) | Sn quadrature, multigroup data, assemble/solve kernel, sweep driver, iteration strategies, FD baseline |
//! | [`comm`] (`unsnap-comm`) | simulated ranks, halo exchange, block-Jacobi coupling, KBA pipeline model |
//!
//! ## Quickstart
//!
//! ```
//! use unsnap::prelude::*;
//!
//! let problem = Problem::tiny();
//! let mut solver = TransportSolver::new(&problem).unwrap();
//! let outcome = solver.run().unwrap();
//! assert!(outcome.scalar_flux_total > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use unsnap_comm as comm;
pub use unsnap_core as core;
pub use unsnap_fem as fem;
pub use unsnap_krylov as krylov;
pub use unsnap_linalg as linalg;
pub use unsnap_mesh as mesh;
pub use unsnap_sweep as sweep;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use unsnap_comm::{BlockJacobiSolver, HaloExchange, KbaModel};
    pub use unsnap_core::angular::AngularQuadrature;
    pub use unsnap_core::data::{CrossSections, MaterialOption, SourceOption};
    pub use unsnap_core::fd::DiamondDifferenceSolver;
    pub use unsnap_core::layout::{FluxLayout, FluxStorage};
    pub use unsnap_core::problem::Problem;
    pub use unsnap_core::report;
    pub use unsnap_core::solver::{RunStats, SolveOutcome, TransportSolver};
    pub use unsnap_core::strategy::{IterationStrategy, StrategyKind};
    pub use unsnap_fem::{ElementIntegrals, HexVertices, ReferenceElement};
    pub use unsnap_krylov::{
        CgConfig, ConjugateGradient, Gmres, GmresConfig, LinearOperator, MatrixOperator,
    };
    pub use unsnap_linalg::{DenseMatrix, LinearSolver, SolverKind};
    pub use unsnap_mesh::{Decomposition2D, StructuredGrid, UnstructuredMesh};
    pub use unsnap_sweep::{ConcurrencyScheme, LoopOrder, SweepSchedule, ThreadedLoops};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.001);
        let schedule = SweepSchedule::build(&mesh, [0.5, 0.6, 0.62]).unwrap();
        assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        let rows = report::table1(3);
        assert_eq!(rows.len(), 3);
    }
}
