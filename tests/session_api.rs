//! Acceptance tests for the observable Session API redesign.
//!
//! The redesign must be a pure re-plumbing: an observed [`Session`] run
//! reproduces the monolithic `TransportSolver::run` outcome **bit for
//! bit** (flux totals, sweep counts, residual histories) for both
//! iteration strategies on both small presets, and the
//! [`RecordingObserver`]'s event stream reconstructs the outcome's
//! history vectors exactly.

use unsnap::prelude::*;

/// Everything a `SolveOutcome` reports except wall-clock timing, which
/// legitimately differs between two runs.  The attached [`RunMetrics`]
/// keeps its deterministic half — the equivalence below therefore also
/// pins that observed and direct runs count the same sweeps, cells and
/// phase spans.
fn non_timing_fields(o: &SolveOutcome) -> SolveOutcome {
    let mut metrics = o.metrics.clone();
    metrics.zero_wallclock();
    SolveOutcome {
        assemble_solve_seconds: 0.0,
        kernel_assemble_seconds: 0.0,
        kernel_solve_seconds: 0.0,
        metrics,
        ..o.clone()
    }
}

fn assert_session_reproduces_run(problem: &Problem) {
    // The seed path: a bare solver, run as a black box.
    let mut solver = TransportSolver::new(problem).unwrap();
    let direct = solver.run().unwrap();

    // The redesigned path: a session streaming into a recorder.
    let mut session = Session::new(problem).unwrap();
    let mut recorder = RecordingObserver::default();
    let observed = session.run_observed(&mut recorder).unwrap();

    // Bit-for-bit equivalence of every non-timing field.
    assert_eq!(
        non_timing_fields(&direct),
        non_timing_fields(&observed),
        "session run diverged from direct run for {:?}/{:?}",
        problem.strategy,
        (problem.nx, problem.ny, problem.nz),
    );

    // The event stream must reconstruct the outcome's histories exactly.
    assert_eq!(recorder.sweep_count, observed.sweep_count);
    assert_eq!(recorder.convergence_history, observed.convergence_history);
    assert_eq!(
        recorder.krylov_residual_history,
        observed.krylov_residual_history
    );
    assert_eq!(recorder.outers_started, recorder.outers_completed);
    assert_eq!(recorder.converged, observed.converged);

    // And the flux state the two paths leave behind is identical.
    let a = solver.scalar_flux().as_slice();
    let b = session.scalar_flux().as_slice();
    assert_eq!(a, b, "scalar flux state diverged");
}

#[test]
fn session_reproduces_source_iteration_on_tiny() {
    assert_session_reproduces_run(&Problem::tiny());
}

#[test]
fn session_reproduces_source_iteration_on_quickstart() {
    assert_session_reproduces_run(&Problem::quickstart());
}

#[test]
fn session_reproduces_sweep_gmres_on_tiny() {
    assert_session_reproduces_run(&Problem::tiny().with_strategy(StrategyKind::SweepGmres));
}

#[test]
fn session_reproduces_sweep_gmres_on_quickstart() {
    assert_session_reproduces_run(&Problem::quickstart().with_strategy(StrategyKind::SweepGmres));
}

#[test]
fn builder_presets_feed_sessions_without_behaviour_change() {
    // Builder shorthand → session == hand-built Problem → solver.
    let mut via_builder = ProblemBuilder::quickstart().session().unwrap();
    let b = via_builder.run().unwrap();
    let mut via_preset = TransportSolver::new(&Problem::quickstart()).unwrap();
    let p = via_preset.run().unwrap();
    assert_eq!(b.scalar_flux_total, p.scalar_flux_total);
    assert_eq!(b.sweep_count, p.sweep_count);
}

#[test]
fn observer_sees_krylov_residuals_only_under_gmres() {
    let mut recorder = RecordingObserver::default();
    ProblemBuilder::tiny()
        .session()
        .unwrap()
        .run_observed(&mut recorder)
        .unwrap();
    assert!(recorder.krylov_residual_history.is_empty());
    assert!(recorder.sweep_count > 0);

    recorder.clear();
    ProblemBuilder::tiny()
        .strategy(StrategyKind::SweepGmres)
        .session()
        .unwrap()
        .run_observed(&mut recorder)
        .unwrap();
    assert!(!recorder.krylov_residual_history.is_empty());
}

#[test]
fn typed_errors_surface_from_every_layer() {
    // Problem validation.
    let err = match TransportSolver::new(&Problem {
        num_groups: 0,
        ..Problem::tiny()
    }) {
        Err(e) => e,
        Ok(_) => panic!("zero groups must be rejected"),
    };
    assert_eq!(err.invalid_field(), Some("num_groups"));

    // Builder cross-field validation.
    let err = ProblemBuilder::tiny()
        .scattering_ratio(2.0)
        .build()
        .unwrap_err();
    assert!(matches!(
        err,
        unsnap::core::error::Error::InvalidProblem {
            field: "scattering_ratio",
            ..
        }
    ));

    // Mesh decomposition (through the distributed solver).
    let err = match BlockJacobiSolver::new(&Problem::tiny(), Decomposition2D::new(64, 1)) {
        Err(e) => e,
        Ok(_) => panic!("too-coarse decomposition must be rejected"),
    };
    assert!(matches!(err, unsnap::core::error::Error::Mesh(_)));

    // Communication layer.
    let exchange = HaloExchange::new(1);
    let err = exchange.drain(5).unwrap_err();
    assert!(err.to_string().contains("out of range"));
}
