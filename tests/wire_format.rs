//! Property and conformance tests of the canonical problem wire format
//! (`unsnap_core::wire`) and the serving layer's request parsing.
//!
//! * randomised `ProblemBuilder` configurations survive a
//!   serialise → parse round trip unchanged (so the HTTP wire format
//!   can carry any problem the builder can describe);
//! * the content address (`Problem::canonical_hash`) is invariant under
//!   the round trip — cache keys computed on either side of the wire
//!   agree;
//! * every registry name resolves, round-trips and hashes distinctly;
//! * malformed request bodies map to typed 400s naming the offending
//!   field, never panics.

use proptest::prelude::*;

use unsnap::prelude::*;
use unsnap_core::wire;
use unsnap_mesh::boundary::{BoundaryCondition, DomainBoundaries};
use unsnap_obs::reader;
use unsnap_serve::wire::{parse_solve_request, status_for};

fn strategy_kind() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::SourceIteration),
        Just(StrategyKind::DsaSourceIteration),
        Just(StrategyKind::SweepGmres),
    ]
}

fn solver_kind() -> impl Strategy<Value = SolverKind> {
    prop_oneof![
        Just(SolverKind::GaussianElimination),
        Just(SolverKind::ReferenceLu),
        Just(SolverKind::Mkl),
    ]
}

fn boundary() -> impl Strategy<Value = BoundaryCondition> {
    prop_oneof![
        Just(BoundaryCondition::Vacuum),
        Just(BoundaryCondition::Reflective),
        (0.25f64..4.0).prop_map(BoundaryCondition::IsotropicInflow),
    ]
}

fn boundaries() -> impl Strategy<Value = DomainBoundaries> {
    collection::vec(boundary(), 6).prop_map(|v| DomainBoundaries {
        faces: <[BoundaryCondition; 6]>::try_from(v).expect("exactly six faces"),
    })
}

fn scattering_ratio() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), (0.05f64..0.95).prop_map(Some),]
}

fn thread_count() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (1usize..9).prop_map(Some)]
}

fn flag() -> impl Strategy<Value = bool> {
    (0usize..2).prop_map(|b| b == 1)
}

fn builder() -> impl Strategy<Value = ProblemBuilder> {
    (
        (1usize..5, 1usize..5, 1usize..5, 0.0f64..0.002),
        (1usize..3, 1usize..4, 1usize..5),
        (1usize..6, 1usize..3, 1e-8f64..1e-2),
        (strategy_kind(), solver_kind(), scattering_ratio()),
        (thread_count(), flag(), flag()),
        boundaries(),
    )
        .prop_map(
            |(
                (nx, ny, nz, twist),
                (order, angles, groups),
                (inner, outer, tol),
                (strategy, solver, scattering),
                (threads, precompute, time_solve),
                bounds,
            )| {
                let mut b = ProblemBuilder::tiny()
                    .cells(nx, ny, nz)
                    .twist(twist)
                    .order(order)
                    .phase_space(angles, groups)
                    .iterations(inner, outer)
                    .tolerance(tol)
                    .strategy(strategy)
                    .solver(solver)
                    .boundaries(bounds)
                    .precompute_integrals(precompute)
                    .time_solve(time_solve);
                if let Some(c) = scattering {
                    b = b.scattering_ratio(c);
                }
                if let Some(t) = threads {
                    b = b.threads(t);
                }
                b
            },
        )
}

/// Random printable-ASCII junk for the never-panic fuzz (the miniature
/// proptest has no regex string strategies).
fn junk() -> impl Strategy<Value = String> {
    collection::vec(32u32..127, 0..60).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| char::from_u32(c).expect("printable ASCII"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builders_round_trip_through_the_wire(b in builder()) {
        let json = wire::builder_to_json(&b);
        let parsed = wire::builder_from_json_str(&json).expect("canonical JSON parses");
        prop_assert_eq!(&parsed, &b, "wire round trip must be lossless");
        // Serialisation is canonical: a second trip is byte-stable.
        prop_assert_eq!(wire::builder_to_json(&parsed), json);
    }

    #[test]
    fn content_addresses_agree_across_the_wire(b in builder()) {
        // Not every random configuration validates; the hash contract
        // only covers buildable problems.
        let Ok(problem) = b.clone().build() else { return Ok(()); };
        let json = wire::problem_to_json(&problem);
        let replayed = wire::problem_from_json_str(&json).expect("valid problem replays");
        prop_assert_eq!(&replayed, &problem);
        prop_assert_eq!(replayed.canonical_hash(), problem.canonical_hash());
    }

    #[test]
    fn solve_requests_never_panic(body in junk()) {
        // Arbitrary junk must come back as a typed error, not a panic.
        if let Err(error) = parse_solve_request(&body) {
            prop_assert_eq!(status_for(&error), 400);
        }
    }
}

#[test]
fn every_registry_name_resolves_and_round_trips() {
    let mut hashes = Vec::new();
    for name in Problem::registry_names() {
        let problem = Problem::from_name(name)
            .unwrap_or_else(|e| panic!("registry name '{name}' must resolve: {e}"));
        let json = wire::problem_to_json(&problem);
        let replayed = wire::problem_from_json_str(&json)
            .unwrap_or_else(|e| panic!("'{name}' must round-trip: {e}"));
        assert_eq!(replayed, problem, "'{name}' changed across the wire");
        hashes.push((name, problem.canonical_hash()));

        // The serving layer resolves the same names.
        let via_request = parse_solve_request(&format!(r#"{{"problem": "{name}"}}"#)).unwrap();
        assert_eq!(via_request, problem);
    }
    for (i, (name_a, hash_a)) in hashes.iter().enumerate() {
        for (name_b, hash_b) in &hashes[i + 1..] {
            assert_ne!(
                hash_a, hash_b,
                "registry presets '{name_a}' and '{name_b}' collide"
            );
        }
    }
    assert!(
        Problem::from_name("no-such-preset").is_err(),
        "unknown names are typed errors"
    );
}

#[test]
fn malformed_bodies_name_the_offending_field() {
    for (body, field) in [
        (r#"{"problem": {"grid": {"nx": "three"}}}"#, "nx"),
        (r#"{"problem": {"grid": {"nx": 0}}}"#, "nx"),
        (
            r#"{"problem": {"physics": {"num_groups": -1}}}"#,
            "num_groups",
        ),
        (
            r#"{"problem": {"physics": {"material": "option9"}}}"#,
            "material",
        ),
        (
            r#"{"problem": {"iteration": {"strategy": "warp"}}}"#,
            "strategy",
        ),
        (
            r#"{"problem": {"accel": {"cg_tolerance": true}}}"#,
            "accel_cg_tolerance",
        ),
        (
            r#"{"problem": {"execution": {"solver": "cuda"}}}"#,
            "solver",
        ),
        (r#"{"problem": {"unknown_section": {}}}"#, "problem"),
        (r#"{"problem": [1, 2]}"#, "problem"),
        (r#"{"not_problem": "tiny"}"#, "problem"),
        ("{\"problem\": \"tiny\"", "problem"),
        ("", "problem"),
    ] {
        let error =
            parse_solve_request(body).expect_err(&format!("body {body:?} must be rejected"));
        assert_eq!(status_for(&error), 400, "body {body:?}");
        assert_eq!(
            error.invalid_field(),
            Some(field),
            "body {body:?} must blame '{field}', said: {error}"
        );
    }
}

#[test]
fn boundary_conditions_round_trip_in_place() {
    let faces = [
        BoundaryCondition::Vacuum,
        BoundaryCondition::IsotropicInflow(1.5),
        BoundaryCondition::Reflective,
        BoundaryCondition::Vacuum,
        BoundaryCondition::IsotropicInflow(0.25),
        BoundaryCondition::Reflective,
    ];
    let b = ProblemBuilder::tiny().boundaries(DomainBoundaries { faces });
    let json = wire::builder_to_json(&b);
    let doc = reader::parse(&json).unwrap();
    let listed = doc
        .get("physics")
        .and_then(|p| p.get("boundaries"))
        .and_then(|v| v.as_array())
        .expect("boundaries serialise as a 6-array");
    assert_eq!(listed.len(), 6);
    assert_eq!(wire::builder_from_json_str(&json).unwrap(), b);
}
