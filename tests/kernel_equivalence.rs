//! Kernel-equivalence suite: the acceptance tests for the PR-9 kernel
//! engine (`unsnap_core::kernel::KernelEngine`).
//!
//! Property-based over random small problems, this suite pins the two
//! contracts the engine documents:
//!
//! * **Blocked `f64` is the reference physics, bit for bit.**  The
//!   SoA cache-blocked kernel caches direction-dependent geometry tiles
//!   and replays the reference operation sequence, so every non-timing
//!   outcome field and the full scalar/angular flux state must be
//!   bitwise identical — across thread widths 1/2/8 and through *both*
//!   solve paths (the single-domain [`TransportSolver`] and the
//!   distributed [`BlockJacobiSolver`]).
//! * **Mixed precision is a bounded trade, not a different answer.**
//!   `f32` local solves inside `f64` outers must still converge, land
//!   within the documented relative flux tolerance of the full-`f64`
//!   solve, and spend at most `2 × reference + 4` sweeps — single
//!   precision may slow the tail of convergence but must not change
//!   its character.
//!
//! Case counts are deliberately small (every case is a full transport
//! solve); the `ablation_kernels` bench binary re-asserts the same
//! contracts on a larger diffusive problem as a CI smoke run.

use proptest::prelude::*;
use unsnap::prelude::*;

/// Documented accuracy contract of the mixed-precision mode, mirrored
/// from the `ablation_kernels` binary: relative drift of the converged
/// scalar-flux total against the full-`f64` solve.
const MIXED_FLUX_TOLERANCE: f64 = 1e-5;

/// Documented iteration contract of the mixed-precision mode.
fn mixed_sweep_budget(reference_sweeps: usize) -> usize {
    2 * reference_sweeps + 4
}

/// Everything a `SolveOutcome` reports except wall-clock timing (the
/// `tests/parallel_determinism.rs` normalisation).
fn non_timing_fields(o: &SolveOutcome) -> SolveOutcome {
    let mut metrics = o.metrics.clone();
    metrics.zero_wallclock();
    SolveOutcome {
        assemble_solve_seconds: 0.0,
        kernel_assemble_seconds: 0.0,
        kernel_solve_seconds: 0.0,
        metrics,
        ..o.clone()
    }
}

/// Everything a `BlockJacobiOutcome` reports except wall-clock timing.
fn jacobi_non_timing_fields(o: &BlockJacobiOutcome) -> BlockJacobiOutcome {
    let mut copy = o.clone();
    copy.assemble_solve_seconds = 0.0;
    copy.metrics.zero_wallclock();
    copy
}

struct Run {
    outcome: SolveOutcome,
    scalar_flux: Vec<f64>,
    angular_flux: Vec<f64>,
}

fn run_single_domain(problem: &Problem) -> Run {
    let mut solver = TransportSolver::new(problem).unwrap();
    let outcome = solver.run().unwrap();
    Run {
        outcome,
        scalar_flux: solver.scalar_flux().as_slice().to_vec(),
        angular_flux: solver.angular_flux().as_slice().to_vec(),
    }
}

/// Under the CI matrix `RAYON_NUM_THREADS` forces *every* pool to one
/// width; kernel-vs-kernel comparisons stay valid (both runs get the
/// forced width), but sweeping widths would compare a width against
/// itself, so collapse the width list to the nominal one.
fn widths() -> Vec<usize> {
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) if !v.trim().is_empty() => vec![1],
        _ => vec![1, 2, 8],
    }
}

fn bits(flux: &[f64]) -> Vec<u64> {
    flux.iter().map(|x| x.to_bits()).collect()
}

/// Random small-but-representative problems: every mesh shape, element
/// order, group count, angle count, scattering strength and iteration
/// strategy the hot path branches on.  Tolerance 0 with a fixed
/// iteration budget keeps the f64 comparisons exact *and* cheap — the
/// bitwise contract holds converged or not.
fn small_problem() -> impl Strategy<Value = Problem> {
    (
        (2usize..=4, 2usize..=3, 2usize..=3),
        (1usize..=2, 1usize..=2, 1usize..=2),
        0.3f64..0.9,
        prop_oneof![
            Just(StrategyKind::SourceIteration),
            Just(StrategyKind::DsaSourceIteration),
        ],
    )
        .prop_map(
            |((nx, ny, nz), (order, groups, angles), scattering, strategy)| {
                let mut p = Problem::tiny().with_strategy(strategy);
                p.nx = nx;
                p.ny = ny;
                p.nz = nz;
                p.element_order = order;
                p.num_groups = groups;
                p.angles_per_octant = angles;
                p.scattering_ratio = Some(scattering);
                p.inner_iterations = 3;
                p.outer_iterations = 1;
                p.convergence_tolerance = 0.0;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Contract 1, single-domain path: the blocked f64 kernel is
    /// bit-for-bit the reference kernel at every thread width.
    #[test]
    fn blocked_f64_matches_reference_bitwise_in_single_domain_solves(
        problem in small_problem(),
    ) {
        let reference = run_single_domain(&problem.clone().with_threads(1));
        for threads in widths() {
            let blocked = run_single_domain(
                &problem
                    .clone()
                    .with_kernel(KernelKind::Blocked)
                    .with_threads(threads),
            );
            prop_assert_eq!(
                non_timing_fields(&blocked.outcome),
                non_timing_fields(&reference.outcome),
                "outcome diverged at {} threads for {:?}/{:?}",
                threads,
                problem.strategy,
                (problem.nx, problem.ny, problem.nz)
            );
            prop_assert_eq!(
                bits(&blocked.scalar_flux),
                bits(&reference.scalar_flux),
                "scalar flux drifted at {} threads",
                threads
            );
            prop_assert_eq!(
                bits(&blocked.angular_flux),
                bits(&reference.angular_flux),
                "angular flux drifted at {} threads",
                threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1, distributed path: the blocked f64 kernel is
    /// bit-for-bit the reference kernel through the block-Jacobi
    /// driver, at every rank grid and thread width.
    #[test]
    fn blocked_f64_matches_reference_bitwise_in_block_jacobi_solves(
        problem in small_problem(),
        px in 1usize..=2,
        py in 1usize..=2,
    ) {
        prop_assume!(px <= problem.nx && py <= problem.ny);
        let decomposition = Decomposition2D::new(px, py);
        let mut reference =
            BlockJacobiSolver::new(&problem.clone().with_threads(1), decomposition).unwrap();
        let reference_outcome = reference.run().unwrap();
        for threads in widths() {
            let blocked_problem = problem
                .clone()
                .with_kernel(KernelKind::Blocked)
                .with_threads(threads);
            let mut blocked =
                BlockJacobiSolver::new(&blocked_problem, decomposition).unwrap();
            let blocked_outcome = blocked.run().unwrap();
            prop_assert_eq!(
                jacobi_non_timing_fields(&blocked_outcome),
                jacobi_non_timing_fields(&reference_outcome),
                "jacobi outcome diverged at {}x{} ranks, {} threads",
                px,
                py,
                threads
            );
            prop_assert_eq!(
                bits(blocked.scalar_flux().as_slice()),
                bits(reference.scalar_flux().as_slice()),
                "jacobi scalar flux drifted at {}x{} ranks, {} threads",
                px,
                py,
                threads
            );
        }
    }
}

/// Converging variant of [`small_problem`]: a real tolerance and a
/// generous budget, so the mixed-precision iteration contract has a
/// converged reference to be measured against.
fn converging_problem() -> impl Strategy<Value = Problem> {
    small_problem().prop_map(|mut p| {
        p.convergence_tolerance = 1e-5;
        p.inner_iterations = 400;
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 2: mixed precision converges to the same physics within
    /// the documented tolerance and sweep budget, under both kernels.
    #[test]
    fn mixed_precision_stays_within_tolerance_with_bounded_extra_sweeps(
        problem in converging_problem(),
        kernel in prop_oneof![Just(KernelKind::Reference), Just(KernelKind::Blocked)],
    ) {
        let reference = run_single_domain(&problem);
        prop_assert!(
            reference.outcome.converged,
            "the f64 reference must converge for the comparison to mean anything"
        );
        let mixed = run_single_domain(
            &problem
                .clone()
                .with_kernel(kernel)
                .with_precision(Precision::Mixed),
        );
        prop_assert!(
            mixed.outcome.converged,
            "mixed-precision solve failed to converge ({:?})",
            kernel
        );
        let drift = (mixed.outcome.scalar_flux_total - reference.outcome.scalar_flux_total).abs()
            / reference.outcome.scalar_flux_total.abs().max(1e-300);
        prop_assert!(
            drift <= MIXED_FLUX_TOLERANCE,
            "flux drift {:.3e} exceeds {:.0e} ({:?})",
            drift,
            MIXED_FLUX_TOLERANCE,
            kernel
        );
        prop_assert!(
            mixed.outcome.sweep_count <= mixed_sweep_budget(reference.outcome.sweep_count),
            "{} sweeps exceeds the budget of {} ({:?})",
            mixed.outcome.sweep_count,
            mixed_sweep_budget(reference.outcome.sweep_count),
            kernel
        );
        // Pointwise the solutions track each other too: every node's
        // flux agrees to within the tolerance of the problem's flux
        // scale (single precision cannot resolve more).
        let scale = reference.outcome.scalar_flux_max.abs().max(1e-300);
        let max_node_diff = reference
            .scalar_flux
            .iter()
            .zip(mixed.scalar_flux.iter())
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        prop_assert!(
            max_node_diff / scale <= 1e-4,
            "pointwise flux drift {:.3e} (relative to max flux) exceeds 1e-4",
            max_node_diff / scale
        );
    }
}

#[test]
fn mixed_precision_runs_the_same_sweep_structure_at_a_fixed_budget() {
    // With tolerance 0 and a fixed iteration budget the sweep *count*
    // is precision-independent (precision changes values, never the
    // control flow of a budget-driven run), and the fluxes stay within
    // single-precision resolution of the f64 physics after two sweeps.
    for strategy in [
        StrategyKind::SourceIteration,
        StrategyKind::DsaSourceIteration,
    ] {
        let problem = Problem::tiny().with_strategy(strategy);
        let reference = run_single_domain(&problem);
        let mixed = run_single_domain(&problem.clone().with_precision(Precision::Mixed));
        assert_eq!(
            mixed.outcome.sweep_count, reference.outcome.sweep_count,
            "{strategy:?}: a budget-driven run must sweep identically in either precision"
        );
        assert_eq!(
            mixed.outcome.kernel_invocations, reference.outcome.kernel_invocations,
            "{strategy:?}: kernel invocation counts diverged"
        );
        let scale = reference.outcome.scalar_flux_max.abs().max(1e-300);
        for (i, (a, b)) in reference
            .scalar_flux
            .iter()
            .zip(mixed.scalar_flux.iter())
            .enumerate()
        {
            assert!(
                (a - b).abs() / scale <= 1e-5,
                "{strategy:?}: node {i} drifted by {:.3e} of the flux scale",
                (a - b).abs() / scale
            );
        }
    }
}
