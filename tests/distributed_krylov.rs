//! Acceptance tests for the distributed-Krylov path: strategy-dispatched
//! (SI / sweep-preconditioned GMRES) inner solves inside the
//! block-Jacobi multi-rank driver, with per-rank observer streaming.
//!
//! Pinned here:
//!
//! * rank-decomposed SweepGmres converges to the single-domain
//!   SweepGmres flux within the outer tolerance on the quickstart
//!   problem (the ISSUE 4 acceptance criterion);
//! * the per-rank observer streams (sweeps, Krylov residuals, inner
//!   iterates) are bit-for-bit identical at every thread count, because
//!   the driver buffers each rank's events and replays them in rank
//!   order;
//! * `RecordingObserver`'s per-rank event counts equal the per-rank
//!   counters of the `BlockJacobiOutcome`, at 1 and 4 ranks, for both
//!   strategies (so streaming loses nothing relative to the summary).

use unsnap::prelude::*;

/// The quickstart problem, with the inner budget raised so the halo
/// iteration has room to converge (the preset's 4 inners are sized for
/// the single-domain demo) — everything else, including the 1e-6
/// tolerance, is the stock preset.  Both solvers under comparison use
/// this same problem.
fn quickstart_for_jacobi(strategy: StrategyKind) -> Problem {
    let mut p = Problem::quickstart();
    p.inner_iterations = 30;
    p.strategy = strategy;
    p
}

/// Under the CI matrix `RAYON_NUM_THREADS` forces every pool to one
/// width, so cross-width comparisons would compare a width against
/// itself; skip with a note in that case (the matrix replays the rest
/// of the suite at each width instead).
fn forced_width() -> Option<String> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .filter(|v| !v.trim().is_empty())
}

/// Zero the wall-clock fields of a recording (recursively, so per-rank
/// records are covered) — timing legitimately differs between runs.
/// Phase-span *counts* stay: they are part of the deterministic stream.
fn without_timing(recorder: &RecordingObserver) -> RecordingObserver {
    let mut r = recorder.clone();
    r.sweep_seconds = 0.0;
    r.phase_seconds = vec![0.0; r.phase_seconds.len()];
    for rank in &mut r.rank_records {
        rank.sweep_seconds = 0.0;
        rank.phase_seconds = vec![0.0; rank.phase_seconds.len()];
    }
    r
}

#[test]
fn rank_decomposed_sweep_gmres_matches_single_domain_flux() {
    let problem = quickstart_for_jacobi(StrategyKind::SweepGmres);

    let mut single = TransportSolver::new(&problem).unwrap();
    let single_out = single.run().unwrap();
    assert!(single_out.converged, "single-domain GMRES must converge");

    let mut jacobi = BlockJacobiSolver::new(&problem, Decomposition2D::new(2, 1)).unwrap();
    let jacobi_out = jacobi.run().unwrap();
    assert!(
        jacobi_out.converged,
        "2-rank GMRES history: {:?}",
        jacobi_out.convergence_history
    );
    assert_eq!(jacobi_out.strategy, StrategyKind::SweepGmres);
    assert!(jacobi_out.krylov_iterations > 0);

    // Block Jacobi changes the iteration path, not the fixed point: at a
    // shared pointwise tolerance of 1e-6 the two solutions agree to a
    // small multiple of it.
    let tol = problem.convergence_tolerance;
    let rel = (jacobi_out.scalar_flux_total - single_out.scalar_flux_total).abs()
        / single_out.scalar_flux_total.abs();
    assert!(
        rel < 20.0 * tol,
        "rank-decomposed GMRES flux off by {rel:.3e} (tolerance {tol:.0e})"
    );

    // Pointwise agreement of the full scalar flux, not just the total.
    let single_phi = single.scalar_flux().as_slice();
    let jacobi_phi = jacobi.scalar_flux().as_slice();
    let scale = single_phi.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let max_diff = single_phi
        .iter()
        .zip(jacobi_phi.iter())
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    assert!(
        max_diff < 100.0 * tol * scale,
        "pointwise flux diff {max_diff:.3e} vs scale {scale:.3e}"
    );
}

fn assert_per_rank_streams_thread_invariant(strategy: StrategyKind) {
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    // A 4-rank decomposition on a small scattering-dominated problem:
    // enough halo traffic and Krylov/DSA work that any interleaving
    // leak would scramble the streams.
    let mut p = Problem::tiny();
    p.nx = 4;
    p.ny = 4;
    p.nz = 2;
    p.num_groups = 1;
    p.angles_per_octant = 2;
    p.scattering_ratio = Some(0.9);
    p.inner_iterations = 40;
    p.outer_iterations = 1;
    p.convergence_tolerance = 1e-8;
    p.strategy = strategy;

    let mut reference: Option<(RecordingObserver, BlockJacobiOutcome, Vec<f64>)> = None;
    // 8 exceeds the rank count; the driver caps the pool at 4 ranks, and
    // the stream must stay identical through that cap too.
    for threads in [1usize, 2, 4, 8] {
        let mut problem = p.clone();
        problem.num_threads = Some(threads);
        let mut solver = BlockJacobiSolver::new(&problem, Decomposition2D::new(2, 2)).unwrap();
        let mut recorder = RecordingObserver::default();
        let outcome = solver.run_observed(&mut recorder).unwrap();
        let flux = solver.scalar_flux().as_slice().to_vec();
        let recorder = without_timing(&recorder);
        match &reference {
            None => reference = Some((recorder, outcome, flux)),
            Some((r_rec, r_out, r_flux)) => {
                assert_eq!(
                    r_rec, &recorder,
                    "{strategy:?} observer stream diverged at {threads} threads"
                );
                let mut a = r_out.clone();
                let mut b = outcome;
                a.assemble_solve_seconds = 0.0;
                b.assemble_solve_seconds = 0.0;
                a.metrics.zero_wallclock();
                b.metrics.zero_wallclock();
                assert_eq!(a, b, "{strategy:?} outcome diverged at {threads} threads");
                assert_eq!(
                    r_flux, &flux,
                    "{strategy:?} flux diverged at {threads} threads"
                );
            }
        }
    }
    let (recorder, outcome, _) = reference.unwrap();
    assert_eq!(recorder.rank_records.len(), 4);
    match strategy {
        StrategyKind::SweepGmres => {
            assert!(outcome.krylov_iterations > 0);
            assert!(
                recorder
                    .rank_records
                    .iter()
                    .all(|r| !r.krylov_residual_history.is_empty()),
                "every rank must stream Krylov residuals"
            );
        }
        StrategyKind::DsaSourceIteration => {
            assert!(outcome.accel_cg_iterations > 0);
            assert!(
                recorder
                    .rank_records
                    .iter()
                    .all(|r| !r.accel_residual_history.is_empty()),
                "every rank must stream DSA CG residuals"
            );
        }
        StrategyKind::SourceIteration => {}
    }
}

#[test]
fn per_rank_observer_streams_are_identical_across_thread_counts() {
    assert_per_rank_streams_thread_invariant(StrategyKind::SweepGmres);
}

#[test]
fn per_rank_dsa_streams_are_identical_across_thread_counts() {
    assert_per_rank_streams_thread_invariant(StrategyKind::DsaSourceIteration);
}

/// Per-rank event counts must equal the per-rank outcome counters: one
/// `on_rank_sweep` per rank sweep, one rank outer start/end per halo
/// iteration, and (under GMRES) one residual event per Krylov iteration
/// plus one initial-residual event per subdomain solve.
fn assert_rank_streams_match_counters(decomp: Decomposition2D, strategy: StrategyKind) {
    let mut p = Problem::tiny();
    p.nx = 4;
    p.ny = 4;
    p.nz = 2;
    p.num_groups = 1;
    p.angles_per_octant = 2;
    p.inner_iterations = 6;
    p.outer_iterations = 1;
    p.convergence_tolerance = 0.0;
    p.strategy = strategy;

    let mut solver = BlockJacobiSolver::new(&p, decomp).unwrap();
    let mut recorder = RecordingObserver::default();
    let outcome = solver.run_observed(&mut recorder).unwrap();

    assert_eq!(outcome.num_ranks, decomp.num_ranks());
    assert_eq!(recorder.rank_records.len(), decomp.num_ranks());
    assert_eq!(outcome.rank_sweep_counts.len(), decomp.num_ranks());
    assert_eq!(
        outcome.sweep_count,
        outcome.rank_sweep_counts.iter().sum::<usize>()
    );
    assert_eq!(
        outcome.krylov_iterations,
        outcome.rank_krylov_iterations.iter().sum::<usize>()
    );

    for (rank, record) in recorder.rank_records.iter().enumerate() {
        assert_eq!(
            record.sweep_count, outcome.rank_sweep_counts[rank],
            "rank {rank} sweep events"
        );
        assert_eq!(
            record.outers_started, outcome.inner_iterations,
            "rank {rank} outer-start events (one per halo iteration)"
        );
        assert_eq!(record.outers_completed, outcome.inner_iterations);
        match strategy {
            StrategyKind::SourceIteration | StrategyKind::DsaSourceIteration => {
                assert!(record.krylov_residual_history.is_empty());
                // One relaxation sweep and one inner iterate per halo
                // iteration.
                assert_eq!(record.sweep_count, outcome.inner_iterations);
                assert_eq!(
                    record.convergence_history.len(),
                    outcome.inner_iterations,
                    "rank {rank} inner iterates"
                );
                if strategy == StrategyKind::DsaSourceIteration {
                    // Every halo iteration ran a low-order correction,
                    // and its CG stream reached the recorder.
                    assert!(
                        !record.accel_residual_history.is_empty(),
                        "rank {rank} streamed no DSA residuals"
                    );
                } else {
                    assert!(record.accel_residual_history.is_empty());
                }
            }
            StrategyKind::SweepGmres => {
                // GMRES emits one residual event per Krylov iteration
                // plus the initial residual of each subdomain solve (one
                // solve per halo iteration).
                assert_eq!(
                    record.krylov_residual_history.len(),
                    outcome.rank_krylov_iterations[rank] + outcome.inner_iterations,
                    "rank {rank} Krylov residual events"
                );
            }
        }
    }
}

#[test]
fn rank_streams_match_counters_at_one_and_four_ranks() {
    for strategy in StrategyKind::all() {
        assert_rank_streams_match_counters(Decomposition2D::serial(), strategy);
        assert_rank_streams_match_counters(Decomposition2D::new(2, 2), strategy);
    }
}

/// Phase-event replay keeps the rank-order grouping contract: within
/// each halo iteration the buffered per-rank streams arrive strictly in
/// rank order, so deduplicating consecutive ranks in the arrival
/// sequence must yield `0, 1, .., N-1` repeated once per iteration.
#[test]
fn phase_events_replay_grouped_in_rank_order() {
    #[derive(Default)]
    struct PhaseTap {
        arrivals: Vec<(usize, Phase)>,
        starts: usize,
        ends: usize,
    }
    impl RunObserver for PhaseTap {
        fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
            self.arrivals.push((rank, phase));
            self.starts += 1;
        }
        fn on_rank_phase_end(&mut self, _rank: usize, _phase: Phase, _seconds: f64) {
            self.ends += 1;
        }
    }

    let mut p = Problem::tiny();
    p.nx = 4;
    p.ny = 4;
    p.nz = 2;
    p.num_groups = 1;
    p.angles_per_octant = 2;
    p.inner_iterations = 3;
    p.outer_iterations = 1;
    p.convergence_tolerance = 0.0;
    p.strategy = StrategyKind::SweepGmres;

    let decomp = Decomposition2D::new(2, 2);
    let mut solver = BlockJacobiSolver::new(&p, decomp).unwrap();
    let mut tap = PhaseTap::default();
    let outcome = solver.run_observed(&mut tap).unwrap();

    assert_eq!(tap.starts, tap.ends, "every span must open and close");
    assert!(
        tap.arrivals.iter().any(|(_, ph)| *ph == Phase::Sweep),
        "ranks must emit sweep spans"
    );
    assert!(
        tap.arrivals.iter().any(|(_, ph)| *ph == Phase::Krylov),
        "GMRES ranks must emit Krylov spans"
    );

    let mut grouped = Vec::new();
    for (rank, _) in &tap.arrivals {
        if grouped.last() != Some(rank) {
            grouped.push(*rank);
        }
    }
    let per_iteration: Vec<usize> = (0..decomp.num_ranks()).collect();
    let expected: Vec<usize> = per_iteration
        .iter()
        .cycle()
        .take(decomp.num_ranks() * outcome.inner_iterations)
        .copied()
        .collect();
    assert_eq!(
        grouped, expected,
        "rank phase events interleaved instead of replaying rank by rank"
    );
}

/// The deterministic half of the attached metrics is reproducible at
/// both rank counts the suite exercises (1 and 4): rerunning the same
/// decomposition — at a different thread width where the pool allows —
/// changes no deterministic counter, and the per-rank event stream
/// carries the same phase-span counts the snapshot aggregates.
#[test]
fn deterministic_metrics_are_stable_at_one_and_four_ranks() {
    for decomp in [Decomposition2D::serial(), Decomposition2D::new(2, 2)] {
        let mut p = Problem::tiny();
        p.nx = 4;
        p.ny = 4;
        p.nz = 2;
        p.num_groups = 1;
        p.angles_per_octant = 2;
        p.inner_iterations = 5;
        p.outer_iterations = 1;
        p.convergence_tolerance = 0.0;
        p.strategy = StrategyKind::SweepGmres;

        let mut reference: Option<RunMetrics> = None;
        for threads in [1usize, 4] {
            let mut problem = p.clone();
            problem.num_threads = Some(threads);
            let mut solver = BlockJacobiSolver::new(&problem, decomp).unwrap();
            let mut recorder = RecordingObserver::default();
            let outcome = solver.run_observed(&mut recorder).unwrap();
            let deterministic = outcome.metrics.deterministic();

            assert_eq!(deterministic.sweeps, outcome.sweep_count);
            assert_eq!(deterministic.halo_exchanges, outcome.inner_iterations);
            assert_eq!(
                deterministic.phase_count(Phase::Sweep),
                outcome.sweep_count,
                "one sweep span per rank sweep at {} ranks",
                decomp.num_ranks()
            );
            let rank_sweep_spans: usize = recorder
                .rank_records
                .iter()
                .map(|r| r.phase_starts[Phase::Sweep.index()])
                .sum();
            assert_eq!(rank_sweep_spans, outcome.sweep_count);

            match &reference {
                None => reference = Some(deterministic),
                Some(r) => {
                    if forced_width().is_none() {
                        assert_eq!(
                            r,
                            &deterministic,
                            "deterministic metrics diverged at {} ranks, {threads} threads",
                            decomp.num_ranks()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn unsnap_strategy_env_knob_reaches_the_distributed_solver() {
    // The builder's env overrides select the subdomain strategy: the
    // same `Problem` built under UNSNAP_STRATEGY=gmres must drive the
    // block-Jacobi ranks through the Krylov path.  (This test owns the
    // variable: it sets and removes it around the builder call.)
    std::env::set_var("UNSNAP_STRATEGY", "gmres");
    let built = ProblemBuilder::tiny().env_overrides().and_then(|b| {
        let mut b = b;
        b.iteration.inner_iterations = 4;
        b.build()
    });
    std::env::remove_var("UNSNAP_STRATEGY");
    let problem = built.unwrap();
    assert_eq!(problem.strategy, StrategyKind::SweepGmres);

    let mut solver = BlockJacobiSolver::new(&problem, Decomposition2D::new(2, 1)).unwrap();
    let outcome = solver.run().unwrap();
    assert_eq!(outcome.strategy, StrategyKind::SweepGmres);
    assert!(outcome.krylov_iterations > 0);
    assert!(!outcome.rank_krylov_iterations.is_empty());
}
