//! Acceptance tests for the PR 6 observability subsystem as seen from
//! the umbrella crate: the JSONL run log round-trips through the
//! `unsnap-obs` reader, the metrics snapshot attached to every outcome
//! serialises to parseable JSON with the deterministic/wall-clock split
//! intact, and the `UNSNAP_PROGRESS_MS` knob is validated by the
//! builder.

use unsnap::obs::jsonl;
use unsnap::obs::reader;
use unsnap::prelude::*;

/// A scratch file under the target directory (kept inside the repo so
/// sandboxed runs need no extra permissions), removed at the end of the
/// test that owns it.
fn scratch_path(name: &str) -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p
}

#[test]
fn jsonl_run_log_round_trips_through_the_reader() {
    let path = scratch_path("run_log_roundtrip.jsonl");
    let problem = Problem::tiny().with_strategy(StrategyKind::DsaSourceIteration);
    let mut session = Session::new(&problem).unwrap();

    let mut log = JsonlObserver::create(&path).unwrap();
    let mut recorder = RecordingObserver::default();
    let outcome = {
        let mut tee = TeeObserver::new(&mut log, &mut recorder);
        session.run_observed(&mut tee).unwrap()
    };
    let written = log.events_written();
    log.finish().unwrap();

    let docs = jsonl::read_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(docs.len(), written, "one parsed document per event");

    // Every line is an object with an `event` discriminator, and the
    // stream carries exactly the counts the recorder aggregated.
    let mut sweeps = 0usize;
    let mut outers = 0usize;
    let mut accel_residuals = 0usize;
    for doc in &docs {
        let event = doc
            .get("event")
            .and_then(|v| v.as_str())
            .expect("every line names its event");
        match event {
            "sweep" => {
                sweeps += 1;
                assert!(doc.get("cells").and_then(|v| v.as_u64()).unwrap() > 0);
            }
            "outer_start" => outers += 1,
            "accel_residual" => accel_residuals += 1,
            _ => {}
        }
    }
    assert_eq!(sweeps, recorder.sweep_count);
    assert_eq!(outers, recorder.outers_started);
    assert_eq!(accel_residuals, recorder.accel_residual_history.len());
    assert!(outcome.converged || outcome.sweep_count > 0);
}

#[test]
fn outcome_metrics_json_parses_with_the_split_intact() {
    let problem = Problem::tiny().with_strategy(StrategyKind::SweepGmres);
    let mut session = Session::new(&problem).unwrap();
    let outcome = session.run().unwrap();

    let doc = reader::parse(&outcome.metrics.to_json()).unwrap();
    let det = doc.get("deterministic").expect("deterministic half");
    let wall = doc.get("wallclock").expect("wall-clock half");

    assert_eq!(
        det.get("sweeps").and_then(|v| v.as_usize()).unwrap(),
        outcome.sweep_count
    );
    assert_eq!(
        det.get("cells_swept").and_then(|v| v.as_u64()).unwrap(),
        outcome.metrics.cells_swept
    );
    assert!(
        det.get("phase_starts")
            .and_then(|v| v.get("krylov"))
            .and_then(|v| v.as_usize())
            .unwrap()
            > 0,
        "GMRES run must record Krylov spans"
    );
    assert!(
        wall.get("sweep_latency_seconds")
            .and_then(|v| v.get("count"))
            .and_then(|v| v.as_usize())
            .unwrap()
            > 0
    );

    // The full outcome JSON embeds the same metrics object.
    let full = reader::parse(&outcome.to_json()).unwrap();
    let embedded = full.get("metrics").expect("outcome embeds metrics");
    assert_eq!(
        embedded
            .get("deterministic")
            .and_then(|v| v.get("sweeps"))
            .and_then(|v| v.as_usize()),
        Some(outcome.sweep_count)
    );
}

#[test]
fn progress_interval_env_knob_is_validated_by_the_builder() {
    // This test owns UNSNAP_PROGRESS_MS: set and removed around each
    // builder call.  A numeric value (zero allowed) passes; garbage is
    // an InvalidProblem naming the knob.
    std::env::set_var("UNSNAP_PROGRESS_MS", "0");
    let ok = ProblemBuilder::tiny().env_overrides();
    std::env::set_var("UNSNAP_PROGRESS_MS", "250");
    let ok2 = ProblemBuilder::tiny().env_overrides();
    std::env::set_var("UNSNAP_PROGRESS_MS", "soon");
    let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
    std::env::remove_var("UNSNAP_PROGRESS_MS");
    ok.unwrap();
    ok2.unwrap();
    match err {
        Error::InvalidProblem { field, .. } => assert_eq!(field, "progress_interval_ms"),
        other => panic!("expected InvalidProblem, got {other:?}"),
    }
}
