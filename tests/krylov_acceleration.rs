//! Integration tests for the Krylov acceleration subsystem: the
//! sweep-preconditioned GMRES strategy against classic source iteration,
//! end-to-end through the public `unsnap` prelude.

use unsnap::prelude::*;

/// Run a problem under the given strategy and return the outcome.
fn run(problem: &Problem, strategy: StrategyKind) -> SolveOutcome {
    let p = problem.clone().with_strategy(strategy);
    let mut solver = TransportSolver::new(&p).unwrap();
    solver.run().unwrap()
}

#[test]
fn strategies_agree_on_tiny_flux_totals() {
    // The ISSUE acceptance criterion: SweepGmres and SourceIteration
    // agree on Problem::tiny() flux totals to 1e-8.
    let mut p = Problem::tiny();
    p.convergence_tolerance = 1e-10;
    p.inner_iterations = 200;

    let si = run(&p, StrategyKind::SourceIteration);
    let gm = run(&p, StrategyKind::SweepGmres);
    assert!(si.converged && gm.converged);
    assert!(
        (si.scalar_flux_total - gm.scalar_flux_total).abs() < 1e-8 * si.scalar_flux_total.abs(),
        "SI {} vs GMRES {}",
        si.scalar_flux_total,
        gm.scalar_flux_total
    );
    // Extrema agree too, not just the total.
    assert!((si.scalar_flux_max - gm.scalar_flux_max).abs() < 1e-8 * si.scalar_flux_max);
    assert!((si.scalar_flux_min - gm.scalar_flux_min).abs() < 1e-8 * si.scalar_flux_max);
}

#[test]
fn gmres_accelerates_scattering_dominated_inner_solves() {
    // c = 0.9: source iteration needs ~log(tol)/log(c) ≈ 175 sweeps;
    // sweep-preconditioned GMRES needs a small multiple of ten.
    let mut p = Problem::tiny();
    p.num_groups = 1;
    p.nx = 4;
    p.ny = 4;
    p.nz = 4;
    p.lx = 8.0;
    p.ly = 8.0;
    p.lz = 8.0;
    p.scattering_ratio = Some(0.9);
    p.convergence_tolerance = 1e-8;
    p.inner_iterations = 600;
    p.outer_iterations = 1;

    let si = run(&p, StrategyKind::SourceIteration);
    let gm = run(&p, StrategyKind::SweepGmres);
    assert!(si.converged, "SI exhausted its budget");
    assert!(gm.converged, "GMRES exhausted its budget");
    assert!(
        gm.sweep_count < si.sweep_count,
        "GMRES {} sweeps vs SI {} sweeps",
        gm.sweep_count,
        si.sweep_count
    );
    // The Krylov bookkeeping is visible through the outcome.
    assert!(gm.krylov_iterations > 0);
    assert!(*gm.krylov_residual_history.last().unwrap() <= 1e-8);
    assert_eq!(si.krylov_iterations, 0);
}

#[test]
fn gmres_handles_multigroup_outer_coupling() {
    // Multi-group with down-scatter: the outer Jacobi loop still
    // resolves group-to-group transfer; GMRES only replaces the inner
    // within-group solve.  Both strategies must land on the same flux.
    let mut p = Problem::tiny();
    p.num_groups = 3;
    p.convergence_tolerance = 1e-10;
    p.inner_iterations = 200;
    p.outer_iterations = 4;

    let si = run(&p, StrategyKind::SourceIteration);
    let gm = run(&p, StrategyKind::SweepGmres);
    assert!(
        (si.scalar_flux_total - gm.scalar_flux_total).abs() < 1e-8 * si.scalar_flux_total.abs(),
        "SI {} vs GMRES {}",
        si.scalar_flux_total,
        gm.scalar_flux_total
    );
}

#[test]
fn gmres_works_under_every_concurrency_scheme() {
    // The Krylov strategy drives the same sweep kernels, so every
    // concurrency scheme must produce the same accelerated physics.
    let mut base = Problem::tiny().with_threads(2);
    base.convergence_tolerance = 1e-9;
    base.inner_iterations = 100;
    let mut reference: Option<f64> = None;
    for scheme in ConcurrencyScheme::figure_schemes() {
        let outcome = run(&base.clone().with_scheme(scheme), StrategyKind::SweepGmres);
        assert!(outcome.converged, "{scheme} did not converge");
        match reference {
            None => reference = Some(outcome.scalar_flux_total),
            Some(r) => assert!(
                (outcome.scalar_flux_total - r).abs() < 1e-9 * r.abs(),
                "{scheme}: {} vs {r}",
                outcome.scalar_flux_total
            ),
        }
    }
}

#[test]
fn strategy_and_backend_selection_round_trips_through_strings() {
    // Benches and ablation binaries select backends from env/CLI via
    // FromStr: exercise the full loop for all three selectable enums.
    for kind in SolverKind::all() {
        assert_eq!(kind.label().parse::<SolverKind>().unwrap(), kind);
    }
    for strategy in StrategyKind::all() {
        assert_eq!(strategy.label().parse::<StrategyKind>().unwrap(), strategy);
    }
    let scheme = ConcurrencyScheme::best();
    assert_eq!(scheme.label().parse::<ConcurrencyScheme>().unwrap(), scheme);
}
