//! Acceptance tests for the PR 10 hierarchical tracing layer as seen
//! from the umbrella crate: the span tree attached to every outcome is
//! bitwise thread-count-invariant once wall-clock timestamps are
//! stripped (at 1 and at 4 block-Jacobi ranks alike), and the Chrome
//! `trace_event` export re-parses with the `unsnap-obs` reader as a
//! valid, strictly nested, monotonically timestamped profile.

use unsnap::obs::reader::{self, JsonValue};
use unsnap::obs::trace::TraceTree;
use unsnap::prelude::*;

/// Under the CI matrix `RAYON_NUM_THREADS` forces every pool to one
/// width, so cross-width comparisons would compare a width against
/// itself; skip with a note in that case (the matrix replays the rest
/// of the suite at each width instead).
fn forced_width() -> Option<String> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .filter(|v| !v.trim().is_empty())
}

/// The trace with its wall-clock half zeroed: after this, `spans`
/// compares bitwise (every `SpanRecord` field), not just structurally.
fn stripped(trace: &TraceTree) -> TraceTree {
    let mut t = trace.clone();
    t.zero_wallclock();
    t
}

fn trace_at(problem: &Problem, threads: usize) -> TraceTree {
    let p = problem.clone().with_threads(threads);
    let mut session = Session::new(&p).unwrap();
    session.run().unwrap().trace
}

#[test]
fn span_tree_is_bitwise_invariant_at_1_2_and_8_threads() {
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    for strategy in [
        StrategyKind::SourceIteration,
        StrategyKind::DsaSourceIteration,
        StrategyKind::SweepGmres,
    ] {
        let problem = Problem::tiny().with_strategy(strategy);
        let reference = trace_at(&problem, 1);
        assert!(
            reference.count_named("bucket") > 0,
            "{strategy:?}: the sweep must trace wavefront buckets"
        );
        assert!(
            reference.count_named("local_solve") > 0,
            "{strategy:?}: bucket spans must carry local-solve leaves"
        );
        for threads in [2usize, 8] {
            let run = trace_at(&problem, threads);
            // Structural equality first (the cheap, intended comparison)…
            assert_eq!(
                reference, run,
                "span structure diverged for {strategy:?} at {threads} threads vs 1"
            );
            // …then the bitwise form of the claim: after stripping the
            // wall-clock half, every remaining bit of every record is
            // identical.
            assert_eq!(
                stripped(&reference).spans,
                stripped(&run).spans,
                "stripped span records diverged for {strategy:?} at {threads} threads vs 1"
            );
        }
    }
}

fn jacobi_trace(ranks: &Decomposition2D, threads: usize) -> TraceTree {
    let problem = {
        let mut p = Problem::quickstart();
        p.inner_iterations = 8;
        p.with_threads(threads)
    };
    let mut solver = BlockJacobiSolver::new(&problem, *ranks).unwrap();
    solver.run().unwrap().trace
}

#[test]
fn rank_decomposed_span_trees_are_bitwise_invariant_across_widths() {
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    // At 1 and at 4 block-Jacobi ranks the replayed, rank-ordered event
    // stream must build the identical tree at every pool width.  The
    // two decompositions themselves legitimately differ (4 ranks means
    // 4 rank lanes plus halo-exchange spans), which is asserted below.
    for decomp in [Decomposition2D::new(1, 1), Decomposition2D::new(2, 2)] {
        let reference = jacobi_trace(&decomp, 1);
        for threads in [2usize, 8] {
            let run = jacobi_trace(&decomp, threads);
            assert_eq!(
                reference,
                run,
                "span structure diverged for {} rank(s) at {threads} threads vs 1",
                decomp.num_ranks()
            );
            assert_eq!(
                stripped(&reference).spans,
                stripped(&run).spans,
                "stripped span records diverged for {} rank(s) at {threads} threads vs 1",
                decomp.num_ranks()
            );
        }
    }

    let four = jacobi_trace(&Decomposition2D::new(2, 2), 1);
    let lanes: std::collections::BTreeSet<usize> = four.spans.iter().map(|s| s.lane).collect();
    assert_eq!(
        lanes.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4],
        "4 ranks trace to the driver lane plus one lane per rank"
    );
    assert_eq!(
        four.spans
            .iter()
            .filter(|s| s.name == "rank_solve")
            .map(|s| s.lane)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        4,
        "every rank opens rank_solve spans on its own lane"
    );
    assert!(
        four.count_named("halo_exchange") > 0,
        "a 4-rank solve must trace halo exchanges"
    );
}

/// The `"ph":"X"` complete events of a Chrome export, in emission
/// order, keyed by span id for the containment check.
fn complete_events(doc: &JsonValue) -> Vec<JsonValue> {
    doc.get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .cloned()
        .collect()
}

#[test]
fn chrome_export_reparses_as_a_strictly_nested_monotone_profile() {
    let problem = Problem::tiny().with_strategy(StrategyKind::DsaSourceIteration);
    let mut session = Session::new(&problem).unwrap();
    let trace = session.run().unwrap().trace;

    let doc = reader::parse(&trace.to_chrome_json()).expect("Chrome export is valid JSON");
    assert_eq!(
        doc.get("droppedSpans").and_then(|v| v.as_u64()),
        Some(trace.dropped)
    );
    let events = complete_events(&doc);
    assert_eq!(events.len(), trace.len(), "one complete event per span");

    // Timestamps are strictly increasing in emission (open) order.
    let mut last_ts = 0u64;
    let mut by_id: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
    for event in &events {
        let ts = event.get("ts").and_then(|v| v.as_u64()).expect("ts");
        let dur = event.get("dur").and_then(|v| v.as_u64()).expect("dur");
        assert!(ts > last_ts, "timestamps must be strictly increasing");
        last_ts = ts;
        let id = event
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(|v| v.as_u64())
            .expect("span id in args");
        by_id.insert(id, (ts, ts + dur));
    }

    // Strict nesting: every child interval sits strictly inside its
    // parent's (the tracer's tick discipline guarantees strictness).
    let mut nested = 0usize;
    for event in &events {
        let args = event.get("args").expect("args");
        let id = args.get("id").and_then(|v| v.as_u64()).unwrap();
        let Some(parent) = args.get("parent").and_then(|v| v.as_u64()) else {
            continue;
        };
        let (child_start, child_end) = by_id[&id];
        let (parent_start, parent_end) = by_id[&parent];
        assert!(
            parent_start < child_start && child_end < parent_end,
            "span {id} [{child_start},{child_end}] must nest strictly inside \
             its parent {parent} [{parent_start},{parent_end}]"
        );
        nested += 1;
    }
    assert!(nested > 0, "a real solve trace has nested spans");

    // Lane metadata labels the driver lane.
    let metadata_names: Vec<String> = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .map(String::from)
        })
        .collect();
    assert_eq!(metadata_names, vec!["driver".to_string()]);

    // The flamegraph exporter agrees on the stack roots.
    let collapsed = trace.to_collapsed();
    assert!(
        collapsed
            .lines()
            .all(|l| l.starts_with("driver;") || l == "driver" || l.starts_with("driver ")),
        "single-domain stacks all root at the driver lane"
    );
    assert!(
        collapsed.lines().any(|l| l.contains(";solve;")),
        "stacks pass through the solve root"
    );
}
