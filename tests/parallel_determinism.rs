//! Cross-thread-count determinism suite: the acceptance tests for the
//! real worker pool in the `rayon` stand-in.
//!
//! Making the pool genuinely multi-threaded is only safe if the physics
//! is *bit-for-bit* unchanged at any width, so for both iteration
//! strategies on both small presets this suite pins every non-timing
//! field of the [`SolveOutcome`] — fluxes, iteration counts, residual
//! histories — plus the full scalar and angular flux state and the
//! [`RecordingObserver`] event stream (the equivalence harness of
//! `tests/session_api.rs`) to be identical at 1, 2 and 4 threads.
//!
//! The guarantee rests on the stand-in's execution model: index-ordered
//! chunks, in-order reassembly, and in-order reductions (see the
//! `rayon` crate docs).  The one scheme exempted is the angle-threaded
//! ablation, whose *deliberately* contended scalar-flux reduction models
//! the paper's non-scaling OpenMP atomic and therefore sums in
//! interleaving order; it is pinned separately at a tolerance.

use unsnap::prelude::*;

/// Everything a `SolveOutcome` reports except wall-clock timing, which
/// legitimately differs between two runs.  The attached [`RunMetrics`]
/// keeps its deterministic half (sweeps, cells, phase-span counts) and
/// has its wall-clock half stripped, so the comparison below pins the
/// telemetry contract alongside the physics.
fn non_timing_fields(o: &SolveOutcome) -> SolveOutcome {
    let mut metrics = o.metrics.clone();
    metrics.zero_wallclock();
    SolveOutcome {
        assemble_solve_seconds: 0.0,
        kernel_assemble_seconds: 0.0,
        kernel_solve_seconds: 0.0,
        metrics,
        ..o.clone()
    }
}

struct Run {
    outcome: SolveOutcome,
    scalar_flux: Vec<f64>,
    angular_flux: Vec<f64>,
    recorder: RecordingObserver,
}

fn run_at(problem: &Problem, threads: usize) -> Run {
    let p = problem.clone().with_threads(threads);
    let mut session = Session::new(&p).unwrap();
    let mut recorder = RecordingObserver::default();
    let outcome = session.run_observed(&mut recorder).unwrap();
    Run {
        outcome,
        scalar_flux: session.scalar_flux().as_slice().to_vec(),
        angular_flux: session.solver().angular_flux().as_slice().to_vec(),
        recorder,
    }
}

/// Under the CI matrix `RAYON_NUM_THREADS` forces *every* pool to one
/// width, so the cross-width comparisons below would compare a width
/// against itself.  Skip with a note in that case — the matrix's value
/// is replaying the *rest* of the suite at each width; this suite does
/// its real work in the unforced main job.
fn forced_width() -> Option<String> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .filter(|v| !v.trim().is_empty())
}

fn assert_thread_count_invariant(problem: &Problem) {
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    let reference = run_at(problem, 1);
    for threads in [2usize, 4] {
        let run = run_at(problem, threads);
        let context = format!(
            "{:?}/{:?} at {threads} threads vs 1",
            problem.strategy,
            (problem.nx, problem.ny, problem.nz),
        );
        assert_eq!(
            non_timing_fields(&reference.outcome),
            non_timing_fields(&run.outcome),
            "outcome diverged for {context}"
        );
        assert_eq!(
            reference.scalar_flux, run.scalar_flux,
            "scalar flux diverged for {context}"
        );
        assert_eq!(
            reference.angular_flux, run.angular_flux,
            "angular flux diverged for {context}"
        );
        // The streamed event view must agree too, not just the summary.
        assert_eq!(reference.recorder.sweep_count, run.recorder.sweep_count);
        assert_eq!(
            reference.recorder.cells_swept, run.recorder.cells_swept,
            "streamed cell counts diverged for {context}"
        );
        assert_eq!(
            reference.recorder.phase_starts, run.recorder.phase_starts,
            "phase-span counts diverged for {context}"
        );
        assert_eq!(
            reference.recorder.convergence_history, run.recorder.convergence_history,
            "streamed convergence history diverged for {context}"
        );
        assert_eq!(
            reference.recorder.krylov_residual_history, run.recorder.krylov_residual_history,
            "streamed Krylov residuals diverged for {context}"
        );
        assert_eq!(
            reference.recorder.accel_residual_history, run.recorder.accel_residual_history,
            "streamed DSA residuals diverged for {context}"
        );
        assert_eq!(reference.recorder.converged, run.recorder.converged);
    }
}

#[test]
fn source_iteration_is_thread_count_invariant_on_tiny() {
    assert_thread_count_invariant(&Problem::tiny());
}

#[test]
fn source_iteration_is_thread_count_invariant_on_quickstart() {
    assert_thread_count_invariant(&Problem::quickstart());
}

#[test]
fn sweep_gmres_is_thread_count_invariant_on_tiny() {
    assert_thread_count_invariant(&Problem::tiny().with_strategy(StrategyKind::SweepGmres));
}

#[test]
fn sweep_gmres_is_thread_count_invariant_on_quickstart() {
    assert_thread_count_invariant(&Problem::quickstart().with_strategy(StrategyKind::SweepGmres));
}

#[test]
fn dsa_source_iteration_is_thread_count_invariant_on_tiny() {
    assert_thread_count_invariant(&Problem::tiny().with_strategy(StrategyKind::DsaSourceIteration));
}

#[test]
fn dsa_source_iteration_is_thread_count_invariant_on_quickstart() {
    // The DSA correction is sequential, so only the sweeps fan out —
    // corrected fluxes, residual histories and observer streams must
    // stay bit-for-bit identical at every width.
    assert_thread_count_invariant(
        &Problem::quickstart().with_strategy(StrategyKind::DsaSourceIteration),
    );
}

#[test]
fn dsa_preconditioned_gmres_is_thread_count_invariant_on_quickstart() {
    assert_thread_count_invariant(
        &Problem::quickstart()
            .with_strategy(StrategyKind::SweepGmres)
            .with_accelerator(AcceleratorKind::Dsa),
    );
}

#[test]
fn every_figure_scheme_is_thread_count_invariant() {
    // The six Figure 3/4 element/group schemes all reassemble their
    // bucket tasks in index order, so each must be bitwise reproducible.
    for scheme in ConcurrencyScheme::figure_schemes() {
        assert_thread_count_invariant(&Problem::tiny().with_scheme(scheme));
    }
}

#[test]
fn angle_threaded_ablation_is_reproducible_to_reduction_tolerance() {
    // The angle-threaded scheme reduces the scalar flux through one
    // contended lock (the paper's OpenMP-atomic ablation), so the
    // *summation order* of per-angle contributions is interleaving-
    // dependent; the physics must still agree to floating-point
    // reduction accuracy, and the angular flux (no reduction) exactly.
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    let problem = Problem::tiny().with_scheme(unsnap::core::problem::angle_threaded_scheme());
    let reference = run_at(&problem, 1);
    let run = run_at(&problem, 2);
    assert_eq!(
        reference.angular_flux, run.angular_flux,
        "angular flux has no contended reduction and must match exactly"
    );
    let max_rel = reference
        .scalar_flux
        .iter()
        .zip(run.scalar_flux.iter())
        .fold(0.0f64, |m, (a, b)| {
            m.max((a - b).abs() / a.abs().max(1e-12))
        });
    assert!(
        max_rel < 1e-12,
        "angle-threaded scalar flux drifted by {max_rel}"
    );
    assert_eq!(
        reference.outcome.kernel_invocations,
        run.outcome.kernel_invocations
    );
}

#[test]
fn deterministic_metrics_are_thread_count_invariant_at_1_2_and_8() {
    // The telemetry contract of PR 6: every metric in the deterministic
    // half of `RunMetrics` — sweeps, cells swept, iteration counters,
    // phase-span counts, the cells-per-sweep histogram — is bit-for-bit
    // identical at widths 1, 2 and 8 for each iteration strategy, while
    // the wall-clock half is free to differ and is stripped before the
    // comparison.
    if let Some(width) = forced_width() {
        eprintln!("RAYON_NUM_THREADS={width} forces every pool width; cross-width check skipped");
        return;
    }
    for strategy in [
        StrategyKind::SourceIteration,
        StrategyKind::SweepGmres,
        StrategyKind::DsaSourceIteration,
    ] {
        let problem = Problem::tiny().with_strategy(strategy);
        let reference = run_at(&problem, 1).outcome.metrics.deterministic();
        assert!(reference.sweeps > 0, "{strategy:?} recorded no sweeps");
        assert!(
            reference.cells_swept > 0,
            "{strategy:?} recorded no swept cells"
        );
        for threads in [2usize, 8] {
            let run = run_at(&problem, threads).outcome.metrics.deterministic();
            assert_eq!(
                reference, run,
                "deterministic metrics diverged for {strategy:?} at {threads} threads vs 1"
            );
        }
    }
}

#[test]
fn metrics_observer_stream_matches_the_attached_snapshot() {
    // A caller-side MetricsObserver fed through `run_observed` sees the
    // identical event stream that builds the outcome's attached
    // snapshot, so the two must agree exactly — including wall-clock
    // fields, because both views time the same single run.
    let problem = Problem::tiny().with_strategy(StrategyKind::DsaSourceIteration);
    let mut session = Session::new(&problem).unwrap();
    let mut observer = MetricsObserver::new();
    let outcome = session.run_observed(&mut observer).unwrap();
    let mut streamed = observer.snapshot();
    // Kernel-section timing arrives via the outcome, not the event
    // stream, so it is the one pair the observer cannot see.
    streamed.kernel_assemble_seconds = outcome.metrics.kernel_assemble_seconds;
    streamed.kernel_solve_seconds = outcome.metrics.kernel_solve_seconds;
    assert_eq!(streamed, outcome.metrics);
}

#[test]
fn rerunning_at_the_same_width_is_bitwise_stable() {
    // Two runs at the same nontrivial width are identical — the suite's
    // baseline sanity check that nothing racy leaks into the outputs.
    let problem = Problem::quickstart().with_strategy(StrategyKind::SweepGmres);
    let a = run_at(&problem, 4);
    let b = run_at(&problem, 4);
    assert_eq!(non_timing_fields(&a.outcome), non_timing_fields(&b.outcome));
    assert_eq!(a.scalar_flux, b.scalar_flux);
    assert_eq!(a.angular_flux, b.angular_flux);
}
