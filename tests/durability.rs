//! Durability suite: crash-and-resume fault injection for the run log.
//!
//! Pins the two contracts of `unsnap-runlog`:
//!
//! 1. **Recovery is total.**  Truncating a finished run log at *every*
//!    byte offset — and flipping arbitrary bytes — yields either a
//!    typed error or a valid checkpoint prefix.  Never a panic, never a
//!    torn frame accepted.
//! 2. **Resume is bit-for-bit.**  Kill a checkpointed run after any
//!    outer iteration (by log truncation or an injected torn write),
//!    resume it, and the completed run's outcome — flux, iteration
//!    counts, deterministic metrics, and the full observer event
//!    stream — is identical to the same run left uninterrupted, at
//!    thread widths 1, 2 and 8, for SI, DSA-SI and SweepGmres, on both
//!    the single-domain and the block-Jacobi path.

use proptest::prelude::*;

use unsnap::prelude::*;
use unsnap::runlog::{
    checkpoint_iters_from_env, frame, recover_bytes, resume_block_jacobi, CheckpointObserver,
    FaultyWriter, RunMode, SessionResume, SharedBuffer, CHECKPOINT_ITERS_ENV,
};

// ---------------------------------------------------------------------
// Shared fixtures and comparison helpers
// ---------------------------------------------------------------------

/// A small multi-outer problem: tolerance zero means no outer ever
/// converges, so exactly `outer_iterations` outers run — a fixed,
/// deterministic checkpoint schedule for the kill/resume sweeps.
fn base_problem(strategy: StrategyKind) -> Problem {
    let mut p = Problem::tiny();
    p.nx = 3;
    p.ny = 3;
    p.nz = 2;
    p.num_groups = 2;
    p.angles_per_octant = 2;
    p.inner_iterations = 3;
    p.outer_iterations = 4;
    p.convergence_tolerance = 0.0;
    p.scattering_ratio = Some(0.9);
    p.strategy = strategy;
    p.scheme = ConcurrencyScheme::best();
    p
}

/// Everything a `SolveOutcome` reports except wall-clock timing.
fn non_timing(o: &SolveOutcome) -> SolveOutcome {
    let mut metrics = o.metrics.clone();
    metrics.zero_wallclock();
    SolveOutcome {
        assemble_solve_seconds: 0.0,
        kernel_assemble_seconds: 0.0,
        kernel_solve_seconds: 0.0,
        metrics,
        ..o.clone()
    }
}

/// Everything a `BlockJacobiOutcome` reports except wall-clock timing.
fn jacobi_non_timing(o: &BlockJacobiOutcome) -> BlockJacobiOutcome {
    let mut out = o.clone();
    out.assemble_solve_seconds = 0.0;
    out.metrics.zero_wallclock();
    out
}

/// Zero the wall-clock fields of a recording (recursively over rank
/// records); the deterministic counts stay and must match exactly.
fn without_timing(recorder: &RecordingObserver) -> RecordingObserver {
    let mut r = recorder.clone();
    r.sweep_seconds = 0.0;
    r.phase_seconds = vec![0.0; r.phase_seconds.len()];
    for rank in &mut r.rank_records {
        rank.sweep_seconds = 0.0;
        rank.phase_seconds = vec![0.0; rank.phase_seconds.len()];
    }
    r
}

/// An even smaller fixture for the exhaustive byte-level recovery
/// sweeps: the truncation test visits *every* byte offset and re-scans
/// the prefix each time, so the log must stay a few kilobytes.
fn small_problem() -> Problem {
    let mut p = base_problem(StrategyKind::SourceIteration);
    p.nx = 2;
    p.ny = 2;
    p.nz = 1;
    p.num_groups = 1;
    p.angles_per_octant = 1;
    p.inner_iterations = 2;
    p
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "unsnap-durability-{}-{tag}.runlog",
        std::process::id()
    ))
}

struct SingleReference {
    outcome: SolveOutcome,
    flux: Vec<f64>,
    recorder: RecordingObserver,
    /// The complete run-log image of the uninterrupted run.
    log: Vec<u8>,
}

/// Run `problem` to completion under a checkpointing observer (cadence
/// `every`), capturing the outcome, flux, event stream and log bytes.
fn run_single_reference(problem: &Problem, every: usize) -> SingleReference {
    let buffer = SharedBuffer::new();
    let observer =
        CheckpointObserver::with_writer(Box::new(buffer.clone()), problem, RunMode::Single, every)
            .unwrap();
    let mut sink = observer.sink();
    let mut observer = observer;
    let mut recorder = RecordingObserver::default();
    let mut session = Session::new(problem).unwrap();
    let outcome = {
        let mut tee = TeeObserver::new(&mut recorder, &mut observer);
        session.run_checkpointed(&mut tee, &mut sink).unwrap()
    };
    SingleReference {
        outcome,
        flux: session.scalar_flux().as_slice().to_vec(),
        recorder,
        log: buffer.bytes(),
    }
}

/// Byte offsets at which the log holds exactly 1..=n intact checkpoint
/// frames (frame 0 is the manifest; the finished frame is excluded).
fn checkpoint_boundaries(log: &[u8]) -> Vec<usize> {
    frame::scan(log)
        .frames
        .iter()
        .filter(|f| f.tag == frame::TAG_CHECKPOINT)
        .map(|f| f.end_offset)
        .collect()
}

/// End offset of the manifest frame (a "killed before any checkpoint"
/// kill point).
fn manifest_boundary(log: &[u8]) -> usize {
    let scan = frame::scan(log);
    assert_eq!(scan.frames[0].tag, frame::TAG_MANIFEST);
    scan.frames[0].end_offset
}

/// Resume the single-domain run whose log image is `partial`, finish
/// it, and assert the outcome/flux/stream match the reference exactly.
fn resume_single_and_compare(partial: &[u8], every: usize, reference: &SingleReference, tag: &str) {
    let path = temp_path(tag);
    std::fs::write(&path, partial).unwrap();
    let mut session = Session::resume(&path).unwrap();
    let observer = CheckpointObserver::resume(&path, every).unwrap();
    let mut sink = observer.sink();
    let mut observer = observer;
    let mut recorder = RecordingObserver::default();
    let outcome = {
        let mut tee = TeeObserver::new(&mut recorder, &mut observer);
        session.run_checkpointed(&mut tee, &mut sink).unwrap()
    };
    assert_eq!(
        non_timing(&outcome),
        non_timing(&reference.outcome),
        "{tag}: resumed outcome diverged"
    );
    assert_eq!(
        session.scalar_flux().as_slice(),
        &reference.flux[..],
        "{tag}: resumed flux diverged"
    );
    assert_eq!(
        without_timing(&recorder),
        without_timing(&reference.recorder),
        "{tag}: resumed observer stream diverged"
    );
    // The completed resumed log must itself recover as a finished run.
    let final_log = std::fs::read(&path).unwrap();
    let recovered = recover_bytes(&final_log).unwrap();
    assert!(
        recovered.completed,
        "{tag}: resumed log not marked finished"
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Contract 1: recovery is total
// ---------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_offset_recovers_a_valid_prefix() {
    let problem = small_problem();
    let reference = run_single_reference(&problem, 1);
    let log = &reference.log;
    let full = recover_bytes(log).unwrap();
    assert!(full.completed);
    assert_eq!(full.checkpoints, 3, "4 outers at cadence 1: 3 C + 1 F");

    let boundaries = checkpoint_boundaries(log);
    for cut in 0..=log.len() {
        // Must never panic; short prefixes are typed errors.
        let Ok(recovered) = recover_bytes(&log[..cut]) else {
            continue;
        };
        // A torn frame is never accepted: the number of surviving
        // checkpoints is exactly the number of *whole* checkpoint
        // frames below the cut.
        let expect = boundaries.iter().filter(|&&end| end <= cut).count();
        assert_eq!(recovered.checkpoints, expect, "cut at {cut}");
        match recovered.single {
            Some(ref point) => {
                // Cadence 1: checkpoint k resumes at outer k+1.
                assert_eq!(point.outer_next, expect, "cut at {cut}");
                assert!(!point.prefix.events.is_empty(), "cut at {cut}");
            }
            None => assert_eq!(expect, 0, "cut at {cut}"),
        }
        // `completed` survives only if the finished frame survived
        // whole, i.e. only the untruncated image.
        assert_eq!(recovered.completed, cut == log.len(), "cut at {cut}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random byte flips anywhere in the image: recovery returns a
    /// typed error or a (possibly shorter) valid prefix — never a
    /// panic, and corruption never *adds* checkpoints.
    #[test]
    fn random_mutations_never_panic_recovery(
        seed in 0usize..10_000,
        flips in 1usize..4,
    ) {
        static REFERENCE_LOG: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
        let mut log = REFERENCE_LOG
            .get_or_init(|| run_single_reference(&small_problem(), 1).log)
            .clone();
        let full = recover_bytes(&log).unwrap();
        for i in 0..flips {
            // Cheap deterministic pseudo-random positions/masks.
            let pos = (seed.wrapping_mul(31).wrapping_add(i * 7919)) % log.len();
            let mask = ((seed / 13 + i * 101) % 255 + 1) as u8;
            log[pos] ^= mask;
        }
        if let Ok(recovered) = recover_bytes(&log) {
            prop_assert!(recovered.checkpoints <= full.checkpoints);
        }
    }
}

// ---------------------------------------------------------------------
// Contract 2: kill-and-resume is bit-for-bit (single domain)
// ---------------------------------------------------------------------

fn assert_kill_resume_single(strategy: StrategyKind) {
    for threads in [1usize, 2, 8] {
        let mut problem = base_problem(strategy);
        problem.num_threads = Some(threads);
        let reference = run_single_reference(&problem, 1);

        // A plain unobserved run must agree too: the checkpoint sink
        // cannot perturb the physics.
        let mut plain = Session::new(&problem).unwrap();
        let plain_outcome = plain.run().unwrap();
        assert_eq!(non_timing(&plain_outcome), non_timing(&reference.outcome));

        // Kill after the manifest (before any checkpoint): resume is a
        // fresh run with the identical outcome.
        resume_single_and_compare(
            &reference.log[..manifest_boundary(&reference.log)],
            1,
            &reference,
            &format!("{strategy:?}-t{threads}-manifest"),
        );

        // Kill after every checkpointed outer in turn.
        for (k, &end) in checkpoint_boundaries(&reference.log).iter().enumerate() {
            resume_single_and_compare(
                &reference.log[..end],
                1,
                &reference,
                &format!("{strategy:?}-t{threads}-k{k}"),
            );
        }
    }
}

#[test]
fn kill_and_resume_is_bit_for_bit_si() {
    assert_kill_resume_single(StrategyKind::SourceIteration);
}

#[test]
fn kill_and_resume_is_bit_for_bit_dsa_si() {
    assert_kill_resume_single(StrategyKind::DsaSourceIteration);
}

#[test]
fn kill_and_resume_is_bit_for_bit_sweep_gmres() {
    assert_kill_resume_single(StrategyKind::SweepGmres);
}

#[test]
fn a_sparser_checkpoint_cadence_resumes_identically() {
    let problem = base_problem(StrategyKind::DsaSourceIteration);
    let reference = run_single_reference(&problem, 2);
    // Cadence 2 over 4 outers: one checkpoint (after outer 1), then the
    // finished frame; its event delta spans two whole outers.
    let boundaries = checkpoint_boundaries(&reference.log);
    assert_eq!(boundaries.len(), 1);
    resume_single_and_compare(&reference.log[..boundaries[0]], 2, &reference, "cadence2");
    // And the cadence-2 run itself matches the cadence-1 physics.
    let dense = run_single_reference(&problem, 1);
    assert_eq!(non_timing(&dense.outcome), non_timing(&reference.outcome));
}

#[test]
fn a_torn_write_aborts_the_run_and_the_survivors_resume() {
    let problem = base_problem(StrategyKind::SweepGmres);
    let reference = run_single_reference(&problem, 1);
    // Crash budgets landing just past the manifest and at interior
    // fractions of the stream: the run must abort with a typed error
    // and the bytes that reached "disk" must resume to the reference.
    // (Budgets stay well inside the stream because event deltas carry
    // wall-clock floats whose serialized width jitters a little between
    // runs; a near-the-end budget could fall off a slightly shorter
    // re-run and never fire.)
    let len = reference.log.len();
    for budget in [
        manifest_boundary(&reference.log) as u64 + 3,
        (len / 4) as u64,
        (len / 2) as u64,
        (3 * len / 4) as u64,
    ] {
        let buffer = SharedBuffer::new();
        let writer = FaultyWriter::crash_after(buffer.clone(), budget);
        let observer =
            CheckpointObserver::with_writer(Box::new(writer), &problem, RunMode::Single, 1)
                .unwrap();
        let mut sink = observer.sink();
        let mut observer = observer;
        let mut session = Session::new(&problem).unwrap();
        let result = session.run_checkpointed(&mut observer, &mut sink);
        let err = result.expect_err("torn write must abort the solve");
        assert!(
            matches!(err, Error::Execution { .. }),
            "torn write surfaced as {err:?}"
        );
        resume_single_and_compare(&buffer.bytes(), 1, &reference, &format!("torn-{budget}"));
    }
}

#[test]
fn a_converging_run_writes_a_finished_frame_and_rejects_resume() {
    let mut problem = base_problem(StrategyKind::DsaSourceIteration);
    problem.convergence_tolerance = 1e-10;
    problem.inner_iterations = 6;
    problem.outer_iterations = 50;
    let reference = run_single_reference(&problem, 1);
    assert!(reference.outcome.converged, "fixture must converge");
    let recovered = recover_bytes(&reference.log).unwrap();
    assert!(recovered.completed);
    assert!(
        recovered.checkpoints >= 1,
        "fixture must checkpoint before converging (took {} outers)",
        reference.recorder.outers_completed
    );

    // A completed log refuses both resume entry points.
    let path = temp_path("completed");
    std::fs::write(&path, &reference.log).unwrap();
    assert!(Session::resume(&path).is_err());
    assert!(CheckpointObserver::resume(&path, 1).is_err());
    let _ = std::fs::remove_file(&path);

    // But a kill *before* convergence resumes to the identical
    // converged outcome, finished frame included.
    let boundaries = checkpoint_boundaries(&reference.log);
    for &end in [boundaries[0], boundaries[boundaries.len() / 2]].iter() {
        resume_single_and_compare(&reference.log[..end], 1, &reference, "converging");
    }
}

// ---------------------------------------------------------------------
// Contract 2, block-Jacobi path
// ---------------------------------------------------------------------

struct JacobiReference {
    outcome: BlockJacobiOutcome,
    flux: Vec<f64>,
    recorder: RecordingObserver,
    log: Vec<u8>,
}

fn run_jacobi_reference(problem: &Problem, npx: usize, npy: usize) -> JacobiReference {
    let buffer = SharedBuffer::new();
    let observer = CheckpointObserver::with_writer(
        Box::new(buffer.clone()),
        problem,
        RunMode::Jacobi { npx, npy },
        1,
    )
    .unwrap();
    let mut sink = observer.sink();
    let mut observer = observer;
    let mut recorder = RecordingObserver::default();
    let mut solver = BlockJacobiSolver::new(problem, Decomposition2D::new(npx, npy)).unwrap();
    let outcome = {
        let mut tee = TeeObserver::new(&mut recorder, &mut observer);
        solver
            .run_observed_checkpointed(&mut tee, &mut sink)
            .unwrap()
    };
    JacobiReference {
        outcome,
        flux: solver.scalar_flux().as_slice().to_vec(),
        recorder,
        log: buffer.bytes(),
    }
}

fn resume_jacobi_and_compare(partial: &[u8], reference: &JacobiReference, tag: &str) {
    let path = temp_path(tag);
    std::fs::write(&path, partial).unwrap();
    let mut solver = resume_block_jacobi(&path).unwrap();
    let observer = CheckpointObserver::resume(&path, 1).unwrap();
    let mut sink = observer.sink();
    let mut observer = observer;
    let mut recorder = RecordingObserver::default();
    let outcome = {
        let mut tee = TeeObserver::new(&mut recorder, &mut observer);
        solver
            .run_observed_checkpointed(&mut tee, &mut sink)
            .unwrap()
    };
    assert_eq!(
        jacobi_non_timing(&outcome),
        jacobi_non_timing(&reference.outcome),
        "{tag}: resumed jacobi outcome diverged"
    );
    assert_eq!(
        solver.scalar_flux().as_slice(),
        &reference.flux[..],
        "{tag}: resumed jacobi flux diverged"
    );
    assert_eq!(
        without_timing(&recorder),
        without_timing(&reference.recorder),
        "{tag}: resumed jacobi observer stream diverged"
    );
    let _ = std::fs::remove_file(&path);
}

fn assert_kill_resume_jacobi(strategy: StrategyKind) {
    for threads in [1usize, 2, 8] {
        let mut problem = base_problem(strategy);
        problem.inner_iterations = 4;
        problem.num_threads = Some(threads);
        let reference = run_jacobi_reference(&problem, 2, 1);

        // The sink must not perturb the distributed physics either.
        let mut plain = BlockJacobiSolver::new(&problem, Decomposition2D::new(2, 1)).unwrap();
        let plain_outcome = plain.run().unwrap();
        assert_eq!(
            jacobi_non_timing(&plain_outcome),
            jacobi_non_timing(&reference.outcome)
        );

        resume_jacobi_and_compare(
            &reference.log[..manifest_boundary(&reference.log)],
            &reference,
            &format!("jac-{strategy:?}-t{threads}-manifest"),
        );
        for (k, &end) in checkpoint_boundaries(&reference.log).iter().enumerate() {
            resume_jacobi_and_compare(
                &reference.log[..end],
                &reference,
                &format!("jac-{strategy:?}-t{threads}-k{k}"),
            );
        }
    }
}

#[test]
fn jacobi_kill_and_resume_is_bit_for_bit_si() {
    assert_kill_resume_jacobi(StrategyKind::SourceIteration);
}

#[test]
fn jacobi_kill_and_resume_is_bit_for_bit_dsa_si() {
    assert_kill_resume_jacobi(StrategyKind::DsaSourceIteration);
}

#[test]
fn jacobi_kill_and_resume_is_bit_for_bit_sweep_gmres() {
    assert_kill_resume_jacobi(StrategyKind::SweepGmres);
}

// ---------------------------------------------------------------------
// Misc: mode mismatches and the cadence env knob
// ---------------------------------------------------------------------

#[test]
fn resume_entry_points_reject_the_wrong_mode() {
    let problem = base_problem(StrategyKind::SourceIteration);
    let single = run_single_reference(&problem, 1);
    let path = temp_path("wrong-mode-single");
    let boundaries = checkpoint_boundaries(&single.log);
    std::fs::write(&path, &single.log[..boundaries[0]]).unwrap();
    let err = match resume_block_jacobi(&path) {
        Ok(_) => panic!("jacobi resume accepted a single-domain log"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("single-domain"), "{err}");
    let _ = std::fs::remove_file(&path);

    let jacobi = run_jacobi_reference(&problem, 2, 1);
    let path = temp_path("wrong-mode-jacobi");
    let boundaries = checkpoint_boundaries(&jacobi.log);
    std::fs::write(&path, &jacobi.log[..boundaries[0]]).unwrap();
    let err = match <Session as SessionResume>::resume(&path) {
        Ok(_) => panic!("session resume accepted a block-Jacobi log"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("block-Jacobi"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_cadence_env_knob_validates() {
    // Env vars are process-global: this is the only test in this binary
    // touching the knob, and it restores the slate before returning.
    std::env::remove_var(CHECKPOINT_ITERS_ENV);
    assert_eq!(checkpoint_iters_from_env().unwrap(), 1);
    std::env::set_var(CHECKPOINT_ITERS_ENV, "5");
    assert_eq!(checkpoint_iters_from_env().unwrap(), 5);
    for bad in ["0", "-1", "sometimes"] {
        std::env::set_var(CHECKPOINT_ITERS_ENV, bad);
        let err = checkpoint_iters_from_env().unwrap_err();
        assert_eq!(err.invalid_field(), Some("checkpoint_iters"), "'{bad}'");
    }
    std::env::remove_var(CHECKPOINT_ITERS_ENV);
}

#[test]
fn non_finite_floats_round_trip_as_null_through_the_frame_format() {
    // The JSON writer encodes NaN/±inf as null; a checkpoint frame
    // carrying such a payload must survive the frame round trip and
    // parse back to nulls — not corrupt the checksum or panic the
    // reader.  (Residual histories can go non-finite when a solve
    // diverges; the log must still be recoverable.)
    let payload = unsnap::obs::json::JsonObject::new()
        .field_f64("finite", 0.5)
        .field_f64("nan", f64::NAN)
        .field_raw(
            "history",
            &unsnap::obs::json::array_f64(&[1.0, f64::INFINITY, f64::NEG_INFINITY, 2.0]),
        )
        .finish();
    let mut log = frame::header_bytes();
    log.extend_from_slice(&frame::frame_bytes(
        frame::TAG_CHECKPOINT,
        payload.as_bytes(),
    ));

    let scan = frame::scan(&log);
    assert!(!scan.truncated);
    assert_eq!(scan.frames.len(), 1);
    let parsed =
        unsnap::obs::reader::parse(std::str::from_utf8(scan.frames[0].payload).unwrap()).unwrap();
    assert_eq!(parsed.get("finite").unwrap().as_f64(), Some(0.5));
    assert!(parsed.get("nan").unwrap().is_null());
    let history = parsed.get("history").unwrap().as_array().unwrap();
    assert_eq!(history[0].as_f64(), Some(1.0));
    assert!(history[1].is_null() && history[2].is_null());
    assert_eq!(history[3].as_f64(), Some(2.0));
}
