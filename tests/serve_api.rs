//! End-to-end tests of the `unsnap-serve` HTTP surface: real sockets,
//! real worker threads, real solves.
//!
//! The acceptance properties pinned here:
//!
//! * two identical `POST /v1/solve` requests produce **bit-for-bit
//!   identical** outcome JSON, with the second answered from the
//!   content-addressed cache (hit counter moves, the solver does not);
//! * two *different* problems submitted concurrently both complete;
//! * `DELETE` on a running job cancels it at an outer-iteration
//!   boundary and the worker survives to take the next job;
//! * the event stream replays a finished job's history as JSONL and
//!   terminates with the `job_done` line;
//! * protocol errors (bad body, unknown path, wrong method, unknown
//!   job) map to 400/404/405 with JSON bodies naming the field;
//! * `GET /v1/metrics?format=prometheus` exposes the registry as text
//!   exposition whose counter values round-trip against the JSON view,
//!   even while jobs are in flight;
//! * a finished job's Chrome trace downloads from
//!   `GET /v1/jobs/{id}/trace`; cache-served jobs answer 409 and
//!   unknown jobs 404.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use unsnap_obs::reader::{self, JsonValue};
use unsnap_serve::{http, ServeConfig, Server};

fn start(workers: usize) -> Server {
    Server::start(&ServeConfig {
        port: 0,
        workers,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

fn post_solve(addr: SocketAddr, body: &str) -> JsonValue {
    let response = http::request(addr, "POST", "/v1/solve", Some(body)).expect("POST");
    assert_eq!(response.status, 202, "{}", response.body);
    reader::parse(&response.body).expect("receipt JSON")
}

fn job_id(receipt: &JsonValue) -> u64 {
    receipt
        .get("job_id")
        .and_then(|v| v.as_u64())
        .expect("job_id")
}

fn wait_terminal(addr: SocketAddr, id: u64) -> JsonValue {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let response =
            http::request(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("GET job");
        assert_eq!(response.status, 200);
        let doc = reader::parse(&response.body).expect("status JSON");
        let state = doc.get("status").and_then(|v| v.as_str()).expect("status");
        if matches!(state, "done" | "failed" | "cancelled") {
            return doc;
        }
        assert!(Instant::now() < deadline, "job {id} stuck in '{state}'");
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let response = http::request(addr, "GET", "/v1/metrics", None).expect("GET metrics");
    assert_eq!(response.status, 200);
    reader::parse(&response.body)
        .expect("metrics JSON")
        .get("deterministic")
        .and_then(|d| d.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

/// A problem slow enough to still be running when we cancel it: many
/// unconverging outer iterations on the tiny grid.  Keep the *inner*
/// count small — cancellation is only observed at outer-iteration
/// boundaries, so the worst-case cancel latency is one outer's worth
/// of inner sweeps and must stay well under the poll deadline even in
/// a debug build on a loaded machine.
const SLOW_BODY: &str = r#"{"problem": {"iteration": {"inner_iterations": 50, "outer_iterations": 5000, "convergence_tolerance": 0}}}"#;

#[test]
fn identical_posts_replay_bit_for_bit_from_the_cache() {
    let server = start(1);
    let addr = server.addr();

    let first = post_solve(addr, r#"{"problem": "tiny"}"#);
    assert_eq!(first.get("cache").and_then(|v| v.as_str()), Some("miss"));
    let first_status = wait_terminal(addr, job_id(&first));
    assert_eq!(
        first_status.get("status").and_then(|v| v.as_str()),
        Some("done")
    );
    let sweeps_after_first = counter(addr, "serve_sweeps_total");
    assert!(sweeps_after_first > 0, "the first solve swept");

    let second = post_solve(addr, r#"{"problem": "tiny"}"#);
    assert_eq!(second.get("cache").and_then(|v| v.as_str()), Some("hit"));
    assert_eq!(
        first.get("problem_hash").and_then(|v| v.as_str()),
        second.get("problem_hash").and_then(|v| v.as_str()),
        "same problem, same content address"
    );
    let second_status = wait_terminal(addr, job_id(&second));
    assert_eq!(
        second_status.get("cached").and_then(|v| v.as_bool()),
        Some(true)
    );

    // Bit-for-bit: compare the raw outcome text on the wire by cutting
    // the shared prefix off both bodies up to the outcome member.
    let raw = |doc: &JsonValue| -> String {
        // Re-serialising a parse would hide byte differences, so assert
        // on the parsed trees AND the wall-clock fields, which only a
        // genuine replay reproduces exactly.
        let outcome = doc.get("outcome").expect("outcome").clone();
        format!("{outcome:?}")
    };
    assert_eq!(
        raw(&first_status),
        raw(&second_status),
        "cached replay must be the identical outcome document"
    );
    assert_eq!(
        first_status
            .get("outcome")
            .and_then(|o| o.get("assemble_solve_seconds"))
            .and_then(|v| v.as_f64()),
        second_status
            .get("outcome")
            .and_then(|o| o.get("assemble_solve_seconds"))
            .and_then(|v| v.as_f64()),
        "even wall-clock fields replay verbatim from the cache"
    );

    assert_eq!(counter(addr, "serve_cache_hits"), 1);
    assert_eq!(
        counter(addr, "serve_sweeps_total"),
        sweeps_after_first,
        "a cache hit must not run the solver"
    );
    server.shutdown();
}

#[test]
fn concurrent_distinct_problems_both_complete() {
    let server = start(2);
    let addr = server.addr();

    let a = post_solve(addr, r#"{"problem": "tiny"}"#);
    let b = post_solve(addr, r#"{"problem": {"grid": {"nx": 4}}}"#);
    assert_ne!(
        a.get("problem_hash").and_then(|v| v.as_str()),
        b.get("problem_hash").and_then(|v| v.as_str()),
        "different problems, different content addresses"
    );
    for receipt in [&a, &b] {
        let status = wait_terminal(addr, job_id(receipt));
        assert_eq!(status.get("status").and_then(|v| v.as_str()), Some("done"));
        assert!(status.get("outcome").is_some_and(|o| !o.is_null()));
    }
    assert_eq!(counter(addr, "serve_jobs_completed"), 2);
    server.shutdown();
}

#[test]
fn delete_cancels_a_running_job_and_the_worker_survives() {
    let server = start(1);
    let addr = server.addr();

    let receipt = post_solve(addr, SLOW_BODY);
    let id = job_id(&receipt);
    // Wait for the single worker to pick it up.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let response =
            http::request(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("GET job");
        let doc = reader::parse(&response.body).unwrap();
        if doc.get("status").and_then(|v| v.as_str()) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }

    let response = http::request(addr, "DELETE", &format!("/v1/jobs/{id}"), None).expect("DELETE");
    assert_eq!(response.status, 200);
    let doc = reader::parse(&response.body).unwrap();
    assert_eq!(
        doc.get("disposition").and_then(|v| v.as_str()),
        Some("cancel-requested"),
        "a running job is cancelled cooperatively, not killed"
    );

    let status = wait_terminal(addr, id);
    assert_eq!(
        status.get("status").and_then(|v| v.as_str()),
        Some("cancelled")
    );
    assert!(
        status
            .get("error")
            .and_then(|v| v.as_str())
            .is_some_and(|e| e.contains("outer-iteration boundary")),
        "the error names the cooperative boundary"
    );

    // The same (sole) worker must take and finish the next job.
    let next = post_solve(addr, r#"{"problem": "tiny"}"#);
    let next_status = wait_terminal(addr, job_id(&next));
    assert_eq!(
        next_status.get("status").and_then(|v| v.as_str()),
        Some("done")
    );

    // Cancelling a terminal job is a no-op with its own disposition.
    let again =
        http::request(addr, "DELETE", &format!("/v1/jobs/{id}"), None).expect("DELETE again");
    let doc = reader::parse(&again.body).unwrap();
    assert_eq!(
        doc.get("disposition").and_then(|v| v.as_str()),
        Some("already-terminal")
    );
    server.shutdown();
}

#[test]
fn event_stream_replays_history_and_terminates() {
    let server = start(1);
    let addr = server.addr();

    let receipt = post_solve(addr, r#"{"problem": "tiny"}"#);
    let id = job_id(&receipt);
    wait_terminal(addr, id);

    // Attach after the fact: the stream replays everything, then ends.
    let response =
        http::request(addr, "GET", &format!("/v1/jobs/{id}/events"), None).expect("GET events");
    assert_eq!(response.status, 200);
    let lines: Vec<&str> = response.body.lines().collect();
    assert!(lines.len() >= 3, "expected a real event history");
    for line in &lines {
        let doc = reader::parse(line).expect("every line is a JSON event");
        assert!(doc.get("event").is_some(), "events are tagged: {line}");
    }
    let events: Vec<String> = lines
        .iter()
        .filter_map(|l| reader::parse(l).ok())
        .filter_map(|d| d.get("event").and_then(|v| v.as_str()).map(String::from))
        .collect();
    for expected in ["outer_start", "inner_iteration", "sweep"] {
        assert!(
            events.iter().any(|e| e == expected),
            "history must contain '{expected}', got {events:?}"
        );
    }
    let last = reader::parse(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("event").and_then(|v| v.as_str()), Some("job_done"));
    assert_eq!(last.get("status").and_then(|v| v.as_str()), Some("done"));
    server.shutdown();
}

#[test]
fn protocol_errors_map_to_typed_statuses() {
    let server = start(1);
    let addr = server.addr();

    // Unparsable problem: 400 naming the field.
    let response =
        http::request(addr, "POST", "/v1/solve", Some(r#"{"problem": "no-such"}"#)).expect("POST");
    assert_eq!(response.status, 400);
    let doc = reader::parse(&response.body).unwrap();
    assert_eq!(doc.get("field").and_then(|v| v.as_str()), Some("problem"));

    // Invalid configuration: builder validation, still 400.
    let response = http::request(
        addr,
        "POST",
        "/v1/solve",
        Some(r#"{"problem": {"grid": {"nx": 0}}}"#),
    )
    .expect("POST");
    assert_eq!(response.status, 400);
    let doc = reader::parse(&response.body).unwrap();
    assert_eq!(doc.get("field").and_then(|v| v.as_str()), Some("nx"));

    // Unknown wire field: rejected, not silently ignored.
    let response = http::request(
        addr,
        "POST",
        "/v1/solve",
        Some(r#"{"problem": {"grid": {"nx": 3, "bogus": 1}}}"#),
    )
    .expect("POST");
    assert_eq!(response.status, 400);

    // Unknown job and unknown path: 404.
    let response = http::request(addr, "GET", "/v1/jobs/999", None).expect("GET");
    assert_eq!(response.status, 404);
    let response = http::request(addr, "GET", "/v1/nothing", None).expect("GET");
    assert_eq!(response.status, 404);

    // Known path, wrong method: 405.
    let response = http::request(addr, "DELETE", "/v1/solve", None).expect("DELETE");
    assert_eq!(response.status, 405);
    let response = http::request(addr, "POST", "/v1/jobs/1", None).expect("POST");
    assert_eq!(response.status, 405);

    // None of that touched the solver.
    assert_eq!(counter(addr, "serve_jobs_submitted"), 0);
    server.shutdown();
}

/// Parse one Prometheus sample line (`name{labels} value` or
/// `name value`) into its metric name (labels included) and value.
fn prometheus_sample(line: &str) -> (String, f64) {
    let (name, value) = line.rsplit_once(' ').expect("sample line");
    (
        name.to_string(),
        value
            .parse()
            .unwrap_or_else(|_| panic!("bad sample: {line}")),
    )
}

#[test]
fn prometheus_exposition_round_trips_under_concurrent_jobs() {
    let server = start(2);
    let addr = server.addr();

    // Keep one worker busy so the scrape genuinely races an in-flight
    // job, and complete a second job so the latency histograms and the
    // completion counters have samples.
    let slow = post_solve(addr, SLOW_BODY);
    let done = post_solve(addr, r#"{"problem": "tiny"}"#);
    wait_terminal(addr, job_id(&done));

    let response =
        http::request(addr, "GET", "/v1/metrics?format=prometheus", None).expect("GET metrics");
    assert_eq!(response.status, 200);
    let text = response.body;

    // Well-formed exposition: every line is a comment or a parseable
    // sample, and the named families are present with TYPE headers.
    let mut samples = std::collections::BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = prometheus_sample(line);
        samples.insert(name, value);
    }
    for family in [
        "serve_queue_wait_seconds",
        "serve_time_to_first_event_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} histogram")),
            "exposition must type {family} as a histogram"
        );
        let count = samples
            .iter()
            .find(|(name, _)| name.starts_with(&format!("{family}_count")))
            .map(|(_, &v)| v)
            .unwrap_or_else(|| panic!("missing {family}_count"));
        assert!(count >= 1.0, "{family} has at least the finished job");
        let inf_bucket = samples
            .iter()
            .find(|(name, _)| {
                name.starts_with(&format!("{family}_bucket")) && name.contains("+Inf")
            })
            .map(|(_, &v)| v)
            .unwrap_or_else(|| panic!("missing {family} +Inf bucket"));
        assert_eq!(
            inf_bucket, count,
            "+Inf bucket is cumulative over all samples"
        );
    }

    // Round-trip: the counter samples agree with the JSON exposition of
    // the same registry, scraped while the slow job is still in flight.
    for name in [
        "serve_jobs_submitted",
        "serve_jobs_completed",
        "serve_sweeps_total",
    ] {
        let json_value = counter(addr, name) as f64;
        let text_value = samples
            .iter()
            .find(|(sample, _)| sample.starts_with(name))
            .map(|(_, &v)| v)
            .unwrap_or_else(|| panic!("missing counter {name}"));
        assert_eq!(
            text_value, json_value,
            "counter {name} disagrees between the two expositions"
        );
    }
    // An unknown format falls back to the JSON exposition.
    let fallback =
        http::request(addr, "GET", "/v1/metrics?format=yaml", None).expect("GET metrics");
    assert_eq!(fallback.status, 200);
    assert!(reader::parse(&fallback.body).is_ok(), "fallback is JSON");

    // Clean up the in-flight job so shutdown is prompt.
    http::request(addr, "DELETE", &format!("/v1/jobs/{}", job_id(&slow)), None).expect("DELETE");
    wait_terminal(addr, job_id(&slow));
    server.shutdown();
}

#[test]
fn finished_jobs_serve_their_chrome_trace_and_cache_hits_answer_409() {
    let server = start(1);
    let addr = server.addr();

    let first = post_solve(addr, r#"{"problem": "tiny"}"#);
    wait_terminal(addr, job_id(&first));
    let response = http::request(
        addr,
        "GET",
        &format!("/v1/jobs/{}/trace", job_id(&first)),
        None,
    )
    .expect("GET trace");
    assert_eq!(response.status, 200);
    let doc = reader::parse(&response.body).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("Chrome trace_event document");
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("solve")),
        "the trace contains the solve root span"
    );

    // The identical problem replays from the cache, which stores the
    // outcome but not a trace: the route answers 409, not a stale copy.
    let second = post_solve(addr, r#"{"problem": "tiny"}"#);
    assert_eq!(second.get("cache").and_then(|v| v.as_str()), Some("hit"));
    wait_terminal(addr, job_id(&second));
    let cached = http::request(
        addr,
        "GET",
        &format!("/v1/jobs/{}/trace", job_id(&second)),
        None,
    )
    .expect("GET trace");
    assert_eq!(cached.status, 409);
    let doc = reader::parse(&cached.body).expect("error JSON");
    assert!(
        doc.get("error")
            .and_then(|v| v.as_str())
            .is_some_and(|e| e.contains("cache")),
        "the 409 names the cache as the reason"
    );

    // Unknown job: 404, same as the other job routes.
    let missing = http::request(addr, "GET", "/v1/jobs/999/trace", None).expect("GET trace");
    assert_eq!(missing.status, 404);
    server.shutdown();
}
