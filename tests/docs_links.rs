//! Markdown link check over README/ROADMAP/docs: every relative link in
//! the repository's documentation must point at a file or directory
//! that exists, so the architecture doc (and everything it references)
//! cannot rot silently.  CI runs this as part of the test suite and as
//! an explicit docs-job step.

use std::path::{Path, PathBuf};

/// The documentation files under the link check.
fn documented_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md"), root.join("ROADMAP.md")];
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
            .expect("docs/ must be readable")
            .map(|e| e.expect("docs/ entry").path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "md"))
            .collect();
        entries.sort();
        files.extend(entries);
    }
    files
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract every inline markdown link target: the `target` of
/// `[text](target)`, ignoring code spans is overkill for these files —
/// a false positive here means a confusing doc, which is worth flagging
/// anyway.
fn link_targets(markdown: &str) -> Vec<String> {
    let bytes = markdown.as_bytes();
    let mut targets = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(len) = markdown[start..].find(')') {
                targets.push(markdown[start..start + len].to_string());
                i = start + len;
                continue;
            }
        }
        i += 1;
    }
    targets
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn relative_documentation_links_resolve() {
    let mut broken = Vec::new();
    for file in documented_files() {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", file.display()));
        let dir = file.parent().unwrap_or_else(|| Path::new("."));
        for target in link_targets(&text) {
            if is_external(&target) || target.is_empty() {
                continue;
            }
            // Drop an in-file anchor suffix; the file itself must exist.
            let path_part = target.split('#').next().unwrap_or(&target);
            if path_part.is_empty() {
                continue;
            }
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                broken.push(format!("{} -> {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken relative links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn architecture_doc_exists_and_is_linked_from_readme() {
    let root = repo_root();
    assert!(
        root.join("docs/ARCHITECTURE.md").is_file(),
        "docs/ARCHITECTURE.md must exist"
    );
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    assert!(
        readme.contains("docs/ARCHITECTURE.md"),
        "README must link the architecture doc"
    );
}

#[test]
fn reproduction_matrix_names_every_bench_binary() {
    // The README's "Reproducing the paper" matrix must reference each
    // bench binary that exists, so the table cannot silently drift from
    // the harness.  Only the matrix section counts — a mention elsewhere
    // in the README must not satisfy the check.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let start = readme
        .find("## Reproducing the paper")
        .expect("README must keep the 'Reproducing the paper' section");
    let section = &readme[start..];
    let section = match section[2..].find("\n## ") {
        Some(end) => &section[..end + 2],
        None => section,
    };
    let bins = std::fs::read_dir(root.join("crates/bench/src/bin")).expect("bench bins");
    for entry in bins {
        let path = entry.expect("bin entry").path();
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("bin name")
            .to_string();
        assert!(
            section.contains(&name),
            "README reproduction matrix is missing bench bin `{name}`"
        );
    }
}
