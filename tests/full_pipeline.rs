//! Workspace-wide integration tests: mesh → schedule → assemble/solve →
//! iterate, across element orders, concurrency schemes, solver back ends
//! and global schedules.

use unsnap::prelude::*;

/// A small base problem reused across the integration tests.
fn small_problem() -> Problem {
    let mut p = Problem::tiny();
    p.nx = 4;
    p.ny = 4;
    p.nz = 4;
    p.num_groups = 2;
    p.angles_per_octant = 2;
    p.inner_iterations = 3;
    p.outer_iterations = 1;
    p
}

#[test]
fn pipeline_runs_for_every_element_order_up_to_cubic() {
    for order in 1..=3 {
        let mut p = small_problem();
        p.element_order = order;
        // Keep the cubic case small.
        if order == 3 {
            p.nx = 3;
            p.ny = 3;
            p.nz = 3;
        }
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        assert!(
            outcome.scalar_flux_total > 0.0,
            "order {order} produced no flux"
        );
        assert_eq!(
            outcome.kernel_invocations,
            (p.num_cells() * p.num_groups * p.num_angles() * p.inner_iterations) as u64
        );
    }
}

#[test]
fn loop_order_and_threading_do_not_change_the_answer() {
    let base = small_problem().with_threads(2);
    let mut totals = Vec::new();
    for scheme in ConcurrencyScheme::figure_schemes() {
        let p = base.clone().with_scheme(scheme);
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        totals.push(outcome.scalar_flux_total);
    }
    for pair in totals.windows(2) {
        let rel = (pair[0] - pair[1]).abs() / pair[0];
        assert!(rel < 1e-12, "schemes disagree: {totals:?}");
    }
}

#[test]
fn solver_backends_agree_on_a_multi_group_problem() {
    let mut totals = Vec::new();
    for kind in [
        SolverKind::GaussianElimination,
        SolverKind::ReferenceLu,
        SolverKind::Mkl,
    ] {
        let p = small_problem().with_solver(kind);
        let mut solver = TransportSolver::new(&p).unwrap();
        totals.push(solver.run().unwrap().scalar_flux_total);
    }
    for pair in totals.windows(2) {
        let rel = (pair[0] - pair[1]).abs() / pair[0];
        assert!(rel < 1e-9, "backends disagree: {totals:?}");
    }
}

#[test]
fn twisted_and_untwisted_meshes_give_close_but_not_identical_results() {
    let mut straight = small_problem();
    straight.twist = 0.0;
    let mut twisted = small_problem();
    twisted.twist = 0.001;

    let a = TransportSolver::new(&straight)
        .unwrap()
        .run()
        .unwrap()
        .scalar_flux_total;
    let b = TransportSolver::new(&twisted)
        .unwrap()
        .run()
        .unwrap()
        .scalar_flux_total;
    let rel = (a - b).abs() / a;
    // The 0.001 rad twist perturbs the geometry slightly...
    assert!(rel < 1e-2, "twist changed the answer too much: {rel}");
    // ...but it genuinely changes the mesh, so results differ.
    assert!(rel > 0.0, "twist had no effect at all");
}

#[test]
fn block_jacobi_and_full_sweep_converge_to_the_same_flux() {
    let mut p = small_problem();
    p.num_groups = 1;
    p.inner_iterations = 60;
    p.convergence_tolerance = 1e-9;

    let full = TransportSolver::new(&p)
        .unwrap()
        .run()
        .unwrap()
        .scalar_flux_total;
    let jacobi = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 2))
        .unwrap()
        .run()
        .unwrap()
        .scalar_flux_total;
    let rel = (full - jacobi).abs() / full;
    assert!(rel < 1e-6, "full sweep {full} vs block Jacobi {jacobi}");
}

#[test]
fn fd_baseline_and_fem_agree_on_converged_mean_flux() {
    let mut p = small_problem();
    p.num_groups = 1;
    p.inner_iterations = 60;
    p.convergence_tolerance = 1e-9;
    p.twist = 0.0;

    let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
    let fd_out = fd.run().unwrap();
    let fd_mean = fd_out.scalar_flux_total / p.num_cells() as f64;

    let mut fem = TransportSolver::new(&p).unwrap();
    let fem_out = fem.run().unwrap();
    let fem_mean = fem_out.scalar_flux_total / (p.num_cells() * p.nodes_per_element()) as f64;

    let rel = (fd_mean - fem_mean).abs() / fem_mean;
    assert!(rel < 0.05, "FD {fd_mean} vs FEM {fem_mean} (rel {rel})");
}

#[test]
fn schedules_cover_every_cell_for_every_angle_of_the_real_quadrature() {
    let p = small_problem();
    let mesh = p.build_mesh();
    let quadrature = AngularQuadrature::product(p.angles_per_octant);
    for d in quadrature.directions() {
        let schedule = SweepSchedule::build(&mesh, d.omega).unwrap();
        assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        // The bucket count never exceeds the number of cells, and the
        // first bucket is never empty.
        assert!(schedule.num_buckets() <= mesh.num_cells());
        assert!(!schedule.buckets[0].is_empty());
    }
}

#[test]
fn mesh_memory_estimates_match_layout_sizes() {
    let p = small_problem();
    let layout = FluxLayout::angular(
        p.nodes_per_element(),
        p.num_cells(),
        p.num_groups,
        p.num_angles(),
        LoopOrder::ElementThenGroup,
    );
    assert_eq!(layout.len(), p.angular_flux_unknowns());
    assert_eq!(layout.footprint_bytes(), p.angular_flux_bytes());
}

#[test]
fn coarse_high_order_solution_agrees_with_refined_linear_solution() {
    // §II-C: for a given accuracy the FEM allows coarser grids.  Check the
    // directly testable form of that claim: the volume-integrated scalar
    // flux of a *coarse cubic* solution agrees with a *refined linear*
    // reference to within a few percent, even though the coarse mesh has
    // 27x fewer cells.
    let mut coarse_cubic = small_problem();
    coarse_cubic.nx = 2;
    coarse_cubic.ny = 2;
    coarse_cubic.nz = 2;
    coarse_cubic.element_order = 3;
    coarse_cubic.num_groups = 1;
    coarse_cubic.inner_iterations = 50;
    coarse_cubic.convergence_tolerance = 1e-9;
    coarse_cubic.twist = 0.0;

    let mut fine_linear = coarse_cubic.clone();
    fine_linear.element_order = 1;
    fine_linear.nx = 6;
    fine_linear.ny = 6;
    fine_linear.nz = 6;

    // Volume-integrated scalar flux: Σ_elements Σ_ij M_ij φ_j.
    let integrated = |p: &Problem| {
        let mut s = TransportSolver::new(p).unwrap();
        s.run().unwrap();
        let mesh = p.build_mesh();
        let element = ReferenceElement::new(p.element_order);
        let mut total = 0.0;
        for cell in 0..mesh.num_cells() {
            let hex = HexVertices {
                corners: *mesh.cell_corners(cell),
            };
            let ints = ElementIntegrals::compute(&element, &hex);
            let phi = s.scalar_flux().nodes(cell, 0, 0);
            let n = ints.nodes_per_element();
            for i in 0..n {
                let row = ints.mass.row(i);
                for (j, &m) in row.iter().enumerate() {
                    total += m * phi[j];
                }
            }
        }
        total
    };

    let reference = integrated(&fine_linear);
    let cubic = integrated(&coarse_cubic);
    let rel = (cubic - reference).abs() / reference;
    assert!(
        rel < 0.05,
        "coarse cubic {cubic} vs refined linear {reference} differ by {rel:.3}"
    );
}
