//! Acceptance tests for the DSA subsystem (`unsnap-accel` + the
//! `DSA-SI` strategy and the DSA-preconditioned GMRES path).
//!
//! Pinned here:
//!
//! * the ISSUE 5 acceptance criterion — on the quickstart problem
//!   scaled into the diffusive regime at c = 0.99, `DsaSourceIteration`
//!   converges to the same tolerance with **≥ 4×** fewer transport
//!   sweeps than `SourceIteration` (the same scenario `ablation_dsa`
//!   reports);
//! * the spectral property: DSA-SI never needs more sweeps than SI for
//!   any scattering ratio c ≥ 0.5;
//! * a property test: DSA-SI converges to the plain-SI flux (within the
//!   iterate-change stopping-criterion bound) on random small problems;
//! * observer/outcome consistency: the streamed DSA CG residuals equal
//!   the outcome's `accel_residual_history` entry for entry.

use proptest::prelude::*;

use unsnap::prelude::*;

/// The quickstart phase space on a diffusive domain: 6³ cells over
/// 12 mean free paths, one energy group, scattering ratio `c`.  This is
/// the regime the DSA story is about — source iteration contracts at
/// `≈ c` per sweep and crawls as `c → 1`.
fn diffusive_quickstart(c: f64) -> Problem {
    let mut p = Problem::quickstart();
    p.num_groups = 1;
    p.lx = 12.0;
    p.ly = 12.0;
    p.lz = 12.0;
    p.scattering_ratio = Some(c);
    p.inner_iterations = 4000;
    p.outer_iterations = 1;
    p.convergence_tolerance = 1e-6;
    p
}

fn run(p: &Problem) -> SolveOutcome {
    let mut solver = TransportSolver::new(p).unwrap();
    solver.run().unwrap()
}

#[test]
fn acceptance_dsa_si_needs_four_times_fewer_sweeps_at_c_099() {
    let p = diffusive_quickstart(0.99);
    let si = run(&p.clone().with_strategy(StrategyKind::SourceIteration));
    let dsa = run(&p.clone().with_strategy(StrategyKind::DsaSourceIteration));

    assert!(si.converged, "SI must converge within the budget");
    assert!(dsa.converged, "DSA-SI must converge within the budget");
    assert!(
        dsa.sweep_count * 4 <= si.sweep_count,
        "acceptance: DSA-SI took {} sweeps, SI took {} — less than 4x",
        dsa.sweep_count,
        si.sweep_count
    );
    // The low-order work actually ran, and is accounted separately from
    // the sweeps.
    assert!(dsa.accel_cg_iterations > 0);
    assert_eq!(dsa.sweep_count, dsa.inner_iterations);

    // Same fixed point: SI stops on the iterate *change*, so its true
    // error can be tol / (1 − c) — the agreement bound carries that
    // factor.
    let bound = 1e-6 / (1.0 - 0.99) * si.scalar_flux_total.abs();
    assert!(
        (si.scalar_flux_total - dsa.scalar_flux_total).abs() < bound,
        "SI {} vs DSA-SI {}",
        si.scalar_flux_total,
        dsa.scalar_flux_total
    );
}

#[test]
fn dsa_si_never_needs_more_sweeps_than_si_for_c_at_least_half() {
    // The spectral claim behind the subsystem: the DSA iteration's
    // spectral radius is below SI's whenever scattering dominates.
    // Sweep counts are the observable (each DSA-SI inner is exactly one
    // sweep, like SI).
    for c in [0.5, 0.7, 0.9, 0.99] {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.nx = 4;
        p.ny = 4;
        p.nz = 4;
        p.lx = 8.0;
        p.ly = 8.0;
        p.lz = 8.0;
        p.scattering_ratio = Some(c);
        p.convergence_tolerance = 1e-8;
        p.inner_iterations = 2000;
        p.outer_iterations = 1;

        let si = run(&p.clone().with_strategy(StrategyKind::SourceIteration));
        let dsa = run(&p.clone().with_strategy(StrategyKind::DsaSourceIteration));
        assert!(si.converged && dsa.converged, "c = {c}");
        assert!(
            dsa.sweep_count <= si.sweep_count,
            "c = {c}: DSA-SI took {} sweeps, SI took {}",
            dsa.sweep_count,
            si.sweep_count
        );
    }
}

#[test]
fn streamed_dsa_residuals_match_the_outcome_history() {
    let p = diffusive_quickstart(0.9).with_strategy(StrategyKind::DsaSourceIteration);
    let mut session = Session::new(&p).unwrap();
    let mut recorder = RecordingObserver::default();
    let outcome = session.run_observed(&mut recorder).unwrap();
    assert!(outcome.converged);
    assert!(!outcome.accel_residual_history.is_empty());
    assert_eq!(
        recorder.accel_residual_history, outcome.accel_residual_history,
        "streamed DSA residuals must reconstruct the outcome history"
    );
    assert_eq!(recorder.convergence_history, outcome.convergence_history);
    assert_eq!(recorder.sweep_count, outcome.sweep_count);
}

#[test]
fn dsa_preconditioned_gmres_reaches_the_gmres_fixed_point() {
    let p = diffusive_quickstart(0.99).with_strategy(StrategyKind::SweepGmres);
    let plain = run(&p);
    let accel = run(&p.clone().with_accelerator(AcceleratorKind::Dsa));
    assert!(plain.converged && accel.converged);
    assert!(accel.accel_cg_iterations > 0);
    assert!(
        accel.krylov_iterations < plain.krylov_iterations,
        "DSA preconditioning must shrink the Krylov space in the diffusive regime \
         ({} vs {})",
        accel.krylov_iterations,
        plain.krylov_iterations
    );
    let rel =
        (plain.scalar_flux_total - accel.scalar_flux_total).abs() / plain.scalar_flux_total.abs();
    assert!(rel < 1e-5, "fixed points differ by {rel:.3e}");
}

/// Random small scenario: mesh shape, domain extent, groups and a
/// scattering ratio in [0.5, 0.98].
type Scenario = ((usize, usize, usize), (f64, usize, f64));

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (2usize..=4, 2usize..=4, 1usize..=3),
        (1.0f64..10.0, 1usize..=2, 0.5f64..0.98),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dsa_si_flux_matches_plain_si_on_random_small_problems(
        ((nx, ny, nz), (extent, groups, c)) in scenario()
    ) {
        let mut p = Problem::tiny();
        p.nx = nx;
        p.ny = ny;
        p.nz = nz;
        p.lx = extent;
        p.ly = extent;
        p.lz = extent * nz as f64 / nx as f64;
        p.num_groups = groups;
        p.scattering_ratio = Some(c);
        p.convergence_tolerance = 1e-8;
        p.inner_iterations = 3000;
        p.outer_iterations = 1;

        let si = run(&p.clone().with_strategy(StrategyKind::SourceIteration));
        let dsa = run(&p.clone().with_strategy(StrategyKind::DsaSourceIteration));
        prop_assert!(si.converged, "SI unconverged on {nx}x{ny}x{nz} c={c}");
        prop_assert!(dsa.converged, "DSA-SI unconverged on {nx}x{ny}x{nz} c={c}");
        // Both stop on the iterate change; the true errors are bounded
        // by tol / (1 − c) each.
        let bound = 4.0 * 1e-8 / (1.0 - c) * si.scalar_flux_total.abs();
        prop_assert!(
            (si.scalar_flux_total - dsa.scalar_flux_total).abs() < bound,
            "flux mismatch on {nx}x{ny}x{nz} extent {extent:.2} c {c:.3}: \
             SI {} vs DSA-SI {}",
            si.scalar_flux_total,
            dsa.scalar_flux_total
        );
        prop_assert!(
            dsa.sweep_count <= si.sweep_count + 2,
            "DSA-SI slower on {nx}x{ny}x{nz} c={c}: {} vs {}",
            dsa.sweep_count,
            si.sweep_count
        );
    }
}
