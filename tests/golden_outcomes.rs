//! Golden-outcome regression fixtures: every preset in the
//! [`Problem::from_name`] registry, under every iteration strategy, is
//! pinned to a committed canonical outcome under `tests/golden/`.
//!
//! Each fixture is the [`SolveOutcome::to_json`] dump with the
//! wall-clock fields zeroed (the `tests/parallel_determinism.rs`
//! normalisation), so the comparison is **bit for bit** on every
//! deterministic field: iteration counts, residual histories,
//! convergence histories, kernel invocation counts, and the scalar-flux
//! aggregates in shortest-round-trip form.  Any change to the physics,
//! the iteration strategies, the kernel engine or the telemetry
//! contract shows up here as a diff against a committed file — reviewed
//! deliberately, never drifted into.
//!
//! The published `-full` problem sizes (and the bigger iteration
//! budgets) are shrunk deterministically before running: the fixture
//! pins the physics of each preset's *configuration knobs* — material,
//! source, twist, solver back end, strategy, scheme — not the published
//! scale, which would take hours under the full catalogue.  The shrink
//! is part of the fixture definition and applied identically on both
//! the regeneration and the verification side.
//!
//! To regenerate after an intentional physics change:
//!
//! ```text
//! UNSNAP_REGEN_GOLDEN=1 cargo test --test golden_outcomes
//! git diff tests/golden/   # review every changed field deliberately
//! ```
//!
//! Because the execution model is bit-for-bit thread-count invariant,
//! these fixtures must also hold under the CI `RAYON_NUM_THREADS`
//! matrix at widths 1, 2 and 8 — the suite doubles as a determinism
//! gate against a *committed* reference rather than a same-process
//! rerun.

use std::path::PathBuf;

use unsnap::prelude::*;

const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::SourceIteration,
    StrategyKind::DsaSourceIteration,
    StrategyKind::SweepGmres,
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn fixture_name(problem: &str, strategy: StrategyKind) -> String {
    format!("{problem}__{}.json", strategy.label().to_ascii_lowercase())
}

/// The deterministic shrink: cap the scale knobs so the whole catalogue
/// runs in seconds while every *identity* knob of the preset (material,
/// source, twist, boundaries, solver back end, scheme, tolerances)
/// survives untouched.  One worker keeps the fixture independent of
/// the host's core count; the thread-invariance suite guarantees the
/// values would be identical at any width anyway.
fn fixture_problem(name: &str, strategy: StrategyKind) -> Problem {
    let mut p = Problem::from_name(name)
        .unwrap_or_else(|e| panic!("registry name {name} failed to resolve: {e}"))
        .with_strategy(strategy);
    p.nx = p.nx.min(4);
    p.ny = p.ny.min(4);
    p.nz = p.nz.min(4);
    p.angles_per_octant = p.angles_per_octant.min(2);
    p.num_groups = p.num_groups.min(2);
    p.element_order = p.element_order.min(2);
    p.inner_iterations = p.inner_iterations.min(4);
    p.outer_iterations = p.outer_iterations.min(2);
    p.num_threads = Some(1);
    p
}

/// The outcome dump with wall-clock timing zeroed — every byte left is
/// deterministic, so string equality *is* bit-for-bit field equality
/// (floats are written in shortest-round-trip form).
fn canonical_json(outcome: &SolveOutcome) -> String {
    let mut o = outcome.clone();
    o.assemble_solve_seconds = 0.0;
    o.kernel_assemble_seconds = 0.0;
    o.kernel_solve_seconds = 0.0;
    o.metrics.zero_wallclock();
    o.to_json()
}

fn regen() -> bool {
    std::env::var("UNSNAP_REGEN_GOLDEN").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

#[test]
fn every_registry_preset_matches_its_golden_outcome_under_every_strategy() {
    let dir = golden_dir();
    if regen() {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for &name in Problem::registry_names() {
        for strategy in STRATEGIES {
            let problem = fixture_problem(name, strategy);
            let outcome = TransportSolver::new(&problem)
                .and_then(|mut s| s.run())
                .unwrap_or_else(|e| panic!("{name}/{strategy}: solve failed: {e}"));
            let actual = canonical_json(&outcome);
            let path = dir.join(fixture_name(name, strategy));
            if regen() {
                std::fs::write(&path, format!("{actual}\n")).unwrap();
                continue;
            }
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: cannot read golden fixture ({e}); regenerate with \
                     UNSNAP_REGEN_GOLDEN=1 cargo test --test golden_outcomes",
                    path.display()
                )
            });
            if actual != expected.trim_end() {
                failures.push(format!(
                    "{name}/{strategy}: outcome drifted from {}\n  expected: {}\n  actual:   {actual}",
                    path.display(),
                    expected.trim_end(),
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} fixture(s) drifted — if the physics change is intentional, regenerate with \
         UNSNAP_REGEN_GOLDEN=1 and review the diff:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn the_golden_directory_holds_exactly_the_catalogue() {
    // A stray or missing fixture is a silent coverage hole: a renamed
    // preset would otherwise leave its stale golden behind (and never
    // be compared again).
    if regen() {
        return; // the regenerating run may be mid-edit; only verify in normal runs
    }
    let mut expected: Vec<String> = Problem::registry_names()
        .iter()
        .flat_map(|name| STRATEGIES.map(|s| fixture_name(name, s)))
        .collect();
    expected.sort();
    let mut actual: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden/ must exist (regenerate with UNSNAP_REGEN_GOLDEN=1)")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    actual.sort();
    assert_eq!(
        actual, expected,
        "tests/golden/ must hold exactly one fixture per registry preset × strategy"
    );
}
