//! Workspace-wide property-based tests.
//!
//! These exercise cross-crate invariants with randomised inputs:
//!
//! * sweep schedules are valid topological orders of the per-angle
//!   dependency graph for arbitrary directions, mesh shapes and twists;
//! * the KBA decomposition partitions any mesh completely and disjointly
//!   with symmetric halo faces;
//! * flux-storage layouts are bijective index maps and agree across
//!   orderings;
//! * the DG kernel reproduces constant solutions for random cross
//!   sections, directions and (twisted) cell geometries.

use proptest::prelude::*;

use unsnap::prelude::*;
use unsnap_core::kernel::{assemble_solve, KernelScratch, UpwindFace, UpwindSource};
use unsnap_fem::face::FACES;
use unsnap_sweep::graph::DependencyGraph;

/// Strategy: a unit direction with no vanishing component.
fn direction() -> impl Strategy<Value = [f64; 3]> {
    (
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
    )
        .prop_map(|(x, y, z)| {
            let n = (x * x + y * y + z * z).sqrt();
            [x / n, y / n, z / n]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedules_are_topological_orders(
        omega in direction(),
        nx in 1usize..5,
        ny in 1usize..5,
        nz in 1usize..5,
        twist in 0.0f64..0.002,
    ) {
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            twist,
        );
        let graph = DependencyGraph::build(&mesh, omega);
        let schedule = SweepSchedule::build(&mesh, omega).unwrap();
        prop_assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        prop_assert_eq!(schedule.validate_against(&graph), 0);
        // Wavefront count is bounded by the longest possible chain.
        prop_assert!(schedule.num_buckets() <= nx + ny + nz - 2 || mesh.num_cells() == 1);
    }

    #[test]
    fn decomposition_partitions_any_mesh(
        nx in 2usize..7,
        ny in 2usize..7,
        nz in 1usize..4,
        px in 1usize..3,
        py in 1usize..3,
    ) {
        prop_assume!(px <= nx && py <= ny);
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            0.001,
        );
        let subdomains = Decomposition2D::new(px, py).decompose(&mesh);
        let mut owner = vec![None; mesh.num_cells()];
        for sd in &subdomains {
            for &cell in &sd.global_cells {
                prop_assert!(owner[cell].is_none(), "cell owned twice");
                owner[cell] = Some(sd.rank);
            }
        }
        prop_assert!(owner.iter().all(|o| o.is_some()));
        // Halo symmetry: every halo face has a mirror on the other rank.
        for sd in &subdomains {
            for h in &sd.halo_faces {
                let other = &subdomains[h.neighbor_rank];
                let mirrored = other.halo_faces.iter().any(|g| {
                    g.global_cell == h.neighbor_global_cell
                        && g.neighbor_global_cell == h.global_cell
                });
                prop_assert!(mirrored);
            }
        }
    }

    #[test]
    fn flux_layouts_are_bijective_and_consistent(
        nodes in 1usize..28,
        elements in 1usize..20,
        groups in 1usize..10,
        angles in 1usize..6,
    ) {
        for order in [LoopOrder::ElementThenGroup, LoopOrder::GroupThenElement] {
            let layout = FluxLayout::angular(nodes, elements, groups, angles, order);
            prop_assert_eq!(layout.len(), nodes * elements * groups * angles);
            // Spot-check bijectivity on the extremes.
            let first = layout.index(0, 0, 0, 0);
            let last = layout.index(
                nodes - 1,
                elements - 1,
                groups - 1,
                angles - 1,
            );
            prop_assert_eq!(first, 0);
            prop_assert_eq!(last, layout.len() - 1);
            // Strides are consistent with the definition.
            prop_assert_eq!(
                layout.index(0, 0, 0, 0) + layout.element_stride(),
                layout.index(0, 1.min(elements - 1), 0, 0).max(layout.element_stride())
            );
        }
    }

    #[test]
    fn kernel_reproduces_constant_solutions(
        omega in direction(),
        sigma_t in 0.5f64..5.0,
        value in 0.1f64..10.0,
        twist in 0.0f64..0.3,
    ) {
        let element = ReferenceElement::new(1);
        // A twisted unit cell.
        let mut hex = HexVertices::unit_cube();
        let (s, c) = twist.sin_cos();
        for corner in hex.corners.iter_mut().skip(4) {
            let x = corner[0] - 0.5;
            let y = corner[1] - 0.5;
            corner[0] = 0.5 + c * x - s * y;
            corner[1] = 0.5 + s * x + c * y;
        }
        let ints = ElementIntegrals::compute(&element, &hex);
        let n = ints.nodes_per_element();
        let source = vec![sigma_t * value; n];
        let upwind: Vec<UpwindFace<'_>> = FACES
            .iter()
            .filter(|f| ints.face(**f).direction_dot_normal(omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(value),
            })
            .collect();
        let mut scratch = KernelScratch::new(n);
        let solver = SolverKind::GaussianElimination.build();
        assemble_solve(
            &ints,
            omega,
            sigma_t,
            &source,
            &upwind,
            solver.as_ref(),
            false,
            &mut scratch,
        );
        for &psi in &scratch.rhs {
            prop_assert!((psi - value).abs() < 1e-8 * value.max(1.0));
        }
    }

    #[test]
    fn quadrature_weights_always_normalised(n in 1usize..40) {
        let q = AngularQuadrature::product(n);
        prop_assert!((q.directions().iter().map(|d| d.weight).sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert_eq!(q.num_angles(), 8 * n);
    }
}

/// A random paper preset, as (builder shorthand, direct constructor).
fn preset_pair(index: usize, order: usize) -> (ProblemBuilder, Problem) {
    match index {
        0 => (ProblemBuilder::tiny(), Problem::tiny()),
        1 => (ProblemBuilder::quickstart(), Problem::quickstart()),
        2 => (ProblemBuilder::figure3_full(), Problem::figure3_full()),
        3 => (ProblemBuilder::figure3_scaled(), Problem::figure3_scaled()),
        4 => (ProblemBuilder::figure4_full(), Problem::figure4_full()),
        5 => (ProblemBuilder::figure4_scaled(), Problem::figure4_scaled()),
        6 => (
            ProblemBuilder::table2_full(order, SolverKind::Mkl),
            Problem::table2_full(order, SolverKind::Mkl),
        ),
        _ => (
            ProblemBuilder::table2_scaled(order, SolverKind::GaussianElimination),
            Problem::table2_scaled(order, SolverKind::GaussianElimination),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_presets_round_trip_every_preset(index in 0usize..8, order in 1usize..5) {
        let (builder, problem) = preset_pair(index, order);
        let built = builder.build();
        prop_assert!(built.is_ok(), "{:?}", built.err());
        prop_assert_eq!(built.unwrap(), problem);
    }

    #[test]
    fn builder_rejects_empty_mesh_axes(index in 0usize..8, axis in 0usize..3) {
        let (builder, _) = preset_pair(index, 1);
        let mut builder = builder;
        let expected = match axis {
            0 => {
                builder.grid.nx = 0;
                "nx"
            }
            1 => {
                builder.grid.ny = 0;
                "ny"
            }
            _ => {
                builder.grid.nz = 0;
                "nz"
            }
        };
        let err = builder.build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some(expected));
    }

    #[test]
    fn builder_rejects_nonpositive_extents(extent in -8.0f64..0.0, axis in 0usize..3) {
        let mut builder = ProblemBuilder::tiny();
        let expected = match axis {
            0 => {
                builder.grid.lx = extent;
                "lx"
            }
            1 => {
                builder.grid.ly = extent;
                "ly"
            }
            _ => {
                builder.grid.lz = extent;
                "lz"
            }
        };
        let err = builder.build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some(expected));
        // The boundary itself (a zero extent) is rejected too.
        let err = ProblemBuilder::tiny().extents(0.0, 1.0, 1.0).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("lx"));
    }

    #[test]
    fn builder_rejects_zero_discretisation_knobs(index in 0usize..8, knob in 0usize..5) {
        let (builder, _) = preset_pair(index, 2);
        let mut builder = builder;
        let expected = match knob {
            0 => { builder.physics.element_order = 0; "element_order" }
            1 => { builder.physics.angles_per_octant = 0; "angles_per_octant" }
            2 => { builder.physics.num_groups = 0; "num_groups" }
            3 => { builder.iteration.inner_iterations = 0; "inner_iterations" }
            _ => { builder.iteration.gmres_restart = 0; "gmres_restart" }
        };
        let err = builder.build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some(expected));
    }

    #[test]
    fn builder_rejects_out_of_range_scattering_ratio(
        c in prop_oneof![-4.0f64..0.0, 1.0001f64..5.0],
    ) {
        let err = ProblemBuilder::tiny().scattering_ratio(c).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("scattering_ratio"));
        // The open lower boundary: exactly zero scattering is rejected.
        let err = ProblemBuilder::tiny().scattering_ratio(0.0).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("scattering_ratio"));
    }

    #[test]
    fn builder_accepts_in_range_scattering_ratio(c in 0.0001f64..1.0) {
        let built = ProblemBuilder::tiny().scattering_ratio(c).build();
        prop_assert!(built.is_ok());
        prop_assert_eq!(built.unwrap().scattering_ratio, Some(c));
    }

    #[test]
    fn builder_rejects_out_of_range_upscatter(
        u in prop_oneof![-4.0f64..0.0, 1.0001f64..5.0],
    ) {
        let err = ProblemBuilder::tiny()
            .scattering_ratio(0.9)
            .upscatter(u)
            .build()
            .unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("upscatter_ratio"));
        // Both boundaries are open: u = 0 is "just omit it", u = 1
        // would zero the within-group diagonal entirely.
        for boundary in [0.0, 1.0] {
            let err = ProblemBuilder::tiny()
                .scattering_ratio(0.9)
                .upscatter(boundary)
                .build()
                .unwrap_err();
            prop_assert_eq!(err.invalid_field(), Some("upscatter_ratio"));
        }
    }

    #[test]
    fn builder_accepts_in_range_upscatter_and_round_trips(
        c in 0.1f64..1.0,
        u in 0.001f64..0.999,
    ) {
        // Upscatter without a scattering ratio to split is dangling.
        let err = ProblemBuilder::tiny().upscatter(u).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("upscatter_ratio"));

        let problem = ProblemBuilder::tiny()
            .scattering_ratio(c)
            .upscatter(u)
            .build()
            .unwrap();
        prop_assert_eq!(problem.upscatter_ratio, Some(u));
        // Builder → Problem → builder is still the identity.
        prop_assert_eq!(
            ProblemBuilder::from_problem(&problem).build().unwrap(),
            problem
        );
    }

    #[test]
    fn upscatter_matrix_preserves_the_ratio_and_couples_every_group(
        groups in 2usize..7,
        c in 0.1f64..1.0,
        u in 0.001f64..0.999,
    ) {
        let xs = CrossSections::with_upscatter(groups, 1, c, u);
        for g in 0..groups {
            // Row sum is exactly the prescribed scattering ratio.
            prop_assert!((xs.scattering_ratio(0, g) - c).abs() < 1e-12);
            // Every group couples to every other group — including
            // genuinely *up* in energy (g_to < g_from) — so no group
            // ordering makes the matrix triangular.
            for gt in 0..groups {
                if gt != g {
                    prop_assert!(xs.scatter(0, g, gt) > 0.0, "{g}->{gt} vanished");
                }
            }
        }
    }

    #[test]
    fn builder_rejects_negative_twist(twist in -2.0f64..-1e-9) {
        let err = ProblemBuilder::tiny().twist(twist).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("twist"));
    }

    #[test]
    fn builder_rejects_bad_tolerance(tolerance in -10.0f64..-1e-12) {
        let err = ProblemBuilder::tiny().tolerance(tolerance).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("convergence_tolerance"));
    }

    #[test]
    fn builder_rejects_zero_threads(index in 0usize..8) {
        let (builder, _) = preset_pair(index, 3);
        let err = builder.threads(0).build().unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("num_threads"));
    }

    #[test]
    fn builder_rejects_oversubscribed_angle_threading(
        angles in 1usize..6,
        extra in 1usize..8,
    ) {
        let scheme: ConcurrencyScheme = "angle*/element/group".parse().unwrap();
        let err = ProblemBuilder::tiny()
            .phase_space(angles, 1)
            .scheme(scheme)
            .threads(angles + extra)
            .build()
            .unwrap_err();
        prop_assert_eq!(err.invalid_field(), Some("num_threads"));
        // The same thread count on a non-angle-threaded scheme is fine.
        prop_assert!(ProblemBuilder::tiny()
            .phase_space(angles, 1)
            .threads(angles + extra)
            .build()
            .is_ok());
    }

    #[test]
    fn random_valid_builders_produce_consistent_problems(
        n in 1usize..5,
        order in 1usize..4,
        angles in 1usize..4,
        groups in 1usize..4,
        inners in 1usize..6,
        outers in 1usize..3,
    ) {
        let problem = ProblemBuilder::tiny()
            .mesh(n)
            .order(order)
            .phase_space(angles, groups)
            .iterations(inners, outers)
            .build()
            .unwrap();
        prop_assert_eq!(problem.num_cells(), n * n * n);
        prop_assert_eq!(problem.nodes_per_element(), (order + 1).pow(3));
        prop_assert_eq!(problem.num_angles(), 8 * angles);
        prop_assert!(problem.validate().is_ok());
        // Builder → Problem → builder is the identity.
        prop_assert_eq!(
            ProblemBuilder::from_problem(&problem).build().unwrap(),
            problem
        );
    }
}

/// Outer convergence with genuine upscatter.  With a deliberately small
/// inner budget the pointwise convergence check spans outer boundaries,
/// so the converged flag reflects the *whole* iteration.  Pure
/// within-group scattering contracts at `c` per sweep regardless of the
/// outer structure; upscatter splits the same row sum across groups, and
/// the cross-group part is only refreshed once per outer (Jacobi over
/// groups), so the upscatter run needs more outer iterations to meet the
/// same tolerance — and must still get there within the budget.
#[test]
fn upscatter_couples_groups_and_the_outer_iteration_still_converges() {
    let base = ProblemBuilder::tiny()
        .phase_space(2, 3)
        .iterations(8, 60)
        .tolerance(1e-6)
        .scattering_ratio(0.8)
        .build()
        .unwrap();
    let upscatter = ProblemBuilder::from_problem(&base)
        .upscatter(0.3)
        .build()
        .unwrap();

    let mut base_recorder = RecordingObserver::default();
    let baseline = TransportSolver::new(&base)
        .unwrap()
        .run_observed(&mut base_recorder)
        .unwrap();
    let mut coupled_recorder = RecordingObserver::default();
    let coupled = TransportSolver::new(&upscatter)
        .unwrap()
        .run_observed(&mut coupled_recorder)
        .unwrap();

    assert!(baseline.converged, "within-group-only run must converge");
    assert!(
        coupled.converged,
        "upscatter run must converge within budget"
    );
    assert!(
        coupled_recorder.outers_completed > base_recorder.outers_completed,
        "upscatter must slow the outer iteration: {} vs {} outers",
        coupled_recorder.outers_completed,
        base_recorder.outers_completed
    );
    assert!(coupled.scalar_flux_total > 0.0);
    // Same scattering-matrix row sums, different coupling: with vacuum
    // boundaries the per-group leakage differs, so the answers differ.
    let rel =
        (coupled.scalar_flux_total - baseline.scalar_flux_total).abs() / baseline.scalar_flux_total;
    assert!(rel > 1e-8, "upscatter changed nothing (rel = {rel:e})");
}
