//! Workspace-wide property-based tests.
//!
//! These exercise cross-crate invariants with randomised inputs:
//!
//! * sweep schedules are valid topological orders of the per-angle
//!   dependency graph for arbitrary directions, mesh shapes and twists;
//! * the KBA decomposition partitions any mesh completely and disjointly
//!   with symmetric halo faces;
//! * flux-storage layouts are bijective index maps and agree across
//!   orderings;
//! * the DG kernel reproduces constant solutions for random cross
//!   sections, directions and (twisted) cell geometries.

use proptest::prelude::*;

use unsnap::prelude::*;
use unsnap_core::kernel::{assemble_solve, KernelScratch, UpwindFace, UpwindSource};
use unsnap_fem::face::FACES;
use unsnap_sweep::graph::DependencyGraph;

/// Strategy: a unit direction with no vanishing component.
fn direction() -> impl Strategy<Value = [f64; 3]> {
    (
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
        prop_oneof![-1.0f64..-0.05, 0.05f64..1.0],
    )
        .prop_map(|(x, y, z)| {
            let n = (x * x + y * y + z * z).sqrt();
            [x / n, y / n, z / n]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schedules_are_topological_orders(
        omega in direction(),
        nx in 1usize..5,
        ny in 1usize..5,
        nz in 1usize..5,
        twist in 0.0f64..0.002,
    ) {
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            twist,
        );
        let graph = DependencyGraph::build(&mesh, omega);
        let schedule = SweepSchedule::build(&mesh, omega).unwrap();
        prop_assert_eq!(schedule.num_cells_scheduled(), mesh.num_cells());
        prop_assert_eq!(schedule.validate_against(&graph), 0);
        // Wavefront count is bounded by the longest possible chain.
        prop_assert!(schedule.num_buckets() <= nx + ny + nz - 2 || mesh.num_cells() == 1);
    }

    #[test]
    fn decomposition_partitions_any_mesh(
        nx in 2usize..7,
        ny in 2usize..7,
        nz in 1usize..4,
        px in 1usize..3,
        py in 1usize..3,
    ) {
        prop_assume!(px <= nx && py <= ny);
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            0.001,
        );
        let subdomains = Decomposition2D::new(px, py).decompose(&mesh);
        let mut owner = vec![None; mesh.num_cells()];
        for sd in &subdomains {
            for &cell in &sd.global_cells {
                prop_assert!(owner[cell].is_none(), "cell owned twice");
                owner[cell] = Some(sd.rank);
            }
        }
        prop_assert!(owner.iter().all(|o| o.is_some()));
        // Halo symmetry: every halo face has a mirror on the other rank.
        for sd in &subdomains {
            for h in &sd.halo_faces {
                let other = &subdomains[h.neighbor_rank];
                let mirrored = other.halo_faces.iter().any(|g| {
                    g.global_cell == h.neighbor_global_cell
                        && g.neighbor_global_cell == h.global_cell
                });
                prop_assert!(mirrored);
            }
        }
    }

    #[test]
    fn flux_layouts_are_bijective_and_consistent(
        nodes in 1usize..28,
        elements in 1usize..20,
        groups in 1usize..10,
        angles in 1usize..6,
    ) {
        for order in [LoopOrder::ElementThenGroup, LoopOrder::GroupThenElement] {
            let layout = FluxLayout::angular(nodes, elements, groups, angles, order);
            prop_assert_eq!(layout.len(), nodes * elements * groups * angles);
            // Spot-check bijectivity on the extremes.
            let first = layout.index(0, 0, 0, 0);
            let last = layout.index(
                nodes - 1,
                elements - 1,
                groups - 1,
                angles - 1,
            );
            prop_assert_eq!(first, 0);
            prop_assert_eq!(last, layout.len() - 1);
            // Strides are consistent with the definition.
            prop_assert_eq!(
                layout.index(0, 0, 0, 0) + layout.element_stride(),
                layout.index(0, 1.min(elements - 1), 0, 0).max(layout.element_stride())
            );
        }
    }

    #[test]
    fn kernel_reproduces_constant_solutions(
        omega in direction(),
        sigma_t in 0.5f64..5.0,
        value in 0.1f64..10.0,
        twist in 0.0f64..0.3,
    ) {
        let element = ReferenceElement::new(1);
        // A twisted unit cell.
        let mut hex = HexVertices::unit_cube();
        let (s, c) = twist.sin_cos();
        for corner in hex.corners.iter_mut().skip(4) {
            let x = corner[0] - 0.5;
            let y = corner[1] - 0.5;
            corner[0] = 0.5 + c * x - s * y;
            corner[1] = 0.5 + s * x + c * y;
        }
        let ints = ElementIntegrals::compute(&element, &hex);
        let n = ints.nodes_per_element();
        let source = vec![sigma_t * value; n];
        let upwind: Vec<UpwindFace<'_>> = FACES
            .iter()
            .filter(|f| ints.face(**f).direction_dot_normal(omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(value),
            })
            .collect();
        let mut scratch = KernelScratch::new(n);
        let solver = SolverKind::GaussianElimination.build();
        assemble_solve(
            &ints,
            omega,
            sigma_t,
            &source,
            &upwind,
            solver.as_ref(),
            false,
            &mut scratch,
        );
        for &psi in &scratch.rhs {
            prop_assert!((psi - value).abs() < 1e-8 * value.max(1.0));
        }
    }

    #[test]
    fn quadrature_weights_always_normalised(n in 1usize..40) {
        let q = AngularQuadrature::product(n);
        prop_assert!((q.directions().iter().map(|d| d.weight).sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert_eq!(q.num_angles(), 8 * n);
    }
}
