//! Property-based tests of the mesh substrate.

use proptest::prelude::*;

use unsnap_mesh::{Decomposition2D, MeshTwist, StructuredGrid, UnstructuredMesh};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn connectivity_is_always_symmetric(
        nx in 1usize..6,
        ny in 1usize..6,
        nz in 1usize..6,
        twist in 0.0f64..0.01,
    ) {
        let grid = StructuredGrid::new(nx, ny, nz, 1.0, 2.0, 1.5);
        let mesh = UnstructuredMesh::from_structured(&grid, twist);
        prop_assert_eq!(mesh.num_cells(), nx * ny * nz);
        prop_assert_eq!(mesh.validate_connectivity(), 0);
        let stats = mesh.connectivity_stats();
        // Boundary faces of a box mesh: 2(nx·ny + ny·nz + nx·nz).
        prop_assert_eq!(stats.boundary_faces, 2 * (nx * ny + ny * nz + nx * nz));
        prop_assert_eq!(stats.total_faces, 6 * nx * ny * nz);
    }

    #[test]
    fn twist_preserves_heights_and_radii(
        z in 0.0f64..1.0,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
        angle in 0.0f64..0.5,
    ) {
        let t = MeshTwist::about_domain(angle, 1.0, 1.0, 1.0);
        let v = [x, y, z];
        let out = t.apply(v);
        prop_assert_eq!(out[2], z);
        let r_in = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
        let r_out = ((out[0] - 0.5).powi(2) + (out[1] - 0.5).powi(2)).sqrt();
        prop_assert!((r_in - r_out).abs() < 1e-12);
    }

    #[test]
    fn renumbering_preserves_structure(
        n in 2usize..5,
        seed in 0u64..1000,
    ) {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        // Deterministic pseudo-random permutation from the seed.
        let count = mesh.num_cells();
        let mut perm: Vec<usize> = (0..count).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..count).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let renumbered = mesh.renumber(&perm);
        prop_assert_eq!(renumbered.num_cells(), count);
        prop_assert_eq!(renumbered.validate_connectivity(), 0);
        prop_assert_eq!(
            renumbered.connectivity_stats(),
            mesh.connectivity_stats()
        );
        // Geometry follows the permutation.
        for (new_id, &old_id) in perm.iter().enumerate() {
            prop_assert_eq!(renumbered.cell_corners(new_id), mesh.cell_corners(old_id));
        }
    }

    #[test]
    fn decomposition_balances_cells(
        nx in 2usize..8,
        ny in 2usize..8,
        nz in 1usize..4,
        px in 1usize..4,
        py in 1usize..4,
    ) {
        prop_assume!(px <= nx && py <= ny);
        let mesh = UnstructuredMesh::from_structured(
            &StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0),
            0.0,
        );
        let subdomains = Decomposition2D::new(px, py).decompose(&mesh);
        let total: usize = subdomains.iter().map(|s| s.num_cells()).sum();
        prop_assert_eq!(total, mesh.num_cells());
        // Balance: the largest and smallest rank differ by at most one
        // slab in each direction.
        let max = subdomains.iter().map(|s| s.num_cells()).max().unwrap();
        let min = subdomains.iter().map(|s| s.num_cells()).min().unwrap();
        let max_imbalance = ((nx / px + 1) * (ny / py + 1) - (nx / px) * (ny / py)) * nz;
        prop_assert!(max - min <= max_imbalance);
        // Local/global maps are mutually inverse.
        for sd in &subdomains {
            for (local, &global) in sd.global_cells.iter().enumerate() {
                prop_assert_eq!(sd.local_of(global), Some(local));
                prop_assert_eq!(sd.global_of(local), global);
            }
        }
    }
}
