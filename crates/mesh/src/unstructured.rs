//! The unstructured hexahedral mesh: per-cell geometry plus explicit
//! face-to-face connectivity.
//!
//! "The reliance on this data structure for resolving neighbouring element
//! connectivity is a key differentiator between the treatment of a
//! structured and unstructured grid." (§III of the paper.)  Nothing in the
//! downstream sweep or assembly code is allowed to reconstruct neighbours
//! from `(i, j, k)` arithmetic: all adjacency questions go through the
//! [`NeighborRef`] table built here.

use serde::{Deserialize, Serialize};

use crate::structured::StructuredGrid;
use crate::twist::MeshTwist;

/// Number of faces of a hexahedral cell.
pub const NUM_FACES: usize = 6;

/// What lies on the other side of a cell face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborRef {
    /// Another cell of the mesh: `(cell id, that cell's face index)`.
    Interior {
        /// Neighbouring cell id.
        cell: usize,
        /// The neighbouring cell's face that is glued to this one.
        face: usize,
    },
    /// The domain boundary; the payload is the *domain* face index
    /// (0..6, same convention as cell faces) so boundary conditions can be
    /// looked up.
    Boundary {
        /// Domain face this boundary face belongs to.
        domain_face: usize,
    },
}

impl NeighborRef {
    /// `true` if the face is on the domain boundary.
    pub fn is_boundary(&self) -> bool {
        matches!(self, NeighborRef::Boundary { .. })
    }

    /// The neighbouring cell id, if interior.
    pub fn cell(&self) -> Option<usize> {
        match self {
            NeighborRef::Interior { cell, .. } => Some(*cell),
            NeighborRef::Boundary { .. } => None,
        }
    }
}

/// Summary statistics of the mesh connectivity, used by tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityStats {
    /// Total number of cell faces (6 × cells).
    pub total_faces: usize,
    /// Faces with an interior neighbour.
    pub interior_faces: usize,
    /// Faces on the domain boundary.
    pub boundary_faces: usize,
}

/// An unstructured mesh of hexahedral cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnstructuredMesh {
    /// Eight corner vertices per cell, corner-major
    /// (`c = i + 2j + 4k` ordering, matching `unsnap_fem::HexVertices`).
    cell_corners: Vec<[[f64; 3]; 8]>,
    /// Face connectivity: `neighbors[cell][face]`.
    neighbors: Vec<[NeighborRef; NUM_FACES]>,
    /// The structured grid this mesh was derived from (kept for the KBA
    /// decomposition and for tests; the solver never reads it).
    origin: StructuredGrid,
    /// The twist that was applied.
    twist: MeshTwist,
}

impl UnstructuredMesh {
    /// Build the unstructured mesh from a structured grid, applying a twist
    /// of `max_twist_angle` radians (0 for an untwisted mesh).
    ///
    /// The resulting mesh stores the structured grid's cells in the same
    /// order (x fastest), but all adjacency is recorded explicitly.
    pub fn from_structured(grid: &StructuredGrid, max_twist_angle: f64) -> Self {
        let twist = MeshTwist::about_domain(max_twist_angle, grid.lx, grid.ly, grid.lz);
        Self::from_structured_with_twist(grid, twist)
    }

    /// Build the unstructured mesh with an explicit twist description.
    pub fn from_structured_with_twist(grid: &StructuredGrid, twist: MeshTwist) -> Self {
        let n = grid.num_cells();
        let mut cell_corners = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(n);

        for id in 0..n {
            let (i, j, k) = grid.cell_ijk(id);
            let mut corners = grid.cell_corners(i, j, k);
            if !twist.is_identity() {
                for c in corners.iter_mut() {
                    *c = twist.apply(*c);
                }
            }
            cell_corners.push(corners);

            // Explicit neighbour table.  Face order: x-, x+, y-, y+, z-, z+.
            let mut nb = [NeighborRef::Boundary { domain_face: 0 }; NUM_FACES];
            let coords = [i as isize, j as isize, k as isize];
            let extents = [grid.nx as isize, grid.ny as isize, grid.nz as isize];
            for face in 0..NUM_FACES {
                let axis = face / 2;
                let dir: isize = if face % 2 == 0 { -1 } else { 1 };
                let mut c = coords;
                c[axis] += dir;
                if c[axis] < 0 || c[axis] >= extents[axis] {
                    nb[face] = NeighborRef::Boundary { domain_face: face };
                } else {
                    let ncell = grid.cell_id(c[0] as usize, c[1] as usize, c[2] as usize);
                    // The neighbour sees us through its opposite face.
                    let opposite = if face % 2 == 0 { face + 1 } else { face - 1 };
                    nb[face] = NeighborRef::Interior {
                        cell: ncell,
                        face: opposite,
                    };
                }
            }
            neighbors.push(nb);
        }

        Self {
            cell_corners,
            neighbors,
            origin: *grid,
            twist,
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_corners.len()
    }

    /// The eight corner vertices of cell `cell`.
    pub fn cell_corners(&self, cell: usize) -> &[[f64; 3]; 8] {
        &self.cell_corners[cell]
    }

    /// The neighbour reference for `(cell, face)`.
    pub fn neighbor(&self, cell: usize, face: usize) -> NeighborRef {
        self.neighbors[cell][face]
    }

    /// All six neighbour references of a cell.
    pub fn neighbors_of(&self, cell: usize) -> &[NeighborRef; NUM_FACES] {
        &self.neighbors[cell]
    }

    /// Centroid of a cell (average of its eight corners).
    pub fn cell_centroid(&self, cell: usize) -> [f64; 3] {
        let mut c = [0.0; 3];
        for corner in &self.cell_corners[cell] {
            for d in 0..3 {
                c[d] += corner[d] / 8.0;
            }
        }
        c
    }

    /// The structured grid the mesh was derived from.
    ///
    /// Only the partitioner and tests use this; the sweep and assembly
    /// code paths rely exclusively on the explicit connectivity.
    pub fn origin_grid(&self) -> &StructuredGrid {
        &self.origin
    }

    /// The twist applied to the mesh.
    pub fn twist(&self) -> &MeshTwist {
        &self.twist
    }

    /// Count interior and boundary faces.
    pub fn connectivity_stats(&self) -> ConnectivityStats {
        let total_faces = self.num_cells() * NUM_FACES;
        let boundary_faces = self
            .neighbors
            .iter()
            .flat_map(|nb| nb.iter())
            .filter(|n| n.is_boundary())
            .count();
        ConnectivityStats {
            total_faces,
            interior_faces: total_faces - boundary_faces,
            boundary_faces,
        }
    }

    /// Verify that the connectivity is symmetric: if cell A lists B through
    /// face f, then B must list A through the face it reported.
    /// Returns the number of inconsistent faces (0 for a valid mesh).
    pub fn validate_connectivity(&self) -> usize {
        let mut bad = 0;
        for (cell, nb) in self.neighbors.iter().enumerate() {
            for (face, n) in nb.iter().enumerate() {
                if let NeighborRef::Interior {
                    cell: other,
                    face: other_face,
                } = n
                {
                    match self.neighbors[*other][*other_face] {
                        NeighborRef::Interior {
                            cell: back,
                            face: back_face,
                        } if back == cell && back_face == face => {}
                        _ => bad += 1,
                    }
                }
            }
        }
        bad
    }

    /// Apply a cell renumbering: `permutation[new_id] = old_id`.
    ///
    /// Element numbering affects memory locality during the sweep (§IV-A of
    /// the paper discusses how the indirect element indexing interacts with
    /// data layout), so the mesh supports renumbering for layout
    /// experiments.  The permutation must be a bijection on `0..num_cells`.
    pub fn renumber(&self, permutation: &[usize]) -> UnstructuredMesh {
        assert_eq!(permutation.len(), self.num_cells());
        let n = self.num_cells();
        // old -> new mapping
        let mut new_of_old = vec![usize::MAX; n];
        for (new_id, &old_id) in permutation.iter().enumerate() {
            assert!(old_id < n, "permutation entry out of range");
            assert_eq!(
                new_of_old[old_id],
                usize::MAX,
                "permutation is not a bijection"
            );
            new_of_old[old_id] = new_id;
        }

        let mut cell_corners = Vec::with_capacity(n);
        let mut neighbors = Vec::with_capacity(n);
        for &old_id in permutation.iter() {
            cell_corners.push(self.cell_corners[old_id]);
            let mut nb = self.neighbors[old_id];
            for entry in nb.iter_mut() {
                if let NeighborRef::Interior { cell, .. } = entry {
                    *cell = new_of_old[*cell];
                }
            }
            neighbors.push(nb);
        }

        UnstructuredMesh {
            cell_corners,
            neighbors,
            origin: self.origin,
            twist: self.twist,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mesh() -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.0)
    }

    #[test]
    fn cell_count_matches_grid() {
        let mesh = small_mesh();
        assert_eq!(mesh.num_cells(), 27);
    }

    #[test]
    fn connectivity_is_symmetric() {
        for n in [1usize, 2, 3, 4] {
            let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
            assert_eq!(mesh.validate_connectivity(), 0, "n = {n}");
        }
        let mesh =
            UnstructuredMesh::from_structured(&StructuredGrid::new(3, 4, 5, 1.0, 2.0, 3.0), 0.0005);
        assert_eq!(mesh.validate_connectivity(), 0);
    }

    #[test]
    fn boundary_face_counts() {
        // An n³ cube has 6 n² boundary faces.
        for n in [1usize, 2, 4] {
            let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.0);
            let stats = mesh.connectivity_stats();
            assert_eq!(stats.boundary_faces, 6 * n * n);
            assert_eq!(stats.total_faces, 6 * n * n * n);
            assert_eq!(
                stats.interior_faces,
                stats.total_faces - stats.boundary_faces
            );
        }
    }

    #[test]
    fn single_cell_mesh_is_all_boundary() {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(1, 1.0), 0.0);
        for face in 0..NUM_FACES {
            let nb = mesh.neighbor(0, face);
            assert!(nb.is_boundary());
            assert_eq!(nb.cell(), None);
            match nb {
                NeighborRef::Boundary { domain_face } => assert_eq!(domain_face, face),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn interior_neighbors_point_at_correct_cells() {
        let grid = StructuredGrid::cube(3, 3.0);
        let mesh = UnstructuredMesh::from_structured(&grid, 0.0);
        let centre = grid.cell_id(1, 1, 1);
        // The centre cell of a 3³ grid has all six neighbours interior.
        let expected = [
            grid.cell_id(0, 1, 1),
            grid.cell_id(2, 1, 1),
            grid.cell_id(1, 0, 1),
            grid.cell_id(1, 2, 1),
            grid.cell_id(1, 1, 0),
            grid.cell_id(1, 1, 2),
        ];
        for (face, &want) in expected.iter().enumerate() {
            match mesh.neighbor(centre, face) {
                NeighborRef::Interior { cell, face: nf } => {
                    assert_eq!(cell, want);
                    // The neighbour sees us through the opposite face.
                    let opposite = if face % 2 == 0 { face + 1 } else { face - 1 };
                    assert_eq!(nf, opposite);
                }
                _ => panic!("face {face} of centre cell should be interior"),
            }
        }
    }

    #[test]
    fn untwisted_cells_are_axis_aligned_cubes() {
        let mesh = small_mesh();
        let corners = mesh.cell_corners(0);
        assert_eq!(corners[0], [0.0, 0.0, 0.0]);
        let third = 1.0 / 3.0;
        assert!((corners[7][0] - third).abs() < 1e-15);
        assert!((corners[7][1] - third).abs() < 1e-15);
        assert!((corners[7][2] - third).abs() < 1e-15);
    }

    #[test]
    fn twist_deforms_upper_cells_but_not_lower() {
        let grid = StructuredGrid::cube(4, 1.0);
        let straight = UnstructuredMesh::from_structured(&grid, 0.0);
        let twisted = UnstructuredMesh::from_structured(&grid, 0.001);
        // Bottom-layer cell, bottom face corners identical (z = 0).
        let c0s = straight.cell_corners(0);
        let c0t = twisted.cell_corners(0);
        for corner in 0..4 {
            assert_eq!(c0s[corner], c0t[corner]);
        }
        // Top-layer cell corners move.
        let top = grid.cell_id(3, 3, 3);
        let cts = straight.cell_corners(top);
        let ctt = twisted.cell_corners(top);
        let moved = (0..8).any(|c| cts[c] != ctt[c]);
        assert!(moved);
        // Centroid height unchanged by the twist.
        assert!((straight.cell_centroid(top)[2] - twisted.cell_centroid(top)[2]).abs() < 1e-15);
    }

    #[test]
    fn centroids_of_untwisted_mesh_are_cell_centres() {
        let grid = StructuredGrid::cube(2, 2.0);
        let mesh = UnstructuredMesh::from_structured(&grid, 0.0);
        let c = mesh.cell_centroid(grid.cell_id(1, 0, 1));
        assert!((c[0] - 1.5).abs() < 1e-15);
        assert!((c[1] - 0.5).abs() < 1e-15);
        assert!((c[2] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn renumber_preserves_connectivity_validity() {
        let mesh = small_mesh();
        // Reverse numbering.
        let perm: Vec<usize> = (0..mesh.num_cells()).rev().collect();
        let renumbered = mesh.renumber(&perm);
        assert_eq!(renumbered.num_cells(), mesh.num_cells());
        assert_eq!(renumbered.validate_connectivity(), 0);
        // Cell 0 of the renumbered mesh is the old last cell.
        assert_eq!(
            renumbered.cell_corners(0),
            mesh.cell_corners(mesh.num_cells() - 1)
        );
    }

    #[test]
    #[should_panic]
    fn renumber_rejects_non_bijection() {
        let mesh = small_mesh();
        let mut perm: Vec<usize> = (0..mesh.num_cells()).collect();
        perm[1] = 0; // duplicate
        let _ = mesh.renumber(&perm);
    }

    #[test]
    fn origin_and_twist_accessors() {
        let grid = StructuredGrid::cube(2, 1.0);
        let mesh = UnstructuredMesh::from_structured(&grid, 0.25);
        assert_eq!(mesh.origin_grid().num_cells(), 8);
        assert!((mesh.twist().max_angle - 0.25).abs() < 1e-15);
    }
}
