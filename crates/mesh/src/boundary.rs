//! Boundary conditions on the domain faces.
//!
//! SNAP's artificial problems use vacuum boundaries (no incoming flux) on
//! every face; UnSNAP inherits that default.  An isotropic incoming flux is
//! also provided so tests can verify the DG discretisation reproduces
//! constant solutions exactly (a standard consistency check), and a
//! reflective tag is included for completeness of the SNAP input space.

use serde::{Deserialize, Serialize};

/// The boundary condition applied on a domain face.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BoundaryCondition {
    /// No incoming particles (the SNAP default).
    #[default]
    Vacuum,
    /// A prescribed isotropic incoming angular flux.
    IsotropicInflow(f64),
    /// Specular reflection (incoming flux equals the outgoing flux of the
    /// mirrored direction).  Provided for API completeness; the iteration
    /// drivers in `unsnap-core` currently treat it as vacuum and document
    /// the restriction.
    Reflective,
}

impl BoundaryCondition {
    /// The incoming angular flux value this boundary supplies to a sweep.
    ///
    /// Reflective boundaries need the outgoing flux of the mirrored
    /// direction, which the caller resolves; at this level they contribute
    /// nothing.
    pub fn incoming_flux(&self) -> f64 {
        match self {
            BoundaryCondition::Vacuum | BoundaryCondition::Reflective => 0.0,
            BoundaryCondition::IsotropicInflow(v) => *v,
        }
    }

    /// `true` if this boundary supplies no incoming particles.
    pub fn is_vacuum(&self) -> bool {
        matches!(self, BoundaryCondition::Vacuum)
    }
}

/// The set of boundary conditions for the six domain faces, indexed in the
/// usual face order (x−, x+, y−, y+, z−, z+).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DomainBoundaries {
    /// Per-face boundary conditions.
    pub faces: [BoundaryCondition; 6],
}

impl DomainBoundaries {
    /// Vacuum on every face (the SNAP/UnSNAP default).
    pub fn vacuum() -> Self {
        Self::default()
    }

    /// The same isotropic inflow on every face.
    pub fn uniform_inflow(value: f64) -> Self {
        Self {
            faces: [BoundaryCondition::IsotropicInflow(value); 6],
        }
    }

    /// The boundary condition of domain face `face_index` (0..6).
    pub fn face(&self, face_index: usize) -> BoundaryCondition {
        self.faces[face_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_vacuum() {
        let b = BoundaryCondition::default();
        assert!(b.is_vacuum());
        assert_eq!(b.incoming_flux(), 0.0);
    }

    #[test]
    fn inflow_carries_value() {
        let b = BoundaryCondition::IsotropicInflow(2.5);
        assert!(!b.is_vacuum());
        assert_eq!(b.incoming_flux(), 2.5);
    }

    #[test]
    fn reflective_contributes_nothing_directly() {
        assert_eq!(BoundaryCondition::Reflective.incoming_flux(), 0.0);
    }

    #[test]
    fn domain_boundaries_constructors() {
        let v = DomainBoundaries::vacuum();
        assert!(v.faces.iter().all(|b| b.is_vacuum()));
        let inflow = DomainBoundaries::uniform_inflow(1.0);
        for f in 0..6 {
            assert_eq!(inflow.face(f).incoming_flux(), 1.0);
        }
    }
}
