//! # unsnap-mesh
//!
//! Unstructured hexahedral mesh substrate for the UnSNAP mini-app.
//!
//! The paper (§III) builds its unstructured mesh by first constructing the
//! original SNAP structured Cartesian grid and then *storing it in an
//! unstructured format*: every cell keeps an explicit list of its
//! face-neighbours instead of deriving them from `(i, j, k)` arithmetic.
//! To make sure the code genuinely exercises unstructured behaviour, the
//! grid can additionally be *twisted* slightly about one axis, so cells are
//! no longer perfect cubes and per-cell geometry must be honoured.
//!
//! This crate provides:
//!
//! * [`structured`] — the structured grid description the mesh is derived
//!   from (extents, cell counts, vertex coordinates);
//! * [`twist`] — the mesh-twisting transform (a rotation about the z-axis
//!   whose angle grows linearly with height);
//! * [`unstructured`] — [`UnstructuredMesh`]: per-cell corner vertices,
//!   explicit face connectivity, boundary tagging, and cell renumbering
//!   helpers;
//! * [`partition`] — the KBA-style 2-D spatial decomposition into rank
//!   subdomains used by the distributed (block-Jacobi) schedule, with halo
//!   face descriptions;
//! * [`boundary`] — boundary-condition tags for the domain faces;
//! * [`error`] — [`MeshError`], the crate's typed failure modes, wrapped
//!   by the workspace-wide `unsnap_core::error::Error`.
//!
//! The face-index convention (0 = x−, 1 = x+, 2 = y−, 3 = y+, 4 = z−,
//! 5 = z+) matches `unsnap_fem::Face::index()` so the transport kernel can
//! pair mesh connectivity with reference-element face integrals directly.
//!
//! ## Example
//!
//! ```
//! use unsnap_mesh::{StructuredGrid, UnstructuredMesh};
//!
//! let grid = StructuredGrid::cube(4, 1.0);
//! let mesh = UnstructuredMesh::from_structured(&grid, 0.001);
//! assert_eq!(mesh.num_cells(), 64);
//! // Every interior face is paired with the opposite face of its neighbour.
//! let stats = mesh.connectivity_stats();
//! assert_eq!(stats.boundary_faces, 6 * 16);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boundary;
pub mod error;
pub mod partition;
pub mod structured;
pub mod twist;
pub mod unstructured;

pub use boundary::BoundaryCondition;
pub use error::MeshError;
pub use partition::{Decomposition2D, HaloFace, Subdomain};
pub use structured::StructuredGrid;
pub use twist::MeshTwist;
pub use unstructured::{ConnectivityStats, NeighborRef, UnstructuredMesh, NUM_FACES};
