//! The mesh-twisting transform.
//!
//! "To ensure that the mesh is truly treated as unstructured, a new input
//! option allows the mesh to be twisted slightly along a single axis, and
//! therefore each cell is no longer a perfect cube." (§III of the paper.)
//!
//! The twist implemented here rotates every vertex about the vertical
//! (z) axis through the domain centre, with a rotation angle that grows
//! linearly from zero at the bottom of the domain to the requested maximum
//! at the top.  The paper's experiments use maximum angles of up to
//! 0.001 radians — small enough that cell volumes are essentially
//! preserved but every cell Jacobian becomes non-diagonal.

use serde::{Deserialize, Serialize};

/// Parameters of the mesh twist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshTwist {
    /// Maximum rotation angle (radians) reached at the top of the domain.
    pub max_angle: f64,
    /// Centre of rotation in the x–y plane.
    pub centre: [f64; 2],
    /// Height of the domain (z extent) used to normalise the angle ramp.
    pub height: f64,
}

impl MeshTwist {
    /// No twist at all (identity transform).
    pub fn none() -> Self {
        Self {
            max_angle: 0.0,
            centre: [0.0, 0.0],
            height: 1.0,
        }
    }

    /// A twist of `max_angle` radians about the centre of the given domain.
    pub fn about_domain(max_angle: f64, lx: f64, ly: f64, lz: f64) -> Self {
        Self {
            max_angle,
            centre: [lx / 2.0, ly / 2.0],
            height: lz.max(f64::MIN_POSITIVE),
        }
    }

    /// Rotation angle at height `z`.
    pub fn angle_at(&self, z: f64) -> f64 {
        self.max_angle * (z / self.height).clamp(0.0, 1.0)
    }

    /// Apply the twist to a vertex.
    pub fn apply(&self, vertex: [f64; 3]) -> [f64; 3] {
        if self.max_angle == 0.0 {
            return vertex;
        }
        let angle = self.angle_at(vertex[2]);
        let (s, c) = angle.sin_cos();
        let x = vertex[0] - self.centre[0];
        let y = vertex[1] - self.centre[1];
        [
            self.centre[0] + c * x - s * y,
            self.centre[1] + s * x + c * y,
            vertex[2],
        ]
    }

    /// `true` if this twist is the identity.
    pub fn is_identity(&self) -> bool {
        self.max_angle == 0.0
    }
}

impl Default for MeshTwist {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_twist_leaves_vertices_alone() {
        let t = MeshTwist::none();
        assert!(t.is_identity());
        let v = [0.3, 0.7, 0.2];
        assert_eq!(t.apply(v), v);
    }

    #[test]
    fn bottom_of_domain_is_untouched() {
        let t = MeshTwist::about_domain(0.5, 1.0, 1.0, 1.0);
        let v = [0.9, 0.1, 0.0];
        let out = t.apply(v);
        for d in 0..3 {
            assert!((out[d] - v[d]).abs() < 1e-15);
        }
    }

    #[test]
    fn top_of_domain_rotates_by_max_angle() {
        let angle = 0.25f64;
        let t = MeshTwist::about_domain(angle, 2.0, 2.0, 1.0);
        // A point one unit to the +x of the centre, at the top.
        let v = [2.0, 1.0, 1.0];
        let out = t.apply(v);
        assert!((out[0] - (1.0 + angle.cos())).abs() < 1e-14);
        assert!((out[1] - (1.0 + angle.sin())).abs() < 1e-14);
        assert_eq!(out[2], 1.0);
    }

    #[test]
    fn angle_ramp_is_linear_and_clamped() {
        let t = MeshTwist::about_domain(0.8, 1.0, 1.0, 2.0);
        assert!((t.angle_at(1.0) - 0.4).abs() < 1e-15);
        assert_eq!(t.angle_at(-1.0), 0.0);
        assert_eq!(t.angle_at(5.0), 0.8);
    }

    #[test]
    fn twist_preserves_distance_from_axis_and_height() {
        let t = MeshTwist::about_domain(0.001, 1.0, 1.0, 1.0);
        let v = [0.9, 0.3, 0.6];
        let out = t.apply(v);
        let r_in = ((v[0] - 0.5).powi(2) + (v[1] - 0.5).powi(2)).sqrt();
        let r_out = ((out[0] - 0.5).powi(2) + (out[1] - 0.5).powi(2)).sqrt();
        assert!((r_in - r_out).abs() < 1e-14);
        assert_eq!(out[2], v[2]);
    }

    #[test]
    fn small_twist_moves_vertices_slightly() {
        // Paper-scale twist: ≤ 0.001 rad.  Displacement is tiny but nonzero.
        let t = MeshTwist::about_domain(0.001, 1.0, 1.0, 1.0);
        let v = [1.0, 1.0, 1.0];
        let out = t.apply(v);
        let shift = ((out[0] - v[0]).powi(2) + (out[1] - v[1]).powi(2)).sqrt();
        assert!(shift > 0.0);
        assert!(shift < 1e-2);
    }

    #[test]
    fn default_is_identity() {
        assert!(MeshTwist::default().is_identity());
    }
}
