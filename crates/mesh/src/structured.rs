//! The structured Cartesian grid from which the unstructured mesh is
//! derived.
//!
//! SNAP (and therefore UnSNAP) generates its spatial domain from a handful
//! of input parameters: the number of cells in each direction and the
//! physical extent.  The structured grid exists only long enough to build
//! the unstructured mesh — exactly as in the paper, where "the unstructured
//! mesh is formed by first forming the original SNAP mesh but storing it in
//! an unstructured format".

use serde::{Deserialize, Serialize};

/// Description of the structured Cartesian grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructuredGrid {
    /// Number of cells in x.
    pub nx: usize,
    /// Number of cells in y.
    pub ny: usize,
    /// Number of cells in z.
    pub nz: usize,
    /// Physical domain length in x.
    pub lx: f64,
    /// Physical domain length in y.
    pub ly: f64,
    /// Physical domain length in z.
    pub lz: f64,
}

impl StructuredGrid {
    /// A grid of `n × n × n` cells over a cube of side `length`.
    pub fn cube(n: usize, length: f64) -> Self {
        Self {
            nx: n,
            ny: n,
            nz: n,
            lx: length,
            ly: length,
            lz: length,
        }
    }

    /// A general grid.
    pub fn new(nx: usize, ny: usize, nz: usize, lx: f64, ly: f64, lz: f64) -> Self {
        Self {
            nx,
            ny,
            nz,
            lx,
            ly,
            lz,
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Cell widths `(dx, dy, dz)`.
    pub fn cell_widths(&self) -> (f64, f64, f64) {
        (
            self.lx / self.nx as f64,
            self.ly / self.ny as f64,
            self.lz / self.nz as f64,
        )
    }

    /// Flatten an `(i, j, k)` cell index to the canonical cell id
    /// (x fastest, z slowest — the SNAP ordering).
    pub fn cell_id(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Unflatten a cell id back to `(i, j, k)`.
    pub fn cell_ijk(&self, id: usize) -> (usize, usize, usize) {
        debug_assert!(id < self.num_cells());
        let i = id % self.nx;
        let j = (id / self.nx) % self.ny;
        let k = id / (self.nx * self.ny);
        (i, j, k)
    }

    /// Coordinates of the vertex at vertex-index `(i, j, k)`
    /// (`0 ≤ i ≤ nx` etc.) on the *untwisted* grid.
    pub fn vertex(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        let (dx, dy, dz) = self.cell_widths();
        [i as f64 * dx, j as f64 * dy, k as f64 * dz]
    }

    /// The eight corner vertices of cell `(i, j, k)` on the untwisted grid,
    /// in the `c = i + 2j + 4k` corner ordering used throughout UnSNAP.
    pub fn cell_corners(&self, i: usize, j: usize, k: usize) -> [[f64; 3]; 8] {
        let mut corners = [[0.0; 3]; 8];
        for (c, corner) in corners.iter_mut().enumerate() {
            let ci = i + (c & 1);
            let cj = j + ((c >> 1) & 1);
            let ck = k + ((c >> 2) & 1);
            *corner = self.vertex(ci, cj, ck);
        }
        corners
    }

    /// Centre of the domain (used as the twist axis).
    pub fn domain_centre(&self) -> [f64; 3] {
        [self.lx / 2.0, self.ly / 2.0, self.lz / 2.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_constructor() {
        let g = StructuredGrid::cube(8, 2.0);
        assert_eq!(g.num_cells(), 512);
        assert_eq!(g.cell_widths(), (0.25, 0.25, 0.25));
    }

    #[test]
    fn id_round_trip() {
        let g = StructuredGrid::new(3, 4, 5, 1.0, 1.0, 1.0);
        for k in 0..5 {
            for j in 0..4 {
                for i in 0..3 {
                    let id = g.cell_id(i, j, k);
                    assert_eq!(g.cell_ijk(id), (i, j, k));
                }
            }
        }
        assert_eq!(g.cell_id(0, 0, 0), 0);
        assert_eq!(g.cell_id(2, 3, 4), g.num_cells() - 1);
    }

    #[test]
    fn x_is_fastest_index() {
        let g = StructuredGrid::new(4, 3, 2, 1.0, 1.0, 1.0);
        assert_eq!(g.cell_id(1, 0, 0), 1);
        assert_eq!(g.cell_id(0, 1, 0), 4);
        assert_eq!(g.cell_id(0, 0, 1), 12);
    }

    #[test]
    fn vertices_and_corners() {
        let g = StructuredGrid::new(2, 2, 2, 2.0, 4.0, 6.0);
        assert_eq!(g.vertex(0, 0, 0), [0.0, 0.0, 0.0]);
        assert_eq!(g.vertex(2, 2, 2), [2.0, 4.0, 6.0]);
        let corners = g.cell_corners(1, 1, 1);
        assert_eq!(corners[0], [1.0, 2.0, 3.0]);
        assert_eq!(corners[7], [2.0, 4.0, 6.0]);
        // Corner ordering: c=1 moves +x only.
        assert_eq!(corners[1], [2.0, 2.0, 3.0]);
        // c=2 moves +y only.
        assert_eq!(corners[2], [1.0, 4.0, 3.0]);
        // c=4 moves +z only.
        assert_eq!(corners[4], [1.0, 2.0, 6.0]);
    }

    #[test]
    fn domain_centre() {
        let g = StructuredGrid::new(2, 2, 2, 2.0, 4.0, 6.0);
        assert_eq!(g.domain_centre(), [1.0, 2.0, 3.0]);
    }
}
