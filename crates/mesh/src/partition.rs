//! KBA-style 2-D spatial decomposition of the mesh into rank subdomains.
//!
//! The paper keeps SNAP's domain decomposition: "A 2D decomposition of the
//! 3D domain is performed, similar to the KBA style decomposition for a
//! structured grid ... This decomposition occurs during the construction of
//! the mesh derived from the structured mesh, and so more complex mesh
//! partitioning could be avoided." (§III.)  Each rank therefore owns a
//! rectangular patch of the x–y plane extruded through the full z extent.
//!
//! The decomposition produces, for every rank, the list of owned cells
//! (with a local numbering), and the list of *halo faces*: owned faces
//! whose neighbour cell belongs to another rank.  Under the block-Jacobi
//! global schedule these faces are where the per-iteration halo exchange
//! happens; under the KBA baseline they are where a sweep must wait for
//! upstream data.

use serde::{Deserialize, Serialize};

use crate::error::MeshError;
use crate::unstructured::{NeighborRef, UnstructuredMesh, NUM_FACES};

/// A 2-D processor grid over the x–y plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition2D {
    /// Number of ranks along x.
    pub npx: usize,
    /// Number of ranks along y.
    pub npy: usize,
}

impl Decomposition2D {
    /// A decomposition into `npx × npy` ranks.
    ///
    /// Panics on an empty axis; use [`Decomposition2D::try_new`] for a
    /// recoverable error.
    pub fn new(npx: usize, npy: usize) -> Self {
        Self::try_new(npx, npy).expect("decomposition needs at least one rank")
    }

    /// A decomposition into `npx × npy` ranks, rejecting empty axes.
    pub fn try_new(npx: usize, npy: usize) -> Result<Self, MeshError> {
        if npx == 0 || npy == 0 {
            return Err(MeshError::EmptyDecomposition { npx, npy });
        }
        Ok(Self { npx, npy })
    }

    /// A single-rank decomposition.
    pub fn serial() -> Self {
        Self { npx: 1, npy: 1 }
    }

    /// Total number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.npx * self.npy
    }

    /// Rank id of processor-grid coordinates `(px, py)`.
    pub fn rank_of(&self, px: usize, py: usize) -> usize {
        debug_assert!(px < self.npx && py < self.npy);
        px + self.npx * py
    }

    /// Processor-grid coordinates of a rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.num_ranks());
        (rank % self.npx, rank / self.npx)
    }

    /// Split `n` cells across `parts` ranks as evenly as possible.
    /// Returns the half-open range of structured indices owned by `part`.
    fn slab(n: usize, parts: usize, part: usize) -> (usize, usize) {
        let base = n / parts;
        let rem = n % parts;
        let start = part * base + part.min(rem);
        let len = base + usize::from(part < rem);
        (start, start + len)
    }

    /// Decompose a mesh into per-rank subdomains.
    ///
    /// The decomposition uses the structured origin of the mesh (as the
    /// paper does: the partition is created while the mesh is being derived
    /// from the structured grid), but the resulting [`Subdomain`]s only
    /// reference unstructured cell ids.
    pub fn decompose(&self, mesh: &UnstructuredMesh) -> Vec<Subdomain> {
        self.try_decompose(mesh)
            .expect("more ranks than cells along a decomposed axis")
    }

    /// Decompose a mesh into per-rank subdomains, rejecting decompositions
    /// that would leave a rank with an empty subdomain.
    ///
    /// This is the recoverable form of [`Decomposition2D::decompose`].
    pub fn try_decompose(&self, mesh: &UnstructuredMesh) -> Result<Vec<Subdomain>, MeshError> {
        let grid = mesh.origin_grid();
        if self.npx > grid.nx || self.npy > grid.ny {
            return Err(MeshError::DecompositionTooCoarse {
                npx: self.npx,
                npy: self.npy,
                nx: grid.nx,
                ny: grid.ny,
            });
        }

        // Owner rank of every global cell.
        let mut owner = vec![0usize; mesh.num_cells()];
        for rank in 0..self.num_ranks() {
            let (px, py) = self.coords_of(rank);
            let (x0, x1) = Self::slab(grid.nx, self.npx, px);
            let (y0, y1) = Self::slab(grid.ny, self.npy, py);
            for k in 0..grid.nz {
                for j in y0..y1 {
                    for i in x0..x1 {
                        owner[grid.cell_id(i, j, k)] = rank;
                    }
                }
            }
        }

        // Build each subdomain.
        let mut subdomains: Vec<Subdomain> = (0..self.num_ranks())
            .map(|rank| Subdomain {
                rank,
                decomposition: *self,
                global_cells: Vec::new(),
                local_of_global: vec![None; mesh.num_cells()],
                halo_faces: Vec::new(),
            })
            .collect();

        for global in 0..mesh.num_cells() {
            let rank = owner[global];
            let sd = &mut subdomains[rank];
            let local = sd.global_cells.len();
            sd.global_cells.push(global);
            sd.local_of_global[global] = Some(local);
        }

        // Halo faces: owned faces whose neighbour belongs to another rank.
        for (rank, sd) in subdomains.iter_mut().enumerate() {
            for (local, &global) in sd.global_cells.iter().enumerate() {
                for face in 0..NUM_FACES {
                    if let NeighborRef::Interior { cell, face: nface } = mesh.neighbor(global, face)
                    {
                        let other_rank = owner[cell];
                        if other_rank != rank {
                            sd.halo_faces.push(HaloFace {
                                local_cell: local,
                                global_cell: global,
                                face,
                                neighbor_rank: other_rank,
                                neighbor_global_cell: cell,
                                neighbor_face: nface,
                            });
                        }
                    }
                }
            }
        }

        Ok(subdomains)
    }
}

/// A face of an owned cell whose neighbour lives on another rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HaloFace {
    /// Local id of the owned cell.
    pub local_cell: usize,
    /// Global id of the owned cell.
    pub global_cell: usize,
    /// Face index of the owned cell (0..6).
    pub face: usize,
    /// Rank that owns the neighbouring cell.
    pub neighbor_rank: usize,
    /// Global id of the neighbouring cell.
    pub neighbor_global_cell: usize,
    /// Face index through which the neighbour sees this cell.
    pub neighbor_face: usize,
}

/// The cells owned by one rank, with local numbering and halo description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subdomain {
    /// Rank id.
    pub rank: usize,
    /// The decomposition this subdomain belongs to.
    pub decomposition: Decomposition2D,
    /// Global cell ids owned by this rank, in local order.
    pub global_cells: Vec<usize>,
    /// Inverse map: `local_of_global[g] = Some(local)` iff `g` is owned.
    pub local_of_global: Vec<Option<usize>>,
    /// Faces that need halo exchange.
    pub halo_faces: Vec<HaloFace>,
}

impl Subdomain {
    /// Number of cells owned by this rank.
    pub fn num_cells(&self) -> usize {
        self.global_cells.len()
    }

    /// Global id of a local cell.
    pub fn global_of(&self, local: usize) -> usize {
        self.global_cells[local]
    }

    /// Local id of a global cell, if owned by this rank.
    pub fn local_of(&self, global: usize) -> Option<usize> {
        self.local_of_global[global]
    }

    /// `true` if this rank owns the given global cell.
    pub fn owns(&self, global: usize) -> bool {
        self.local_of(global).is_some()
    }

    /// Ranks this subdomain exchanges halos with (sorted, deduplicated).
    pub fn neighbor_ranks(&self) -> Vec<usize> {
        let mut ranks: Vec<usize> = self.halo_faces.iter().map(|h| h.neighbor_rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structured::StructuredGrid;

    fn mesh(n: usize) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.0)
    }

    #[test]
    fn serial_decomposition_owns_everything() {
        let m = mesh(4);
        let sds = Decomposition2D::serial().decompose(&m);
        assert_eq!(sds.len(), 1);
        assert_eq!(sds[0].num_cells(), 64);
        assert!(sds[0].halo_faces.is_empty());
        assert!(sds[0].neighbor_ranks().is_empty());
        for g in 0..64 {
            assert!(sds[0].owns(g));
        }
    }

    #[test]
    fn rank_coordinates_round_trip() {
        let d = Decomposition2D::new(3, 2);
        assert_eq!(d.num_ranks(), 6);
        for rank in 0..6 {
            let (px, py) = d.coords_of(rank);
            assert_eq!(d.rank_of(px, py), rank);
        }
    }

    #[test]
    fn cells_partition_disjointly_and_completely() {
        let m = mesh(4);
        let d = Decomposition2D::new(2, 2);
        let sds = d.decompose(&m);
        let mut seen = vec![false; m.num_cells()];
        for sd in &sds {
            for &g in &sd.global_cells {
                assert!(!seen[g], "cell {g} owned twice");
                seen[g] = true;
                assert_eq!(
                    sd.local_of(g),
                    Some(sd.global_cells.iter().position(|&x| x == g).unwrap())
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell must be owned");
        // 4x4x4 over 2x2 ranks: each rank owns a 2x2x4 column = 16 cells.
        for sd in &sds {
            assert_eq!(sd.num_cells(), 16);
        }
    }

    #[test]
    fn uneven_extents_are_balanced() {
        let grid = StructuredGrid::new(5, 3, 2, 1.0, 1.0, 1.0);
        let m = UnstructuredMesh::from_structured(&grid, 0.0);
        let d = Decomposition2D::new(2, 3);
        let sds = d.decompose(&m);
        let total: usize = sds.iter().map(|s| s.num_cells()).sum();
        assert_eq!(total, 30);
        // x split of 5 into 2: {3, 2}; y split of 3 into 3: {1, 1, 1};
        // so counts are (3 or 2) * 1 * 2.
        for sd in &sds {
            assert!(sd.num_cells() == 6 || sd.num_cells() == 4);
        }
    }

    #[test]
    fn halo_faces_connect_adjacent_ranks_symmetrically() {
        let m = mesh(4);
        let d = Decomposition2D::new(2, 2);
        let sds = d.decompose(&m);
        // Each rank's halo count: interface area between 2x2x4 columns.
        // Interfaces: each rank touches 2 neighbours through a 2x4 = 8-face
        // interface => 16 halo faces per rank.
        for sd in &sds {
            assert_eq!(sd.halo_faces.len(), 16, "rank {}", sd.rank);
            assert_eq!(sd.neighbor_ranks().len(), 2);
            for h in &sd.halo_faces {
                assert_ne!(h.neighbor_rank, sd.rank);
                assert!(sd.owns(h.global_cell));
                assert!(!sd.owns(h.neighbor_global_cell));
                // Symmetry: the neighbour rank has the mirrored halo face.
                let other = &sds[h.neighbor_rank];
                let mirrored = other.halo_faces.iter().any(|g| {
                    g.global_cell == h.neighbor_global_cell
                        && g.neighbor_global_cell == h.global_cell
                        && g.face == h.neighbor_face
                        && g.neighbor_face == h.face
                });
                assert!(mirrored, "halo face not mirrored on the other rank");
            }
        }
    }

    #[test]
    fn z_is_never_decomposed() {
        // KBA style: full z columns per rank — cells that differ only in z
        // must share an owner.
        let grid = StructuredGrid::new(4, 4, 7, 1.0, 1.0, 1.0);
        let m = UnstructuredMesh::from_structured(&grid, 0.0);
        let d = Decomposition2D::new(2, 2);
        let sds = d.decompose(&m);
        let owner_of = |g: usize| sds.iter().position(|sd| sd.owns(g)).unwrap();
        for j in 0..4 {
            for i in 0..4 {
                let base = owner_of(grid.cell_id(i, j, 0));
                for k in 1..7 {
                    assert_eq!(owner_of(grid.cell_id(i, j, k)), base);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn too_many_ranks_panics() {
        let m = mesh(2);
        let _ = Decomposition2D::new(3, 1).decompose(&m);
    }

    #[test]
    #[should_panic]
    fn zero_rank_decomposition_panics() {
        let _ = Decomposition2D::new(0, 1);
    }

    #[test]
    fn slab_covers_range_without_overlap() {
        for n in [1usize, 5, 16, 17] {
            for parts in 1..=n.min(6) {
                let mut covered = 0;
                let mut prev_end = 0;
                for p in 0..parts {
                    let (s, e) = Decomposition2D::slab(n, parts, p);
                    assert_eq!(s, prev_end);
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_end, n);
            }
        }
    }
}
