//! Typed failure modes of mesh construction and decomposition.
//!
//! The workspace-wide error type (`unsnap_core::error::Error`) wraps
//! [`MeshError`] in its `Mesh` variant, so every mesh failure surfaces to
//! callers with its structured payload intact instead of as a formatted
//! string.

use std::fmt;

/// Errors produced while building or decomposing a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A structured grid with zero cells along some axis.
    EmptyGrid {
        /// Cells along x.
        nx: usize,
        /// Cells along y.
        ny: usize,
        /// Cells along z.
        nz: usize,
    },
    /// A decomposition with zero ranks along some axis.
    EmptyDecomposition {
        /// Ranks along x.
        npx: usize,
        /// Ranks along y.
        npy: usize,
    },
    /// More ranks than cells along a decomposed axis: at least one rank
    /// would own an empty subdomain.
    DecompositionTooCoarse {
        /// Ranks along x.
        npx: usize,
        /// Ranks along y.
        npy: usize,
        /// Mesh cells along x.
        nx: usize,
        /// Mesh cells along y.
        ny: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::EmptyGrid { nx, ny, nz } => {
                write!(
                    f,
                    "grid must have at least one cell per axis, got {nx}x{ny}x{nz}"
                )
            }
            MeshError::EmptyDecomposition { npx, npy } => {
                write!(
                    f,
                    "decomposition must have at least one rank per axis, got {npx}x{npy}"
                )
            }
            MeshError::DecompositionTooCoarse { npx, npy, nx, ny } => write!(
                f,
                "decomposition {npx}x{npy} has more ranks than cells along an axis of the \
                 {nx}x{ny} mesh footprint"
            ),
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_shapes() {
        let e = MeshError::DecompositionTooCoarse {
            npx: 8,
            npy: 2,
            nx: 4,
            ny: 4,
        };
        assert!(e.to_string().contains("8x2"));
        assert!(e.to_string().contains("4x4"));
        let e = MeshError::EmptyGrid {
            nx: 0,
            ny: 3,
            nz: 3,
        };
        assert!(e.to_string().contains("0x3x3"));
        let e = MeshError::EmptyDecomposition { npx: 0, npy: 1 };
        assert!(e.to_string().contains("0x1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MeshError>();
    }
}
