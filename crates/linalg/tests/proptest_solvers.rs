//! Property-based tests for the dense solvers.
//!
//! Strategy: generate random strictly diagonally dominant matrices (the
//! class the DG transport assembly produces) and random right-hand sides,
//! then assert the invariants every direct solver must satisfy:
//!
//! * the residual `‖A x − b‖∞` is tiny relative to the data magnitude;
//! * all three back ends (hand-written GE, reference LU, blocked LU)
//!   agree with one another;
//! * factors can be reused across right-hand sides;
//! * `det(A)` from the LU factors is invariant under the blocked panel
//!   width.

use proptest::prelude::*;
use unsnap_linalg::{
    lu::{factor_blocked, factor_unblocked},
    matrix::DenseMatrix,
    solver::SolverKind,
    vector::{max_abs_diff, norm_inf},
};

/// Strategy: a strictly diagonally dominant n×n matrix plus an RHS.
fn dominant_system(max_n: usize) -> impl Strategy<Value = (DenseMatrix, Vec<f64>)> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(move |(entries, rhs)| {
                let mut a = DenseMatrix::from_vec(n, n, entries).unwrap();
                // Force strict row diagonal dominance.
                for i in 0..n {
                    let off: f64 = a
                        .row(i)
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, v)| v.abs())
                        .sum();
                    a[(i, i)] = off + 1.0 + i as f64 * 0.1;
                }
                (a, rhs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn residual_small_for_all_backends((a, b) in dominant_system(24)) {
        let scale = norm_inf(&b).max(a.inf_norm()).max(1.0);
        for kind in SolverKind::all() {
            let x = kind.build().solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            prop_assert!(max_abs_diff(&ax, &b) <= 1e-9 * scale,
                "residual too large for {kind}");
        }
    }

    #[test]
    fn backends_agree((a, b) in dominant_system(20)) {
        let xs: Vec<Vec<f64>> = SolverKind::all()
            .iter()
            .map(|k| k.build().solve(&a, &b).unwrap())
            .collect();
        for pair in xs.windows(2) {
            prop_assert!(max_abs_diff(&pair[0], &pair[1]) < 1e-8);
        }
    }

    #[test]
    fn determinant_invariant_under_blocking((a, _b) in dominant_system(20)) {
        let reference = factor_unblocked(&a).unwrap().determinant();
        for nb in [1usize, 3, 8, 64] {
            let det = factor_blocked(&a, nb).unwrap().determinant();
            let denom = reference.abs().max(1e-30);
            prop_assert!(((det - reference) / denom).abs() < 1e-8);
        }
    }

    #[test]
    fn factors_reusable_across_rhs((a, b) in dominant_system(16)) {
        let factors = factor_blocked(&a, 4).unwrap();
        let x1 = factors.solve(&b).unwrap();
        let doubled: Vec<f64> = b.iter().map(|v| 2.0 * v).collect();
        let x2 = factors.solve(&doubled).unwrap();
        // Linearity: solving 2b gives 2x.
        let x1_doubled: Vec<f64> = x1.iter().map(|v| 2.0 * v).collect();
        let scale = norm_inf(&x1).max(1.0);
        prop_assert!(max_abs_diff(&x1_doubled, &x2) < 1e-9 * scale);
    }

    #[test]
    fn identity_solves_are_exact(b in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
        let a = DenseMatrix::identity(b.len());
        for kind in SolverKind::all() {
            let x = kind.build().solve(&a, &b).unwrap();
            prop_assert_eq!(&x, &b);
        }
    }

    #[test]
    fn matvec_linearity(
        (a, b) in dominant_system(12),
        alpha in -4.0f64..4.0,
    ) {
        // A (alpha b) == alpha (A b) — sanity for the matvec used in residual checks.
        let scaled: Vec<f64> = b.iter().map(|v| alpha * v).collect();
        let left = a.matvec(&scaled).unwrap();
        let right: Vec<f64> = a.matvec(&b).unwrap().iter().map(|v| alpha * v).collect();
        let scale = norm_inf(&right).max(1.0);
        prop_assert!(max_abs_diff(&left, &right) <= 1e-12 * scale);
    }
}
