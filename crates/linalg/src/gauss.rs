//! Hand-written Gaussian-elimination solver.
//!
//! This is the Rust analogue of the paper's hand-written, vectorised
//! Gaussian-elimination routine (§IV-B): forward elimination with partial
//! pivoting followed by back substitution, with the elimination update
//! written as a tight loop over the contiguous tail of each row so the
//! compiler can auto-vectorise it (the original used OpenMP `simd`
//! constructs for the same effect).
//!
//! For the small, strongly diagonally dominant systems produced by the DG
//! transport assembly, this simple routine beats a general library
//! factorisation up to moderate matrix sizes because it has no blocking
//! overhead and the whole matrix stays in L1 cache; see Table II of the
//! paper and `unsnap-bench`'s `table2` binary.

use crate::error::LinalgError;
use crate::matrix::DenseMatrix;
use crate::solver::LinearSolver;
use crate::Result;

/// Pivot breakdown tolerance: a pivot smaller than this (in absolute value)
/// is treated as numerically singular.
pub const SINGULARITY_TOLERANCE: f64 = 1.0e-300;

/// Hand-written Gaussian elimination with partial pivoting.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussSolver {
    /// If `true`, skip the pivot search and eliminate in natural order.
    ///
    /// The DG transport matrices are diagonally dominant, so pivoting is
    /// not needed for stability; the paper's hand-written solver does not
    /// pivot.  Pivoting remains on by default here for general-purpose
    /// robustness, and the no-pivot path is selectable for a faithful
    /// reproduction of the original kernel.
    pub no_pivoting: bool,
}

impl GaussSolver {
    /// Create a solver with partial pivoting enabled.
    pub fn new() -> Self {
        Self { no_pivoting: false }
    }

    /// Create a solver that eliminates in natural order without pivoting,
    /// matching the paper's hand-written routine.
    pub fn without_pivoting() -> Self {
        Self { no_pivoting: true }
    }

    /// Forward elimination + back substitution on `(a, b)` in place.
    fn eliminate(&self, a: &mut DenseMatrix, b: &mut [f64]) -> Result<()> {
        let n = a.rows();
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                what: "right-hand side",
            });
        }

        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or
            // below the diagonal and swap its row up.
            if !self.no_pivoting {
                let mut piv_row = k;
                let mut piv_val = a[(k, k)].abs();
                for i in (k + 1)..n {
                    let v = a[(i, k)].abs();
                    if v > piv_val {
                        piv_val = v;
                        piv_row = i;
                    }
                }
                if piv_row != k {
                    a.swap_rows(k, piv_row);
                    b.swap(k, piv_row);
                }
            }

            let pivot = a[(k, k)];
            if pivot.abs() < SINGULARITY_TOLERANCE {
                return Err(LinalgError::Singular {
                    column: k,
                    pivot: pivot.abs(),
                });
            }
            let inv_pivot = 1.0 / pivot;

            // Eliminate column k from all rows below.  The inner loop runs
            // over the contiguous tail of each row (stride-1), which is the
            // loop the paper vectorises with `omp simd`.
            for i in (k + 1)..n {
                let factor = a[(i, k)] * inv_pivot;
                if factor == 0.0 {
                    continue;
                }
                a[(i, k)] = 0.0;
                let (row_k, row_i) = a.two_rows_mut(k, i);
                for (aij, akj) in row_i[(k + 1)..].iter_mut().zip(row_k[(k + 1)..].iter()) {
                    *aij -= factor * akj;
                }
                b[i] -= factor * b[k];
            }
        }

        // Back substitution, again with a stride-1 inner loop.
        for i in (0..n).rev() {
            let mut acc = b[i];
            let row = a.row(i);
            for (j, aij) in row.iter().enumerate().skip(i + 1) {
                acc -= aij * b[j];
            }
            b[i] = acc / a[(i, i)];
        }

        Ok(())
    }
}

impl LinearSolver for GaussSolver {
    fn solve_in_place(&self, a: &mut DenseMatrix, b: &mut [f64]) -> Result<()> {
        self.eliminate(a, b)
    }

    fn name(&self) -> &'static str {
        "gaussian-elimination"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        max_abs_diff(&ax, b)
    }

    #[test]
    fn solves_identity() {
        let a = DenseMatrix::identity(6);
        let b: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let x = GaussSolver::new().solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_known_2x2() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = DenseMatrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let b = vec![5.0, 10.0];
        let x = GaussSolver::new().solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solves_with_pivoting_needed() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let b = vec![2.0, 3.0];
        let x = GaussSolver::new().solve(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn no_pivot_variant_handles_dominant_systems() {
        let n = 16;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                20.0 + i as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let x = GaussSolver::without_pivoting().solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn no_pivot_fails_on_zero_leading_pivot() {
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let b = vec![2.0, 3.0];
        let err = GaussSolver::without_pivoting().solve(&a, &b).unwrap_err();
        matches!(err, LinalgError::Singular { .. });
    }

    #[test]
    fn detects_singular_matrix() {
        let a =
            DenseMatrix::from_vec(3, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 1.0, 0.0, 1.0]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let err = GaussSolver::new().solve(&a, &b).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let mut a = DenseMatrix::zeros(2, 3);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            GaussSolver::new().solve_in_place(&mut a, &mut b),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_rhs_length_mismatch() {
        let mut a = DenseMatrix::identity(3);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            GaussSolver::new().solve_in_place(&mut a, &mut b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_dominant_systems_have_small_residual() {
        // Deterministic pseudo-random fill (no rand dependency needed here).
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for n in [4usize, 8, 16, 27, 64] {
            let mut a = DenseMatrix::from_fn(n, n, |_, _| 0.2 * next());
            for i in 0..n {
                a[(i, i)] = n as f64; // ensure dominance
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = GaussSolver::new().solve(&a, &b).unwrap();
            assert!(
                residual(&a, &x, &b) < 1e-9,
                "residual too large for n = {n}"
            );
        }
    }

    #[test]
    fn solve_does_not_mutate_inputs() {
        let a = DenseMatrix::from_vec(2, 2, vec![4.0, 1.0, 2.0, 3.0]).unwrap();
        let b = vec![1.0, 2.0];
        let a_before = a.clone();
        let b_before = b.clone();
        let _ = GaussSolver::new().solve(&a, &b).unwrap();
        assert_eq!(a, a_before);
        assert_eq!(b, b_before);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(GaussSolver::new().name(), "gaussian-elimination");
    }
}
