//! Batched solution of many independent small systems.
//!
//! §IV-B of the paper discusses batched LAPACK routines: they cannot help
//! the flat-MPI configuration (each rank solves one matrix at a time and
//! matrices are built on the fly), but under the threaded sweep schedule
//! the elements of a wavefront bucket × energy groups form a natural batch.
//! This module provides that capability: a [`BatchedSolver`] that solves a
//! slice of `(matrix, rhs)` systems either sequentially or on the shared
//! worker pool, and reports aggregate statistics so the pre-assembly
//! ablation can quantify the storage-versus-time trade-off the paper
//! mentions.  The parallel path is deterministic: systems are processed
//! in index-ordered chunks, each solved independently in place with one
//! solver instance per worker, and an error aborts with the
//! earliest-index failure exactly as the sequential loop would report it.

use rayon::prelude::*;

use crate::error::LinalgError;
use crate::matrix::DenseMatrix;
use crate::solver::{solve_flops, SolverKind};
use crate::Result;

/// Aggregate report for a batched solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSolveReport {
    /// Number of systems solved.
    pub systems: usize,
    /// Total matrix entries stored across the batch (FP64 words).
    pub matrix_words: usize,
    /// Estimated floating point operations performed.
    pub flops: f64,
}

/// Solves batches of independent dense systems with a chosen back end.
#[derive(Debug, Clone, Copy)]
pub struct BatchedSolver {
    kind: SolverKind,
    /// Solve the batch with rayon when `true`; sequentially otherwise.
    pub parallel: bool,
}

impl BatchedSolver {
    /// Create a sequential batched solver of the given kind.
    pub fn new(kind: SolverKind) -> Self {
        Self {
            kind,
            parallel: false,
        }
    }

    /// Enable/disable rayon parallelism over the batch.
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// The solver kind used for each system.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Solve every `(A_i, b_i)` pair in place: each `b_i` is overwritten
    /// with the solution and each `A_i` with factorisation data.
    ///
    /// All systems must be square and each right-hand side must match its
    /// matrix; a shape violation is rejected up front with **nothing**
    /// mutated.  A *runtime* failure (a singular system) deterministically
    /// reports the earliest-index error in both execution modes, but the
    /// set of other systems already overwritten by then differs: the
    /// sequential path has solved exactly the prefix, while the parallel
    /// path may have solved a schedule-dependent subset of later systems
    /// before observing the cancellation.  Treat the batch contents as
    /// consumed whenever this returns an error.
    pub fn solve_batch_in_place(
        &self,
        systems: &mut [(DenseMatrix, Vec<f64>)],
    ) -> Result<BatchSolveReport> {
        // Validate up front so a mid-batch error cannot leave half the batch
        // solved and half untouched without the caller knowing which.
        for (a, b) in systems.iter() {
            if !a.is_square() {
                return Err(LinalgError::NotSquare {
                    rows: a.rows(),
                    cols: a.cols(),
                });
            }
            if a.rows() != b.len() {
                return Err(LinalgError::DimensionMismatch {
                    expected: a.rows(),
                    found: b.len(),
                    what: "batched right-hand side",
                });
            }
        }

        let matrix_words: usize = systems.iter().map(|(a, _)| a.rows() * a.cols()).sum();
        let flops: f64 = systems.iter().map(|(a, _)| solve_flops(a.rows())).sum();
        let kind = self.kind;

        if self.parallel {
            // One solver per worker (not per system): `try_for_each_init`
            // creates the back end at most once per pool thread, and the
            // earliest-index error wins deterministically — matching the
            // sequential path, which also stops at the first failure.
            systems.par_iter_mut().try_for_each_init(
                || kind.build(),
                |solver, (a, b)| solver.solve_in_place(a, b),
            )?;
        } else {
            let solver = kind.build();
            for (a, b) in systems.iter_mut() {
                solver.solve_in_place(a, b)?;
            }
        }

        Ok(BatchSolveReport {
            systems: systems.len(),
            matrix_words,
            flops,
        })
    }

    /// Solve a batch given shared matrices and per-system right-hand sides,
    /// returning the solutions.  Used by the pre-assembly ablation where a
    /// single factorised matrix is reused across groups.
    pub fn solve_many_rhs(&self, a: &DenseMatrix, rhs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let solver = self.kind.build();
        if self.parallel {
            rhs.par_iter().map(|b| solver.solve(a, b)).collect()
        } else {
            rhs.iter().map(|b| solver.solve(a, b)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::max_abs_diff;

    fn make_batch(count: usize, n: usize) -> Vec<(DenseMatrix, Vec<f64>)> {
        (0..count)
            .map(|s| {
                let a = DenseMatrix::from_fn(n, n, |i, j| {
                    if i == j {
                        10.0 + s as f64
                    } else {
                        1.0 / (1.0 + (i + j + s) as f64)
                    }
                });
                let b: Vec<f64> = (0..n).map(|i| (i + s) as f64 + 1.0).collect();
                (a, b)
            })
            .collect()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let originals = make_batch(6, 8);
        let mut seq = originals.clone();
        let mut par = originals.clone();
        let report_seq = BatchedSolver::new(SolverKind::GaussianElimination)
            .solve_batch_in_place(&mut seq)
            .unwrap();
        let report_par = BatchedSolver::new(SolverKind::GaussianElimination)
            .with_parallelism(true)
            .solve_batch_in_place(&mut par)
            .unwrap();
        assert_eq!(report_seq, report_par);
        for ((_, xs), (_, xp)) in seq.iter().zip(par.iter()) {
            assert!(max_abs_diff(xs, xp) < 1e-14);
        }
    }

    #[test]
    fn solutions_satisfy_original_systems() {
        let originals = make_batch(4, 16);
        let mut work = originals.clone();
        BatchedSolver::new(SolverKind::Mkl)
            .solve_batch_in_place(&mut work)
            .unwrap();
        for ((a0, b0), (_, x)) in originals.iter().zip(work.iter()) {
            let ax = a0.matvec(x).unwrap();
            assert!(max_abs_diff(&ax, b0) < 1e-9);
        }
    }

    #[test]
    fn report_counts_words_and_flops() {
        let mut batch = make_batch(3, 8);
        let report = BatchedSolver::new(SolverKind::ReferenceLu)
            .solve_batch_in_place(&mut batch)
            .unwrap();
        assert_eq!(report.systems, 3);
        assert_eq!(report.matrix_words, 3 * 64);
        assert!(report.flops > 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut batch: Vec<(DenseMatrix, Vec<f64>)> = vec![];
        let report = BatchedSolver::new(SolverKind::GaussianElimination)
            .solve_batch_in_place(&mut batch)
            .unwrap();
        assert_eq!(report.systems, 0);
        assert_eq!(report.matrix_words, 0);
    }

    #[test]
    fn invalid_system_rejected_before_any_solve() {
        let mut batch = make_batch(2, 4);
        batch.push((DenseMatrix::zeros(3, 4), vec![0.0; 3]));
        let before = batch[0].1.clone();
        let err = BatchedSolver::new(SolverKind::GaussianElimination)
            .solve_batch_in_place(&mut batch)
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotSquare { .. }));
        // Nothing was modified.
        assert_eq!(batch[0].1, before);
    }

    #[test]
    fn rhs_mismatch_rejected() {
        let mut batch = vec![(DenseMatrix::identity(3), vec![1.0, 2.0])];
        assert!(matches!(
            BatchedSolver::new(SolverKind::GaussianElimination).solve_batch_in_place(&mut batch),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn shared_matrix_many_rhs() {
        let a = DenseMatrix::from_fn(8, 8, |i, j| if i == j { 4.0 } else { 0.25 });
        let rhs: Vec<Vec<f64>> = (0..5).map(|g| vec![g as f64 + 1.0; 8]).collect();
        let xs = BatchedSolver::new(SolverKind::Mkl)
            .solve_many_rhs(&a, &rhs)
            .unwrap();
        assert_eq!(xs.len(), 5);
        for (b, x) in rhs.iter().zip(xs.iter()) {
            let ax = a.matvec(x).unwrap();
            assert!(max_abs_diff(&ax, b) < 1e-10);
        }
    }

    #[test]
    fn parallel_shared_matrix_many_rhs_matches_sequential_bitwise() {
        let a = DenseMatrix::from_fn(8, 8, |i, j| if i == j { 4.0 } else { 0.25 });
        let rhs: Vec<Vec<f64>> = (0..12).map(|g| vec![g as f64 + 1.0; 8]).collect();
        let seq = BatchedSolver::new(SolverKind::ReferenceLu)
            .solve_many_rhs(&a, &rhs)
            .unwrap();
        let par = BatchedSolver::new(SolverKind::ReferenceLu)
            .with_parallelism(true)
            .solve_many_rhs(&a, &rhs)
            .unwrap();
        assert_eq!(seq, par, "parallel rhs fan-out must be bit-for-bit");
    }

    #[test]
    fn parallel_batch_reports_the_same_error_as_sequential() {
        // Singular systems at indices 1 and 3: both paths must surface
        // the earliest one (deterministic first-error-wins).
        let mut batch = make_batch(5, 4);
        batch[1].0 = DenseMatrix::zeros(4, 4);
        batch[3].0 = DenseMatrix::from_fn(4, 4, |i, _| i as f64);
        let seq_err = BatchedSolver::new(SolverKind::GaussianElimination)
            .solve_batch_in_place(&mut batch.clone())
            .unwrap_err();
        let par_err = BatchedSolver::new(SolverKind::GaussianElimination)
            .with_parallelism(true)
            .solve_batch_in_place(&mut batch)
            .unwrap_err();
        assert_eq!(format!("{seq_err:?}"), format!("{par_err:?}"));
    }

    #[test]
    fn kind_accessor() {
        let s = BatchedSolver::new(SolverKind::Mkl);
        assert_eq!(s.kind(), SolverKind::Mkl);
    }
}
