//! Row-major dense matrix used for the per-element DG systems.
//!
//! The matrices handled by UnSNAP are small (8×8 up to a few hundred
//! square), are assembled afresh for every element/angle/group triple, and
//! live entirely in cache.  A simple contiguous row-major `Vec<f64>` is the
//! right representation: rows are the unit of the inner loops in both the
//! assembly and the Gaussian-elimination solve, so row-contiguity gives the
//! stride-1 access the paper relies on for vectorisation.

use serde::{Deserialize, Serialize};

use crate::error::LinalgError;
use crate::Result;

/// A dense, row-major, `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a generator function `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Create a matrix taking ownership of an existing row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                found: data.len(),
                what: "matrix buffer length",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable views of two *distinct* rows simultaneously.
    ///
    /// Used by pivoting factorisations to swap / update rows without
    /// cloning.  Panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert!(a != b, "two_rows_mut requires distinct rows");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..a * c + c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            let (rb, ra) = (&mut lo[b * c..b * c + c], &mut hi[..c]);
            (ra, rb)
        }
    }

    /// Swap rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let c = self.cols;
        let (ra, rb) = self.two_rows_mut(a, b);
        for k in 0..c {
            std::mem::swap(&mut ra[k], &mut rb[k]);
        }
    }

    /// Fill the whole matrix with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Reset to all zeros, keeping the allocation.
    pub fn clear(&mut self) {
        self.fill(0.0);
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// Returns an error if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                what: "matvec operand",
            });
        }
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Matrix–vector product into a caller-provided buffer (no allocation).
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
                what: "matvec operand",
            });
        }
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
                what: "matvec output",
            });
        }
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(())
    }

    /// Dense matrix–matrix product `C = A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                found: other.rows,
                what: "matmul inner dimension",
            });
        }
        let mut c = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the innermost loop streaming over
        // contiguous rows of both B and C.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let crow = c.row_mut(i);
                for (cij, bkj) in crow.iter_mut().zip(brow.iter()) {
                    *cij += aik * bkj;
                }
            }
        }
        Ok(c)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `A += alpha * B` (element-wise).
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows * self.cols,
                found: other.rows * other.cols,
                what: "axpy operand",
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// `true` if the matrix is strictly diagonally dominant by rows.
    ///
    /// The DG streaming-collision matrices assembled by UnSNAP are strongly
    /// diagonally dominant for physically sensible cross sections, which is
    /// why a solver without pivoting is viable in the original mini-app; we
    /// expose the predicate so tests and callers can check the assumption.
    pub fn is_diagonally_dominant(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            let diag = self[(i, i)].abs();
            let off: f64 = self
                .row(i)
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            if diag <= off {
                return false;
            }
        }
        true
    }

    /// Memory footprint of the matrix entries in bytes (FP64).
    ///
    /// This is the quantity reported in Table I of the paper.
    pub fn footprint_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = DenseMatrix::identity(3);
        assert!(i.is_square());
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn row_access_is_contiguous() {
        let m = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = DenseMatrix::from_fn(3, 2, |i, _| i as f64);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[2.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
        // swapping a row with itself is a no-op
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = DenseMatrix::from_fn(4, 2, |i, _| i as f64);
        {
            let (a, b) = m.two_rows_mut(1, 3);
            assert_eq!(a, &[1.0, 1.0]);
            assert_eq!(b, &[3.0, 3.0]);
        }
        {
            let (a, b) = m.two_rows_mut(3, 1);
            assert_eq!(a, &[3.0, 3.0]);
            assert_eq!(b, &[1.0, 1.0]);
        }
    }

    #[test]
    #[should_panic]
    fn two_rows_mut_same_row_panics() {
        let mut m = DenseMatrix::zeros(2, 2);
        let _ = m.two_rows_mut(1, 1);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        assert!(m.matvec(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_fn(3, 3, |i, j| (i + j) as f64 + 0.5);
        let i = DenseMatrix::identity(3);
        let prod = a.matmul(&i).unwrap();
        assert_eq!(prod, a);
        let prod2 = i.matmul(&a).unwrap();
        assert_eq!(prod2, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = DenseMatrix::from_fn(2, 4, |i, j| (10 * i + j) as f64);
        let t = a.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
        assert_eq!(t[(3, 1)], a[(1, 3)]);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-14);
        assert_eq!(a.inf_norm(), 4.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn diagonal_dominance() {
        let dom = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 5.0 } else { 1.0 });
        assert!(dom.is_diagonally_dominant());
        let not = DenseMatrix::from_fn(3, 3, |_, _| 1.0);
        assert!(!not.is_diagonally_dominant());
        assert!(!DenseMatrix::zeros(2, 3).is_diagonally_dominant());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = DenseMatrix::identity(2);
        let b = DenseMatrix::from_fn(2, 2, |_, _| 1.0);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 2.0, 2.0, 3.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.5, 1.0, 1.0, 1.5]);
        let c = DenseMatrix::zeros(3, 3);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn footprint_matches_table1() {
        // Table I of the paper: order 1 => 8x8 => 0.5 kB; order 3 => 64x64 => 32 kB.
        assert_eq!(DenseMatrix::zeros(8, 8).footprint_bytes(), 512);
        assert_eq!(DenseMatrix::zeros(64, 64).footprint_bytes(), 32 * 1024);
    }

    #[test]
    fn fill_and_clear() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.fill(3.0);
        assert!(m.as_slice().iter().all(|&x| x == 3.0));
        m.clear();
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn display_does_not_panic() {
        let m = DenseMatrix::identity(2);
        let s = format!("{m}");
        assert!(s.contains("1.00000e0"));
    }
}
