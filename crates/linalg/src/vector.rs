//! Small dense-vector helpers used by the solvers and the transport
//! kernels.
//!
//! These are deliberately plain free functions over `&[f64]` /
//! `&mut [f64]`: the flux and source arrays in UnSNAP are flat slices into
//! larger storage, so an owning vector type would force copies in the hot
//! path.

/// Dot product of two equally sized slices.
///
/// Panics (debug) if the lengths differ; in release the shorter length
/// wins, matching `zip` semantics.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x` (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scale a slice in place: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Infinity norm (maximum absolute value); 0 for an empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Maximum absolute difference between two slices.
///
/// This is the convergence measure used by the SNAP/UnSNAP iteration
/// drivers (max pointwise change in the scalar flux between iterations).
#[inline]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Relative maximum difference: `max |a-b| / max(|b|, floor)`.
///
/// The floor guards against division by ~zero reference values.
#[inline]
pub fn max_rel_diff(a: &[f64], b: &[f64], floor: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .fold(0.0, |m, (x, y)| m.max((x - y).abs() / y.abs().max(floor)))
}

/// Copy `src` into `dst` (lengths must match).
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    debug_assert_eq!(src.len(), dst.len());
    dst.copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm1(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn diffs() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.0];
        assert_eq!(max_abs_diff(&a, &b), 1.0);
        assert!((max_rel_diff(&a, &b, 1e-12) - 0.5).abs() < 1e-14);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn rel_diff_floor_guards_zero() {
        let a = [1.0e-30];
        let b = [0.0];
        // Without the floor this would be inf.
        assert!(max_rel_diff(&a, &b, 1.0).is_finite());
    }

    #[test]
    fn copy_slice() {
        let src = [1.0, 2.0];
        let mut dst = [0.0, 0.0];
        copy(&src, &mut dst);
        assert_eq!(dst, src);
    }
}
