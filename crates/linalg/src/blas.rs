//! Minimal BLAS-like building blocks used by the blocked LU factorisation.
//!
//! The MKL `dgesv` path the paper benchmarks is, internally, a blocked
//! right-looking LU built on Level-3 BLAS (`dtrsm` + `dgemm` on the
//! trailing matrix).  To stand in for it faithfully we implement the same
//! structure: the routines below operate on rectangular sub-blocks of a
//! row-major [`DenseMatrix`] addressed by row/column offsets, so the
//! factorisation in [`crate::lu::BlockedLuSolver`] reads exactly like the
//! textbook blocked algorithm.

use crate::matrix::DenseMatrix;

/// `C[c0.., d0..] -= A[a_rows, k] * B[k, b_cols]` — a GEMM update on a
/// trailing sub-block.
///
/// * `a` supplies the `m × kk` left factor starting at `(ar, ac)`,
/// * `b` supplies the `kk × n` right factor starting at `(br, bc)`,
/// * the product is subtracted from the `m × n` block of `c` starting at
///   `(cr, cc)`.
///
/// All three may alias the *same* matrix as long as the blocks do not
/// overlap; the blocked LU always updates the trailing matrix with panels
/// that are disjoint from it, which we enforce by copying the two panels
/// into scratch buffers first (the panels are small — `nb` columns — so the
/// copy is cheap and keeps the code safe without `unsafe`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_sub_block(
    m: usize,
    n: usize,
    kk: usize,
    a: &DenseMatrix,
    ar: usize,
    ac: usize,
    b: &DenseMatrix,
    br: usize,
    bc: usize,
    c: &mut DenseMatrix,
    cr: usize,
    cc: usize,
) {
    if m == 0 || n == 0 || kk == 0 {
        return;
    }
    // Copy panels out so we can mutate `c` freely even when it aliases.
    let mut a_panel = vec![0.0; m * kk];
    for i in 0..m {
        for k in 0..kk {
            a_panel[i * kk + k] = a[(ar + i, ac + k)];
        }
    }
    let mut b_panel = vec![0.0; kk * n];
    for k in 0..kk {
        for j in 0..n {
            b_panel[k * n + j] = b[(br + k, bc + j)];
        }
    }
    // i-k-j ordering: innermost loop is stride-1 over a row of C and a row
    // of the B panel.
    for i in 0..m {
        let crow = &mut c.row_mut(cr + i)[cc..cc + n];
        for k in 0..kk {
            let aik = a_panel[i * kk + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &b_panel[k * n..k * n + n];
            for (cij, bkj) in crow.iter_mut().zip(brow.iter()) {
                *cij -= aik * bkj;
            }
        }
    }
}

/// Triangular solve with a unit-lower-triangular panel:
/// `B[r0.., c0..] <- L^{-1} B` where `L` is the `kk × kk` unit lower
/// triangle stored in `a` starting at `(lr, lc)` and `B` is the `kk × n`
/// block of `b` starting at `(br, bc)`.
///
/// This is the `dtrsm('L', 'L', 'N', 'U', ...)` call of the blocked LU.
#[allow(clippy::too_many_arguments)]
pub fn trsm_lower_unit_left(
    kk: usize,
    n: usize,
    a: &DenseMatrix,
    lr: usize,
    lc: usize,
    b: &mut DenseMatrix,
    br: usize,
    bc: usize,
) {
    if kk == 0 || n == 0 {
        return;
    }
    // Forward substitution, one block row at a time.  L is unit diagonal.
    for i in 0..kk {
        // Copy multipliers for row i of L (columns 0..i) to avoid aliasing
        // issues when a and b are the same matrix.
        let lrow: Vec<f64> = (0..i).map(|k| a[(lr + i, lc + k)]).collect();
        for k in 0..i {
            let lik = lrow[k];
            if lik == 0.0 {
                continue;
            }
            let bk: Vec<f64> = b.row(br + k)[bc..bc + n].to_vec();
            let bi = &mut b.row_mut(br + i)[bc..bc + n];
            for (bij, bkj) in bi.iter_mut().zip(bk.iter()) {
                *bij -= lik * bkj;
            }
        }
    }
}

/// Apply a row-permutation vector to a right-hand-side slice in place.
///
/// `ipiv[k] = p` means "at step k, row k was swapped with row p", i.e. the
/// LAPACK `IPIV` convention (0-based here).
pub fn apply_row_pivots(ipiv: &[usize], b: &mut [f64]) {
    for (k, &p) in ipiv.iter().enumerate() {
        if p != k {
            b.swap(k, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_sub_block_full_matrices() {
        // C -= A * B on full extents equals matmul.
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut c = DenseMatrix::zeros(2, 2);
        gemm_sub_block(2, 2, 2, &a, 0, 0, &b, 0, 0, &mut c, 0, 0);
        // c = -(a*b)
        assert_eq!(c.as_slice(), &[-19.0, -22.0, -43.0, -50.0]);
    }

    #[test]
    fn gemm_sub_block_offsets() {
        // Embed the same product in the lower-right 2x2 corner of a 3x3.
        let big = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0);
        let mut c = DenseMatrix::zeros(3, 3);
        gemm_sub_block(2, 2, 1, &big, 1, 0, &big, 0, 1, &mut c, 1, 1);
        // A panel = rows 1..3, col 0 = [4, 7]; B panel = row 0, cols 1..3 = [2, 3]
        assert_eq!(c[(1, 1)], -8.0);
        assert_eq!(c[(1, 2)], -12.0);
        assert_eq!(c[(2, 1)], -14.0);
        assert_eq!(c[(2, 2)], -21.0);
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn gemm_degenerate_dims_are_noops() {
        let a = DenseMatrix::identity(2);
        let mut c = DenseMatrix::zeros(2, 2);
        gemm_sub_block(0, 2, 2, &a, 0, 0, &a, 0, 0, &mut c, 0, 0);
        gemm_sub_block(2, 0, 2, &a, 0, 0, &a, 0, 0, &mut c, 0, 0);
        gemm_sub_block(2, 2, 0, &a, 0, 0, &a, 0, 0, &mut c, 0, 0);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn trsm_solves_unit_lower_system() {
        // L = [[1,0],[2,1]]; B = L * X where X = [[1,2],[3,4]]
        // => B = [[1,2],[5,8]]; trsm should recover X.
        let mut combined = DenseMatrix::zeros(2, 4);
        combined[(0, 0)] = 1.0;
        combined[(1, 0)] = 2.0;
        combined[(1, 1)] = 1.0;
        combined[(0, 2)] = 1.0;
        combined[(0, 3)] = 2.0;
        combined[(1, 2)] = 5.0;
        combined[(1, 3)] = 8.0;
        let l = combined.clone();
        trsm_lower_unit_left(2, 2, &l, 0, 0, &mut combined, 0, 2);
        assert_eq!(combined[(0, 2)], 1.0);
        assert_eq!(combined[(0, 3)], 2.0);
        assert_eq!(combined[(1, 2)], 3.0);
        assert_eq!(combined[(1, 3)], 4.0);
    }

    #[test]
    fn pivots_apply_like_lapack() {
        // Swapping (0<->2) then (1<->1) then (2<->2).
        let ipiv = vec![2, 1, 2];
        let mut b = vec![10.0, 20.0, 30.0];
        apply_row_pivots(&ipiv, &mut b);
        assert_eq!(b, vec![30.0, 20.0, 10.0]);
    }
}
