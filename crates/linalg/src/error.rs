//! Error type shared by all solvers in the crate.

use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension that was actually supplied.
        found: usize,
        /// Human-readable description of which operand mismatched.
        what: &'static str,
    },
    /// The matrix is (numerically) singular: no pivot larger than the
    /// breakdown tolerance could be found in column `column`.
    Singular {
        /// Column at which factorisation broke down (0-based).
        column: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// An index used to address a batch entry was out of range.
    BatchIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of systems in the batch.
        len: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::DimensionMismatch {
                expected,
                found,
                what,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, found {found}"
            ),
            LinalgError::Singular { column, pivot } => write!(
                f,
                "matrix is numerically singular at column {column} (|pivot| = {pivot:.3e})"
            ),
            LinalgError::BatchIndexOutOfRange { index, len } => {
                write!(f, "batch index {index} out of range for batch of {len}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { rows: 3, cols: 4 };
        assert_eq!(e.to_string(), "matrix is not square (3x4)");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            expected: 8,
            found: 9,
            what: "right-hand side",
        };
        assert!(e.to_string().contains("right-hand side"));
        assert!(e.to_string().contains("expected 8"));
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular {
            column: 2,
            pivot: 1.0e-20,
        };
        assert!(e.to_string().contains("column 2"));
    }

    #[test]
    fn display_batch_range() {
        let e = LinalgError::BatchIndexOutOfRange { index: 7, len: 3 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
