//! LAPACK-style LU factorisations: an unblocked reference (`dgetf2`-like)
//! and a panel-blocked right-looking variant (`dgetrf`-like) that stands in
//! for Intel MKL's `dgesv` in the paper's Table II comparison.
//!
//! Both factorise `P A = L U` with partial (row) pivoting, then solve by
//! applying the permutation, forward substitution with unit-lower `L` and
//! back substitution with upper `U`.
//!
//! The blocked variant factorises `nb`-column panels with the unblocked
//! kernel, then updates the trailing matrix with a triangular solve and a
//! GEMM — exactly the structure a vendor library uses, and the reason the
//! library wins once the matrix is larger than L1 cache (order ≥ 4 in the
//! paper) while losing to the hand-written Gaussian elimination below that.

use serde::{Deserialize, Serialize};

use crate::blas::{apply_row_pivots, gemm_sub_block, trsm_lower_unit_left};
use crate::error::LinalgError;
use crate::gauss::SINGULARITY_TOLERANCE;
use crate::matrix::DenseMatrix;
use crate::solver::LinearSolver;
use crate::Result;

/// The result of an LU factorisation: `P A = L U` packed LAPACK-style.
///
/// `L` (unit lower) and `U` (upper) share the storage of the factored
/// matrix; `ipiv[k] = p` records that row `k` was swapped with row `p` at
/// step `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LuFactors {
    /// Packed L\U factors (row-major, same shape as the input matrix).
    pub lu: DenseMatrix,
    /// Pivot rows in LAPACK `IPIV` convention (0-based).
    pub ipiv: Vec<usize>,
    /// Number of row swaps actually performed (parity of the permutation).
    pub swaps: usize,
}

impl LuFactors {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b` using the stored factors; `b` is overwritten with
    /// the solution.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        let n = self.n();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
                what: "right-hand side",
            });
        }
        apply_row_pivots(&self.ipiv, b);
        // Forward substitution with unit-lower L.
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = b[i];
            for j in 0..i {
                acc -= row[j] * b[j];
            }
            b[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = b[i];
            for j in (i + 1)..n {
                acc -= row[j] * b[j];
            }
            b[i] = acc / row[i];
        }
        Ok(())
    }

    /// Solve for a freshly allocated solution vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Determinant of the original matrix, computed from the factors.
    pub fn determinant(&self) -> f64 {
        let n = self.n();
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Cheap condition estimate: `max |u_ii| / min |u_ii|`.
    ///
    /// Not a true condition number, but a useful smoke test that the DG
    /// matrices stay well conditioned across element orders.
    pub fn diagonal_condition_estimate(&self) -> f64 {
        let n = self.n();
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..n {
            let d = self.lu[(i, i)].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if lo == 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    }
}

/// Factorise in place with the unblocked (`dgetf2`-style) kernel over the
/// square sub-block starting at `(off, off)` with size `m`.
fn factor_unblocked_panel(
    a: &mut DenseMatrix,
    off: usize,
    m: usize,
    panel_cols: usize,
    ipiv: &mut [usize],
    swaps: &mut usize,
) -> Result<()> {
    let n_total = a.cols();
    for k in 0..panel_cols {
        let col = off + k;
        // Pivot search within the panel's rows.
        let mut piv_row = col;
        let mut piv_val = a[(col, col)].abs();
        for i in (col + 1)..(off + m) {
            let v = a[(i, col)].abs();
            if v > piv_val {
                piv_val = v;
                piv_row = i;
            }
        }
        ipiv[col] = piv_row;
        if piv_row != col {
            // Swap the *entire* rows so previously factored columns and the
            // trailing matrix are permuted consistently (LAPACK behaviour).
            a.swap_rows(col, piv_row);
            *swaps += 1;
        }
        let pivot = a[(col, col)];
        if pivot.abs() < SINGULARITY_TOLERANCE {
            return Err(LinalgError::Singular {
                column: col,
                pivot: pivot.abs(),
            });
        }
        let inv_pivot = 1.0 / pivot;
        // Compute multipliers and update the remaining panel columns.
        for i in (col + 1)..(off + m) {
            let mult = a[(i, col)] * inv_pivot;
            a[(i, col)] = mult;
            if mult == 0.0 {
                continue;
            }
            // Only update within the panel here; the trailing matrix is
            // updated by the caller (blocked) or implicitly when
            // panel_cols == full width (unblocked).
            let update_end = (off + panel_cols).min(n_total);
            let (row_k, row_i) = a.two_rows_mut(col, i);
            for j in (col + 1)..update_end {
                row_i[j] -= mult * row_k[j];
            }
        }
    }
    Ok(())
}

/// Unblocked LU factorisation with partial pivoting (reference
/// implementation, LAPACK `dgetf2` analogue).
pub fn factor_unblocked(a: &DenseMatrix) -> Result<LuFactors> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    let mut swaps = 0usize;
    factor_unblocked_panel(&mut lu, 0, n, n, &mut ipiv, &mut swaps)?;
    Ok(LuFactors { lu, ipiv, swaps })
}

/// Blocked LU factorisation with partial pivoting (LAPACK `dgetrf`
/// analogue, right-looking variant) with panel width `nb`.
pub fn factor_blocked(a: &DenseMatrix, nb: usize) -> Result<LuFactors> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let nb = nb.max(1);
    if n <= nb {
        return factor_unblocked(a);
    }
    let mut lu = a.clone();
    let mut ipiv = vec![0usize; n];
    let mut swaps = 0usize;

    let mut col = 0usize;
    while col < n {
        let jb = nb.min(n - col);
        let rows_below = n - col;
        // Factor the current panel (columns col .. col+jb) over all rows
        // below the diagonal.
        factor_unblocked_panel(&mut lu, col, rows_below, jb, &mut ipiv, &mut swaps)?;

        let trailing = n - col - jb;
        if trailing > 0 {
            // Copy the small L11 (jb x jb) and L21 (trailing x jb) panels out
            // so the in-place updates below need no full-matrix clone.
            let l11 = DenseMatrix::from_fn(jb, jb, |i, j| lu[(col + i, col + j)]);
            // Triangular solve: U12 <- L11^{-1} A12.
            trsm_lower_unit_left(jb, trailing, &l11, 0, 0, &mut lu, col, col + jb);
            let l21 = DenseMatrix::from_fn(trailing, jb, |i, j| lu[(col + jb + i, col + j)]);
            let u12 = DenseMatrix::from_fn(jb, trailing, |i, j| lu[(col + i, col + jb + j)]);
            // Trailing update: A22 <- A22 - L21 * U12.
            gemm_sub_block(
                trailing,
                trailing,
                jb,
                &l21,
                0,
                0,
                &u12,
                0,
                0,
                &mut lu,
                col + jb,
                col + jb,
            );
        }
        col += jb;
    }

    Ok(LuFactors { lu, ipiv, swaps })
}

/// Unblocked LU solver (reference LAPACK style).
#[derive(Debug, Clone, Copy, Default)]
pub struct LuSolver;

impl LuSolver {
    /// Create a new reference LU solver.
    pub fn new() -> Self {
        Self
    }

    /// Factorise `a`, retaining the factors for repeated solves.
    pub fn factor(&self, a: &DenseMatrix) -> Result<LuFactors> {
        factor_unblocked(a)
    }
}

impl LinearSolver for LuSolver {
    fn solve_in_place(&self, a: &mut DenseMatrix, b: &mut [f64]) -> Result<()> {
        let factors = factor_unblocked(a)?;
        factors.solve_in_place(b)
    }

    fn name(&self) -> &'static str {
        "reference-lu"
    }
}

/// Panel-blocked LU solver — the MKL `dgesv` stand-in.
///
/// The default panel width of 32 keeps a panel of a 216×216 (order-5)
/// matrix within L1 cache on typical CPUs, mirroring the cache-blocking
/// rationale the paper gives for MKL's advantage at high element orders.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BlockedLuSolver {
    /// Panel width (number of columns factored per block step).
    pub panel_width: usize,
}

impl Default for BlockedLuSolver {
    fn default() -> Self {
        Self { panel_width: 32 }
    }
}

impl BlockedLuSolver {
    /// Create a solver with an explicit panel width.
    pub fn with_panel_width(panel_width: usize) -> Self {
        Self {
            panel_width: panel_width.max(1),
        }
    }

    /// Factorise `a`, retaining the factors for repeated solves.
    pub fn factor(&self, a: &DenseMatrix) -> Result<LuFactors> {
        factor_blocked(a, self.panel_width)
    }
}

impl LinearSolver for BlockedLuSolver {
    fn solve_in_place(&self, a: &mut DenseMatrix, b: &mut [f64]) -> Result<()> {
        let factors = factor_blocked(a, self.panel_width)?;
        factors.solve_in_place(b)
    }

    fn name(&self) -> &'static str {
        "blocked-lu (mkl stand-in)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::GaussSolver;
    use crate::vector::max_abs_diff;

    fn test_matrix(n: usize, seed: u64) -> DenseMatrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = DenseMatrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += n as f64; // dominance
        }
        a
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect()
    }

    #[test]
    fn unblocked_matches_gauss() {
        for n in [1usize, 2, 5, 8, 27] {
            let a = test_matrix(n, 42 + n as u64);
            let b = rhs(n);
            let x_lu = LuSolver::new().solve(&a, &b).unwrap();
            let x_ge = GaussSolver::new().solve(&a, &b).unwrap();
            assert!(max_abs_diff(&x_lu, &x_ge) < 1e-9, "mismatch at n = {n}");
        }
    }

    #[test]
    fn blocked_matches_unblocked_across_panel_widths() {
        for n in [8usize, 16, 27, 64, 65] {
            let a = test_matrix(n, 7 + n as u64);
            let b = rhs(n);
            let reference = LuSolver::new().solve(&a, &b).unwrap();
            for nb in [1usize, 4, 8, 16, 32, 100] {
                let x = BlockedLuSolver::with_panel_width(nb).solve(&a, &b).unwrap();
                assert!(
                    max_abs_diff(&x, &reference) < 1e-8,
                    "mismatch n = {n}, nb = {nb}"
                );
            }
        }
    }

    #[test]
    fn residual_is_small_for_order_sizes() {
        // Matrix sizes of Table I: 8, 27, 64, 125.
        for n in [8usize, 27, 64, 125] {
            let a = test_matrix(n, 1000 + n as u64);
            let b = rhs(n);
            let x = BlockedLuSolver::default().solve(&a, &b).unwrap();
            let ax = a.matvec(&x).unwrap();
            assert!(max_abs_diff(&ax, &b) < 1e-8, "residual too large for n={n}");
        }
    }

    #[test]
    fn factors_reusable_for_multiple_rhs() {
        let n = 16;
        let a = test_matrix(n, 99);
        let factors = BlockedLuSolver::default().factor(&a).unwrap();
        for trial in 0..4 {
            let b: Vec<f64> = (0..n).map(|i| (i + trial) as f64).collect();
            let x = factors.solve(&b).unwrap();
            let ax = a.matvec(&x).unwrap();
            assert!(max_abs_diff(&ax, &b) < 1e-9);
        }
    }

    #[test]
    fn determinant_of_identity_and_permutation() {
        let i = DenseMatrix::identity(4);
        let f = factor_unblocked(&i).unwrap();
        assert!((f.determinant() - 1.0).abs() < 1e-15);

        // A permutation matrix with one swap has determinant -1.
        let mut p = DenseMatrix::identity(3);
        p.swap_rows(0, 1);
        let f = factor_unblocked(&p).unwrap();
        assert!((f.determinant() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn determinant_known_2x2() {
        let a = DenseMatrix::from_vec(2, 2, vec![3.0, 1.0, 4.0, 2.0]).unwrap();
        let f = factor_unblocked(&a).unwrap();
        assert!((f.determinant() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            factor_unblocked(&a),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            factor_blocked(&a, 1),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            factor_unblocked(&a),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            factor_blocked(&a, 4),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rhs_length_mismatch_rejected() {
        let a = DenseMatrix::identity(3);
        let f = factor_unblocked(&a).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a =
            DenseMatrix::from_vec(3, 3, vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = LuSolver::new().solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b) < 1e-12);
        let xb = BlockedLuSolver::with_panel_width(2).solve(&a, &b).unwrap();
        assert!(max_abs_diff(&x, &xb) < 1e-12);
    }

    #[test]
    fn condition_estimate_is_finite_for_dominant_matrices() {
        let a = test_matrix(27, 5);
        let f = factor_unblocked(&a).unwrap();
        let c = f.diagonal_condition_estimate();
        assert!(c.is_finite());
        assert!(c >= 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LuSolver::new().name(), "reference-lu");
        assert_eq!(
            BlockedLuSolver::default().name(),
            "blocked-lu (mkl stand-in)"
        );
    }

    #[test]
    fn one_by_one_system() {
        let a = DenseMatrix::from_vec(1, 1, vec![4.0]).unwrap();
        let x = BlockedLuSolver::default().solve(&a, &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }
}
