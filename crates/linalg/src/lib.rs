//! # unsnap-linalg
//!
//! Small dense linear-algebra kernels for the UnSNAP mini-app.
//!
//! The discontinuous Galerkin discrete-ordinates transport solve assembles
//! one small dense linear system `A ψ = b` per *element × angle × energy
//! group*.  The matrix dimension is the number of Lagrange nodes in the
//! element, `(p + 1)³` for polynomial order `p`:
//!
//! | order | matrix size | FP64 footprint |
//! |-------|-------------|----------------|
//! | 1     | 8 × 8       | 0.5 kB         |
//! | 2     | 27 × 27     | 5.7 kB         |
//! | 3     | 64 × 64     | 32.0 kB        |
//! | 4     | 125 × 125   | 122.1 kB       |
//! | 5     | 216 × 216   | 364.5 kB       |
//!
//! (Table I of the paper.)  These are tiny by LAPACK standards, which is
//! exactly why the paper compares a hand-written Gaussian-elimination
//! routine against Intel MKL's `dgesv`.  This crate provides both sides of
//! that comparison in pure Rust:
//!
//! * [`GaussSolver`] — a direct Gaussian-elimination solver with partial
//!   pivoting, written the way the paper's hand-rolled solver is written
//!   (tight inner loops over contiguous rows so the compiler can
//!   auto-vectorise them).
//! * [`LuSolver`] — an unblocked, partially-pivoted LU factorisation in the
//!   style of LAPACK's `dgetrf`/`dgetrs` reference implementation.
//! * [`BlockedLuSolver`] — a right-looking, panel-blocked LU factorisation
//!   standing in for the optimised MKL `dgesv` path.  Blocking keeps the
//!   trailing-matrix update operating on cache-resident panels, which is
//!   where the library solver overtakes the hand-written one once the
//!   matrix no longer fits in L1 (order ≥ 4 in the paper).
//!
//! All solvers implement the [`LinearSolver`] trait so the transport kernel
//! can switch between them at run time, and a [`batched`] module provides
//! a batched interface over independent systems (the paper discusses, and
//! dismisses for the flat-MPI configuration, batched LAPACK routines — we
//! keep the capability for the threaded configurations).
//!
//! ## Example
//!
//! ```
//! use unsnap_linalg::{DenseMatrix, GaussSolver, LinearSolver};
//!
//! // A small diagonally dominant system.
//! let n = 4;
//! let a = DenseMatrix::from_fn(n, n, |i, j| if i == j { 10.0 } else { 1.0 });
//! let b = vec![13.0, 13.0, 13.0, 13.0];
//! let solver = GaussSolver::new();
//! let x = solver.solve(&a, &b).unwrap();
//! for xi in &x {
//!     assert!((xi - 1.0).abs() < 1e-12);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batched;
pub mod blas;
pub mod error;
pub mod gauss;
pub mod lu;
pub mod matrix;
pub mod solver;
pub mod vector;

pub use batched::{BatchSolveReport, BatchedSolver};
pub use error::LinalgError;
pub use gauss::GaussSolver;
pub use lu::{BlockedLuSolver, LuFactors, LuSolver};
pub use matrix::DenseMatrix;
pub use solver::{solve_flops, LinearSolver, SolverKind};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
