//! The [`LinearSolver`] abstraction and solver selection.
//!
//! The transport kernel assembles `A ψ = b` and then calls whichever solver
//! the run configuration selected.  The paper compares two back ends
//! (hand-written Gaussian elimination and MKL `dgesv`); this crate adds a
//! third (an unblocked reference LU) so the blocked "library" path can be
//! validated against a simpler implementation.

use serde::{Deserialize, Serialize};

use crate::batched::BatchedSolver;
use crate::gauss::GaussSolver;
use crate::lu::{BlockedLuSolver, LuSolver};
use crate::matrix::DenseMatrix;
use crate::Result;

/// A direct solver for small dense systems `A x = b`.
///
/// Implementations are allowed to overwrite the matrix and right-hand side
/// in the `*_in_place` variant — the transport kernel reassembles both for
/// every element/angle/group triple, so destroying them is free.
pub trait LinearSolver: Send + Sync {
    /// Solve `A x = b`, returning a freshly allocated solution vector.
    ///
    /// The default implementation copies `a` and `b` and defers to
    /// [`LinearSolver::solve_in_place`].
    fn solve(&self, a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
        let mut a = a.clone();
        let mut x = b.to_vec();
        self.solve_in_place(&mut a, &mut x)?;
        Ok(x)
    }

    /// Solve `A x = b` in place: on exit `b` holds the solution and `a` may
    /// hold factorisation data.
    fn solve_in_place(&self, a: &mut DenseMatrix, b: &mut [f64]) -> Result<()>;

    /// Short human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// Which local dense solver the transport kernel should use.
///
/// This mirrors the paper's Table II comparison: `GaussianElimination` is
/// the hand-written routine, `Mkl` is the blocked LU standing in for Intel
/// MKL's `dgesv`, and `ReferenceLu` is an unblocked LAPACK-style LU kept as
/// a correctness baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SolverKind {
    /// Hand-written Gaussian elimination with partial pivoting
    /// (the paper's "GE" column).
    #[default]
    GaussianElimination,
    /// Unblocked, partially pivoted LU (LAPACK reference style).
    ReferenceLu,
    /// Panel-blocked, partially pivoted LU — the MKL `dgesv` stand-in
    /// (the paper's "MKL" column).
    Mkl,
}

impl SolverKind {
    /// Instantiate the corresponding solver object.
    pub fn build(self) -> Box<dyn LinearSolver> {
        match self {
            SolverKind::GaussianElimination => Box::new(GaussSolver::new()),
            SolverKind::ReferenceLu => Box::new(LuSolver::new()),
            SolverKind::Mkl => Box::new(BlockedLuSolver::default()),
        }
    }

    /// Build a batched solver wrapping this kind.
    pub fn build_batched(self) -> BatchedSolver {
        BatchedSolver::new(self)
    }

    /// All selectable kinds, in report order.
    pub fn all() -> [SolverKind; 3] {
        [
            SolverKind::GaussianElimination,
            SolverKind::ReferenceLu,
            SolverKind::Mkl,
        ]
    }

    /// Name used in tables (matches the paper's column headers where
    /// applicable).
    pub fn label(&self) -> &'static str {
        match self {
            SolverKind::GaussianElimination => "GE",
            SolverKind::ReferenceLu => "LU",
            SolverKind::Mkl => "MKL",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SolverKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ge" | "gauss" | "gaussian" => Ok(SolverKind::GaussianElimination),
            "lu" | "reference" => Ok(SolverKind::ReferenceLu),
            "mkl" | "blocked" | "dgesv" => Ok(SolverKind::Mkl),
            other => Err(format!("unknown solver kind '{other}'")),
        }
    }
}

/// Estimated floating-point operation count for a dense `n × n` solve.
///
/// The paper quotes LAPACK's `dgesv` cost as `0.67 N³` operations (§II-C);
/// we use the standard `2/3 n³ + 2 n²` estimate (factorisation plus the two
/// triangular solves).
pub fn solve_flops(n: usize) -> f64 {
    let n = n as f64;
    (2.0 / 3.0) * n * n * n + 2.0 * n * n
}

/// Estimated floating-point operation count for assembling the `n × n`
/// DG system (reads of precomputed basis-pair integrals dominate; the
/// arithmetic is `O(n²)` multiply–adds over the matrix plus `O(n · faces)`
/// for the upwind face terms).
pub fn assembly_flops(n: usize, faces: usize) -> f64 {
    let n = n as f64;
    2.0 * n * n + 2.0 * n * faces as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_distinct_solvers() {
        for kind in SolverKind::all() {
            let s = kind.build();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn labels_and_parse_round_trip() {
        for kind in SolverKind::all() {
            let parsed: SolverKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nonsense".parse::<SolverKind>().is_err());
        assert_eq!("dgesv".parse::<SolverKind>().unwrap(), SolverKind::Mkl);
    }

    #[test]
    fn default_is_gauss() {
        assert_eq!(SolverKind::default(), SolverKind::GaussianElimination);
    }

    #[test]
    fn flops_match_paper_example() {
        // §II-C: "in 3D where N = 8 this is over 300 FLOPS".
        let n8 = solve_flops(8);
        assert!(
            n8 > 300.0,
            "dgesv flops for N=8 should exceed 300, got {n8}"
        );
        // Cubic growth: doubling n should roughly multiply by 8 for large n.
        let r = solve_flops(256) / solve_flops(128);
        assert!((r - 8.0).abs() < 0.2);
    }

    #[test]
    fn assembly_flops_quadratic() {
        let r = assembly_flops(200, 6) / assembly_flops(100, 6);
        assert!((r - 4.0).abs() < 0.2);
    }

    #[test]
    fn all_kinds_solve_identity() {
        let a = DenseMatrix::identity(5);
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        for kind in SolverKind::all() {
            let x = kind.build().solve(&a, &b).unwrap();
            assert_eq!(x, b);
        }
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(format!("{}", SolverKind::Mkl), "MKL");
    }
}
