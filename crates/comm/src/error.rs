//! Typed failure modes of the simulated communication layer.
//!
//! `unsnap-comm` sits *above* `unsnap-core` in the dependency graph, so
//! the conversion into the workspace-wide error type lives here: a
//! [`CommError`] turns into
//! [`unsnap_core::error::Error::Comm`] via `From`, which lets `?`
//! propagate communication failures out of the distributed solvers.

use std::fmt;

use unsnap_core::error::Error;

/// Errors produced by the halo-exchange and distributed-solver layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank id outside the exchange's rank count.
    RankOutOfRange {
        /// The offending rank id.
        rank: usize,
        /// Number of ranks in the exchange.
        num_ranks: usize,
    },
    /// A wire buffer too short to hold a halo-message header.
    TruncatedMessage {
        /// Bytes present in the buffer.
        bytes: usize,
        /// Minimum bytes a header needs.
        minimum: usize,
    },
    /// A halo payload whose length disagrees with its header.
    PayloadLengthMismatch {
        /// Values the header promised.
        expected_values: usize,
        /// Bytes actually present after the header.
        payload_bytes: usize,
    },
    /// The receiving mailbox was disconnected.
    ChannelClosed {
        /// Rank whose mailbox went away.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, num_ranks } => {
                write!(f, "rank {rank} out of range for {num_ranks} ranks")
            }
            CommError::TruncatedMessage { bytes, minimum } => write!(
                f,
                "halo message too short: {bytes} bytes, header needs {minimum}"
            ),
            CommError::PayloadLengthMismatch {
                expected_values,
                payload_bytes,
            } => write!(
                f,
                "halo payload length mismatch: expected {expected_values} values, \
                 have {payload_bytes} bytes"
            ),
            CommError::ChannelClosed { rank } => {
                write!(f, "mailbox of rank {rank} is disconnected")
            }
        }
    }
}

impl std::error::Error for CommError {}

impl From<CommError> for Error {
    fn from(e: CommError) -> Self {
        Error::Comm {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = CommError::RankOutOfRange {
            rank: 7,
            num_ranks: 4,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = CommError::PayloadLengthMismatch {
            expected_values: 8,
            payload_bytes: 40,
        };
        assert!(e.to_string().contains("8 values"));
    }

    #[test]
    fn converts_into_the_workspace_error() {
        let e: Error = CommError::ChannelClosed { rank: 2 }.into();
        assert!(matches!(e, Error::Comm { .. }));
        assert!(e.to_string().contains("rank 2"));
    }
}
