//! # unsnap-comm
//!
//! Simulated distributed-memory substrate for UnSNAP: rank subdomains,
//! halo exchange, the parallel block-Jacobi global schedule and an
//! analytic KBA pipeline model for comparison.
//!
//! The original mini-app distributes the spatial mesh over MPI ranks with a
//! KBA-style 2-D decomposition and couples the subdomains with a *parallel
//! block Jacobi* schedule: every rank sweeps its own subdomain using
//! *last-iteration* values of the angular flux on faces shared with other
//! ranks, and a halo exchange refreshes those values once per iteration
//! (§III-A.1 of the paper).  The pay-off is that every rank can start
//! working immediately (no pipeline fill as in KBA); the price is a slower
//! convergence rate that degrades as the number of Jacobi blocks grows —
//! the trade-off Garrett studied and that UnSNAP is designed to let people
//! re-examine on modern nodes.
//!
//! This crate reproduces that behaviour without an MPI launcher:
//!
//! * [`jacobi`] — [`BlockJacobiSolver`]: partitions the mesh with the KBA
//!   2-D decomposition, sweeps each rank's subdomain with its own masked
//!   wavefront schedules, and reads cross-rank upwind data from the
//!   previous iteration (the algorithmic content of the halo exchange; the
//!   physical message passing is replaced by reading the lagged array,
//!   which is exactly what arrives in the halo of a real run).  Each
//!   rank's within-group solve dispatches through the single-domain
//!   [`IterationStrategy`](unsnap_core::strategy::IterationStrategy)
//!   machinery via a per-rank
//!   [`InnerSolveContext`](unsnap_core::strategy::InnerSolveContext), so
//!   plain source iteration *and* sweep-preconditioned GMRES (with a
//!   reused per-rank [`GmresWorkspace`](unsnap_krylov::GmresWorkspace))
//!   both scale out, and per-rank progress streams through the
//!   rank-tagged [`RunObserver`](unsnap_core::session::RunObserver)
//!   hooks in deterministic rank order.  [`BlockJacobiOutcome`] carries
//!   per-rank sweep/Krylov counters and serialises via
//!   [`BlockJacobiOutcome::to_json`].
//! * [`halo`] — an explicit halo-exchange implementation over crossbeam
//!   channels with `bytes`-packed face payloads, demonstrating the
//!   communication layer a real distributed run would use and used by the
//!   tests to verify that packed/unpacked halos match the lagged-array
//!   shortcut.
//! * [`kba`] — an analytic model of the KBA pipelined sweep (stage counts,
//!   pipeline fill/drain efficiency) used to contrast the idle-time
//!   behaviour of the two global schedules.
//! * [`error`] — [`CommError`], the layer's typed failure modes,
//!   convertible into the workspace-wide `unsnap_core::error::Error`.
//!
//! The repository's `docs/ARCHITECTURE.md` shows where this crate sits
//! in the stack and how a distributed solve flows through it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod halo;
pub mod jacobi;
pub mod kba;

pub use error::CommError;
pub use halo::{HaloExchange, HaloMessage};
pub use jacobi::{
    BlockJacobiOutcome, BlockJacobiSolver, JacobiCheckpointSink, JacobiCheckpointView,
    JacobiNoopSink, JacobiResumePoint,
};
pub use kba::{kba_stage_count, pipeline_efficiency, KbaModel};
