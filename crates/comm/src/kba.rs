//! Analytic model of the KBA pipelined sweep, used to contrast its
//! fill/drain idle time with the block-Jacobi schedule's immediate start.
//!
//! Under the KBA decomposition the processor grid is `P_x × P_y` columns
//! and a sweep for one octant enters at one corner of the grid and
//! propagates diagonally: a rank cannot start until the wavefront reaches
//! it, and it idles again after the wavefront has passed.  For a single
//! octant with `W` work stages per rank the classic result is that the
//! sweep needs `W + (P_x − 1) + (P_y − 1)` pipeline stages, giving a
//! parallel efficiency of `W / (W + P_x + P_y − 2)`.  Block Jacobi, by
//! contrast, lets every rank start at stage 0 (efficiency 1 per iteration)
//! but needs more iterations to converge.
//!
//! These closed forms are what the benchmark `ablation_jacobi_ranks` prints
//! next to the measured Jacobi iteration counts, reproducing the
//! qualitative comparison of §III-A.1.

use serde::{Deserialize, Serialize};

/// Number of pipeline stages a KBA sweep of one octant needs on a
/// `px × py` processor grid when each rank has `work_stages` local
/// wavefronts to process.
pub fn kba_stage_count(px: usize, py: usize, work_stages: usize) -> usize {
    work_stages + (px - 1) + (py - 1)
}

/// Parallel efficiency of the KBA pipeline for one octant:
/// useful work divided by total stages.
pub fn pipeline_efficiency(px: usize, py: usize, work_stages: usize) -> f64 {
    work_stages as f64 / kba_stage_count(px, py, work_stages) as f64
}

/// A small record combining the KBA pipeline metrics for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KbaModel {
    /// Ranks along x.
    pub px: usize,
    /// Ranks along y.
    pub py: usize,
    /// Local wavefront count per rank (work stages).
    pub work_stages: usize,
    /// Total pipeline stages for one octant sweep.
    pub stages: usize,
    /// Pipeline efficiency (0, 1].
    pub efficiency: f64,
}

impl KbaModel {
    /// Evaluate the model.
    pub fn evaluate(px: usize, py: usize, work_stages: usize) -> Self {
        assert!(px > 0 && py > 0 && work_stages > 0);
        Self {
            px,
            py,
            work_stages,
            stages: kba_stage_count(px, py, work_stages),
            efficiency: pipeline_efficiency(px, py, work_stages),
        }
    }

    /// The idle fraction (1 − efficiency).
    pub fn idle_fraction(&self) -> f64 {
        1.0 - self.efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_has_no_pipeline_penalty() {
        assert_eq!(kba_stage_count(1, 1, 10), 10);
        assert_eq!(pipeline_efficiency(1, 1, 10), 1.0);
        let m = KbaModel::evaluate(1, 1, 5);
        assert_eq!(m.idle_fraction(), 0.0);
    }

    #[test]
    fn stage_count_grows_with_grid() {
        assert_eq!(kba_stage_count(2, 2, 10), 12);
        assert_eq!(kba_stage_count(4, 4, 10), 16);
        assert!(pipeline_efficiency(4, 4, 10) < pipeline_efficiency(2, 2, 10));
    }

    #[test]
    fn efficiency_improves_with_more_local_work() {
        // More work per rank amortises the pipeline fill — the reason KBA
        // favours many small ranks only when communication is cheap.
        assert!(pipeline_efficiency(4, 4, 100) > pipeline_efficiency(4, 4, 10));
        let big = KbaModel::evaluate(4, 4, 1000);
        assert!(big.efficiency > 0.99);
    }

    #[test]
    #[should_panic]
    fn zero_work_rejected() {
        let _ = KbaModel::evaluate(2, 2, 0);
    }
}
