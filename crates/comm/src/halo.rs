//! Explicit halo exchange between rank subdomains.
//!
//! The block-Jacobi global schedule needs one halo exchange per iteration:
//! every rank sends, for every halo face it owns, the node values of the
//! outgoing angular flux on that face, and receives the matching values
//! from the neighbouring rank.  In a real distributed run this is an MPI
//! message; here the "network" is a set of crossbeam channels (one mailbox
//! per rank) and the payloads are packed into [`bytes::Bytes`] buffers the
//! same way a wire format would be.
//!
//! The [`BlockJacobiSolver`](crate::jacobi::BlockJacobiSolver) itself reads
//! lagged flux values directly from the shared previous-iteration array —
//! algorithmically identical and cheaper in a shared-memory simulation —
//! but the tests in this module exercise the packed exchange end-to-end so
//! the communication layer is known to work when the mini-app is hooked up
//! to a real transport.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::CommError;

/// One packed halo message: the flux node values of one face of one cell
/// for one (angle, group) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct HaloMessage {
    /// Sending rank.
    pub from_rank: usize,
    /// Global cell id of the *sending* cell.
    pub cell: usize,
    /// Face index of the sending cell.
    pub face: usize,
    /// Angle index the data belongs to.
    pub angle: usize,
    /// Energy group the data belongs to.
    pub group: usize,
    /// Node values on the face (face-local canonical order).
    pub values: Vec<f64>,
}

impl HaloMessage {
    /// Serialise to a wire buffer.
    pub fn pack(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 * (5 + self.values.len()) + 8);
        buf.put_u64_le(self.from_rank as u64);
        buf.put_u64_le(self.cell as u64);
        buf.put_u64_le(self.face as u64);
        buf.put_u64_le(self.angle as u64);
        buf.put_u64_le(self.group as u64);
        buf.put_u64_le(self.values.len() as u64);
        for &v in &self.values {
            buf.put_f64_le(v);
        }
        buf.freeze()
    }

    /// Deserialise from a wire buffer.
    pub fn unpack(mut buf: Bytes) -> Result<Self, CommError> {
        if buf.len() < 48 {
            return Err(CommError::TruncatedMessage {
                bytes: buf.len(),
                minimum: 48,
            });
        }
        let from_rank = buf.get_u64_le() as usize;
        let cell = buf.get_u64_le() as usize;
        let face = buf.get_u64_le() as usize;
        let angle = buf.get_u64_le() as usize;
        let group = buf.get_u64_le() as usize;
        let len = buf.get_u64_le() as usize;
        if buf.len() != len * 8 {
            return Err(CommError::PayloadLengthMismatch {
                expected_values: len,
                payload_bytes: buf.len(),
            });
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(buf.get_f64_le());
        }
        Ok(Self {
            from_rank,
            cell,
            face,
            angle,
            group,
            values,
        })
    }
}

/// A set of per-rank mailboxes connected all-to-all.
pub struct HaloExchange {
    senders: Vec<Sender<Bytes>>,
    receivers: Vec<Receiver<Bytes>>,
}

impl HaloExchange {
    /// Create mailboxes for `num_ranks` ranks.
    pub fn new(num_ranks: usize) -> Self {
        let mut senders = Vec::with_capacity(num_ranks);
        let mut receivers = Vec::with_capacity(num_ranks);
        for _ in 0..num_ranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        Self { senders, receivers }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.senders.len()
    }

    /// Send a packed halo message to `to_rank`.
    pub fn send(&self, to_rank: usize, message: &HaloMessage) -> Result<(), CommError> {
        self.senders
            .get(to_rank)
            .ok_or(CommError::RankOutOfRange {
                rank: to_rank,
                num_ranks: self.num_ranks(),
            })?
            .send(message.pack())
            .map_err(|_| CommError::ChannelClosed { rank: to_rank })
    }

    /// Drain every message waiting in `rank`'s mailbox.
    pub fn drain(&self, rank: usize) -> Result<Vec<HaloMessage>, CommError> {
        let rx = self.receivers.get(rank).ok_or(CommError::RankOutOfRange {
            rank,
            num_ranks: self.num_ranks(),
        })?;
        let mut out = Vec::new();
        while let Ok(buf) = rx.try_recv() {
            out.push(HaloMessage::unpack(buf)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> HaloMessage {
        HaloMessage {
            from_rank: 2,
            cell: 17,
            face: 3,
            angle: 5,
            group: 1,
            values: vec![0.5, -1.25, 3.0, 4.75],
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let m = sample_message();
        let packed = m.pack();
        let unpacked = HaloMessage::unpack(packed).unwrap();
        assert_eq!(unpacked, m);
    }

    #[test]
    fn unpack_rejects_garbage() {
        assert!(HaloMessage::unpack(Bytes::from_static(&[1, 2, 3])).is_err());
        // Correct header but truncated payload.
        let mut m = sample_message();
        m.values = vec![1.0; 4];
        let mut packed = BytesMut::from(&m.pack()[..]);
        packed.truncate(packed.len() - 8);
        assert!(HaloMessage::unpack(packed.freeze()).is_err());
    }

    #[test]
    fn exchange_delivers_to_the_right_mailbox() {
        let ex = HaloExchange::new(3);
        assert_eq!(ex.num_ranks(), 3);
        let m = sample_message();
        ex.send(1, &m).unwrap();
        ex.send(1, &m).unwrap();
        ex.send(2, &m).unwrap();
        assert_eq!(ex.drain(0).unwrap().len(), 0);
        let at1 = ex.drain(1).unwrap();
        assert_eq!(at1.len(), 2);
        assert_eq!(at1[0], m);
        assert_eq!(ex.drain(2).unwrap().len(), 1);
        // Draining again finds nothing.
        assert_eq!(ex.drain(1).unwrap().len(), 0);
    }

    #[test]
    fn sending_to_missing_rank_errors() {
        let ex = HaloExchange::new(1);
        assert!(ex.send(5, &sample_message()).is_err());
        assert!(ex.drain(9).is_err());
    }

    #[test]
    fn exchange_works_across_threads() {
        let ex = std::sync::Arc::new(HaloExchange::new(2));
        let ex2 = ex.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                let mut m = sample_message();
                m.cell = i;
                ex2.send(1, &m).unwrap();
            }
        });
        handle.join().unwrap();
        let received = ex.drain(1).unwrap();
        assert_eq!(received.len(), 10);
        let cells: Vec<usize> = received.iter().map(|m| m.cell).collect();
        assert_eq!(cells, (0..10).collect::<Vec<_>>());
    }
}
