//! The parallel block-Jacobi global schedule over rank subdomains.
//!
//! Every rank sweeps its own subdomain with per-angle wavefront schedules
//! that are *masked* to the cells it owns; an upwind face whose neighbour
//! belongs to another rank takes its angular flux from the **previous**
//! iteration (that is the content of the per-iteration halo exchange).
//! "Note that each process can begin computation on its own subdomain
//! concurrently, unlike with the KBA schedule in the SNAP mini-app where
//! processors must wait to begin work." (§III-A.1.)
//!
//! # Strategy-dispatched inner solves
//!
//! Each rank's within-group solve runs through the *same*
//! [`IterationStrategy`](unsnap_core::strategy::IterationStrategy)
//! dispatch as the single-domain `TransportSolver`: the per-rank
//! context implements [`InnerSolveContext`], so [`Problem::strategy`]
//! (including the `UNSNAP_STRATEGY` builder override) selects the
//! subdomain solver:
//!
//! * **Source iteration** — one masked sweep per rank per halo
//!   iteration, reproducing the seed's lagged block-Jacobi schedule
//!   exactly;
//! * **Sweep-preconditioned GMRES** — per halo iteration each rank
//!   solves its local within-group system `(I − D L_r⁻¹ S_w) φ_r =
//!   D L_r⁻¹ q_ext,r` to tolerance with a matrix-free GMRES(m) whose
//!   Krylov space is reused across halo iterations
//!   ([`GmresWorkspace`]).  The lagged halo data is *affine*
//!   right-hand-side inflow, so operator applications sweep with
//!   homogeneous boundary **and** halo inflow (the halo-aware residual
//!   assembly), and a consistency sweep with real inflow regenerates the
//!   rank's angular flux for the next halo exchange.  This is the
//!   additive-Schwarz-style scale-out of the Krylov acceleration.
//!
//! With a single rank the schedule degenerates to the full sweep and the
//! solver reproduces `unsnap_core::TransportSolver`; with more ranks the
//! converged answer is the same but the convergence *rate* degrades —
//! the trade-off the `ablation_jacobi_ranks` and `ablation_jacobi_krylov`
//! benchmarks measure.
//!
//! # Observer streaming
//!
//! Ranks genuinely sweep **concurrently** on the worker pool (sized by
//! [`Problem::num_threads`], overridable with `RAYON_NUM_THREADS`): each
//! rank writes into a private, compactly-indexed angular-flux buffer and
//! reads remote cells only from the shared previous-iteration array, so
//! the per-iteration results are bit-for-bit identical at every thread
//! and rank-execution ordering.  Each rank's solve events are buffered
//! in an [`EventLog`] and replayed through the rank-tagged
//! [`RunObserver`] hooks (`on_rank_sweep`, `on_rank_krylov_residual`,
//! …) in rank order after every halo iteration — the observer stream is
//! therefore also bit-for-bit identical at every thread count.

use std::time::{Duration, Instant};

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use unsnap_obs::clock::{Clock, SystemClock};

use unsnap_core::angular::AngularQuadrature;
use unsnap_core::data::ProblemData;
use unsnap_core::error::{Error, Result};
use unsnap_core::kernel::{KernelEngine, KernelScratch, KernelTiming, UpwindFace, UpwindSource};
use unsnap_core::layout::{FluxLayout, FluxStorage, Precision};
use unsnap_core::metrics::{MetricsObserver, RunMetrics};
use unsnap_core::problem::Problem;
use unsnap_core::report::IterationSummary;
use unsnap_core::session::{EventLog, NoopObserver, Phase, RunObserver, TeeObserver};
use unsnap_core::solver::{relative_change, RunStats};
use unsnap_core::strategy::{InnerSolveContext, StrategyKind};
use unsnap_core::trace::TraceObserver;
use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::{face_node_indices, FACES};
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_krylov::GmresWorkspace;
use unsnap_linalg::LinearSolver;
use unsnap_mesh::{Decomposition2D, NeighborRef, Subdomain, UnstructuredMesh};
use unsnap_obs::trace::TraceTree;
use unsnap_sweep::{LoopOrder, SweepSchedule};

/// Summary of a block-Jacobi distributed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockJacobiOutcome {
    /// Number of ranks (Jacobi blocks).
    pub num_ranks: usize,
    /// Inner-iteration strategy the ranks dispatched to.
    pub strategy: StrategyKind,
    /// Halo (block-Jacobi) iterations executed.
    pub inner_iterations: usize,
    /// Whether the convergence tolerance was met.
    pub converged: bool,
    /// Iterations needed to reach the tolerance (if it was reached).
    pub iterations_to_tolerance: Option<usize>,
    /// Maximum relative scalar-flux change per inner iteration.
    pub convergence_history: Vec<f64>,
    /// Wall-clock seconds spent in the assemble/solve region.
    pub assemble_solve_seconds: f64,
    /// Sum of the scalar flux over all nodes/elements/groups.
    pub scalar_flux_total: f64,
    /// Total halo faces across all ranks (faces refreshed per iteration).
    pub halo_faces: usize,
    /// Subdomain sweeps executed, summed over ranks.
    pub sweep_count: usize,
    /// Krylov iterations executed, summed over ranks (zero under plain
    /// source iteration).
    pub krylov_iterations: usize,
    /// Low-order DSA CG iterations executed, summed over ranks (zero
    /// unless a DSA path ran).
    pub accel_cg_iterations: usize,
    /// Sweeps executed by each rank, indexed by rank id.
    pub rank_sweep_counts: Vec<usize>,
    /// Krylov iterations executed by each rank, indexed by rank id.
    pub rank_krylov_iterations: Vec<usize>,
    /// Low-order DSA CG iterations executed by each rank.
    pub rank_accel_cg_iterations: Vec<usize>,
    /// The run's telemetry snapshot, aggregated from the full observer
    /// event stream (untagged and rank-tagged) by the solver's internal
    /// [`MetricsObserver`] — attached to every outcome with no caller
    /// wiring.  The deterministic half is bit-for-bit identical at
    /// every thread and rank-execution ordering; strip the wall-clock
    /// half with [`RunMetrics::zero_wallclock`] before comparisons.
    pub metrics: RunMetrics,
    /// The run's hierarchical span tree, built by the solver's internal
    /// [`unsnap_core::trace::TraceObserver`] tee: driver events on lane
    /// 0, each rank's replayed stream on lane `rank + 1`.  Structure is
    /// deterministic (rank-ordered replay); timestamps are wall-clock
    /// and ignored by `PartialEq`.  Excluded from
    /// [`BlockJacobiOutcome::to_json`] — export with
    /// [`TraceTree::to_chrome_json`] or [`TraceTree::to_collapsed`].
    pub trace: TraceTree,
}

impl BlockJacobiOutcome {
    /// Serialise the outcome as a JSON object (via the workspace's
    /// hand-rolled [`json`](unsnap_core::json) writer — the vendored
    /// `serde` is a no-op stand-in).
    pub fn to_json(&self) -> String {
        unsnap_core::json::JsonObject::new()
            .field_usize("num_ranks", self.num_ranks)
            .field_str("strategy", self.strategy.label())
            .field_usize("inner_iterations", self.inner_iterations)
            .field_bool("converged", self.converged)
            .field_raw(
                "iterations_to_tolerance",
                &self
                    .iterations_to_tolerance
                    .map_or_else(|| "null".to_string(), |i| i.to_string()),
            )
            .field_f64_array("convergence_history", &self.convergence_history)
            .field_f64("assemble_solve_seconds", self.assemble_solve_seconds)
            .field_f64("scalar_flux_total", self.scalar_flux_total)
            .field_usize("halo_faces", self.halo_faces)
            .field_usize("sweep_count", self.sweep_count)
            .field_usize("krylov_iterations", self.krylov_iterations)
            .field_usize("accel_cg_iterations", self.accel_cg_iterations)
            .field_usize_array("rank_sweep_counts", &self.rank_sweep_counts)
            .field_usize_array("rank_krylov_iterations", &self.rank_krylov_iterations)
            .field_usize_array("rank_accel_cg_iterations", &self.rank_accel_cg_iterations)
            .field_raw("metrics", &self.metrics.to_json())
            .finish()
    }
}

impl IterationSummary for BlockJacobiOutcome {
    fn summary_converged(&self) -> bool {
        self.converged
    }

    fn summary_sweeps(&self) -> usize {
        self.sweep_count
    }

    fn summary_inner_iterations(&self) -> usize {
        self.inner_iterations
    }

    fn summary_krylov_iterations(&self) -> usize {
        self.krylov_iterations
    }

    fn summary_final_krylov_residual(&self) -> Option<f64> {
        // Per-rank residual trajectories stream through the observer;
        // the outcome keeps counters only.
        None
    }
}

impl std::fmt::Display for BlockJacobiOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ranks ({}): {}, {} halo faces",
            self.num_ranks,
            self.strategy,
            unsnap_core::report::iteration_summary(self),
            self.halo_faces,
        )
    }
}

/// The mutable per-rank solve state: compact flux/source buffers, the
/// rank's accumulated work statistics and its reusable Krylov space.
///
/// Buffers use the rank-compact indexing
/// `((local_cell · ng + g) · num_angles + angle) · nodes` (angular) and
/// `(local_cell · ng + g) · nodes` (scalar), so per-rank memory is the
/// rank's share of the mesh, not a full-mesh copy.
struct RankState {
    /// Angular flux of the current iteration (compact).
    psi: Vec<f64>,
    /// Scalar flux (compact).
    phi: Vec<f64>,
    /// Previous inner iterate of the scalar flux (compact).
    phi_inner: Vec<f64>,
    /// Total source (compact).
    source: Vec<f64>,
    /// When set, sweeps treat the domain boundary *and* the cross-rank
    /// halo as vacuum — the affine inflow belongs to the right-hand
    /// side during Krylov operator applications.
    homogeneous: bool,
    /// Accumulated work statistics (sweeps, Krylov counters, histories).
    stats: RunStats,
    /// Reusable per-rank Krylov space.
    krylov: Option<GmresWorkspace>,
    /// Lazily-built per-rank DSA accelerator: the low-order diffusion
    /// operator over this rank's cells with Dirichlet-zero coupling at
    /// cut faces, plus its CG scratch.
    dsa: Option<unsnap_core::dsa::DsaAccelerator>,
    /// Reusable kernel scratch.
    scratch: KernelScratch,
}

impl RankState {
    fn new(owned: usize, ng: usize, n_angles: usize, nodes: usize) -> Self {
        Self {
            psi: vec![0.0; owned * ng * n_angles * nodes],
            phi: vec![0.0; owned * ng * nodes],
            phi_inner: vec![0.0; owned * ng * nodes],
            source: vec![0.0; owned * ng * nodes],
            homogeneous: false,
            stats: RunStats::default(),
            krylov: None,
            dsa: None,
            scratch: KernelScratch::new(nodes),
        }
    }
}

/// One rank's view of the distributed solve: shared read-only problem
/// state plus the rank's private buffers.  Implements
/// [`InnerSolveContext`], so the single-domain iteration strategies run
/// unchanged against a subdomain whose sweeps are masked to the rank's
/// cells and whose cross-rank upwind reads come from the lagged halo.
struct RankContext<'a> {
    shared: &'a BlockJacobiSolver,
    rank: usize,
    /// Inner budget per strategy invocation: 1 for stationary (source)
    /// iteration — one relaxation sweep per halo exchange, the seed
    /// schedule — and the problem's full inner budget for the Krylov
    /// strategies, which solve the local system per halo exchange.
    inner_budget: usize,
    state: &'a mut RankState,
}

impl RankContext<'_> {
    /// Assemble the rank-local source: fixed + cross-group scattering
    /// from the outer iterate (+ within-group scattering from the rank's
    /// current flux unless `external` only).
    fn assemble_rank_source(&mut self, include_within_group: bool) {
        let s = self.shared;
        let ng = s.problem.num_groups;
        let nodes = s.element.nodes_per_element();
        let sd = &s.subdomains[self.rank];
        for (local, &global) in sd.global_cells.iter().enumerate() {
            let mat = s.data.material(global);
            let q_fixed = s.data.fixed_source(global);
            for g in 0..ng {
                let mut acc = vec![q_fixed; nodes];
                for g_from in 0..ng {
                    if g_from == g && !include_within_group {
                        continue;
                    }
                    let sigma_s = s.data.xs.scatter(mat, g_from, g);
                    if sigma_s == 0.0 {
                        continue;
                    }
                    if g_from == g {
                        let base = (local * ng + g_from) * nodes;
                        let phi = &self.state.phi[base..base + nodes];
                        for (a, &p) in acc.iter_mut().zip(phi.iter()) {
                            *a += sigma_s * p;
                        }
                    } else {
                        let phi = s.phi_outer.nodes(global, g_from, 0);
                        for (a, &p) in acc.iter_mut().zip(phi.iter()) {
                            *a += sigma_s * p;
                        }
                    }
                }
                let base = (local * ng + g) * nodes;
                self.state.source[base..base + nodes].copy_from_slice(&acc);
            }
        }
    }

    /// Sweep every angle of the rank's subdomain following its masked
    /// wavefront schedules, writing ψ into the rank's private buffer and
    /// accumulating the rank's scalar flux.
    ///
    /// Own-rank upwind reads come from the private buffer (the masked
    /// schedule guarantees they were written earlier in the same sweep);
    /// cross-rank reads come from the shared previous-iteration halo —
    /// or from zero when `homogeneous` is set, which is what keeps the
    /// Krylov operator application linear.
    fn sweep_rank(&mut self) -> (KernelTiming, u64) {
        let s = self.shared;
        let rank = self.rank;
        let ng = s.problem.num_groups;
        let nodes = s.element.nodes_per_element();
        let n_angles = s.quadrature.num_angles();
        let local_of_cell = &s.local_of_cell[rank];
        let time_solve = s.problem.time_solve;
        let psi_base =
            |local: usize, g: usize, angle: usize| ((local * ng + g) * n_angles + angle) * nodes;
        let zeros = vec![0.0f64; nodes];

        let state = &mut *self.state;
        let homogeneous = state.homogeneous;
        let boundary_scale = if homogeneous { 0.0 } else { 1.0 };
        let psi = &mut state.psi;
        let phi = &mut state.phi;
        let source = &state.source;
        let scratch = &mut state.scratch;

        let mut timing = KernelTiming::default();
        let mut count = 0u64;

        for angle in 0..n_angles {
            let direction = s.quadrature.directions()[angle];
            let omega = direction.omega;
            let weight = direction.weight;
            let schedule = &s.schedules[rank][angle];
            for bucket in &schedule.buckets {
                for &e in bucket {
                    for g in 0..ng {
                        let ints = &s.integrals[e];
                        let sigma_t = s.data.xs.total(s.data.material(e), g);
                        let source_base = (local_of_cell[e] * ng + g) * nodes;
                        let source_nodes = &source[source_base..source_base + nodes];
                        let inflow = &schedule.inflow_faces[e];
                        let mut upwind: Vec<UpwindFace<'_>> = Vec::with_capacity(inflow.len());
                        for &face in inflow {
                            let src = match s.mesh.neighbor(e, face) {
                                NeighborRef::Boundary { domain_face } => UpwindSource::Boundary(
                                    boundary_scale
                                        * s.problem.boundaries.face(domain_face).incoming_flux(),
                                ),
                                NeighborRef::Interior { cell, face: nf } => {
                                    // Same rank: current iteration, from
                                    // the private buffer.  Other rank:
                                    // lagged halo data — or zero during
                                    // homogeneous (operator) sweeps.
                                    let psi_src = if s.owner_of_cell[cell] == rank {
                                        let b = psi_base(local_of_cell[cell], g, angle);
                                        &psi[b..b + nodes]
                                    } else if homogeneous {
                                        &zeros[..]
                                    } else {
                                        s.psi_prev.nodes(cell, g, angle)
                                    };
                                    UpwindSource::Interior {
                                        neighbor_psi: psi_src,
                                        neighbor_face_nodes: &s.face_nodes[nf],
                                    }
                                }
                            };
                            upwind.push(UpwindFace { face, source: src });
                        }
                        let t = s.engine.assemble_solve(
                            e,
                            ints,
                            omega,
                            sigma_t,
                            source_nodes,
                            &upwind,
                            s.solver.as_ref(),
                            time_solve,
                            scratch,
                        );
                        timing.accumulate(t);
                        count += 1;
                        let b = psi_base(local_of_cell[e], g, angle);
                        psi[b..b + nodes].copy_from_slice(&scratch.rhs);
                        let base = (local_of_cell[e] * ng + g) * nodes;
                        for (node, &v) in scratch.rhs.iter().enumerate() {
                            phi[base + node] += weight * v;
                        }
                    }
                }
            }
        }
        (timing, count)
    }
}

impl InnerSolveContext for RankContext<'_> {
    fn inner_iteration_budget(&self) -> usize {
        self.inner_budget
    }

    fn convergence_tolerance(&self) -> f64 {
        self.shared.problem.convergence_tolerance
    }

    fn gmres_restart(&self) -> usize {
        self.shared.problem.gmres_restart
    }

    fn now(&self) -> Duration {
        self.shared.clock.now()
    }

    fn compute_source(&mut self) {
        self.assemble_rank_source(true);
    }

    fn compute_external_source(&mut self) {
        self.assemble_rank_source(false);
    }

    fn set_source_to_within_group_scatter(&mut self, v: &[f64]) {
        let s = self.shared;
        let ng = s.problem.num_groups;
        let nodes = s.element.nodes_per_element();
        let sd = &s.subdomains[self.rank];
        debug_assert_eq!(v.len(), self.state.source.len());
        for (local, &global) in sd.global_cells.iter().enumerate() {
            let mat = s.data.material(global);
            for g in 0..ng {
                let sigma_s = s.data.xs.scatter(mat, g, g);
                let base = (local * ng + g) * nodes;
                for (src, &value) in self.state.source[base..base + nodes]
                    .iter_mut()
                    .zip(v[base..base + nodes].iter())
                {
                    *src = sigma_s * value;
                }
            }
        }
    }

    fn set_homogeneous_boundaries(&mut self, on: bool) {
        self.state.homogeneous = on;
    }

    fn sweep_once(&mut self, stats: &mut RunStats, observer: &mut dyn RunObserver) {
        self.state.phi.iter_mut().for_each(|x| *x = 0.0);
        observer.on_phase_start(Phase::Sweep);
        let t0 = self.shared.clock.now();
        let (timing, count) = self.sweep_rank();
        let seconds = self.shared.clock.now().saturating_sub(t0).as_secs_f64();
        // Per-wavefront-bucket structure events, emitted inside the
        // Sweep span with no extra clock reads.  Payloads are derived
        // from the rank's masked schedules in (angle, bucket) order, so
        // the buffered stream is identical at every thread count.
        let ng = self.shared.problem.num_groups as u64;
        let mut bucket_tasks = 0u64;
        for (angle, schedule) in self.shared.schedules[self.rank].iter().enumerate() {
            for (bucket_index, bucket) in schedule.buckets.iter().enumerate() {
                let tasks = bucket.len() as u64 * ng;
                bucket_tasks += tasks;
                observer.on_sweep_bucket(angle, bucket_index, tasks);
            }
        }
        debug_assert_eq!(bucket_tasks, count);
        observer.on_phase_end(Phase::Sweep, seconds);
        stats.sweep_seconds += seconds;
        stats.kernel_timing.accumulate(timing);
        stats.kernel_invocations += count;
        stats.sweeps += 1;
        observer.on_sweep(stats.sweeps, count, seconds);
    }

    fn save_phi_inner(&mut self) {
        let state = &mut *self.state;
        state.phi_inner.copy_from_slice(&state.phi);
    }

    fn set_phi(&mut self, v: &[f64]) {
        self.state.phi.copy_from_slice(v);
    }

    fn phi_slice(&self) -> &[f64] {
        &self.state.phi
    }

    fn phi_inner_slice(&self) -> &[f64] {
        &self.state.phi_inner
    }

    fn take_krylov_workspace(&mut self) -> GmresWorkspace {
        self.state.krylov.take().unwrap_or_default()
    }

    fn put_krylov_workspace(&mut self, workspace: GmresWorkspace) {
        self.state.krylov = Some(workspace);
    }

    fn accelerator(&self) -> unsnap_core::strategy::AcceleratorKind {
        self.shared.problem.accelerator
    }

    fn dsa_correct(
        &mut self,
        previous: &[f64],
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<()> {
        let s = self.shared;
        if self.state.dsa.is_none() {
            let sd = &s.subdomains[self.rank];
            // The rank's compact scalar layout: group fastest after the
            // node block, matching the `(local·ng + g)·nodes` indexing of
            // the private buffers.
            let layout = FluxLayout::scalar(
                s.element.nodes_per_element(),
                sd.num_cells(),
                s.problem.num_groups,
                LoopOrder::ElementThenGroup,
            );
            self.state.dsa = Some(unsnap_core::dsa::DsaAccelerator::build(
                &s.mesh,
                &sd.global_cells,
                &s.element,
                Some(&s.integrals),
                &s.data,
                layout,
                unsnap_accel::DsaConfig {
                    tolerance: s.problem.accel_cg_tolerance,
                    max_iterations: s.problem.accel_cg_iterations,
                },
            ));
        }
        let state = &mut *self.state;
        let dsa = state.dsa.as_mut().expect("accelerator just built");
        observer.on_phase_start(Phase::AccelCg);
        let t0 = s.clock.now();
        let result = dsa.correct(&mut state.phi, previous, stats, observer);
        if result.is_ok() && s.problem.precision == Precision::Mixed {
            // Mixed mode resolves fluxes at single precision; round the
            // f64 diffusion correction onto the same grid (mirrors the
            // single-domain solver's post-correction rounding).
            for p in &mut state.phi {
                *p = *p as f32 as f64;
            }
        }
        let seconds = s.clock.now().saturating_sub(t0).as_secs_f64();
        observer.on_phase_end(Phase::AccelCg, seconds);
        result
    }
}

/// Block-Jacobi distributed transport solver (simulated ranks).
pub struct BlockJacobiSolver {
    problem: Problem,
    decomposition: Decomposition2D,
    mesh: UnstructuredMesh,
    element: ReferenceElement,
    face_nodes: [Vec<usize>; 6],
    integrals: Vec<ElementIntegrals>,
    quadrature: AngularQuadrature,
    data: ProblemData,
    subdomains: Vec<Subdomain>,
    owner_of_cell: Vec<usize>,
    /// `local_of_cell[rank][cell]`: dense per-rank slot of a global cell
    /// in that rank's private sweep buffer (`usize::MAX` = not owned).
    local_of_cell: Vec<Vec<usize>>,
    /// `schedules[rank][angle]`: the masked wavefront schedule.
    schedules: Vec<Vec<SweepSchedule>>,
    /// Global angular flux, rebuilt from the rank buffers every halo
    /// iteration (the "exchanged" array the next iteration reads).
    psi: FluxStorage,
    psi_prev: FluxStorage,
    phi: FluxStorage,
    phi_outer: FluxStorage,
    /// Per-rank mutable solve state, moved through the worker pool every
    /// halo iteration and restored in rank order.
    ranks: Vec<RankState>,
    solver: Box<dyn LinearSolver>,
    /// Per-cell assemble+solve engine (kernel implementation ×
    /// precision), shared read-only by every rank context; the cache key
    /// is the *global* cell id so each rank's blocked-kernel geometry
    /// cache stays coherent across halo iterations.
    engine: KernelEngine,
    /// Worker pool the rank solves fan out on.
    pool: rayon::ThreadPool,
    /// Time source for phase spans and per-sweep latency, shared by the
    /// driver and (read-only) by every rank context on the pool.
    /// Swappable via [`BlockJacobiSolver::set_clock`]; deterministic
    /// metrics never read it.
    clock: Box<dyn Clock>,
    /// Recovered state installed by [`BlockJacobiSolver::resume_from`],
    /// consumed by the next run.
    resume: Option<JacobiResumePoint>,
}

/// A borrowed, consistent snapshot of the distributed solver's state at
/// an outer-iteration boundary — the block-Jacobi analogue of
/// [`unsnap_core::solver::CheckpointView`].
///
/// Only the global flux arrays and per-rank accounting are exposed:
/// `psi_prev` is republished at the start of every halo iteration,
/// `phi_outer` is recomputed at every outer start, and each rank's
/// compact local arrays are an exact gather of the global ones, so all
/// of them reconstruct from what is here.
#[derive(Debug)]
pub struct JacobiCheckpointView<'a> {
    /// The outer iteration that just completed (0-based).
    pub outer_completed: usize,
    /// Whether the tolerance was met during that outer iteration.
    pub converged: bool,
    /// Halo (block-Jacobi) iterations executed so far.
    pub inners_run: usize,
    /// Wall-clock seconds accumulated in the assemble/solve region.
    pub sweep_seconds: f64,
    /// Maximum relative scalar-flux change per halo iteration so far.
    pub convergence_history: &'a [f64],
    /// Global scalar flux φ, in storage order.
    pub phi: &'a [f64],
    /// Global angular flux ψ, in storage order.
    pub psi: &'a [f64],
    /// Each rank's accumulated accounting, indexed by rank id.
    pub rank_stats: Vec<&'a RunStats>,
}

/// A durability hook invoked at every outer-iteration boundary of an
/// observed block-Jacobi run (after `on_outer_end`).  An error return
/// aborts the solve, which is how the write-ahead log layer injects
/// deterministic crashes.
pub trait JacobiCheckpointSink {
    /// Persist (or skip) a checkpoint of the given state.
    fn on_checkpoint(&mut self, view: &JacobiCheckpointView<'_>) -> Result<()>;
}

/// The sink used when nobody is checkpointing.
#[derive(Debug, Clone, Copy, Default)]
pub struct JacobiNoopSink;

impl JacobiCheckpointSink for JacobiNoopSink {
    fn on_checkpoint(&mut self, _view: &JacobiCheckpointView<'_>) -> Result<()> {
        Ok(())
    }
}

/// Distributed solver state recovered from a run log, installed with
/// [`BlockJacobiSolver::resume_from`] before re-running.
///
/// The resume contract matches the single-domain
/// [`ResumePoint`](unsnap_core::solver::ResumePoint): the saved event
/// `prefix` replays into the observer before live iteration continues,
/// so the completed run's outcome, flux and deterministic metrics are
/// bit-for-bit identical to an uninterrupted run's.
#[derive(Debug, Clone, Default)]
pub struct JacobiResumePoint {
    /// The first outer iteration the resumed run will execute.
    pub outer_next: usize,
    /// Halo iterations executed before the checkpoint.
    pub inners_run: usize,
    /// Wall-clock assemble/solve seconds accumulated before the
    /// checkpoint.
    pub sweep_seconds: f64,
    /// Per-halo-iteration convergence history up to the checkpoint.
    pub convergence_history: Vec<f64>,
    /// Global scalar flux φ at the checkpoint, in storage order.
    pub phi: Vec<f64>,
    /// Global angular flux ψ at the checkpoint, in storage order.
    pub psi: Vec<f64>,
    /// Each rank's accounting at the checkpoint, indexed by rank id.
    pub rank_stats: Vec<RunStats>,
    /// Every observer event emitted before the checkpoint, replayed
    /// verbatim on resume.
    pub prefix: EventLog,
}

impl BlockJacobiSolver {
    /// Build the distributed solver for a problem and a 2-D decomposition.
    ///
    /// Every [`Problem`]/`ProblemBuilder` knob flows through: the
    /// iteration strategy ([`Problem::strategy`], selectable via the
    /// `UNSNAP_STRATEGY` builder override), the GMRES restart length, the
    /// dense-solver back end, the scattering-ratio override and the
    /// thread count.
    ///
    /// Fails with [`Error::InvalidProblem`] on a bad problem,
    /// [`Error::Mesh`] when the decomposition does not fit the mesh, and
    /// [`Error::Schedule`] when a rank's masked wavefront schedule cannot
    /// be built.
    pub fn new(problem: &Problem, decomposition: Decomposition2D) -> Result<Self> {
        problem.validate()?;
        let mesh = problem.build_mesh();
        let element = ReferenceElement::new(problem.element_order);
        let nodes = element.nodes_per_element();
        let face_nodes: [Vec<usize>; 6] =
            std::array::from_fn(|f| face_node_indices(FACES[f], problem.element_order));
        let quadrature = AngularQuadrature::product(problem.angles_per_octant);
        let grid = problem.grid();
        let mut data = ProblemData::generate(
            mesh.num_cells(),
            |cell| mesh.cell_centroid(cell),
            [grid.lx, grid.ly, grid.lz],
            problem.num_groups,
            problem.material,
            problem.source,
        );
        // The scattering-ratio (and upscatter) overrides must reach the
        // distributed path too, or the single-domain and block-Jacobi
        // solvers would solve different physics for the same Problem.
        if let Some(c) = problem.scattering_ratio {
            data.xs = match problem.upscatter_ratio {
                Some(u) => unsnap_core::data::CrossSections::with_upscatter(
                    problem.num_groups,
                    data.xs.num_materials(),
                    c,
                    u,
                ),
                None => unsnap_core::data::CrossSections::with_scattering_ratio(
                    problem.num_groups,
                    data.xs.num_materials(),
                    c,
                ),
            };
        }

        let integrals: Vec<ElementIntegrals> = (0..mesh.num_cells())
            .map(|cell| {
                let hex = HexVertices {
                    corners: *mesh.cell_corners(cell),
                };
                ElementIntegrals::compute(&element, &hex)
            })
            .collect();

        let subdomains = decomposition.try_decompose(&mesh)?;
        let mut owner_of_cell = vec![0usize; mesh.num_cells()];
        for sd in &subdomains {
            for &g in &sd.global_cells {
                owner_of_cell[g] = sd.rank;
            }
        }
        let local_of_cell: Vec<Vec<usize>> = subdomains
            .iter()
            .map(|sd| {
                let mut map = vec![usize::MAX; mesh.num_cells()];
                for (local, &g) in sd.global_cells.iter().enumerate() {
                    map[g] = local;
                }
                map
            })
            .collect();

        // The only parallel axis here is the rank loop, so threads beyond
        // the rank count could never receive work — cap the pool width.
        let num_threads = problem
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .min(subdomains.len().max(1));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(num_threads)
            .build()
            .map_err(|e| Error::Execution {
                reason: format!("failed to build thread pool: {e}"),
            })?;

        // Masked schedules: one per rank per angle.
        let mut schedules = Vec::with_capacity(subdomains.len());
        for sd in &subdomains {
            let owned: Vec<bool> = (0..mesh.num_cells()).map(|c| sd.owns(c)).collect();
            let mut per_angle = Vec::with_capacity(quadrature.num_angles());
            for d in quadrature.directions() {
                let s = SweepSchedule::build_masked(&mesh, d.omega, &owned)
                    .map_err(|e| Error::schedule(format!("rank {}", sd.rank), e))?;
                per_angle.push(s);
            }
            schedules.push(per_angle);
        }

        let ranks: Vec<RankState> = subdomains
            .iter()
            .map(|sd| {
                RankState::new(
                    sd.num_cells(),
                    problem.num_groups,
                    quadrature.num_angles(),
                    nodes,
                )
            })
            .collect();

        let order = problem.scheme.loop_order;
        let psi_layout = FluxLayout::angular(
            nodes,
            mesh.num_cells(),
            problem.num_groups,
            quadrature.num_angles(),
            order,
        );
        let scalar_layout = FluxLayout::scalar(nodes, mesh.num_cells(), problem.num_groups, order);

        Ok(Self {
            problem: problem.clone(),
            decomposition,
            mesh,
            element,
            face_nodes,
            integrals,
            quadrature,
            data,
            subdomains,
            owner_of_cell,
            local_of_cell,
            schedules,
            psi: FluxStorage::zeros(psi_layout),
            psi_prev: FluxStorage::zeros(psi_layout),
            phi: FluxStorage::zeros(scalar_layout),
            phi_outer: FluxStorage::zeros(scalar_layout),
            ranks,
            solver: problem.solver.build(),
            engine: KernelEngine::new(problem.kernel, problem.precision),
            pool,
            clock: Box::new(SystemClock::new()),
            resume: None,
        })
    }

    /// The problem this solver was built for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Install recovered state so the next run continues from a
    /// checkpoint instead of starting cold.
    ///
    /// Validates the flux shapes and the rank count against this
    /// solver's layout; the point is consumed by the next
    /// `run`/`run_observed` call.  Each rank's compact local flux
    /// arrays are regathered from the global arrays when the run
    /// starts, so the point only carries global state.
    pub fn resume_from(&mut self, point: JacobiResumePoint) -> Result<()> {
        if point.phi.len() != self.phi.as_slice().len() {
            return Err(Error::Execution {
                reason: format!(
                    "resume state has {} scalar-flux entries, solver expects {}",
                    point.phi.len(),
                    self.phi.as_slice().len()
                ),
            });
        }
        if point.psi.len() != self.psi.as_slice().len() {
            return Err(Error::Execution {
                reason: format!(
                    "resume state has {} angular-flux entries, solver expects {}",
                    point.psi.len(),
                    self.psi.as_slice().len()
                ),
            });
        }
        if point.rank_stats.len() != self.subdomains.len() {
            return Err(Error::Execution {
                reason: format!(
                    "resume state has {} rank-stat entries, solver has {} ranks",
                    point.rank_stats.len(),
                    self.subdomains.len()
                ),
            });
        }
        if point.outer_next > self.problem.outer_iterations {
            return Err(Error::Execution {
                reason: format!(
                    "resume state starts at outer {} but the problem runs only {}",
                    point.outer_next, self.problem.outer_iterations
                ),
            });
        }
        self.resume = Some(point);
        Ok(())
    }

    /// Replace the solver's time source (e.g. with a
    /// [`MockClock`](unsnap_obs::clock::MockClock)).  Rank solves run
    /// concurrently, so under a shared mock the per-rank span lengths
    /// depend on the interleaving — pin wall-clock exactness on the
    /// single-domain solver instead; here the mock only makes timing
    /// reproducible in the aggregate-count sense.
    pub fn set_clock(&mut self, clock: Box<dyn Clock>) {
        self.clock = clock;
    }

    /// The decomposition in use.
    pub fn decomposition(&self) -> Decomposition2D {
        self.decomposition
    }

    /// The rank subdomains.
    pub fn subdomains(&self) -> &[Subdomain] {
        &self.subdomains
    }

    /// The scalar flux after `run`.
    pub fn scalar_flux(&self) -> &FluxStorage {
        &self.phi
    }

    /// Total halo faces across all ranks.
    pub fn total_halo_faces(&self) -> usize {
        self.subdomains.iter().map(|s| s.halo_faces.len()).sum()
    }

    /// Run the block-Jacobi iteration silently.
    ///
    /// Equivalent to [`BlockJacobiSolver::run_observed`] with the silent
    /// observer.
    pub fn run(&mut self) -> Result<BlockJacobiOutcome> {
        self.run_observed(&mut NoopObserver)
    }

    /// Run the block-Jacobi iteration to the requested iteration counts
    /// (or until the tolerance is met), streaming per-rank progress to
    /// `observer`.
    ///
    /// Every halo iteration fires, for each rank in rank order:
    /// `on_rank_outer_start`, the rank's buffered solve events
    /// (`on_rank_sweep`, `on_rank_inner_iteration`,
    /// `on_rank_krylov_residual`) and `on_rank_outer_end`; the merged
    /// global change then fires through the untagged
    /// `on_inner_iteration`.  Because the buffered logs replay in rank
    /// order, the stream is identical at every thread count.
    pub fn run_observed(&mut self, observer: &mut dyn RunObserver) -> Result<BlockJacobiOutcome> {
        self.run_observed_checkpointed(observer, &mut JacobiNoopSink)
    }

    /// [`BlockJacobiSolver::run_observed`] with a durability hook:
    /// `sink` is offered a [`JacobiCheckpointView`] at every
    /// outer-iteration boundary (after the outer's `on_outer_end`
    /// event).  A sink error aborts the run, which is how the
    /// write-ahead log layer injects deterministic crashes.
    pub fn run_observed_checkpointed(
        &mut self,
        observer: &mut dyn RunObserver,
        sink: &mut dyn JacobiCheckpointSink,
    ) -> Result<BlockJacobiOutcome> {
        // Tee the caller's observer with an internal metrics aggregator
        // and a trace builder, so every outcome carries its telemetry
        // and span tree without caller wiring.
        let mut metrics = MetricsObserver::new();
        let mut tracer = TraceObserver::new();
        let mut outcome = {
            let mut inner_tee = TeeObserver::new(observer, &mut metrics);
            let mut tee = TeeObserver::new(&mut inner_tee, &mut tracer);
            self.run_observed_inner(&mut tee, sink)?
        };
        let mut snapshot = metrics.snapshot();
        snapshot.kernel_assemble_seconds = self
            .ranks
            .iter()
            .map(|r| r.stats.kernel_timing.assemble_ns as f64 * 1e-9)
            .sum();
        snapshot.kernel_solve_seconds = self
            .ranks
            .iter()
            .map(|r| r.stats.kernel_timing.solve_ns as f64 * 1e-9)
            .sum();
        outcome.metrics = snapshot;
        outcome.trace = tracer.into_tree();
        Ok(outcome)
    }

    fn run_observed_inner(
        &mut self,
        observer: &mut dyn RunObserver,
        sink: &mut dyn JacobiCheckpointSink,
    ) -> Result<BlockJacobiOutcome> {
        // A failed iteration consumes the per-rank states (they travel
        // through the worker pool by value); refuse to "run" the husk
        // rather than converge instantly on an all-zero flux.
        if self.ranks.len() != self.subdomains.len() {
            return Err(Error::Execution {
                reason: "block-Jacobi solver is not reusable after a failed run; build a new one"
                    .to_string(),
            });
        }
        // Counters and histories are per run (matching TransportSolver,
        // which builds fresh RunStats every run); the flux state and the
        // Krylov workspaces warm-start the next run as before.
        for rank in &mut self.ranks {
            rank.stats = RunStats::default();
        }
        let kind = self.problem.strategy;
        // Stationary relaxations — source iteration, and DSA-accelerated
        // source iteration (one sweep + one low-order correction) —
        // relax once per halo exchange, preserving the seed's lagged
        // block-Jacobi schedule.  The Krylov strategies instead solve
        // each rank's local system per halo exchange
        // (additive-Schwarz-style subdomain solves).
        //
        // The per-exchange Krylov solve is capped by the dedicated
        // `subdomain_krylov_budget` knob (builder:
        // `subdomain_krylov_budget(..)`, env: `UNSNAP_SUBDOMAIN_ITERS`);
        // when unset it falls back to `inner_iterations`, the historical
        // behaviour where one knob capped both the halo loop and each
        // rank's solve.  Both levels exit early at the tolerance.
        let inner_budget = match kind {
            StrategyKind::SourceIteration | StrategyKind::DsaSourceIteration => 1,
            StrategyKind::SweepGmres => self
                .problem
                .subdomain_krylov_budget
                .unwrap_or(self.problem.inner_iterations),
        };

        let mut converged = false;
        let mut iterations_to_tolerance = None;
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        let n_angles = self.quadrature.num_angles();

        // Consume any installed resume point: restore the global flux
        // arrays, regather each rank's compact local arrays (the exact
        // inverse of the post-solve merge below), seed the per-rank
        // accounting, and replay the saved event prefix into the
        // observer tee so the caller's stream and the internal metrics
        // aggregator both see the run's full history.
        let (mut history, mut inners_run, mut sweep_seconds, start_outer) = match self.resume.take()
        {
            Some(point) => {
                self.phi.as_mut_slice().copy_from_slice(&point.phi);
                self.psi.as_mut_slice().copy_from_slice(&point.psi);
                for (rank, stats) in point.rank_stats.into_iter().enumerate() {
                    self.ranks[rank].stats = stats;
                }
                for (rank, sd) in self.subdomains.iter().enumerate() {
                    for (local, &cell) in sd.global_cells.iter().enumerate() {
                        for g in 0..ng {
                            for angle in 0..n_angles {
                                let base = ((local * ng + g) * n_angles + angle) * nodes;
                                self.ranks[rank].psi[base..base + nodes]
                                    .copy_from_slice(self.psi.nodes(cell, g, angle));
                            }
                            let base = (local * ng + g) * nodes;
                            self.ranks[rank].phi[base..base + nodes]
                                .copy_from_slice(self.phi.nodes(cell, g, 0));
                        }
                    }
                }
                point.prefix.replay(observer);
                (
                    point.convergence_history,
                    point.inners_run,
                    point.sweep_seconds,
                    point.outer_next,
                )
            }
            None => (Vec::new(), 0usize, 0.0, 0),
        };

        for outer in start_outer..self.problem.outer_iterations {
            observer.on_outer_start(outer);
            self.phi_outer
                .as_mut_slice()
                .copy_from_slice(self.phi.as_slice());
            let mut outer_converged = false;
            for _inner in 0..self.problem.inner_iterations {
                inners_run += 1;
                let halo_iteration = inners_run - 1;
                let phi_old: Vec<f64> = self.phi.as_slice().to_vec();

                // Halo "exchange": expose the previous iteration's angular
                // flux to cross-rank upwind reads.  A driver-level event:
                // it fires through the untagged hooks (never inside a
                // rank's log) with the cut-face count and the bytes the
                // exchange publishes.
                observer.on_phase_start(Phase::HaloExchange);
                let halo_t0 = self.clock.now();
                self.psi_prev
                    .as_mut_slice()
                    .copy_from_slice(self.psi.as_slice());
                let halo_seconds = self.clock.now().saturating_sub(halo_t0).as_secs_f64();
                observer.on_phase_end(Phase::HaloExchange, halo_seconds);
                observer.on_halo_exchange(
                    halo_iteration,
                    self.total_halo_faces(),
                    std::mem::size_of_val(self.psi.as_slice()) as u64,
                );

                let t0 = Instant::now();
                // Every rank runs its strategy-dispatched inner solve
                // concurrently on the worker pool.  Nothing a rank reads
                // is written by another rank within the same iteration:
                // own cells come from the rank's private buffers, remote
                // cells from the shared `psi_prev`.  Results and event
                // logs come back in rank order (the pool reassembles in
                // input order), so the outcome and the observer stream
                // are bit-for-bit independent of the interleaving.
                let states = std::mem::take(&mut self.ranks);
                let solves: Vec<Result<(RankState, EventLog, bool)>> = {
                    let this: &Self = self;
                    self.pool.install(|| {
                        states
                            .into_iter()
                            .enumerate()
                            .into_par_iter()
                            .map(|(rank, mut state)| {
                                let strategy = kind.build();
                                let mut log = EventLog::default();
                                let mut stats = std::mem::take(&mut state.stats);
                                let solved = strategy.run_inners(
                                    &mut RankContext {
                                        shared: this,
                                        rank,
                                        inner_budget,
                                        state: &mut state,
                                    },
                                    &mut stats,
                                    &mut log,
                                );
                                state.stats = stats;
                                solved.map(|rank_converged| (state, log, rank_converged))
                            })
                            .collect()
                    })
                };
                sweep_seconds += t0.elapsed().as_secs_f64();

                // Surface the earliest rank's error; the solver state is
                // not reusable after a failed iteration.
                let mut merged = Vec::with_capacity(solves.len());
                for solved in solves {
                    merged.push(solved?);
                }

                // Merge the rank fluxes into the global arrays and replay
                // the buffered event streams, both in rank order.
                self.phi.fill(0.0);
                for (rank, (state, log, rank_converged)) in merged.iter().enumerate() {
                    for (local, &cell) in self.subdomains[rank].global_cells.iter().enumerate() {
                        for g in 0..ng {
                            for angle in 0..n_angles {
                                let base = ((local * ng + g) * n_angles + angle) * nodes;
                                self.psi
                                    .nodes_mut(cell, g, angle)
                                    .copy_from_slice(&state.psi[base..base + nodes]);
                            }
                            let base = (local * ng + g) * nodes;
                            self.phi
                                .nodes_mut(cell, g, 0)
                                .copy_from_slice(&state.phi[base..base + nodes]);
                        }
                    }
                    observer.on_rank_outer_start(rank, halo_iteration);
                    log.replay_as_rank(rank, observer);
                    observer.on_rank_outer_end(rank, halo_iteration, *rank_converged);
                }
                self.ranks = merged.into_iter().map(|(state, _, _)| state).collect();

                let diff = relative_change(self.phi.as_slice(), &phi_old);
                history.push(diff);
                observer.on_inner_iteration(inners_run, diff);
                if self.problem.convergence_tolerance > 0.0
                    && diff < self.problem.convergence_tolerance
                {
                    converged = true;
                    outer_converged = true;
                    iterations_to_tolerance = Some(inners_run);
                    break;
                }
            }
            observer.on_outer_end(outer, outer_converged);
            sink.on_checkpoint(&JacobiCheckpointView {
                outer_completed: outer,
                converged: outer_converged,
                inners_run,
                sweep_seconds,
                convergence_history: &history,
                phi: self.phi.as_slice(),
                psi: self.psi.as_slice(),
                rank_stats: self.ranks.iter().map(|r| &r.stats).collect(),
            })?;
            if converged {
                break;
            }
        }

        Ok(BlockJacobiOutcome {
            num_ranks: self.decomposition.num_ranks(),
            strategy: kind,
            inner_iterations: inners_run,
            converged,
            iterations_to_tolerance,
            convergence_history: history,
            assemble_solve_seconds: sweep_seconds,
            scalar_flux_total: self.phi.as_slice().iter().sum(),
            halo_faces: self.total_halo_faces(),
            sweep_count: self.ranks.iter().map(|r| r.stats.sweeps).sum(),
            krylov_iterations: self.ranks.iter().map(|r| r.stats.krylov_iterations).sum(),
            accel_cg_iterations: self.ranks.iter().map(|r| r.stats.accel_cg_iterations).sum(),
            rank_sweep_counts: self.ranks.iter().map(|r| r.stats.sweeps).collect(),
            rank_krylov_iterations: self
                .ranks
                .iter()
                .map(|r| r.stats.krylov_iterations)
                .collect(),
            rank_accel_cg_iterations: self
                .ranks
                .iter()
                .map(|r| r.stats.accel_cg_iterations)
                .collect(),
            metrics: RunMetrics::default(),
            trace: TraceTree::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_core::session::RecordingObserver;
    use unsnap_core::solver::TransportSolver;

    fn base_problem() -> Problem {
        let mut p = Problem::tiny();
        p.nx = 4;
        p.ny = 4;
        p.nz = 2;
        p.num_groups = 1;
        p.angles_per_octant = 2;
        p.inner_iterations = 3;
        p.outer_iterations = 1;
        p.convergence_tolerance = 0.0;
        p
    }

    #[test]
    fn single_rank_matches_full_sweep_solver() {
        let p = base_problem();
        let mut jacobi = BlockJacobiSolver::new(&p, Decomposition2D::serial()).unwrap();
        let jacobi_out = jacobi.run().unwrap();

        let mut full = TransportSolver::new(&p).unwrap();
        let full_out = full.run().unwrap();

        let rel = (jacobi_out.scalar_flux_total - full_out.scalar_flux_total).abs()
            / full_out.scalar_flux_total;
        assert!(rel < 1e-10, "single-rank Jacobi must equal the full sweep");
        assert_eq!(jacobi_out.halo_faces, 0);
        assert_eq!(jacobi_out.num_ranks, 1);
        assert_eq!(jacobi_out.strategy, StrategyKind::SourceIteration);
        assert_eq!(jacobi_out.sweep_count, 3);
        assert_eq!(jacobi_out.rank_sweep_counts, vec![3]);
        assert_eq!(jacobi_out.krylov_iterations, 0);
    }

    #[test]
    fn multi_rank_partition_is_complete() {
        let p = base_problem();
        let solver = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 2)).unwrap();
        let total: usize = solver.subdomains().iter().map(|s| s.num_cells()).sum();
        assert_eq!(total, p.num_cells());
        assert!(solver.total_halo_faces() > 0);
        assert_eq!(solver.decomposition().num_ranks(), 4);
    }

    #[test]
    fn converged_answers_agree_across_rank_counts() {
        // Block Jacobi changes the iteration path, not the fixed point.
        let mut p = base_problem();
        p.inner_iterations = 60;
        p.convergence_tolerance = 1e-9;
        let mut reference = None;
        for decomp in [
            Decomposition2D::serial(),
            Decomposition2D::new(2, 1),
            Decomposition2D::new(2, 2),
        ] {
            let mut s = BlockJacobiSolver::new(&p, decomp).unwrap();
            let out = s.run().unwrap();
            assert!(out.converged, "ranks = {}", decomp.num_ranks());
            match reference {
                None => reference = Some(out.scalar_flux_total),
                Some(r) => {
                    let rel: f64 = (out.scalar_flux_total - r).abs() / r;
                    assert!(rel < 1e-6, "ranks = {}: rel = {rel}", decomp.num_ranks());
                }
            }
        }
    }

    #[test]
    fn more_ranks_never_converge_faster() {
        // Garrett's observation (§III-A.1): block Jacobi converges more
        // slowly as the number of blocks grows.
        let mut p = base_problem();
        p.inner_iterations = 80;
        p.convergence_tolerance = 1e-8;
        let mut iterations = Vec::new();
        for decomp in [
            Decomposition2D::serial(),
            Decomposition2D::new(2, 2),
            Decomposition2D::new(4, 2),
        ] {
            let mut s = BlockJacobiSolver::new(&p, decomp).unwrap();
            let out = s.run().unwrap();
            assert!(out.converged);
            iterations.push(out.iterations_to_tolerance.unwrap());
        }
        assert!(
            iterations[1] >= iterations[0],
            "2x2 ranks should not converge faster than serial: {iterations:?}"
        );
        assert!(
            iterations[2] >= iterations[1],
            "4x2 ranks should not converge faster than 2x2: {iterations:?}"
        );
    }

    #[test]
    fn history_length_matches_iterations() {
        let p = base_problem();
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let out = s.run().unwrap();
        assert_eq!(out.convergence_history.len(), out.inner_iterations);
        assert_eq!(out.inner_iterations, 3);
        assert!(!out.converged);
        assert!(out.assemble_solve_seconds > 0.0);
    }

    #[test]
    fn gmres_inner_solves_reach_the_same_fixed_point() {
        let mut p = base_problem();
        p.inner_iterations = 60;
        p.convergence_tolerance = 1e-9;
        let mut si = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let si_out = si.run().unwrap();

        p.strategy = StrategyKind::SweepGmres;
        let mut gm = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let gm_out = gm.run().unwrap();

        assert!(si_out.converged && gm_out.converged);
        assert_eq!(gm_out.strategy, StrategyKind::SweepGmres);
        assert!(gm_out.krylov_iterations > 0);
        assert_eq!(gm_out.rank_krylov_iterations.len(), 2);
        // Krylov subdomain solves converge the halo iteration in far
        // fewer halo exchanges than one-sweep relaxation.
        assert!(
            gm_out.inner_iterations <= si_out.inner_iterations,
            "GMRES {} vs SI {} halo iterations",
            gm_out.inner_iterations,
            si_out.inner_iterations
        );
        let rel = (si_out.scalar_flux_total - gm_out.scalar_flux_total).abs()
            / si_out.scalar_flux_total.abs();
        assert!(rel < 1e-6, "SI and GMRES fixed points differ: {rel}");
    }

    #[test]
    fn dsa_inner_solves_reach_the_same_fixed_point() {
        // DSA-SI per rank: one sweep + one low-order correction per halo
        // exchange, same fixed point as plain SI, never slower.
        let mut p = base_problem();
        p.inner_iterations = 60;
        p.convergence_tolerance = 1e-9;
        let mut si = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let si_out = si.run().unwrap();

        p.strategy = StrategyKind::DsaSourceIteration;
        let mut dsa = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let dsa_out = dsa.run().unwrap();

        assert!(si_out.converged && dsa_out.converged);
        assert_eq!(dsa_out.strategy, StrategyKind::DsaSourceIteration);
        assert_eq!(si_out.accel_cg_iterations, 0);
        assert!(dsa_out.accel_cg_iterations > 0);
        assert_eq!(dsa_out.rank_accel_cg_iterations.len(), 2);
        assert!(dsa_out.rank_accel_cg_iterations.iter().all(|&its| its > 0));
        // Like SI, DSA-SI relaxes once per halo exchange.
        assert_eq!(dsa_out.sweep_count, 2 * dsa_out.inner_iterations);
        assert!(
            dsa_out.inner_iterations <= si_out.inner_iterations,
            "DSA-SI {} vs SI {} halo iterations",
            dsa_out.inner_iterations,
            si_out.inner_iterations
        );
        let rel = (si_out.scalar_flux_total - dsa_out.scalar_flux_total).abs()
            / si_out.scalar_flux_total.abs();
        assert!(rel < 1e-6, "SI and DSA-SI fixed points differ: {rel}");
    }

    #[test]
    fn subdomain_budget_default_is_bit_for_bit_the_legacy_behaviour() {
        // `subdomain_krylov_budget: None` must reproduce the historical
        // path (per-exchange Krylov capped by `inner_iterations`)
        // exactly; setting the knob to that same value is also
        // bit-for-bit identical.
        let mut p = base_problem();
        p.inner_iterations = 20;
        p.convergence_tolerance = 1e-8;
        p.strategy = StrategyKind::SweepGmres;

        let run = |problem: &Problem| {
            let mut s = BlockJacobiSolver::new(problem, Decomposition2D::new(2, 1)).unwrap();
            let out = s.run().unwrap();
            let flux = s.scalar_flux().as_slice().to_vec();
            (out, flux)
        };

        let (default_out, default_flux) = run(&p);
        let explicit = p.clone().with_subdomain_krylov_budget(p.inner_iterations);
        let (explicit_out, explicit_flux) = run(&explicit);
        let mut a = default_out.clone();
        let mut b = explicit_out;
        a.assemble_solve_seconds = 0.0;
        b.assemble_solve_seconds = 0.0;
        a.metrics.zero_wallclock();
        b.metrics.zero_wallclock();
        assert_eq!(a, b, "explicit budget == inner_iterations must be a no-op");
        assert_eq!(default_flux, explicit_flux);
    }

    #[test]
    fn subdomain_budget_knob_caps_the_per_exchange_krylov_solve() {
        let mut p = base_problem();
        p.inner_iterations = 30;
        p.convergence_tolerance = 1e-8;
        p.strategy = StrategyKind::SweepGmres;

        let mut unlimited = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let unlimited_out = unlimited.run().unwrap();

        // One Krylov iteration per rank per halo exchange: the halo loop
        // has to do more exchanges, and each rank's Krylov total is
        // bounded by the number of exchanges.
        let capped_problem = p.clone().with_subdomain_krylov_budget(1);
        let mut capped =
            BlockJacobiSolver::new(&capped_problem, Decomposition2D::new(2, 1)).unwrap();
        let capped_out = capped.run().unwrap();

        assert!(unlimited_out.converged && capped_out.converged);
        assert!(
            capped_out.inner_iterations >= unlimited_out.inner_iterations,
            "capped {} vs unlimited {} halo iterations",
            capped_out.inner_iterations,
            unlimited_out.inner_iterations
        );
        for (rank, &its) in capped_out.rank_krylov_iterations.iter().enumerate() {
            assert!(
                its <= capped_out.inner_iterations,
                "rank {rank}: {its} Krylov iterations over {} exchanges",
                capped_out.inner_iterations
            );
        }
        let rel = (capped_out.scalar_flux_total - unlimited_out.scalar_flux_total).abs()
            / unlimited_out.scalar_flux_total.abs();
        assert!(rel < 1e-6, "fixed point moved under the budget cap: {rel}");
    }

    #[test]
    fn outcome_serialises_and_displays() {
        let p = base_problem();
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let out = s.run().unwrap();

        let json = out.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"num_ranks\":2"));
        assert!(json.contains("\"strategy\":\"SI\""));
        assert!(json.contains("\"rank_sweep_counts\":[3,3]"));
        assert!(json.contains("\"iterations_to_tolerance\":null"));

        let text = format!("{out}");
        assert!(text.contains("2 ranks (SI)"));
        assert!(text.contains("NOT converged in 6 sweeps"));
    }

    #[test]
    fn rerunning_reports_per_run_counters() {
        // Counters are per run: a second run on the same solver (which
        // warm-starts from the converged flux) must not inherit the
        // first run's sweep/Krylov work.
        let p = base_problem();
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let first = s.run().unwrap();
        let second = s.run().unwrap();
        assert_eq!(first.sweep_count, 6);
        assert_eq!(second.sweep_count, 6, "counters leaked across runs");
        assert_eq!(second.rank_sweep_counts, vec![3, 3]);
        assert_eq!(second.inner_iterations, 3);
    }

    #[test]
    fn metrics_capture_halo_exchanges_and_rank_sweeps() {
        let p = base_problem();
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let out = s.run().unwrap();
        let m = &out.metrics;
        assert_eq!(m.sweeps, out.sweep_count);
        assert_eq!(m.halo_exchanges, out.inner_iterations);
        assert_eq!(m.halo_faces, out.halo_faces * out.inner_iterations);
        assert!(m.halo_bytes > 0);
        assert_eq!(m.phase_count(Phase::Sweep), out.sweep_count);
        assert_eq!(m.phase_count(Phase::HaloExchange), out.inner_iterations);
        assert_eq!(m.cells_per_sweep.count() as usize, out.sweep_count);
        // Kernel timers are summed over the rank stats of this run.
        assert!(m.kernel_assemble_seconds > 0.0);
    }

    #[test]
    fn observer_counts_match_rank_counters() {
        let mut p = base_problem();
        p.inner_iterations = 4;
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 2)).unwrap();
        let mut recorder = RecordingObserver::default();
        let out = s.run_observed(&mut recorder).unwrap();

        assert_eq!(recorder.rank_records.len(), 4);
        for (rank, record) in recorder.rank_records.iter().enumerate() {
            assert_eq!(record.sweep_count, out.rank_sweep_counts[rank]);
            assert_eq!(record.outers_started, out.inner_iterations);
            assert_eq!(record.outers_completed, out.inner_iterations);
        }
        // The global stream reports the merged convergence history.
        assert_eq!(recorder.convergence_history, out.convergence_history);
        assert_eq!(recorder.outers_started, 1);
    }
}
