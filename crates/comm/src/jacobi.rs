//! The parallel block-Jacobi global schedule over rank subdomains.
//!
//! Every rank sweeps its own subdomain with per-angle wavefront schedules
//! that are *masked* to the cells it owns; an upwind face whose neighbour
//! belongs to another rank takes its angular flux from the **previous**
//! iteration (that is the content of the per-iteration halo exchange).
//! "Note that each process can begin computation on its own subdomain
//! concurrently, unlike with the KBA schedule in the SNAP mini-app where
//! processors must wait to begin work." (§III-A.1.)
//!
//! With a single rank the schedule degenerates to the full sweep and the
//! solver reproduces `unsnap_core::TransportSolver` exactly; with more
//! ranks the converged answer is the same but the convergence *rate*
//! degrades — the trade-off the `ablation_jacobi_ranks` benchmark measures.
//!
//! Ranks genuinely sweep **concurrently** on the worker pool (sized by
//! [`Problem::num_threads`], overridable with `RAYON_NUM_THREADS`): each
//! rank writes into a private, compactly-indexed angular-flux buffer and
//! reads remote cells only from the shared previous-iteration array, so
//! the per-iteration results are bit-for-bit identical at every thread
//! and rank-execution ordering.

use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use unsnap_core::angular::AngularQuadrature;
use unsnap_core::data::ProblemData;
use unsnap_core::error::{Error, Result};
use unsnap_core::kernel::{assemble_solve, KernelScratch, UpwindFace, UpwindSource};
use unsnap_core::layout::{FluxLayout, FluxStorage};
use unsnap_core::problem::Problem;
use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::{face_node_indices, FACES};
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::LinearSolver;
use unsnap_mesh::{Decomposition2D, NeighborRef, Subdomain, UnstructuredMesh};
use unsnap_sweep::SweepSchedule;

/// Summary of a block-Jacobi distributed solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockJacobiOutcome {
    /// Number of ranks (Jacobi blocks).
    pub num_ranks: usize,
    /// Inner iterations executed.
    pub inner_iterations: usize,
    /// Whether the convergence tolerance was met.
    pub converged: bool,
    /// Iterations needed to reach the tolerance (if it was reached).
    pub iterations_to_tolerance: Option<usize>,
    /// Maximum relative scalar-flux change per inner iteration.
    pub convergence_history: Vec<f64>,
    /// Wall-clock seconds spent in the assemble/solve region.
    pub assemble_solve_seconds: f64,
    /// Sum of the scalar flux over all nodes/elements/groups.
    pub scalar_flux_total: f64,
    /// Total halo faces across all ranks (faces refreshed per iteration).
    pub halo_faces: usize,
}

/// Block-Jacobi distributed transport solver (simulated ranks).
pub struct BlockJacobiSolver {
    problem: Problem,
    decomposition: Decomposition2D,
    mesh: UnstructuredMesh,
    element: ReferenceElement,
    face_nodes: [Vec<usize>; 6],
    integrals: Vec<ElementIntegrals>,
    quadrature: AngularQuadrature,
    data: ProblemData,
    subdomains: Vec<Subdomain>,
    owner_of_cell: Vec<usize>,
    /// `local_of_cell[rank][cell]`: dense per-rank slot of a global cell
    /// in that rank's private sweep buffer (`usize::MAX` = not owned).
    local_of_cell: Vec<Vec<usize>>,
    /// `schedules[rank][angle]`: the masked wavefront schedule.
    schedules: Vec<Vec<SweepSchedule>>,
    psi: FluxStorage,
    psi_prev: FluxStorage,
    phi: FluxStorage,
    phi_outer: FluxStorage,
    source: FluxStorage,
    solver: Box<dyn LinearSolver>,
    /// Worker pool the rank sweeps fan out on.
    pool: rayon::ThreadPool,
}

impl BlockJacobiSolver {
    /// Build the distributed solver for a problem and a 2-D decomposition.
    ///
    /// Fails with [`Error::InvalidProblem`] on a bad problem,
    /// [`Error::Mesh`] when the decomposition does not fit the mesh, and
    /// [`Error::Schedule`] when a rank's masked wavefront schedule cannot
    /// be built.
    pub fn new(problem: &Problem, decomposition: Decomposition2D) -> Result<Self> {
        problem.validate()?;
        let mesh = problem.build_mesh();
        let element = ReferenceElement::new(problem.element_order);
        let nodes = element.nodes_per_element();
        let face_nodes: [Vec<usize>; 6] =
            std::array::from_fn(|f| face_node_indices(FACES[f], problem.element_order));
        let quadrature = AngularQuadrature::product(problem.angles_per_octant);
        let grid = problem.grid();
        let data = ProblemData::generate(
            mesh.num_cells(),
            |cell| mesh.cell_centroid(cell),
            [grid.lx, grid.ly, grid.lz],
            problem.num_groups,
            problem.material,
            problem.source,
        );

        let integrals: Vec<ElementIntegrals> = (0..mesh.num_cells())
            .map(|cell| {
                let hex = HexVertices {
                    corners: *mesh.cell_corners(cell),
                };
                ElementIntegrals::compute(&element, &hex)
            })
            .collect();

        let subdomains = decomposition.try_decompose(&mesh)?;
        let mut owner_of_cell = vec![0usize; mesh.num_cells()];
        for sd in &subdomains {
            for &g in &sd.global_cells {
                owner_of_cell[g] = sd.rank;
            }
        }
        let local_of_cell: Vec<Vec<usize>> = subdomains
            .iter()
            .map(|sd| {
                let mut map = vec![usize::MAX; mesh.num_cells()];
                for (local, &g) in sd.global_cells.iter().enumerate() {
                    map[g] = local;
                }
                map
            })
            .collect();

        // The only parallel axis here is the rank loop, so threads beyond
        // the rank count could never receive work — cap the pool width.
        let num_threads = problem
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .min(subdomains.len().max(1));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(num_threads)
            .build()
            .map_err(|e| Error::Execution {
                reason: format!("failed to build thread pool: {e}"),
            })?;

        // Masked schedules: one per rank per angle.
        let mut schedules = Vec::with_capacity(subdomains.len());
        for sd in &subdomains {
            let owned: Vec<bool> = (0..mesh.num_cells()).map(|c| sd.owns(c)).collect();
            let mut per_angle = Vec::with_capacity(quadrature.num_angles());
            for d in quadrature.directions() {
                let s = SweepSchedule::build_masked(&mesh, d.omega, &owned)
                    .map_err(|e| Error::schedule(format!("rank {}", sd.rank), e))?;
                per_angle.push(s);
            }
            schedules.push(per_angle);
        }

        let order = problem.scheme.loop_order;
        let psi_layout = FluxLayout::angular(
            nodes,
            mesh.num_cells(),
            problem.num_groups,
            quadrature.num_angles(),
            order,
        );
        let scalar_layout = FluxLayout::scalar(nodes, mesh.num_cells(), problem.num_groups, order);

        Ok(Self {
            problem: problem.clone(),
            decomposition,
            mesh,
            element,
            face_nodes,
            integrals,
            quadrature,
            data,
            subdomains,
            owner_of_cell,
            local_of_cell,
            schedules,
            psi: FluxStorage::zeros(psi_layout),
            psi_prev: FluxStorage::zeros(psi_layout),
            phi: FluxStorage::zeros(scalar_layout),
            phi_outer: FluxStorage::zeros(scalar_layout),
            source: FluxStorage::zeros(scalar_layout),
            solver: problem.solver.build(),
            pool,
        })
    }

    /// The decomposition in use.
    pub fn decomposition(&self) -> Decomposition2D {
        self.decomposition
    }

    /// The rank subdomains.
    pub fn subdomains(&self) -> &[Subdomain] {
        &self.subdomains
    }

    /// The scalar flux after `run`.
    pub fn scalar_flux(&self) -> &FluxStorage {
        &self.phi
    }

    /// Total halo faces across all ranks.
    pub fn total_halo_faces(&self) -> usize {
        self.subdomains.iter().map(|s| s.halo_faces.len()).sum()
    }

    fn compute_source(&mut self) {
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        for element in 0..self.mesh.num_cells() {
            let mat = self.data.material(element);
            let q_fixed = self.data.fixed_source(element);
            for g in 0..ng {
                let mut acc = vec![q_fixed; nodes];
                for g_from in 0..ng {
                    let sigma_s = self.data.xs.scatter(mat, g_from, g);
                    if sigma_s == 0.0 {
                        continue;
                    }
                    let phi_ref = if g_from == g {
                        self.phi.nodes(element, g_from, 0)
                    } else {
                        self.phi_outer.nodes(element, g_from, 0)
                    };
                    for (a, &p) in acc.iter_mut().zip(phi_ref.iter()) {
                        *a += sigma_s * p;
                    }
                }
                self.source.nodes_mut(element, g, 0).copy_from_slice(&acc);
            }
        }
    }

    /// Run the block-Jacobi iteration to the requested iteration counts (or
    /// until the tolerance is met).
    pub fn run(&mut self) -> Result<BlockJacobiOutcome> {
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        let mut history = Vec::new();
        let mut converged = false;
        let mut iterations_to_tolerance = None;
        let mut inners_run = 0usize;
        let mut sweep_seconds = 0.0;

        for _outer in 0..self.problem.outer_iterations {
            self.phi_outer
                .as_mut_slice()
                .copy_from_slice(self.phi.as_slice());
            for _inner in 0..self.problem.inner_iterations {
                inners_run += 1;
                self.compute_source();
                let phi_old: Vec<f64> = self.phi.as_slice().to_vec();
                self.phi.fill(0.0);

                // Halo "exchange": expose the previous iteration's angular
                // flux to cross-rank upwind reads.
                self.psi_prev
                    .as_mut_slice()
                    .copy_from_slice(self.psi.as_slice());

                let t0 = Instant::now();
                // Every rank sweeps its own subdomain concurrently on the
                // worker pool — the property the paper's schedule is
                // designed around ("each process can begin computation on
                // its own subdomain concurrently").  Nothing a rank reads
                // is written by another rank within the same iteration:
                // own cells come from the rank's private buffer, remote
                // cells from the shared `psi_prev`.  Results are merged in
                // rank order and ranks own disjoint cells, so the outcome
                // is bit-for-bit independent of the execution interleaving.
                let results: Vec<(Vec<f64>, Vec<f64>)> = {
                    let this: &Self = self;
                    self.pool.install(|| {
                        (0..this.subdomains.len())
                            .into_par_iter()
                            .map(|rank| this.sweep_rank_collect(rank, ng, nodes))
                            .collect()
                    })
                };
                let n_angles = self.quadrature.num_angles();
                for (rank, (psi_local, phi_local)) in results.into_iter().enumerate() {
                    for (local, &cell) in self.subdomains[rank].global_cells.iter().enumerate() {
                        for g in 0..ng {
                            for angle in 0..n_angles {
                                let base = ((local * ng + g) * n_angles + angle) * nodes;
                                self.psi
                                    .nodes_mut(cell, g, angle)
                                    .copy_from_slice(&psi_local[base..base + nodes]);
                            }
                            let base = (local * ng + g) * nodes;
                            let src = &phi_local[base..base + nodes];
                            for (p, &v) in self.phi.nodes_mut(cell, g, 0).iter_mut().zip(src.iter())
                            {
                                *p += v;
                            }
                        }
                    }
                }
                sweep_seconds += t0.elapsed().as_secs_f64();

                let diff = self
                    .phi
                    .as_slice()
                    .iter()
                    .zip(phi_old.iter())
                    .fold(0.0f64, |m, (a, b)| {
                        m.max((a - b).abs() / b.abs().max(1e-12))
                    });
                history.push(diff);
                if self.problem.convergence_tolerance > 0.0
                    && diff < self.problem.convergence_tolerance
                {
                    converged = true;
                    iterations_to_tolerance = Some(inners_run);
                    break;
                }
            }
            if converged {
                break;
            }
        }

        Ok(BlockJacobiOutcome {
            num_ranks: self.decomposition.num_ranks(),
            inner_iterations: inners_run,
            converged,
            iterations_to_tolerance,
            convergence_history: history,
            assemble_solve_seconds: sweep_seconds,
            scalar_flux_total: self.phi.as_slice().iter().sum(),
            halo_faces: self.total_halo_faces(),
        })
    }

    /// Sweep all angles of one rank's subdomain into private buffers.
    ///
    /// Returns the rank's angular flux — compactly indexed as
    /// `((local_cell · ng + g) · num_angles + angle) · nodes` — and its
    /// scalar-flux contribution, compactly indexed as
    /// `(local_cell · ng + g) · nodes`, so per-rank memory is the rank's
    /// share of the mesh, not a full-mesh copy.
    /// Takes `&self` so ranks can sweep concurrently: own-rank upwind
    /// reads come from the private buffer (the masked wavefront schedule
    /// guarantees they were written earlier in the same sweep), remote
    /// reads from the shared previous-iteration `psi_prev`.
    fn sweep_rank_collect(&self, rank: usize, ng: usize, nodes: usize) -> (Vec<f64>, Vec<f64>) {
        let n_angles = self.quadrature.num_angles();
        let owned = self.subdomains[rank].global_cells.len();
        let local_of_cell = &self.local_of_cell[rank];
        let psi_base =
            |local: usize, g: usize, angle: usize| ((local * ng + g) * n_angles + angle) * nodes;
        let mut psi_local = vec![0.0f64; owned * ng * n_angles * nodes];
        let mut phi_local = vec![0.0f64; owned * ng * nodes];
        let mut scratch = KernelScratch::new(nodes);

        for angle in 0..n_angles {
            let direction = self.quadrature.directions()[angle];
            let omega = direction.omega;
            let weight = direction.weight;
            let schedule = &self.schedules[rank][angle];
            for bucket in &schedule.buckets {
                for &e in bucket {
                    for g in 0..ng {
                        let ints = &self.integrals[e];
                        let sigma_t = self.data.xs.total(self.data.material(e), g);
                        let source_nodes = self.source.nodes(e, g, 0);
                        let inflow = &schedule.inflow_faces[e];
                        let mut upwind: Vec<UpwindFace<'_>> = Vec::with_capacity(inflow.len());
                        for &face in inflow {
                            let src = match self.mesh.neighbor(e, face) {
                                NeighborRef::Boundary { domain_face } => UpwindSource::Boundary(
                                    self.problem.boundaries.face(domain_face).incoming_flux(),
                                ),
                                NeighborRef::Interior { cell, face: nf } => {
                                    // Same rank: current iteration, from
                                    // the private buffer.  Other rank:
                                    // lagged halo data.
                                    let psi_src = if self.owner_of_cell[cell] == rank {
                                        let b = psi_base(local_of_cell[cell], g, angle);
                                        &psi_local[b..b + nodes]
                                    } else {
                                        self.psi_prev.nodes(cell, g, angle)
                                    };
                                    UpwindSource::Interior {
                                        neighbor_psi: psi_src,
                                        neighbor_face_nodes: &self.face_nodes[nf],
                                    }
                                }
                            };
                            upwind.push(UpwindFace { face, source: src });
                        }
                        assemble_solve(
                            ints,
                            omega,
                            sigma_t,
                            source_nodes,
                            &upwind,
                            self.solver.as_ref(),
                            false,
                            &mut scratch,
                        );
                        let b = psi_base(local_of_cell[e], g, angle);
                        psi_local[b..b + nodes].copy_from_slice(&scratch.rhs);
                        let base = (local_of_cell[e] * ng + g) * nodes;
                        for (node, &v) in scratch.rhs.iter().enumerate() {
                            phi_local[base + node] += weight * v;
                        }
                    }
                }
            }
        }
        (psi_local, phi_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_core::solver::TransportSolver;

    fn base_problem() -> Problem {
        let mut p = Problem::tiny();
        p.nx = 4;
        p.ny = 4;
        p.nz = 2;
        p.num_groups = 1;
        p.angles_per_octant = 2;
        p.inner_iterations = 3;
        p.outer_iterations = 1;
        p.convergence_tolerance = 0.0;
        p
    }

    #[test]
    fn single_rank_matches_full_sweep_solver() {
        let p = base_problem();
        let mut jacobi = BlockJacobiSolver::new(&p, Decomposition2D::serial()).unwrap();
        let jacobi_out = jacobi.run().unwrap();

        let mut full = TransportSolver::new(&p).unwrap();
        let full_out = full.run().unwrap();

        let rel = (jacobi_out.scalar_flux_total - full_out.scalar_flux_total).abs()
            / full_out.scalar_flux_total;
        assert!(rel < 1e-10, "single-rank Jacobi must equal the full sweep");
        assert_eq!(jacobi_out.halo_faces, 0);
        assert_eq!(jacobi_out.num_ranks, 1);
    }

    #[test]
    fn multi_rank_partition_is_complete() {
        let p = base_problem();
        let solver = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 2)).unwrap();
        let total: usize = solver.subdomains().iter().map(|s| s.num_cells()).sum();
        assert_eq!(total, p.num_cells());
        assert!(solver.total_halo_faces() > 0);
        assert_eq!(solver.decomposition().num_ranks(), 4);
    }

    #[test]
    fn converged_answers_agree_across_rank_counts() {
        // Block Jacobi changes the iteration path, not the fixed point.
        let mut p = base_problem();
        p.inner_iterations = 60;
        p.convergence_tolerance = 1e-9;
        let mut reference = None;
        for decomp in [
            Decomposition2D::serial(),
            Decomposition2D::new(2, 1),
            Decomposition2D::new(2, 2),
        ] {
            let mut s = BlockJacobiSolver::new(&p, decomp).unwrap();
            let out = s.run().unwrap();
            assert!(out.converged, "ranks = {}", decomp.num_ranks());
            match reference {
                None => reference = Some(out.scalar_flux_total),
                Some(r) => {
                    let rel: f64 = (out.scalar_flux_total - r).abs() / r;
                    assert!(rel < 1e-6, "ranks = {}: rel = {rel}", decomp.num_ranks());
                }
            }
        }
    }

    #[test]
    fn more_ranks_never_converge_faster() {
        // Garrett's observation (§III-A.1): block Jacobi converges more
        // slowly as the number of blocks grows.
        let mut p = base_problem();
        p.inner_iterations = 80;
        p.convergence_tolerance = 1e-8;
        let mut iterations = Vec::new();
        for decomp in [
            Decomposition2D::serial(),
            Decomposition2D::new(2, 2),
            Decomposition2D::new(4, 2),
        ] {
            let mut s = BlockJacobiSolver::new(&p, decomp).unwrap();
            let out = s.run().unwrap();
            assert!(out.converged);
            iterations.push(out.iterations_to_tolerance.unwrap());
        }
        assert!(
            iterations[1] >= iterations[0],
            "2x2 ranks should not converge faster than serial: {iterations:?}"
        );
        assert!(
            iterations[2] >= iterations[1],
            "4x2 ranks should not converge faster than 2x2: {iterations:?}"
        );
    }

    #[test]
    fn history_length_matches_iterations() {
        let p = base_problem();
        let mut s = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 1)).unwrap();
        let out = s.run().unwrap();
        assert_eq!(out.convergence_history.len(), out.inner_iterations);
        assert_eq!(out.inner_iterations, 3);
        assert!(!out.converged);
        assert!(out.assemble_solve_seconds > 0.0);
    }
}
