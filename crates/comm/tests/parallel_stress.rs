//! Stress tests for the communication layer under the real worker pool.
//!
//! Until this PR the `rayon` stand-in ran everything on the calling
//! thread, so the `crossbeam` channel mailboxes and the `parking_lot`
//! locks never saw true contention.  These tests hammer both from many
//! worker threads and repeat randomized-partition block-Jacobi solves,
//! asserting (a) nothing deadlocks — the tests finish — and (b) the
//! converged physics is invariant across rank counts and thread counts.

use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use unsnap_comm::halo::{HaloExchange, HaloMessage};
use unsnap_comm::jacobi::BlockJacobiSolver;
use unsnap_core::problem::Problem;
use unsnap_mesh::Decomposition2D;

fn base_problem() -> Problem {
    let mut p = Problem::tiny();
    p.nx = 4;
    p.ny = 4;
    p.nz = 2;
    p.num_groups = 1;
    p.angles_per_octant = 2;
    p.outer_iterations = 1;
    p
}

#[test]
fn halo_exchange_survives_concurrent_senders() {
    // Many workers blast packed messages at every mailbox concurrently;
    // every message must arrive exactly once and unpack intact.
    let num_ranks = 4;
    let senders = 8;
    let messages_per_sender = 200;
    let exchange = HaloExchange::new(num_ranks);
    let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();

    pool.install(|| {
        (0..senders * messages_per_sender)
            .collect::<Vec<usize>>()
            .into_par_iter()
            .for_each(|k| {
                let message = HaloMessage {
                    from_rank: k % senders,
                    cell: k,
                    face: k % 6,
                    angle: k % 16,
                    group: k % 2,
                    values: vec![k as f64, -(k as f64), 0.5],
                };
                exchange.send(k % num_ranks, &message).unwrap();
            })
    });

    let mut received = Vec::new();
    for rank in 0..num_ranks {
        for message in exchange.drain(rank).unwrap() {
            assert_eq!(message.cell % num_ranks, rank);
            assert_eq!(message.values[0], message.cell as f64);
            assert_eq!(message.values[1], -(message.cell as f64));
            received.push(message.cell);
        }
    }
    received.sort_unstable();
    assert_eq!(
        received,
        (0..senders * messages_per_sender).collect::<Vec<_>>()
    );
}

#[test]
fn repeated_block_jacobi_runs_do_not_deadlock() {
    // Back-to-back multi-rank solves on a freshly built 4-thread pool
    // each time: worker spawn/join and the contended mailbox locks must
    // never wedge.
    let mut p = base_problem();
    p.inner_iterations = 3;
    p.num_threads = Some(4);
    for _ in 0..5 {
        let mut solver = BlockJacobiSolver::new(&p, Decomposition2D::new(2, 2)).unwrap();
        let outcome = solver.run().unwrap();
        assert_eq!(outcome.inner_iterations, 3);
        assert!(outcome.scalar_flux_total > 0.0);
    }
}

#[test]
fn rank_parallel_sweeps_match_the_sequential_thread_count() {
    // The same decomposition must produce bit-for-bit identical fluxes
    // whether the ranks run on 1 worker or 4.
    let mut p = base_problem();
    p.inner_iterations = 4;
    for decomp in [Decomposition2D::new(2, 1), Decomposition2D::new(2, 2)] {
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let mut q = p.clone();
            q.num_threads = Some(threads);
            let mut solver = BlockJacobiSolver::new(&q, decomp).unwrap();
            let outcome = solver.run().unwrap();
            outcomes.push((
                outcome.convergence_history.clone(),
                outcome.scalar_flux_total,
                solver.scalar_flux().as_slice().to_vec(),
            ));
        }
        assert_eq!(outcomes[0].0, outcomes[1].0, "histories diverged");
        assert_eq!(outcomes[0].1.to_bits(), outcomes[1].1.to_bits());
        assert_eq!(outcomes[0].2, outcomes[1].2, "flux state diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn converged_physics_is_invariant_across_random_partitions(
        px in 1usize..=4,
        py in 1usize..=4,
        threads in 1usize..=4,
    ) {
        // Any decomposition that fits the 4x4 x-y extent must converge to
        // the same answer as the serial reference, at any pool width.
        prop_assume!(4 % px == 0 && 4 % py == 0);
        let mut p = base_problem();
        p.inner_iterations = 80;
        p.convergence_tolerance = 1e-9;
        p.num_threads = Some(1);

        let mut reference = BlockJacobiSolver::new(&p, Decomposition2D::serial()).unwrap();
        let expected = reference.run().unwrap().scalar_flux_total;

        let mut q = p.clone();
        q.num_threads = Some(threads);
        let mut solver = BlockJacobiSolver::new(&q, Decomposition2D::new(px, py)).unwrap();
        let outcome = solver.run().unwrap();
        prop_assert!(outcome.converged, "{px}x{py} ranks did not converge");
        let rel = (outcome.scalar_flux_total - expected).abs() / expected;
        prop_assert!(
            rel < 1e-6,
            "{px}x{py} ranks on {threads} threads: rel error {rel}"
        );
    }
}
