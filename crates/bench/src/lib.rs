//! # unsnap-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! UnSNAP paper, plus the ablations its text discusses.  See the
//! repository's `docs/ARCHITECTURE.md` for where each binary sits in
//! the crate stack and the README's "Reproducing the paper" matrix for
//! the exact command lines.
//!
//! | experiment | paper artefact | binary |
//! |------------|----------------|--------|
//! | Table I    | local matrix size & FP64 footprint per element order | `table1` |
//! | Figure 3   | thread scaling of six concurrency schemes, linear elements | `figure3` |
//! | Figure 4   | thread scaling of six concurrency schemes, cubic elements | `figure4` |
//! | Table II   | GE vs MKL assemble/solve time and % in solve, orders 1–4 | `table2` |
//! | §IV-A.3    | angle-threaded atomic scalar-flux reduction does not scale | `ablation_angle_atomic` |
//! | §IV-B.1    | pre-assembled/pre-factorised matrices vs on-the-fly assembly | `ablation_preassembly` |
//! | §III-A.1   | block-Jacobi convergence penalty vs rank count, KBA idle model | `ablation_jacobi_ranks` |
//! | —          | SI vs GMRES subdomain solves in the block-Jacobi schedule | `ablation_jacobi_krylov` |
//! | —          | SI vs sweep-preconditioned GMRES across scattering ratios | `ablation_krylov` |
//! | —          | SI vs DSA-SI vs GMRES as the scattering ratio approaches 1 | `ablation_dsa` |
//! | —          | worker-pool wall-clock scaling across thread counts | `scaling_threads` |
//!
//! Every binary parses the shared [`HarnessOptions`] flags: `--full`
//! runs the problem at the paper's published size (which needs a
//! large-memory node, as the original did), `--quick` shrinks it for CI
//! smoke runs, `--csv`/`--json` emit machine-readable output, and
//! `--progress` streams rate-limited solve progress to stderr; the
//! default sizes are scaled down so the whole suite completes on a
//! laptop.  The harness helpers — [`run_scaling_experiment`],
//! [`run_solver_comparison`], [`scaling_table`]/[`scaling_csv`],
//! [`print_header`] and [`time_it`] — are exported so new experiment
//! binaries compose the same pieces.  Criterion micro benchmarks of the
//! underlying kernels live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use unsnap_core::builder::ProblemBuilder;
use unsnap_core::problem::Problem;
use unsnap_core::report::MachineInfo;
use unsnap_core::session::{NoopObserver, ProgressObserver, RunObserver};
use unsnap_core::solver::{SolveOutcome, TransportSolver};
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;
use unsnap_sweep::ConcurrencyScheme;

/// Command-line options shared by all benchmark binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Run the paper-size problem instead of the scaled-down default.
    pub full: bool,
    /// Emit CSV instead of a human-readable table.
    pub csv: bool,
    /// Emit JSON instead of a human-readable table (`--json`).
    pub json: bool,
    /// Shrink the problem for CI smoke runs (`--quick`).
    pub quick: bool,
    /// Stream rate-limited progress to stderr while solves run
    /// (`--progress`), via [`ProgressObserver`].
    pub progress: bool,
    /// Thread counts to sweep (`--threads 1,2,4`).
    pub threads: Option<Vec<usize>>,
    /// Maximum element order for the solver comparison (`--max-order 4`).
    pub max_order: Option<usize>,
}

impl HarnessOptions {
    /// Parse the options from `std::env::args`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = Self {
            full: false,
            csv: false,
            json: false,
            quick: false,
            progress: false,
            threads: None,
            max_order: None,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--json" => opts.json = true,
                "--quick" => opts.quick = true,
                "--progress" => opts.progress = true,
                "--threads" => {
                    if let Some(list) = iter.next() {
                        let parsed: Vec<usize> =
                            list.split(',').filter_map(|t| t.parse().ok()).collect();
                        if !parsed.is_empty() {
                            opts.threads = Some(parsed);
                        }
                    }
                }
                "--max-order" => {
                    opts.max_order = iter.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        opts
    }

    /// The thread counts to sweep: explicit list, or the machine default.
    pub fn thread_sweep(&self) -> Vec<usize> {
        self.threads
            .clone()
            .unwrap_or_else(|| MachineInfo::detect().thread_sweep())
    }
}

/// Parse an environment knob via `FromStr`, falling back to `default`
/// (with a note on stderr) when the variable is set but unparsable.
/// Shared by the benchmark binaries for their `UNSNAP_*` knobs.
pub fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => match raw.parse() {
            Ok(value) => value,
            Err(e) => {
                eprintln!("ignoring {name}={raw}: {e}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Solve `base` under `strategy`, streaming rate-limited progress to
/// stderr when `progress` is set (the shared `--progress` flag).
///
/// Shared by the strategy-ablation binaries (`ablation_krylov`,
/// `ablation_dsa`) so the observer wiring cannot drift between them.
/// Panics on an invalid problem or a failed solve — ablation harnesses
/// construct their own problems, so both indicate a harness bug.
pub fn run_strategy(base: &ProblemBuilder, strategy: StrategyKind, progress: bool) -> SolveOutcome {
    let mut session = base
        .clone()
        .strategy(strategy)
        .session()
        .expect("ablation problem must validate");
    let mut progress_observer = ProgressObserver::new();
    let mut noop = NoopObserver;
    let observer: &mut dyn RunObserver = if progress {
        eprintln!("[unsnap] running {strategy}");
        &mut progress_observer
    } else {
        &mut noop
    };
    session
        .run_observed(observer)
        .expect("ablation solve must run")
}

/// One measured point of a thread-scaling experiment (Figures 3/4).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Concurrency scheme label (figure legend entry).
    pub scheme: String,
    /// Thread count.
    pub threads: usize,
    /// Assemble/solve wall time in seconds.
    pub seconds: f64,
}

/// Run the Figure-3/4 style experiment: every scheme × every thread count.
///
/// `base` should be `Problem::figure3_*` or `Problem::figure4_*`; the
/// scheme and thread count are overridden per point.
pub fn run_scaling_experiment(
    base: &Problem,
    threads: &[usize],
    schemes: &[ConcurrencyScheme],
) -> Vec<ScalingPoint> {
    let mut points = Vec::with_capacity(threads.len() * schemes.len());
    for &scheme in schemes {
        for &t in threads {
            let problem = base.clone().with_scheme(scheme).with_threads(t);
            let mut solver = TransportSolver::new(&problem).expect("valid problem");
            let outcome = solver.run().expect("solve");
            points.push(ScalingPoint {
                scheme: scheme.label(),
                threads: t,
                seconds: outcome.assemble_solve_seconds,
            });
        }
    }
    points
}

/// Render scaling points as a text table (rows = schemes, columns =
/// thread counts), mirroring the layout of Figures 3 and 4.
pub fn scaling_table(points: &[ScalingPoint], threads: &[usize]) -> String {
    let mut schemes: Vec<String> = points.iter().map(|p| p.scheme.clone()).collect();
    schemes.dedup();
    let mut out = format!("{:<28}", "scheme \\ threads");
    for t in threads {
        out.push_str(&format!(" {t:>10}"));
    }
    out.push('\n');
    for scheme in &schemes {
        out.push_str(&format!("{scheme:<28}"));
        for &t in threads {
            let p = points
                .iter()
                .find(|p| &p.scheme == scheme && p.threads == t)
                .expect("point exists");
            out.push_str(&format!(" {:>10.3}", p.seconds));
        }
        out.push('\n');
    }
    out
}

/// Render scaling points as CSV (`scheme,threads,seconds`).
pub fn scaling_csv(points: &[ScalingPoint]) -> String {
    let mut out = String::from("scheme,threads,assemble_solve_seconds\n");
    for p in points {
        out.push_str(&format!("{},{},{:.6}\n", p.scheme, p.threads, p.seconds));
    }
    out
}

/// One row of the Table-II style solver comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverComparisonRow {
    /// Element order.
    pub order: usize,
    /// Assemble/solve seconds with the hand-written Gaussian elimination.
    pub ge_seconds: f64,
    /// Fraction of GE kernel time spent in the solve.
    pub ge_solve_fraction: f64,
    /// Assemble/solve seconds with the blocked-LU MKL stand-in.
    pub mkl_seconds: f64,
    /// Fraction of MKL kernel time spent in the solve.
    pub mkl_solve_fraction: f64,
}

/// Run the Table-II experiment for orders `1..=max_order`.
///
/// `problem_for` maps `(order, solver)` to the problem to run, so callers
/// choose between the paper-size and scaled-down configurations.
pub fn run_solver_comparison<F>(max_order: usize, problem_for: F) -> Vec<SolverComparisonRow>
where
    F: Fn(usize, SolverKind) -> Problem,
{
    let mut rows = Vec::with_capacity(max_order);
    for order in 1..=max_order {
        let mut seconds = [0.0f64; 2];
        let mut fractions = [0.0f64; 2];
        for (slot, kind) in [SolverKind::GaussianElimination, SolverKind::Mkl]
            .into_iter()
            .enumerate()
        {
            let problem = problem_for(order, kind).with_solve_timing(true);
            let mut solver = TransportSolver::new(&problem).expect("valid problem");
            let outcome = solver.run().expect("solve");
            seconds[slot] = outcome.assemble_solve_seconds;
            fractions[slot] = outcome.solve_fraction();
        }
        rows.push(SolverComparisonRow {
            order,
            ge_seconds: seconds[0],
            ge_solve_fraction: fractions[0],
            mkl_seconds: seconds[1],
            mkl_solve_fraction: fractions[1],
        });
    }
    rows
}

/// Render the solver comparison as a text table shaped like Table II.
pub fn solver_comparison_table(rows: &[SolverComparisonRow]) -> String {
    let mut out = format!(
        "{:>5}  {:>12} {:>11}   {:>12} {:>11}\n",
        "Order", "GE (s)", "% in solve", "MKL (s)", "% in solve"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}  {:>12.2} {:>10.0}%   {:>12.2} {:>10.0}%\n",
            r.order,
            r.ge_seconds,
            r.ge_solve_fraction * 100.0,
            r.mkl_seconds,
            r.mkl_solve_fraction * 100.0
        ));
    }
    out
}

/// Render the solver comparison as CSV.
pub fn solver_comparison_csv(rows: &[SolverComparisonRow]) -> String {
    let mut out =
        String::from("order,ge_seconds,ge_solve_fraction,mkl_seconds,mkl_solve_fraction\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.6},{:.4},{:.6},{:.4}\n",
            r.order, r.ge_seconds, r.ge_solve_fraction, r.mkl_seconds, r.mkl_solve_fraction
        ));
    }
    out
}

/// Render the solver comparison as a JSON array (via the workspace's
/// hand-rolled writer — the vendored `serde` is a no-op stand-in).
pub fn solver_comparison_json(rows: &[SolverComparisonRow]) -> String {
    unsnap_core::json::array_raw(rows.iter().map(|r| {
        unsnap_core::json::JsonObject::new()
            .field_usize("order", r.order)
            .field_f64("ge_seconds", r.ge_seconds)
            .field_f64("ge_solve_fraction", r.ge_solve_fraction)
            .field_f64("mkl_seconds", r.mkl_seconds)
            .field_f64("mkl_solve_fraction", r.mkl_solve_fraction)
            .finish()
    }))
}

/// Print a standard experiment header (machine info, problem shape).
pub fn print_header(title: &str, problem: &Problem, full: bool) {
    let machine = MachineInfo::detect();
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "machine: {} logical CPUs, {} / {}",
        machine.logical_cpus, machine.os, machine.arch
    );
    println!(
        "problem: {}x{}x{} cells, {} angles/octant, {} groups, order {}, twist {} ({})",
        problem.nx,
        problem.ny,
        problem.nz,
        problem.angles_per_octant,
        problem.num_groups,
        problem.element_order,
        problem.twist,
        if full { "paper size" } else { "scaled down" }
    );
    println!(
        "iterations: {} inner x {} outer",
        problem.inner_iterations, problem.outer_iterations
    );
    println!();
}

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_sweep::{LoopOrder, ThreadedLoops};

    #[test]
    fn option_parsing() {
        let o = HarnessOptions::parse(
            ["--full", "--csv", "--threads", "1,2,4", "--max-order", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(o.full);
        assert!(o.csv);
        assert!(!o.json);
        assert!(!o.quick);
        assert!(
            HarnessOptions::parse(["--json".to_string()].into_iter()).json,
            "--json must parse"
        );
        assert!(
            HarnessOptions::parse(["--quick".to_string()].into_iter()).quick,
            "--quick must parse"
        );
        assert!(
            HarnessOptions::parse(["--progress".to_string()].into_iter()).progress,
            "--progress must parse"
        );
        assert!(!o.progress);
        assert_eq!(o.threads, Some(vec![1, 2, 4]));
        assert_eq!(o.max_order, Some(3));
        assert_eq!(o.thread_sweep(), vec![1, 2, 4]);

        let d = HarnessOptions::parse(std::iter::empty());
        assert!(!d.full);
        assert!(!d.csv);
        assert!(d.threads.is_none());
        assert!(!d.thread_sweep().is_empty());
    }

    #[test]
    fn scaling_experiment_produces_a_point_per_combination() {
        let mut base = Problem::tiny();
        base.inner_iterations = 1;
        let schemes = [
            ConcurrencyScheme::new(LoopOrder::ElementThenGroup, ThreadedLoops::Collapsed),
            ConcurrencyScheme::new(LoopOrder::GroupThenElement, ThreadedLoops::OuterOnly),
        ];
        let threads = [1usize, 2];
        let points = run_scaling_experiment(&base, &threads, &schemes);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.seconds > 0.0));

        let table = scaling_table(&points, &threads);
        assert!(table.contains("angle/element*/group*"));
        assert_eq!(table.lines().count(), 3);

        let csv = scaling_csv(&points);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("scheme,threads"));
    }

    #[test]
    fn solver_comparison_produces_rows_in_order() {
        let rows = run_solver_comparison(2, |order, kind| {
            let mut p = Problem::table2_scaled(order, kind);
            p.nx = 2;
            p.ny = 2;
            p.nz = 2;
            p.inner_iterations = 1;
            p
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].order, 1);
        assert_eq!(rows[1].order, 2);
        for r in &rows {
            assert!(r.ge_seconds > 0.0 && r.mkl_seconds > 0.0);
            assert!(r.ge_solve_fraction > 0.0 && r.ge_solve_fraction < 1.0);
            assert!(r.mkl_solve_fraction > 0.0 && r.mkl_solve_fraction < 1.0);
        }
        let table = solver_comparison_table(&rows);
        assert!(table.contains("% in solve"));
        let csv = solver_comparison_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        let json = solver_comparison_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"order\":1"));
        assert!(json.contains("\"mkl_solve_fraction\":"));
    }

    #[test]
    fn time_it_measures_something() {
        let (value, secs) = time_it(|| (0..1000).sum::<usize>());
        assert_eq!(value, 499500);
        assert!(secs >= 0.0);
    }
}
