//! # unsnap-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! UnSNAP paper, plus the ablations its text discusses.  See the
//! repository's `docs/ARCHITECTURE.md` for where each binary sits in
//! the crate stack and the README's "Reproducing the paper" matrix for
//! the exact command lines.
//!
//! | experiment | paper artefact | binary |
//! |------------|----------------|--------|
//! | Table I    | local matrix size & FP64 footprint per element order | `table1` |
//! | Figure 3   | thread scaling of six concurrency schemes, linear elements | `figure3` |
//! | Figure 4   | thread scaling of six concurrency schemes, cubic elements | `figure4` |
//! | Table II   | GE vs MKL assemble/solve time and % in solve, orders 1–4 | `table2` |
//! | §IV-A.3    | angle-threaded atomic scalar-flux reduction does not scale | `ablation_angle_atomic` |
//! | §IV-B.1    | pre-assembled/pre-factorised matrices vs on-the-fly assembly | `ablation_preassembly` |
//! | §III-A.1   | block-Jacobi convergence penalty vs rank count, KBA idle model | `ablation_jacobi_ranks` |
//! | —          | SI vs GMRES subdomain solves in the block-Jacobi schedule | `ablation_jacobi_krylov` |
//! | —          | SI vs sweep-preconditioned GMRES across scattering ratios | `ablation_krylov` |
//! | —          | SI vs DSA-SI vs GMRES as the scattering ratio approaches 1 | `ablation_dsa` |
//! | —          | worker-pool wall-clock scaling across thread counts | `scaling_threads` |
//!
//! Every binary parses the shared [`HarnessOptions`] flags: `--full`
//! runs the problem at the paper's published size (which needs a
//! large-memory node, as the original did), `--quick` shrinks it for CI
//! smoke runs, `--csv`/`--json` emit machine-readable output,
//! `--progress` streams rate-limited solve progress to stderr, and
//! `--metrics-out <path>` appends one uniform-schema JSONL
//! [`MetricsRecord`] per measured solve (bin, case, strategy, threads,
//! per-phase breakdown, per-sweep latency percentiles) for the
//! `trajectory` binary to merge into `BENCH_6.json`, and
//! `--trace-out <path>` writes the last solve's hierarchical span tree
//! as Chrome `trace_event` JSON (Perfetto-loadable); the default sizes
//! are scaled down so the whole suite completes on a laptop.  The
//! `trajectory` binary doubles as the perf-regression gate: its
//! `--compare BASE.json` mode diffs a fresh run against a committed
//! trajectory via [`compare_trajectories`] and exits nonzero on drift.  The
//! harness helpers — [`run_scaling_experiment`],
//! [`run_solver_comparison`], [`scaling_table`]/[`scaling_csv`],
//! [`print_header`] and [`time_it`] — are exported so new experiment
//! binaries compose the same pieces.  Criterion micro benchmarks of the
//! underlying kernels live in `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

use unsnap_core::builder::ProblemBuilder;
use unsnap_core::metrics::RunMetrics;
use unsnap_core::problem::Problem;
use unsnap_core::report::MachineInfo;
use unsnap_core::session::{NoopObserver, Phase, ProgressObserver, RunObserver};
use unsnap_core::solver::{SolveOutcome, TransportSolver};
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;
use unsnap_obs::jsonl::JsonlWriter;
use unsnap_sweep::ConcurrencyScheme;

/// Command-line options shared by all benchmark binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Run the paper-size problem instead of the scaled-down default.
    pub full: bool,
    /// Emit CSV instead of a human-readable table.
    pub csv: bool,
    /// Emit JSON instead of a human-readable table (`--json`).
    pub json: bool,
    /// Shrink the problem for CI smoke runs (`--quick`).
    pub quick: bool,
    /// Stream rate-limited progress to stderr while solves run
    /// (`--progress`), via [`ProgressObserver`].
    pub progress: bool,
    /// Thread counts to sweep (`--threads 1,2,4`).
    pub threads: Option<Vec<usize>>,
    /// Maximum element order for the solver comparison (`--max-order 4`).
    pub max_order: Option<usize>,
    /// Append one [`MetricsRecord`] per measured solve to this JSONL
    /// file (`--metrics-out <path>`); the `trajectory` binary merges
    /// such files into the repo-level `BENCH_6.json`.
    pub metrics_out: Option<String>,
    /// Write the Chrome `trace_event` profile of the last measured
    /// solve to this path (`--trace-out <path>`) — loadable in
    /// Perfetto / `chrome://tracing`.  Each emission overwrites the
    /// file, so the profile on disk is always the final solve's.
    pub trace_out: Option<String>,
}

impl HarnessOptions {
    /// Parse the options from `std::env::args`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = Self {
            full: false,
            csv: false,
            json: false,
            quick: false,
            progress: false,
            threads: None,
            max_order: None,
            metrics_out: None,
            trace_out: None,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--json" => opts.json = true,
                "--quick" => opts.quick = true,
                "--progress" => opts.progress = true,
                "--threads" => {
                    if let Some(list) = iter.next() {
                        let parsed: Vec<usize> =
                            list.split(',').filter_map(|t| t.parse().ok()).collect();
                        if !parsed.is_empty() {
                            opts.threads = Some(parsed);
                        }
                    }
                }
                "--max-order" => {
                    opts.max_order = iter.next().and_then(|s| s.parse().ok());
                }
                "--metrics-out" => {
                    opts.metrics_out = iter.next().filter(|p| !p.trim().is_empty());
                }
                "--trace-out" => {
                    opts.trace_out = iter.next().filter(|p| !p.trim().is_empty());
                }
                _ => {}
            }
        }
        opts
    }

    /// The thread counts to sweep: explicit list, or the machine default.
    pub fn thread_sweep(&self) -> Vec<usize> {
        self.threads
            .clone()
            .unwrap_or_else(|| MachineInfo::detect().thread_sweep())
    }
}

/// Parse an environment knob via `FromStr`, falling back to `default`
/// (with a note on stderr) when the variable is set but unparsable.
/// Shared by the benchmark binaries for their `UNSNAP_*` knobs.
pub fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => match raw.parse() {
            Ok(value) => value,
            Err(e) => {
                eprintln!("ignoring {name}={raw}: {e}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Solve `base` under `strategy`, streaming rate-limited progress to
/// stderr when `progress` is set (the shared `--progress` flag).  The
/// progress cadence honours `UNSNAP_PROGRESS_MS` via
/// [`ProgressObserver::from_env`].
///
/// Shared by the strategy-ablation binaries (`ablation_krylov`,
/// `ablation_dsa`) so the observer wiring cannot drift between them.
/// Panics on an invalid problem or a failed solve — ablation harnesses
/// construct their own problems, so both indicate a harness bug.
pub fn run_strategy(base: &ProblemBuilder, strategy: StrategyKind, progress: bool) -> SolveOutcome {
    let mut session = base
        .clone()
        .strategy(strategy)
        .session()
        .expect("ablation problem must validate");
    let mut progress_observer = ProgressObserver::from_env();
    let mut noop = NoopObserver;
    let observer: &mut dyn RunObserver = if progress {
        eprintln!("[unsnap] running {strategy}");
        &mut progress_observer
    } else {
        &mut noop
    };
    session
        .run_observed(observer)
        .expect("ablation solve must run")
}

/// One uniform-schema perf-trajectory record: a single measured solve,
/// tagged with where it came from, carrying the per-phase breakdown and
/// per-sweep latency percentiles of its [`RunMetrics`] snapshot.
///
/// Every benchmark binary emits the same shape under `--metrics-out`,
/// so the `trajectory` binary can merge records from any mix of bins
/// into one `BENCH_6.json` without per-bin parsing rules.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRecord {
    /// Emitting binary (`ablation_dsa`, `figure3`, ...).
    pub bin: String,
    /// Experiment point within the binary — a scheme label, scattering
    /// ratio, element order, ... (the binary's x-axis).
    pub case: String,
    /// Iteration strategy label (`si`, `gmres`, `dsa-si`).
    pub strategy: String,
    /// Worker threads the solve ran with.
    pub threads: usize,
    /// The metrics snapshot the solve attached to its outcome.
    pub metrics: RunMetrics,
}

impl MetricsRecord {
    /// Build a record from an outcome's attached snapshot.
    pub fn from_metrics(
        bin: &str,
        case: &str,
        strategy: StrategyKind,
        threads: usize,
        metrics: &RunMetrics,
    ) -> Self {
        Self {
            bin: bin.to_string(),
            case: case.to_string(),
            // Lower-cased so the tag round-trips through the
            // workspace's `FromStr` labels (`si`, `gmres`, `dsa-si`).
            strategy: strategy.to_string().to_ascii_lowercase(),
            threads,
            metrics: metrics.clone(),
        }
    }

    /// Serialise as one JSON object (one JSONL line under
    /// `--metrics-out`): identity tags, deterministic totals, a
    /// `phases` object of `{spans, seconds}` per phase, and the
    /// per-sweep latency percentiles (`null` when no sweeps ran).
    pub fn to_json(&self) -> String {
        let phases = Phase::all()
            .iter()
            .fold(unsnap_core::json::JsonObject::new(), |obj, phase| {
                obj.field_raw(
                    phase.label(),
                    &unsnap_core::json::JsonObject::new()
                        .field_usize("spans", self.metrics.phase_count(*phase))
                        .field_f64("seconds", self.metrics.phase_time(*phase))
                        .finish(),
                )
            })
            .finish();
        unsnap_core::json::JsonObject::new()
            .field_str("bin", &self.bin)
            .field_str("case", &self.case)
            .field_str("strategy", &self.strategy)
            .field_usize("threads", self.threads)
            .field_usize("sweeps", self.metrics.sweeps)
            .field_u64("cells_swept", self.metrics.cells_swept)
            .field_usize("inner_iterations", self.metrics.inner_iterations)
            .field_usize("halo_exchanges", self.metrics.halo_exchanges)
            .field_raw("phases", &phases)
            .field_f64("sweep_p50", self.metrics.sweep_p50().unwrap_or(f64::NAN))
            .field_f64("sweep_p95", self.metrics.sweep_p95().unwrap_or(f64::NAN))
            .field_f64("sweep_p99", self.metrics.sweep_p99().unwrap_or(f64::NAN))
            .finish()
    }
}

/// The thread count a problem's solves actually run with: the explicit
/// request, or the machine's logical CPU count when the pool is left to
/// size itself.  Benchmark bins tag their [`MetricsRecord`]s with this.
pub fn effective_threads(problem: &Problem) -> usize {
    problem
        .num_threads
        .unwrap_or_else(|| MachineInfo::detect().logical_cpus)
}

/// The keys every trajectory record must carry — the `trajectory`
/// binary rejects lines missing any of them, so schema drift between
/// the emitting bins and the merger fails loudly.
pub const METRICS_RECORD_KEYS: [&str; 11] = [
    "bin",
    "case",
    "strategy",
    "threads",
    "sweeps",
    "cells_swept",
    "inner_iterations",
    "halo_exchanges",
    "phases",
    "sweep_p50",
    "sweep_p99",
];

/// The trajectory-record fields that must be a JSON number or an
/// explicit `null` (the per-sweep latency percentiles: `null` means the
/// solve recorded no sweep latency samples — anything else in these
/// slots is schema drift the merger must reject).
pub const METRICS_RECORD_NUMBER_OR_NULL_KEYS: [&str; 3] = ["sweep_p50", "sweep_p95", "sweep_p99"];

/// Validate that `doc[key]` is a JSON number or an explicit `null`.
///
/// Used by the `trajectory` binary on the keys in
/// [`METRICS_RECORD_NUMBER_OR_NULL_KEYS`] so a record carrying, say, a
/// stringified percentile fails the merge loudly instead of producing a
/// trajectory downstream plots choke on.
pub fn validate_number_or_null(
    doc: &unsnap_obs::reader::JsonValue,
    key: &str,
) -> Result<(), String> {
    match doc.get(key) {
        None => Err(format!("missing `{key}`")),
        Some(value) if value.is_null() || value.as_f64().is_some() => Ok(()),
        Some(value) => Err(format!("`{key}` must be a number or null, got {value}")),
    }
}

/// Append `record` to `opts.metrics_out` if the flag was given; a no-op
/// otherwise.  Appending (rather than truncating) lets one shell loop
/// collect many bins into a single file for `trajectory`.  Panics on an
/// unwritable path — the flag names a file the caller asked for.
pub fn emit_metrics_record(opts: &HarnessOptions, record: &MetricsRecord) {
    let Some(path) = &opts.metrics_out else {
        return;
    };
    let mut writer = JsonlWriter::append(path)
        .unwrap_or_else(|e| panic!("--metrics-out {path}: cannot open: {e}"));
    writer
        .write_line(&record.to_json())
        .and_then(|()| writer.flush())
        .unwrap_or_else(|e| panic!("--metrics-out {path}: write failed: {e}"));
}

/// Write `trace` as Chrome `trace_event` JSON to `opts.trace_out` if
/// the flag was given; a no-op otherwise.  Overwrites (last solve
/// wins), unlike the appending `--metrics-out` — a profile is a
/// self-contained document, not a record stream.  Panics on an
/// unwritable path — the flag names a file the caller asked for.
pub fn emit_trace(opts: &HarnessOptions, trace: &unsnap_obs::trace::TraceTree) {
    let Some(path) = &opts.trace_out else {
        return;
    };
    std::fs::write(path, trace.to_chrome_json())
        .unwrap_or_else(|e| panic!("--trace-out {path}: write failed: {e}"));
}

/// Default wall-clock tolerance of [`compare_trajectories`]: a phase
/// fails the gate only when it runs more than this many times slower
/// than the baseline.  Generous on purpose — CI machines are noisy and
/// the quick-run phases are tiny; the gate is for order-of-magnitude
/// regressions, while the deterministic counters catch algorithmic
/// drift exactly.
pub const WALLCLOCK_TOLERANCE_RATIO: f64 = 25.0;

/// Wall-clock comparisons never fail a phase whose current time is
/// under this floor (seconds): below it, scheduler noise dominates and
/// a ratio test is meaningless.
pub const WALLCLOCK_FLOOR_SECONDS: f64 = 0.05;

/// The outcome of [`compare_trajectories`]: hard failures (deterministic
/// counter drift, wall-clock blow-ups, records missing from a covered
/// bin) and soft warnings (bins absent from one side — new experiments
/// appear and CI matrices shrink without that being a regression).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TrajectoryComparison {
    /// Regressions: the gate must exit nonzero when any are present.
    pub failures: Vec<String>,
    /// Coverage drift worth printing but not failing on.
    pub warnings: Vec<String>,
    /// How many record pairs were actually diffed.
    pub compared: usize,
}

/// The identity key records are matched on across the two trajectories.
fn record_key(doc: &unsnap_obs::reader::JsonValue) -> Option<(String, String, String, u64)> {
    Some((
        doc.get("bin")?.as_str()?.to_string(),
        doc.get("case")?.as_str()?.to_string(),
        doc.get("strategy")?.as_str()?.to_string(),
        doc.get("threads")?.as_u64()?,
    ))
}

/// Diff two `unsnap-perf-trajectory/v1` documents: the perf-regression
/// gate behind `trajectory --compare`.
///
/// Records are matched on `(bin, case, strategy, threads)`.  For every
/// matched pair the deterministic counters (`sweeps`, `cells_swept`,
/// `inner_iterations`, `halo_exchanges`, and per-phase `spans`) must be
/// **exactly** equal — they are bit-for-bit reproducible, so any drift
/// is an algorithmic change, not noise.  Per-phase wall-clock `seconds`
/// may regress up to `tolerance`× the baseline before failing, and a
/// phase whose current time is under [`WALLCLOCK_FLOOR_SECONDS`] is
/// never failed on time.  Bins present on only one side produce
/// warnings, not failures, so the gate tolerates experiment-matrix
/// drift; a record missing from a bin both sides cover is a failure.
pub fn compare_trajectories(
    base: &unsnap_obs::reader::JsonValue,
    current: &unsnap_obs::reader::JsonValue,
    tolerance: f64,
) -> Result<TrajectoryComparison, String> {
    let records = |doc: &unsnap_obs::reader::JsonValue, side: &str| {
        doc.get("records")
            .and_then(|r| r.as_array())
            .map(|r| r.to_vec())
            .ok_or_else(|| format!("{side} trajectory has no `records` array"))
    };
    let base_records = records(base, "base")?;
    let current_records = records(current, "current")?;

    let mut current_by_key = std::collections::BTreeMap::new();
    let mut current_bins = std::collections::BTreeSet::new();
    for doc in &current_records {
        let key = record_key(doc).ok_or("current record missing identity keys")?;
        current_bins.insert(key.0.clone());
        current_by_key.insert(key, doc);
    }

    let mut report = TrajectoryComparison::default();
    let mut base_bins = std::collections::BTreeSet::new();
    let mut warned_bins = std::collections::BTreeSet::new();
    for doc in &base_records {
        let key = record_key(doc).ok_or("base record missing identity keys")?;
        base_bins.insert(key.0.clone());
        let label = format!("{}/{}/{}/t{}", key.0, key.1, key.2, key.3);
        let Some(current_doc) = current_by_key.get(&key) else {
            if !current_bins.contains(&key.0) {
                if warned_bins.insert(key.0.clone()) {
                    report.warnings.push(format!(
                        "bin `{}` absent from the current run; skipped",
                        key.0
                    ));
                }
            } else {
                report
                    .failures
                    .push(format!("{label}: record missing from the current run"));
            }
            continue;
        };
        compare_record(&label, doc, current_doc, tolerance, &mut report);
        report.compared += 1;
    }
    for bin in current_bins.difference(&base_bins) {
        report.warnings.push(format!(
            "bin `{bin}` is new (no baseline to compare against)"
        ));
    }
    Ok(report)
}

/// Diff one matched record pair into `report` (see
/// [`compare_trajectories`] for the rules).
fn compare_record(
    label: &str,
    base: &unsnap_obs::reader::JsonValue,
    current: &unsnap_obs::reader::JsonValue,
    tolerance: f64,
    report: &mut TrajectoryComparison,
) {
    for counter in [
        "sweeps",
        "cells_swept",
        "inner_iterations",
        "halo_exchanges",
    ] {
        let read = |doc: &unsnap_obs::reader::JsonValue| doc.get(counter).and_then(|v| v.as_u64());
        let (was, now) = (read(base), read(current));
        if was != now {
            report.failures.push(format!(
                "{label}: deterministic counter `{counter}` drifted: {} -> {}",
                was.map_or("missing".into(), |v| v.to_string()),
                now.map_or("missing".into(), |v| v.to_string()),
            ));
        }
    }
    let Some(base_phases) = base.get("phases").and_then(|p| p.as_object()) else {
        report
            .failures
            .push(format!("{label}: base record has no phases object"));
        return;
    };
    for (phase, base_phase) in base_phases {
        let current_phase = current.get("phases").and_then(|p| p.get(phase));
        let spans = |doc: Option<&unsnap_obs::reader::JsonValue>| {
            doc.and_then(|p| p.get("spans")).and_then(|v| v.as_u64())
        };
        let (was, now) = (spans(Some(base_phase)), spans(current_phase));
        if was != now {
            report.failures.push(format!(
                "{label}: phase `{phase}` span count drifted: {} -> {}",
                was.map_or("missing".into(), |v| v.to_string()),
                now.map_or("missing".into(), |v| v.to_string()),
            ));
        }
        let seconds = |doc: Option<&unsnap_obs::reader::JsonValue>| {
            doc.and_then(|p| p.get("seconds")).and_then(|v| v.as_f64())
        };
        if let (Some(was), Some(now)) = (seconds(Some(base_phase)), seconds(current_phase)) {
            if now > WALLCLOCK_FLOOR_SECONDS && now > was * tolerance {
                report.failures.push(format!(
                    "{label}: phase `{phase}` wall clock regressed {:.1}x \
                     ({was:.3}s -> {now:.3}s, tolerance {tolerance}x)",
                    now / was,
                ));
            }
        }
    }
}

/// One measured point of a thread-scaling experiment (Figures 3/4).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Concurrency scheme label (figure legend entry).
    pub scheme: String,
    /// Thread count.
    pub threads: usize,
    /// Assemble/solve wall time in seconds.
    pub seconds: f64,
    /// The metrics snapshot the solve attached to its outcome, for
    /// `--metrics-out` emission alongside the figure tables.
    pub metrics: RunMetrics,
}

/// Run the Figure-3/4 style experiment: every scheme × every thread count.
///
/// `base` should be `Problem::figure3_*` or `Problem::figure4_*`; the
/// scheme and thread count are overridden per point.
pub fn run_scaling_experiment(
    base: &Problem,
    threads: &[usize],
    schemes: &[ConcurrencyScheme],
) -> Vec<ScalingPoint> {
    let mut points = Vec::with_capacity(threads.len() * schemes.len());
    for &scheme in schemes {
        for &t in threads {
            let problem = base.clone().with_scheme(scheme).with_threads(t);
            let mut solver = TransportSolver::new(&problem).expect("valid problem");
            let outcome = solver.run().expect("solve");
            points.push(ScalingPoint {
                scheme: scheme.label(),
                threads: t,
                seconds: outcome.assemble_solve_seconds,
                metrics: outcome.metrics,
            });
        }
    }
    points
}

/// Emit one [`MetricsRecord`] per scaling point under `--metrics-out`
/// (a no-op without the flag): the scheme label becomes the case tag,
/// the point's thread count the threads tag.  Shared by the
/// figure/scaling binaries so their trajectory schema cannot drift.
pub fn emit_scaling_metrics(
    opts: &HarnessOptions,
    bin: &str,
    strategy: StrategyKind,
    points: &[ScalingPoint],
) {
    for p in points {
        emit_metrics_record(
            opts,
            &MetricsRecord::from_metrics(bin, &p.scheme, strategy, p.threads, &p.metrics),
        );
    }
}

/// Render scaling points as a text table (rows = schemes, columns =
/// thread counts), mirroring the layout of Figures 3 and 4.
pub fn scaling_table(points: &[ScalingPoint], threads: &[usize]) -> String {
    let mut schemes: Vec<String> = points.iter().map(|p| p.scheme.clone()).collect();
    schemes.dedup();
    let mut out = format!("{:<28}", "scheme \\ threads");
    for t in threads {
        out.push_str(&format!(" {t:>10}"));
    }
    out.push('\n');
    for scheme in &schemes {
        out.push_str(&format!("{scheme:<28}"));
        for &t in threads {
            let p = points
                .iter()
                .find(|p| &p.scheme == scheme && p.threads == t)
                .expect("point exists");
            out.push_str(&format!(" {:>10.3}", p.seconds));
        }
        out.push('\n');
    }
    out
}

/// Render scaling points as CSV (`scheme,threads,seconds`).
pub fn scaling_csv(points: &[ScalingPoint]) -> String {
    let mut out = String::from("scheme,threads,assemble_solve_seconds\n");
    for p in points {
        out.push_str(&format!("{},{},{:.6}\n", p.scheme, p.threads, p.seconds));
    }
    out
}

/// One row of the Table-II style solver comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverComparisonRow {
    /// Element order.
    pub order: usize,
    /// Assemble/solve seconds with the hand-written Gaussian elimination.
    pub ge_seconds: f64,
    /// Fraction of GE kernel time spent in the solve.
    pub ge_solve_fraction: f64,
    /// Assemble/solve seconds with the blocked-LU MKL stand-in.
    pub mkl_seconds: f64,
    /// Fraction of MKL kernel time spent in the solve.
    pub mkl_solve_fraction: f64,
    /// Metrics snapshot of the GE solve, for `--metrics-out` emission.
    pub ge_metrics: RunMetrics,
    /// Metrics snapshot of the MKL solve, for `--metrics-out` emission.
    pub mkl_metrics: RunMetrics,
}

/// Run the Table-II experiment for orders `1..=max_order`.
///
/// `problem_for` maps `(order, solver)` to the problem to run, so callers
/// choose between the paper-size and scaled-down configurations.
pub fn run_solver_comparison<F>(max_order: usize, problem_for: F) -> Vec<SolverComparisonRow>
where
    F: Fn(usize, SolverKind) -> Problem,
{
    let mut rows = Vec::with_capacity(max_order);
    for order in 1..=max_order {
        let mut seconds = [0.0f64; 2];
        let mut fractions = [0.0f64; 2];
        let mut metrics = [RunMetrics::default(), RunMetrics::default()];
        for (slot, kind) in [SolverKind::GaussianElimination, SolverKind::Mkl]
            .into_iter()
            .enumerate()
        {
            let problem = problem_for(order, kind).with_solve_timing(true);
            let mut solver = TransportSolver::new(&problem).expect("valid problem");
            let outcome = solver.run().expect("solve");
            seconds[slot] = outcome.assemble_solve_seconds;
            fractions[slot] = outcome.solve_fraction();
            metrics[slot] = outcome.metrics;
        }
        let [ge_metrics, mkl_metrics] = metrics;
        rows.push(SolverComparisonRow {
            order,
            ge_seconds: seconds[0],
            ge_solve_fraction: fractions[0],
            mkl_seconds: seconds[1],
            mkl_solve_fraction: fractions[1],
            ge_metrics,
            mkl_metrics,
        });
    }
    rows
}

/// Render the solver comparison as a text table shaped like Table II.
pub fn solver_comparison_table(rows: &[SolverComparisonRow]) -> String {
    let mut out = format!(
        "{:>5}  {:>12} {:>11}   {:>12} {:>11}\n",
        "Order", "GE (s)", "% in solve", "MKL (s)", "% in solve"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>5}  {:>12.2} {:>10.0}%   {:>12.2} {:>10.0}%\n",
            r.order,
            r.ge_seconds,
            r.ge_solve_fraction * 100.0,
            r.mkl_seconds,
            r.mkl_solve_fraction * 100.0
        ));
    }
    out
}

/// Render the solver comparison as CSV.
pub fn solver_comparison_csv(rows: &[SolverComparisonRow]) -> String {
    let mut out =
        String::from("order,ge_seconds,ge_solve_fraction,mkl_seconds,mkl_solve_fraction\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.6},{:.4},{:.6},{:.4}\n",
            r.order, r.ge_seconds, r.ge_solve_fraction, r.mkl_seconds, r.mkl_solve_fraction
        ));
    }
    out
}

/// Render the solver comparison as a JSON array (via the workspace's
/// hand-rolled writer — the vendored `serde` is a no-op stand-in).
pub fn solver_comparison_json(rows: &[SolverComparisonRow]) -> String {
    unsnap_core::json::array_raw(rows.iter().map(|r| {
        unsnap_core::json::JsonObject::new()
            .field_usize("order", r.order)
            .field_f64("ge_seconds", r.ge_seconds)
            .field_f64("ge_solve_fraction", r.ge_solve_fraction)
            .field_f64("mkl_seconds", r.mkl_seconds)
            .field_f64("mkl_solve_fraction", r.mkl_solve_fraction)
            .finish()
    }))
}

/// Print a standard experiment header (machine info, problem shape).
pub fn print_header(title: &str, problem: &Problem, full: bool) {
    let machine = MachineInfo::detect();
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "machine: {} logical CPUs, {} / {}",
        machine.logical_cpus, machine.os, machine.arch
    );
    println!(
        "problem: {}x{}x{} cells, {} angles/octant, {} groups, order {}, twist {} ({})",
        problem.nx,
        problem.ny,
        problem.nz,
        problem.angles_per_octant,
        problem.num_groups,
        problem.element_order,
        problem.twist,
        if full { "paper size" } else { "scaled down" }
    );
    println!(
        "iterations: {} inner x {} outer",
        problem.inner_iterations, problem.outer_iterations
    );
    println!();
}

/// Time a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_sweep::{LoopOrder, ThreadedLoops};

    #[test]
    fn option_parsing() {
        let o = HarnessOptions::parse(
            ["--full", "--csv", "--threads", "1,2,4", "--max-order", "3"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert!(o.full);
        assert!(o.csv);
        assert!(!o.json);
        assert!(!o.quick);
        assert!(
            HarnessOptions::parse(["--json".to_string()].into_iter()).json,
            "--json must parse"
        );
        assert!(
            HarnessOptions::parse(["--quick".to_string()].into_iter()).quick,
            "--quick must parse"
        );
        assert!(
            HarnessOptions::parse(["--progress".to_string()].into_iter()).progress,
            "--progress must parse"
        );
        assert!(!o.progress);
        assert_eq!(o.threads, Some(vec![1, 2, 4]));
        assert_eq!(o.max_order, Some(3));
        assert_eq!(o.thread_sweep(), vec![1, 2, 4]);
        assert!(o.metrics_out.is_none());
        assert_eq!(
            HarnessOptions::parse(["--metrics-out", "run.jsonl"].iter().map(|s| s.to_string()))
                .metrics_out,
            Some("run.jsonl".to_string()),
            "--metrics-out must capture its path"
        );

        assert_eq!(
            HarnessOptions::parse(["--trace-out", "t.json"].iter().map(|s| s.to_string()))
                .trace_out,
            Some("t.json".to_string()),
            "--trace-out must capture its path"
        );

        let d = HarnessOptions::parse(std::iter::empty());
        assert!(!d.full);
        assert!(!d.csv);
        assert!(d.threads.is_none());
        assert!(!d.thread_sweep().is_empty());
        assert!(d.metrics_out.is_none());
        assert!(d.trace_out.is_none());
    }

    #[test]
    fn metrics_record_serialises_the_uniform_schema() {
        let base = ProblemBuilder::tiny();
        let outcome = run_strategy(&base, StrategyKind::SweepGmres, false);
        let record = MetricsRecord::from_metrics(
            "test_bin",
            "c=0.5",
            StrategyKind::SweepGmres,
            2,
            &outcome.metrics,
        );
        let doc = unsnap_obs::reader::parse(&record.to_json()).unwrap();
        for key in METRICS_RECORD_KEYS {
            assert!(doc.get(key).is_some(), "record must carry `{key}`");
        }
        assert_eq!(doc.get("bin").unwrap().as_str(), Some("test_bin"));
        assert_eq!(doc.get("strategy").unwrap().as_str(), Some("gmres"));
        assert_eq!(
            doc.get("sweeps").and_then(|v| v.as_usize()),
            Some(outcome.sweep_count)
        );
        let sweep_phase = doc.get("phases").and_then(|p| p.get("sweep")).unwrap();
        assert_eq!(
            sweep_phase.get("spans").and_then(|v| v.as_usize()),
            Some(outcome.sweep_count)
        );
        assert!(
            doc.get("sweep_p50").and_then(|v| v.as_f64()).unwrap() > 0.0,
            "latency percentile must come from the recorded histogram"
        );
    }

    #[test]
    fn latency_percentiles_validate_as_number_or_null() {
        // Both shapes an emitting bin can legitimately produce.
        let with_samples =
            unsnap_obs::reader::parse(r#"{"sweep_p50":0.012,"sweep_p95":0.5,"sweep_p99":0.9}"#)
                .unwrap();
        let without =
            unsnap_obs::reader::parse(r#"{"sweep_p50":null,"sweep_p95":null,"sweep_p99":null}"#)
                .unwrap();
        for key in METRICS_RECORD_NUMBER_OR_NULL_KEYS {
            assert_eq!(validate_number_or_null(&with_samples, key), Ok(()));
            assert_eq!(validate_number_or_null(&without, key), Ok(()));
        }

        // Everything else is schema drift.
        let stringified = unsnap_obs::reader::parse(r#"{"sweep_p50":"0.012"}"#).unwrap();
        assert!(validate_number_or_null(&stringified, "sweep_p50")
            .unwrap_err()
            .contains("number or null"));
        let missing = unsnap_obs::reader::parse("{}").unwrap();
        assert!(validate_number_or_null(&missing, "sweep_p50")
            .unwrap_err()
            .contains("missing"));

        // A freshly-built record passes for every guarded key: NaN
        // percentiles (no sweeps) serialise as null, real samples as
        // numbers.
        let record = MetricsRecord::from_metrics(
            "bin",
            "case",
            StrategyKind::SourceIteration,
            1,
            &RunMetrics::default(),
        );
        let doc = unsnap_obs::reader::parse(&record.to_json()).unwrap();
        for key in METRICS_RECORD_NUMBER_OR_NULL_KEYS {
            assert_eq!(validate_number_or_null(&doc, key), Ok(()));
            assert!(doc.get(key).unwrap().is_null());
        }
    }

    #[test]
    fn emit_metrics_record_appends_jsonl_lines() {
        let path = std::env::temp_dir().join("unsnap_bench_metrics_test.jsonl");
        std::fs::remove_file(&path).ok();
        let opts = HarnessOptions {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..HarnessOptions::parse(std::iter::empty())
        };
        let record = MetricsRecord::from_metrics(
            "test_bin",
            "case",
            StrategyKind::SourceIteration,
            1,
            &RunMetrics::default(),
        );
        emit_metrics_record(&opts, &record);
        emit_metrics_record(&opts, &record);
        let docs = unsnap_obs::jsonl::read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(docs.len(), 2, "append mode must accumulate records");
        assert_eq!(docs[1].get("strategy").unwrap().as_str(), Some("si"));
        assert!(
            docs[0].get("sweep_p50").unwrap().is_null(),
            "no sweeps recorded must serialise as null"
        );

        // Without the flag the emitter is a no-op.
        emit_metrics_record(&HarnessOptions::parse(std::iter::empty()), &record);
        assert!(!path.exists());
    }

    /// A minimal trajectory document for the compare-gate tests.
    fn trajectory_doc(records: &[&str]) -> unsnap_obs::reader::JsonValue {
        let text = format!(
            r#"{{"schema":"unsnap-perf-trajectory/v1","records":[{}]}}"#,
            records.join(",")
        );
        unsnap_obs::reader::parse(&text).unwrap()
    }

    fn record(bin: &str, sweeps: usize, sweep_seconds: f64) -> String {
        format!(
            r#"{{"bin":"{bin}","case":"c=0.9","strategy":"si","threads":1,
               "sweeps":{sweeps},"cells_swept":1000,"inner_iterations":{sweeps},
               "halo_exchanges":0,
               "phases":{{"sweep":{{"spans":{sweeps},"seconds":{sweep_seconds}}}}},
               "sweep_p50":null,"sweep_p99":null}}"#
        )
        .replace('\n', "")
    }

    #[test]
    fn compare_passes_identical_trajectories_and_warns_on_bin_drift() {
        let base = trajectory_doc(&[&record("a", 10, 0.2), &record("gone", 5, 0.1)]);
        let current = trajectory_doc(&[&record("a", 10, 0.21), &record("new", 7, 0.1)]);
        let report = compare_trajectories(&base, &current, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        assert_eq!(report.failures, Vec::<String>::new());
        assert_eq!(report.compared, 1);
        assert_eq!(
            report.warnings.len(),
            2,
            "absent + new bin: {:?}",
            report.warnings
        );
        assert!(report.warnings.iter().any(|w| w.contains("`gone` absent")));
        assert!(report.warnings.iter().any(|w| w.contains("`new` is new")));
    }

    #[test]
    fn compare_fails_on_deterministic_counter_drift() {
        let base = trajectory_doc(&[&record("a", 10, 0.2)]);
        let current = trajectory_doc(&[&record("a", 11, 0.2)]);
        let report = compare_trajectories(&base, &current, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        // sweeps, inner_iterations and the sweep-phase span count all
        // track the injected drift.
        assert_eq!(report.failures.len(), 3, "{:?}", report.failures);
        assert!(report
            .failures
            .iter()
            .any(|f| f.contains("`sweeps` drifted: 10 -> 11")));
    }

    #[test]
    fn compare_fails_on_wallclock_blowup_but_tolerates_noise() {
        let base = trajectory_doc(&[&record("a", 10, 0.2)]);
        let noisy = trajectory_doc(&[&record("a", 10, 0.2 * 20.0)]);
        let report = compare_trajectories(&base, &noisy, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        assert!(report.failures.is_empty(), "20x is inside the 25x budget");

        let blown = trajectory_doc(&[&record("a", 10, 0.2 * 30.0)]);
        let report = compare_trajectories(&base, &blown, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        assert_eq!(report.failures.len(), 1, "{:?}", report.failures);
        assert!(report.failures[0].contains("wall clock regressed"));

        // Sub-floor current times never fail, whatever the ratio says.
        let tiny_base = trajectory_doc(&[&record("a", 10, 0.0001)]);
        let tiny_now = trajectory_doc(&[&record("a", 10, 0.01)]);
        let report =
            compare_trajectories(&tiny_base, &tiny_now, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        assert!(report.failures.is_empty(), "sub-floor noise must pass");
    }

    #[test]
    fn compare_fails_on_a_missing_record_in_a_covered_bin() {
        let two = trajectory_doc(&[&record("a", 10, 0.2), &{
            record("a", 5, 0.1).replace("c=0.9", "c=0.99")
        }]);
        let one = trajectory_doc(&[&record("a", 10, 0.2)]);
        let report = compare_trajectories(&two, &one, WALLCLOCK_TOLERANCE_RATIO).unwrap();
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("record missing"));
    }

    #[test]
    fn scaling_experiment_produces_a_point_per_combination() {
        let mut base = Problem::tiny();
        base.inner_iterations = 1;
        let schemes = [
            ConcurrencyScheme::new(LoopOrder::ElementThenGroup, ThreadedLoops::Collapsed),
            ConcurrencyScheme::new(LoopOrder::GroupThenElement, ThreadedLoops::OuterOnly),
        ];
        let threads = [1usize, 2];
        let points = run_scaling_experiment(&base, &threads, &schemes);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.seconds > 0.0));

        let table = scaling_table(&points, &threads);
        assert!(table.contains("angle/element*/group*"));
        assert_eq!(table.lines().count(), 3);

        let csv = scaling_csv(&points);
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("scheme,threads"));
    }

    #[test]
    fn solver_comparison_produces_rows_in_order() {
        let rows = run_solver_comparison(2, |order, kind| {
            let mut p = Problem::table2_scaled(order, kind);
            p.nx = 2;
            p.ny = 2;
            p.nz = 2;
            p.inner_iterations = 1;
            p
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].order, 1);
        assert_eq!(rows[1].order, 2);
        for r in &rows {
            assert!(r.ge_seconds > 0.0 && r.mkl_seconds > 0.0);
            assert!(r.ge_solve_fraction > 0.0 && r.ge_solve_fraction < 1.0);
            assert!(r.mkl_solve_fraction > 0.0 && r.mkl_solve_fraction < 1.0);
        }
        let table = solver_comparison_table(&rows);
        assert!(table.contains("% in solve"));
        let csv = solver_comparison_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        let json = solver_comparison_json(&rows);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"order\":1"));
        assert!(json.contains("\"mkl_solve_fraction\":"));
    }

    #[test]
    fn time_it_measures_something() {
        let (value, secs) = time_it(|| (0..1000).sum::<usize>());
        assert_eq!(value, 499500);
        assert!(secs >= 0.0);
    }
}
