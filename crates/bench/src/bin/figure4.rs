//! Regenerate **Figure 4** of the paper: thread scaling of the
//! assemble/solve routine under the six loop-order / threading schemes for
//! **cubic** elements.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin figure4 [-- --threads 1,2,4] [--full] [--csv]
//! ```

use unsnap_bench::{
    emit_scaling_metrics, print_header, run_scaling_experiment, scaling_csv, scaling_table,
    HarnessOptions,
};
use unsnap_core::problem::Problem;
use unsnap_sweep::ConcurrencyScheme;

fn main() {
    let opts = HarnessOptions::from_args();
    let base = if opts.full {
        Problem::figure4_full()
    } else {
        Problem::figure4_scaled()
    };
    let threads = opts.thread_sweep();
    let schemes = ConcurrencyScheme::figure_schemes();

    if !opts.csv {
        print_header(
            "Figure 4 — thread scaling of the parallel sweep, cubic elements",
            &base,
            opts.full,
        );
    }
    let points = run_scaling_experiment(&base, &threads, &schemes);
    emit_scaling_metrics(&opts, "figure4", base.strategy, &points);
    if opts.csv {
        print!("{}", scaling_csv(&points));
    } else {
        print!("{}", scaling_table(&points, &threads));
        println!();
        println!(
            "Paper shape: cubic elements have ~8x more work per cell than linear; the \
             angle/element*/group* scheme remains fastest, while the group/element layout \
             is less penalised than for linear elements because the 64-node elements \
             already give a 32 kB stride between adjacent elements."
        );
    }
}
