//! Serving-path load generator: start an in-process `unsnap-serve`
//! on an ephemeral port, fire a concurrent mix of registry-named and
//! inline solve requests at it over real HTTP, and report end-to-end
//! latency percentiles (p50/p95/p99), throughput and the result-cache
//! hit rate.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin loadgen -- [--quick] [--json] \
//!     [--metrics-out run.jsonl]
//! ```
//!
//! The workload deliberately repeats problems so the content-addressed
//! cache gets exercised: repeated submissions of an identical problem
//! must come back as cache hits with bit-for-bit identical outcomes,
//! and the report asserts both.  Client concurrency comes from
//! `UNSNAP_LOADGEN_CLIENTS` (default 4, `--quick` halves it); the
//! server's worker pool and cache keep their `UNSNAP_SERVE_WORKERS` /
//! `UNSNAP_CACHE_CAPACITY` defaults.
//!
//! Under `--metrics-out` the first (non-cached) completion of each named
//! problem emits one [`MetricsRecord`] rebuilt from the outcome JSON the
//! server returned — same uniform schema as every other bench bin, so
//! `trajectory` merges loadgen runs into the perf trajectory
//! (`BENCH_7.json` in CI).  The per-sweep latency histogram does not
//! cross the wire, so `sweep_p50`/`sweep_p95` are null in these records.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use unsnap_bench::{emit_metrics_record, env_parse, HarnessOptions, MetricsRecord};
use unsnap_core::json::JsonObject;
use unsnap_core::metrics::RunMetrics;
use unsnap_core::problem::Problem;
use unsnap_core::session::Phase;
use unsnap_obs::metrics::Histogram;
use unsnap_obs::reader::{self, JsonValue};
use unsnap_serve::{http, ServeConfig, Server};

/// One request in the workload: a case tag and the POST body.
#[derive(Debug, Clone)]
struct WorkItem {
    case: &'static str,
    body: &'static str,
}

/// One completed request, as observed by a client thread.
#[derive(Debug, Clone)]
struct Sample {
    case: &'static str,
    /// POST → terminal status, seconds.
    latency: f64,
    /// The submit answered from the result cache.
    cached: bool,
    /// Terminal state label (`done`, `failed`, `cancelled`).
    status: String,
    /// The outcome document, when the job finished `done`.
    outcome: Option<String>,
}

/// The mixed workload: named problems with deliberate repeats (cache
/// food) plus one inline-document request (wire-format food).
fn workload(quick: bool) -> Vec<WorkItem> {
    const INLINE: &str = r#"{"problem": {"grid": {"nx": 4, "ny": 3, "nz": 3}, "iteration": {"inner_iterations": 3}}}"#;
    let mut items = vec![
        WorkItem {
            case: "tiny",
            body: r#"{"problem": "tiny"}"#,
        },
        WorkItem {
            case: "quickstart",
            body: r#"{"problem": "quickstart"}"#,
        },
        WorkItem {
            case: "tiny",
            body: r#"{"problem": "tiny"}"#,
        },
        WorkItem {
            case: "inline",
            body: INLINE,
        },
        WorkItem {
            case: "tiny",
            body: r#"{"problem": "tiny"}"#,
        },
        WorkItem {
            case: "quickstart",
            body: r#"{"problem": "quickstart"}"#,
        },
    ];
    if !quick {
        items.extend([
            WorkItem {
                case: "dsa-regime",
                body: r#"{"problem": "dsa-regime"}"#,
            },
            WorkItem {
                case: "table2",
                body: r#"{"problem": "table2"}"#,
            },
            WorkItem {
                case: "inline",
                body: INLINE,
            },
            WorkItem {
                case: "dsa-regime",
                body: r#"{"problem": "dsa-regime"}"#,
            },
        ]);
    }
    items
}

/// Drive one request to a terminal state, returning the sample.
fn run_item(addr: std::net::SocketAddr, item: &WorkItem) -> Sample {
    let start = Instant::now();
    let response = http::request(addr, "POST", "/v1/solve", Some(item.body))
        .unwrap_or_else(|e| panic!("POST /v1/solve ({}) failed: {e}", item.case));
    assert_eq!(
        response.status, 202,
        "{}: expected 202, got {} ({})",
        item.case, response.status, response.body
    );
    let receipt = reader::parse(&response.body).expect("receipt is JSON");
    let job_id = receipt
        .get("job_id")
        .and_then(|v| v.as_u64())
        .expect("receipt carries job_id");
    let cached = receipt.get("cache").and_then(|v| v.as_str()) == Some("hit");

    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = http::request(addr, "GET", &format!("/v1/jobs/{job_id}"), None)
            .unwrap_or_else(|e| panic!("GET /v1/jobs/{job_id} failed: {e}"));
        assert_eq!(status.status, 200, "job {job_id} must stay queryable");
        let doc = reader::parse(&status.body).expect("status is JSON");
        let state = doc
            .get("status")
            .and_then(|v| v.as_str())
            .expect("status field")
            .to_string();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            let outcome = doc
                .get("outcome")
                .filter(|v| !v.is_null())
                .map(|_| extract_raw_outcome(&status.body));
            return Sample {
                case: item.case,
                latency: start.elapsed().as_secs_f64(),
                cached,
                status: state,
                outcome,
            };
        }
        assert!(
            Instant::now() < deadline,
            "job {job_id} ({}) did not finish within 300s",
            item.case
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Pull the raw `outcome` object text back out of a status body, so
/// identical-outcome comparisons are bit-for-bit on the wire bytes
/// rather than on a re-serialised parse.
fn extract_raw_outcome(status_body: &str) -> String {
    let start = status_body
        .find("\"outcome\":")
        .expect("status body has an outcome member")
        + "\"outcome\":".len();
    // The outcome object is followed by the "error" member; balance
    // braces to find its end.
    let bytes = status_body.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (offset, &b) in bytes[start..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return status_body[start..start + offset + 1].to_string();
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced outcome object in status body");
}

/// Rebuild the [`RunMetrics`] snapshot from an outcome document's
/// `metrics` member, including the sweep-latency histogram (rebuilt
/// from its serialised buckets via [`Histogram::from_parts`], so the
/// trajectory records this binary emits carry real `sweep_p50`/`p95`
/// values instead of nulls whenever the solve recorded any sweep).
fn metrics_from_outcome(outcome: &JsonValue) -> RunMetrics {
    let det = outcome
        .get("metrics")
        .and_then(|m| m.get("deterministic"))
        .expect("outcome carries deterministic metrics");
    let wall = outcome
        .get("metrics")
        .and_then(|m| m.get("wallclock"))
        .expect("outcome carries wallclock metrics");
    let count = |v: &JsonValue, key: &str| v.get(key).and_then(|x| x.as_usize()).unwrap_or(0);
    let mut metrics = RunMetrics {
        sweeps: count(det, "sweeps"),
        cells_swept: det.get("cells_swept").and_then(|x| x.as_u64()).unwrap_or(0),
        outers: count(det, "outers"),
        inner_iterations: count(det, "inner_iterations"),
        rank_inner_iterations: count(det, "rank_inner_iterations"),
        krylov_residual_events: count(det, "krylov_residual_events"),
        accel_residual_events: count(det, "accel_residual_events"),
        halo_exchanges: count(det, "halo_exchanges"),
        halo_faces: count(det, "halo_faces"),
        halo_bytes: det.get("halo_bytes").and_then(|x| x.as_u64()).unwrap_or(0),
        ..RunMetrics::default()
    };
    for phase in Phase::all() {
        metrics.phase_starts[phase.index()] = det
            .get("phase_starts")
            .and_then(|p| p.get(phase.label()))
            .and_then(|x| x.as_usize())
            .unwrap_or(0);
        metrics.phase_seconds[phase.index()] = wall
            .get("phase_seconds")
            .and_then(|p| p.get(phase.label()))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
    }
    if let Some(histogram) = histogram_from_json(wall.get("sweep_latency_seconds")) {
        metrics.sweep_latency = histogram;
    }
    metrics
}

/// Rebuild a [`Histogram`] from the object [`Histogram::to_json`] emits;
/// `None` on a missing or inconsistent document (the snapshot then keeps
/// its empty histogram and the percentiles serialise as null).
fn histogram_from_json(doc: Option<&JsonValue>) -> Option<Histogram> {
    let doc = doc?;
    let floats = |key: &str| -> Option<Vec<f64>> {
        doc.get(key)?
            .as_array()?
            .iter()
            .map(|v| v.as_f64())
            .collect()
    };
    let bounds = floats("bounds")?;
    let bucket_counts: Vec<u64> = floats("bucket_counts")?
        .into_iter()
        .map(|c| c as u64)
        .collect();
    Histogram::from_parts(
        &bounds,
        &bucket_counts,
        doc.get("count")?.as_u64()?,
        doc.get("sum")?.as_f64()?,
        doc.get("min")?.as_f64()?,
        doc.get("max")?.as_f64()?,
    )
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let opts = HarnessOptions::from_args();
    let clients = env_parse("UNSNAP_LOADGEN_CLIENTS", if opts.quick { 2 } else { 4 }).max(1);

    let mut config = ServeConfig::from_env().unwrap_or_else(|e| panic!("serve config: {e}"));
    config.port = 0; // always ephemeral: loadgen owns its server
    let server = Server::start(&config).unwrap_or_else(|e| panic!("server start: {e}"));
    let addr = server.addr();

    let items = workload(opts.quick);
    let total = items.len();
    eprintln!(
        "[loadgen] {total} requests, {clients} clients -> http://{addr} \
         ({} workers, cache {})",
        config.workers, config.cache_capacity
    );

    let pending: Arc<Mutex<Vec<WorkItem>>> = Arc::new(Mutex::new(items));
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::with_capacity(total)));
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let pending = Arc::clone(&pending);
            let samples = Arc::clone(&samples);
            std::thread::Builder::new()
                .name(format!("loadgen-client-{c}"))
                .spawn(move || loop {
                    let item = match pending.lock().unwrap().pop() {
                        Some(item) => item,
                        None => break,
                    };
                    let sample = run_item(addr, &item);
                    samples.lock().unwrap().push(sample);
                })
                .expect("spawn client")
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let wall_seconds = wall.elapsed().as_secs_f64();

    // The metrics endpoint must answer over the wire too.
    let metrics_response =
        http::request(addr, "GET", "/v1/metrics", None).expect("GET /v1/metrics");
    assert_eq!(metrics_response.status, 200);

    let samples = Arc::try_unwrap(samples)
        .expect("clients joined")
        .into_inner()
        .unwrap();
    assert_eq!(samples.len(), total, "every request must complete");
    assert!(
        samples.iter().all(|s| s.status == "done"),
        "all jobs must finish done: {:?}",
        samples
            .iter()
            .filter(|s| s.status != "done")
            .map(|s| (s.case, s.status.clone()))
            .collect::<Vec<_>>()
    );

    // Deterministic replay phase: with every workload problem now
    // completed and cached, a sequential re-submit of each must answer
    // from the cache with the exact stored bytes.  (Identical problems
    // submitted *concurrently* may both compute — the cache serves
    // completed results, it does not coalesce in-flight ones — so the
    // bit-for-bit guarantee is asserted here, sequentially.)
    let mut replays = Vec::new();
    for item in workload(opts.quick) {
        if replays.iter().any(|(case, _)| *case == item.case) {
            continue;
        }
        let sample = run_item(addr, &item);
        assert!(
            sample.cached,
            "{}: sequential re-submit must hit the cache",
            item.case
        );
        let replayed = sample.outcome.clone().expect("cached job carries outcome");
        assert!(
            samples
                .iter()
                .filter(|s| s.case == item.case)
                .filter_map(|s| s.outcome.as_ref())
                .any(|o| *o == replayed),
            "{}: cached replay must be bit-for-bit identical to a computed outcome",
            item.case
        );
        replays.push((item.case, sample));
    }

    let queue = server.queue();
    let hits = queue.counter("serve_cache_hits").unwrap_or(0);
    let misses = queue.counter("serve_cache_misses").unwrap_or(0);
    assert!(hits >= 1, "repeated problems must produce cache hits");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );

    if opts.json {
        println!(
            "{}",
            JsonObject::new()
                .field_usize("requests", total)
                .field_usize("clients", clients)
                .field_f64("wall_seconds", wall_seconds)
                .field_f64("throughput_rps", total as f64 / wall_seconds)
                .field_f64("latency_p50_s", p50)
                .field_f64("latency_p95_s", p95)
                .field_f64("latency_p99_s", p99)
                .field_u64("cache_hits", hits)
                .field_u64("cache_misses", misses)
                .field_f64("cache_hit_rate", hit_rate)
                .finish()
        );
    } else {
        println!("loadgen: {total} requests, {clients} clients, {wall_seconds:.2}s wall");
        println!(
            "latency  p50 {:.1} ms | p95 {:.1} ms | p99 {:.1} ms",
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3
        );
        println!(
            "cache    {hits} hits / {misses} misses ({:.0}% hit rate)",
            hit_rate * 100.0
        );
        println!(
            "throughput {:.2} solves/s (worker pool: {})",
            total as f64 / wall_seconds,
            config.workers
        );
    }

    // One trajectory record per named problem, from its first
    // server-computed (non-cached) completion.
    if opts.metrics_out.is_some() {
        for case in ["tiny", "quickstart", "dsa-regime", "table2"] {
            let Some(sample) = samples
                .iter()
                .filter(|s| s.case == case && !s.cached)
                .find(|s| s.outcome.is_some())
            else {
                continue;
            };
            let outcome =
                reader::parse(sample.outcome.as_ref().unwrap()).expect("outcome JSON parses");
            let problem = Problem::from_name(case).expect("named case");
            let record = MetricsRecord::from_metrics(
                "loadgen",
                case,
                problem.strategy,
                unsnap_bench::effective_threads(&problem),
                &metrics_from_outcome(&outcome),
            );
            emit_metrics_record(&opts, &record);
        }
    }

    server.shutdown();
}
