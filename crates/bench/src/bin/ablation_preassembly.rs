//! Ablation (§IV-B.1 of the paper): pre-assemble (and pre-factorise) the
//! local matrices once — they are invariant across the inner/outer
//! iterations — and compare the per-iteration cost and the memory
//! footprint against the default on-the-fly assembly.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin ablation_preassembly [-- --max-order 2] [--csv]
//! ```

use std::time::Instant;

use unsnap_bench::HarnessOptions;
use unsnap_core::angular::AngularQuadrature;
use unsnap_core::data::ProblemData;
use unsnap_core::kernel::{assemble, assemble_solve, KernelScratch, UpwindFace, UpwindSource};
use unsnap_core::preassembly::PreassembledMatrices;
use unsnap_core::problem::Problem;
use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::FACES;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::SolverKind;

struct Row {
    order: usize,
    on_the_fly_seconds: f64,
    preassembled_seconds: f64,
    matrix_bytes: usize,
    angular_flux_bytes: usize,
}

fn measure(order: usize) -> Row {
    let mut problem = Problem::tiny().with_order(order);
    problem.nx = 3;
    problem.ny = 3;
    problem.nz = 3;
    problem.angles_per_octant = 2;
    problem.num_groups = 2;
    let mesh = problem.build_mesh();
    let element = ReferenceElement::new(order);
    let quadrature = AngularQuadrature::product(problem.angles_per_octant);
    let grid = problem.grid();
    let data = ProblemData::generate(
        mesh.num_cells(),
        |cell| mesh.cell_centroid(cell),
        [grid.lx, grid.ly, grid.lz],
        problem.num_groups,
        problem.material,
        problem.source,
    );
    let integrals: Vec<ElementIntegrals> = (0..mesh.num_cells())
        .map(|cell| {
            let hex = HexVertices {
                corners: *mesh.cell_corners(cell),
            };
            ElementIntegrals::compute(&element, &hex)
        })
        .collect();
    let n = element.nodes_per_element();
    let solver = SolverKind::GaussianElimination.build();
    let source = vec![1.0f64; n];
    let sweeps = 5usize; // emulate 5 inner iterations re-using the matrices

    // On-the-fly: assemble matrix + RHS and solve, every time.
    let mut scratch = KernelScratch::new(n);
    let t0 = Instant::now();
    for _ in 0..sweeps {
        for (cell, ints) in integrals.iter().enumerate() {
            let mat = data.material(cell);
            for d in quadrature.directions() {
                for g in 0..problem.num_groups {
                    let sigma_t = data.xs.total(mat, g);
                    let upwind: Vec<UpwindFace<'_>> = FACES
                        .iter()
                        .filter(|f| ints.face(**f).direction_dot_normal(d.omega) < 0.0)
                        .map(|f| UpwindFace {
                            face: f.index(),
                            source: UpwindSource::Boundary(0.0),
                        })
                        .collect();
                    assemble_solve(
                        ints,
                        d.omega,
                        sigma_t,
                        &source,
                        &upwind,
                        solver.as_ref(),
                        false,
                        &mut scratch,
                    );
                }
            }
        }
    }
    let on_the_fly_seconds = t0.elapsed().as_secs_f64();

    // Pre-assembled: factorise once, then per iteration assemble only the
    // RHS and run the two triangular solves.
    let pre = PreassembledMatrices::build(&problem, &mesh, &quadrature, &data).unwrap();
    let t1 = Instant::now();
    for _ in 0..sweeps {
        for (cell, ints) in integrals.iter().enumerate() {
            let mat = data.material(cell);
            for (angle, d) in quadrature.directions().iter().enumerate() {
                for g in 0..problem.num_groups {
                    let sigma_t = data.xs.total(mat, g);
                    let upwind: Vec<UpwindFace<'_>> = FACES
                        .iter()
                        .filter(|f| ints.face(**f).direction_dot_normal(d.omega) < 0.0)
                        .map(|f| UpwindFace {
                            face: f.index(),
                            source: UpwindSource::Boundary(0.0),
                        })
                        .collect();
                    // RHS assembly still happens every iteration.
                    assemble(ints, d.omega, sigma_t, &source, &upwind, &mut scratch);
                    let mut rhs = scratch.rhs.clone();
                    pre.solve_in_place(cell, angle, g, &mut rhs).unwrap();
                }
            }
        }
    }
    let preassembled_seconds = t1.elapsed().as_secs_f64();
    let fp = pre.footprint();

    Row {
        order,
        on_the_fly_seconds,
        preassembled_seconds,
        matrix_bytes: fp.matrix_bytes,
        angular_flux_bytes: fp.angular_flux_bytes,
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let max_order = opts.max_order.unwrap_or(2);

    if !opts.csv {
        println!("Ablation — pre-assembled / pre-factorised matrices vs on-the-fly assembly");
        println!("(3x3x3 cells, 2 angles/octant, 2 groups, 5 emulated inner iterations)");
        println!();
        println!(
            "{:>5} {:>18} {:>18} {:>16} {:>20}",
            "Order", "on-the-fly (s)", "pre-assembled (s)", "matrix store", "vs angular flux"
        );
    } else {
        println!("order,on_the_fly_seconds,preassembled_seconds,matrix_bytes,angular_flux_bytes");
    }

    for order in 1..=max_order {
        let row = measure(order);
        if opts.csv {
            println!(
                "{},{:.6},{:.6},{},{}",
                row.order,
                row.on_the_fly_seconds,
                row.preassembled_seconds,
                row.matrix_bytes,
                row.angular_flux_bytes
            );
        } else {
            println!(
                "{:>5} {:>18.4} {:>18.4} {:>13} kB {:>19.1}x",
                row.order,
                row.on_the_fly_seconds,
                row.preassembled_seconds,
                row.matrix_bytes / 1024,
                row.matrix_bytes as f64 / row.angular_flux_bytes as f64
            );
        }
    }

    if !opts.csv {
        println!();
        println!(
            "Paper discussion: pre-assembly trades a large memory increase (a factor of \
             (p+1)^3 over the already-large angular flux for linear elements) for skipping \
             the per-iteration matrix assembly and factorisation; it is attractive only \
             for low orders, and less effective as the order grows."
        );
    }
}
