//! Ablation (§IV-A.3 of the paper): threading over **angles within an
//! octant**, which forces an atomic/critical scalar-flux reduction, does
//! not scale — the runtime *increases* with the thread count.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin ablation_angle_atomic [-- --threads 1,2,4] [--csv]
//! ```
//!
//! The harness compares the angle-threaded scheme (contended reduction)
//! against the paper's best scheme (collapsed element × group threading,
//! contention-free) across the same thread counts.

use unsnap_bench::{
    emit_scaling_metrics, print_header, run_scaling_experiment, scaling_csv, scaling_table,
    HarnessOptions,
};
use unsnap_core::problem::{angle_threaded_scheme, Problem};
use unsnap_sweep::ConcurrencyScheme;

fn main() {
    let opts = HarnessOptions::from_args();
    let mut base = if opts.full {
        Problem::figure3_full()
    } else {
        Problem::figure3_scaled()
    };
    // More angles per octant make the contention visible even on small
    // problems.
    if !opts.full {
        base.angles_per_octant = 8;
        base.num_groups = 8;
    }
    let threads = opts.thread_sweep();
    let schemes = [angle_threaded_scheme(), ConcurrencyScheme::best()];

    if !opts.csv {
        print_header(
            "Ablation — angle-threaded sweep with contended scalar-flux reduction",
            &base,
            opts.full,
        );
    }
    let points = run_scaling_experiment(&base, &threads, &schemes);
    emit_scaling_metrics(&opts, "ablation_angle_atomic", base.strategy, &points);
    if opts.csv {
        print!("{}", scaling_csv(&points));
    } else {
        print!("{}", scaling_table(&points, &threads));
        println!();
        println!(
            "Paper finding: threading over angles requires the scalar-flux update to be \
             atomic (or inside a critical region); neither allowed thread scaling and the \
             runtime increased with thread count, so angle threading is excluded from \
             Figures 3 and 4.  The contended angle* row above should show flat or rising \
             times while the element*/group* row falls."
        );
    }
}
