//! Merge `--metrics-out` JSONL files from the benchmark binaries into
//! the repo-level perf trajectory, `BENCH_6.json`.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin ablation_dsa -- --quick --metrics-out run.jsonl
//! cargo run --release -p unsnap-bench --bin trajectory -- run.jsonl [more.jsonl ...] \
//!     [--out BENCH_6.json] [--compare BASE.json] [--tolerance 25]
//! ```
//!
//! With `--compare BASE.json` the binary doubles as the CI
//! perf-regression gate: after merging, the fresh trajectory is diffed
//! against the committed baseline via
//! [`compare_trajectories`](unsnap_bench::compare_trajectories) —
//! deterministic counters (sweeps, cells swept, inner iterations, halo
//! exchanges, per-phase span counts) must match **exactly**, per-phase
//! wall clock may regress up to `--tolerance`× (default
//! [`WALLCLOCK_TOLERANCE_RATIO`](unsnap_bench::WALLCLOCK_TOLERANCE_RATIO)),
//! and bins present on only one side warn instead of failing.  Exit
//! status: 0 clean, 1 on any regression, 2 on usage or I/O errors.  In
//! compare mode nothing is written unless `--out` is given explicitly.
//!
//! Every input line must be a [`MetricsRecord`](unsnap_bench::MetricsRecord)
//! document — the uniform schema all emitting bins share (bin, case,
//! strategy, threads, per-phase breakdown, per-sweep latency
//! percentiles).  Lines are validated with the `unsnap-obs` reader
//! against [`METRICS_RECORD_KEYS`];
//! a malformed line aborts the merge with its file and line number, so
//! schema drift between the emitters and this merger fails loudly
//! rather than producing a silently-wrong trajectory.
//!
//! The output is one JSON object: a schema tag, the record count, the
//! distinct strategies covered, and the records themselves (verbatim).

use std::io::Write;

use unsnap_bench::{
    validate_number_or_null, METRICS_RECORD_KEYS, METRICS_RECORD_NUMBER_OR_NULL_KEYS,
};
use unsnap_core::json::{array_raw, JsonObject};
use unsnap_obs::reader;

fn main() {
    let mut out_path = String::from("BENCH_6.json");
    let mut out_explicit = false;
    let mut compare_path: Option<String> = None;
    let mut tolerance = unsnap_bench::WALLCLOCK_TOLERANCE_RATIO;
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out_path = path;
                    out_explicit = true;
                }
            }
            "--compare" => {
                compare_path = args.next();
                if compare_path.is_none() {
                    eprintln!("--compare needs a baseline path");
                    std::process::exit(2);
                }
            }
            "--tolerance" => {
                tolerance = args.next().and_then(|t| t.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a numeric ratio");
                    std::process::exit(2);
                });
            }
            _ => inputs.push(arg),
        }
    }
    if inputs.is_empty() {
        eprintln!(
            "usage: trajectory <run.jsonl> [more.jsonl ...] [--out BENCH_6.json] \
             [--compare BASE.json] [--tolerance 25]"
        );
        std::process::exit(2);
    }

    let mut records: Vec<String> = Vec::new();
    let mut strategies: Vec<String> = Vec::new();
    let mut bins: Vec<String> = Vec::new();
    for input in &inputs {
        let text =
            std::fs::read_to_string(input).unwrap_or_else(|e| panic!("{input}: cannot read: {e}"));
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = reader::parse(line)
                .unwrap_or_else(|e| panic!("{input} line {}: invalid JSON: {e}", index + 1));
            for key in METRICS_RECORD_KEYS {
                if doc.get(key).is_none() {
                    panic!(
                        "{input} line {}: not a metrics record (missing `{key}`)",
                        index + 1
                    );
                }
            }
            // The latency percentiles are explicitly number-or-null:
            // null means "no sweep latency samples", anything else is a
            // malformed record.
            for key in METRICS_RECORD_NUMBER_OR_NULL_KEYS {
                if let Err(reason) = validate_number_or_null(&doc, key) {
                    panic!("{input} line {}: {reason}", index + 1);
                }
            }
            for (value, seen) in [
                (doc.get("strategy"), &mut strategies),
                (doc.get("bin"), &mut bins),
            ] {
                if let Some(tag) = value.and_then(|v| v.as_str()) {
                    if !seen.iter().any(|s| s == tag) {
                        seen.push(tag.to_string());
                    }
                }
            }
            records.push(line.to_string());
        }
    }
    if records.is_empty() {
        panic!("no metrics records found in {inputs:?}");
    }
    strategies.sort();
    bins.sort();

    let count = records.len();
    let trajectory = JsonObject::new()
        .field_str("schema", "unsnap-perf-trajectory/v1")
        .field_usize("records_total", count)
        .field_raw("bins", &array_raw(bins.iter().map(|b| format!("\"{b}\""))))
        .field_raw(
            "strategies",
            &array_raw(strategies.iter().map(|s| format!("\"{s}\""))),
        )
        .field_raw("records", &array_raw(records))
        .finish();

    if let Some(base_path) = &compare_path {
        let base_text = std::fs::read_to_string(base_path).unwrap_or_else(|e| {
            eprintln!("{base_path}: cannot read baseline: {e}");
            std::process::exit(2);
        });
        let base = reader::parse(&base_text).unwrap_or_else(|e| {
            eprintln!("{base_path}: invalid JSON: {e}");
            std::process::exit(2);
        });
        let current = reader::parse(&trajectory).expect("freshly merged trajectory is JSON");
        let report = unsnap_bench::compare_trajectories(&base, &current, tolerance).unwrap_or_else(
            |reason| {
                eprintln!("compare: {reason}");
                std::process::exit(2);
            },
        );
        for warning in &report.warnings {
            eprintln!("compare: warning: {warning}");
        }
        for failure in &report.failures {
            eprintln!("compare: FAIL: {failure}");
        }
        eprintln!(
            "compare: {} record pair(s) diffed against {base_path}: {} failure(s), {} warning(s)",
            report.compared,
            report.failures.len(),
            report.warnings.len()
        );
        if !report.failures.is_empty() {
            std::process::exit(1);
        }
    }

    if compare_path.is_none() || out_explicit {
        let mut file = std::fs::File::create(&out_path)
            .unwrap_or_else(|e| panic!("{out_path}: cannot create: {e}"));
        file.write_all(trajectory.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .unwrap_or_else(|e| panic!("{out_path}: write failed: {e}"));
        eprintln!(
            "trajectory: merged {count} record(s) from {} file(s) into {out_path} \
             (strategies: {})",
            inputs.len(),
            strategies.join(", ")
        );
    }
}
