//! Ablation: source iteration versus DSA-accelerated source iteration
//! versus sweep-preconditioned GMRES as the scattering ratio approaches
//! one (c ∈ {0.5, 0.9, 0.99, 0.999}).
//!
//! The scenario is the quickstart phase space (6³ cells, 4 groups via
//! `UNSNAP_GROUPS`, default 1 for comparability with `ablation_krylov`)
//! on a diffusive domain: 12 mean free paths thick, so source
//! iteration's error contracts at essentially `c` per sweep and the
//! low-order diffusion correction has honest work to do.  Reported per
//! scattering ratio: the transport sweeps each strategy needed to reach
//! the shared tolerance, the DSA/GMRES speedups, the low-order CG
//! iterations DSA spent (cheap — the low-order system has one unknown
//! per cell × group), and the flux agreement cross-checks.
//!
//! Pass `--json` for one object per scattering ratio with the full
//! [`SolveOutcome`](unsnap_core::solver::SolveOutcome) of all three strategies; `--csv` for a flat table;
//! `--quick` shrinks the mesh for CI smoke runs; `--progress` streams
//! per-solve progress to stderr.
//!
//! Environment knobs (parsed via `FromStr`):
//!
//! * `UNSNAP_SOLVER`  — `ge`, `lu` or `mkl` (default `ge`).
//! * `UNSNAP_SCHEME`  — `best`, `serial` or a figure label
//!   (default `serial`).
//! * `UNSNAP_MESH`    — cells per side of the cubic mesh (default 6).
//! * `UNSNAP_GROUPS`  — energy groups (default 1).
//! * `UNSNAP_BUDGET`  — inner-iteration budget per outer (default 4000).

use unsnap_bench::{
    effective_threads, emit_metrics_record, emit_trace, env_parse, run_strategy, HarnessOptions,
    MetricsRecord,
};
use unsnap_core::builder::ProblemBuilder;
use unsnap_core::json::{array_raw, JsonObject};
use unsnap_core::report::{accel_table_text, AccelAblationRow};
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;
use unsnap_sweep::ConcurrencyScheme;

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-300)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let solver: SolverKind = env_parse("UNSNAP_SOLVER", SolverKind::GaussianElimination);
    let scheme: ConcurrencyScheme = env_parse("UNSNAP_SCHEME", ConcurrencyScheme::serial());
    let mesh: usize = env_parse("UNSNAP_MESH", if opts.quick { 4 } else { 6 });
    let groups: usize = env_parse("UNSNAP_GROUPS", 1);
    let budget: usize = env_parse("UNSNAP_BUDGET", if opts.quick { 1500 } else { 4000 });
    let ratios: &[f64] = if opts.quick {
        &[0.9, 0.99]
    } else {
        &[0.5, 0.9, 0.99, 0.999]
    };

    if !opts.csv && !opts.json {
        println!("DSA ablation: SI vs DSA-SI vs sweep-preconditioned GMRES");
        println!(
            "  mesh {mesh}³ (12 mfp thick), {groups} group(s), tolerance 1e-6, \
             budget {budget} sweeps"
        );
        println!("  dense back end {solver}, scheme {scheme}");
        println!();
    }
    // `--json` wins over `--csv` outright, as in the other ablations.
    let csv = opts.csv && !opts.json;
    if csv {
        println!(
            "scattering_ratio,si_sweeps,si_converged,dsa_sweeps,dsa_converged,\
             dsa_cg_iterations,gmres_sweeps,gmres_converged,dsa_speedup,gmres_speedup,\
             dsa_flux_rel_diff,gmres_flux_rel_diff"
        );
    }

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for &c in ratios {
        let base = ProblemBuilder::quickstart()
            .mesh(mesh)
            .extents(12.0, 12.0, 12.0)
            .phase_space(2, groups)
            .scattering_ratio(c)
            .tolerance(1e-6)
            .iterations(budget, 1)
            .solver(solver)
            .scheme(scheme);

        let si = run_strategy(&base, StrategyKind::SourceIteration, opts.progress);
        let dsa = run_strategy(&base, StrategyKind::DsaSourceIteration, opts.progress);
        let gm = run_strategy(&base, StrategyKind::SweepGmres, opts.progress);

        let case = format!("c={c}");
        let threads = base.build().map(|p| effective_threads(&p)).unwrap_or(1);
        for (strategy, outcome) in [
            (StrategyKind::SourceIteration, &si),
            (StrategyKind::DsaSourceIteration, &dsa),
            (StrategyKind::SweepGmres, &gm),
        ] {
            emit_metrics_record(
                &opts,
                &MetricsRecord::from_metrics(
                    "ablation_dsa",
                    &case,
                    strategy,
                    threads,
                    &outcome.metrics,
                ),
            );
            emit_trace(&opts, &outcome.trace);
        }

        let row = AccelAblationRow {
            scattering_ratio: c,
            si_sweeps: si.sweep_count,
            dsa_sweeps: dsa.sweep_count,
            gmres_sweeps: gm.sweep_count,
            dsa_cg_iterations: dsa.accel_cg_iterations,
            converged: [si.converged, dsa.converged, gm.converged],
            dsa_flux_rel_diff: rel_diff(si.scalar_flux_total, dsa.scalar_flux_total),
            gmres_flux_rel_diff: rel_diff(si.scalar_flux_total, gm.scalar_flux_total),
        };
        if opts.json {
            dumps.push(
                JsonObject::new()
                    .field_f64("scattering_ratio", c)
                    .field_f64("dsa_speedup", row.dsa_speedup())
                    .field_f64("gmres_speedup", row.gmres_speedup())
                    .field_f64("dsa_flux_rel_diff", row.dsa_flux_rel_diff)
                    .field_f64("gmres_flux_rel_diff", row.gmres_flux_rel_diff)
                    .field_raw("source_iteration", &si.to_json())
                    .field_raw("dsa_source_iteration", &dsa.to_json())
                    .field_raw("sweep_gmres", &gm.to_json())
                    .finish(),
            );
        } else if csv {
            println!(
                "{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3e},{:.3e}",
                c,
                row.si_sweeps,
                row.converged[0],
                row.dsa_sweeps,
                row.converged[1],
                row.dsa_cg_iterations,
                row.gmres_sweeps,
                row.converged[2],
                row.dsa_speedup(),
                row.gmres_speedup(),
                row.dsa_flux_rel_diff,
                row.gmres_flux_rel_diff,
            );
        }
        rows.push(row);
    }

    if opts.json {
        println!("{}", array_raw(dumps));
    } else if !csv {
        println!("{}", accel_table_text(&rows));
        println!("('!' marks a strategy that exhausted its budget unconverged)");
    }
}
