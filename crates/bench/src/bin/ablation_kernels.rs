//! Ablation: the PR-9 sweep hot-path kernels — reference scalar
//! assembly vs the SoA cache-blocked kernel, and full-`f64` sweeps vs
//! the mixed-precision (`f32` local solve) mode — under both source
//! iteration and DSA-accelerated source iteration.
//!
//! The scenario is the quickstart phase space on a diffusive domain, so
//! the iteration counts have honest work behind them.  Beyond the
//! timing table this binary *asserts* the kernel-engine contracts:
//!
//! * the blocked `f64` kernel reproduces the reference kernel **bit for
//!   bit** (scalar-flux aggregates compared via `to_bits`, iteration
//!   counters compared exactly) — the blocked kernel caches the
//!   direction-dependent geometry tiles and replays the reference
//!   operation sequence, so this holds by construction;
//! * the mixed-precision mode converges to the same physics within
//!   [`MIXED_FLUX_TOLERANCE`] (relative, on the scalar-flux total) and
//!   needs at most [`mixed_sweep_budget`] sweeps — single precision
//!   carries ~7 significant digits, so a 1e-5-relative agreement with
//!   bounded extra iterations is the documented trade-off.
//!
//! A violated contract panics, so CI smoke runs of this binary double
//! as an end-to-end equivalence gate.
//!
//! Pass `--json` for one object per kernel × precision case, `--csv`
//! for a flat table, `--quick` to shrink the mesh for CI smoke runs,
//! and `--metrics-out <path>` to append one trajectory-schema record
//! per measured solve (merged into `BENCH_9.json` by the `trajectory`
//! binary).
//!
//! Environment knobs (parsed via `FromStr`):
//!
//! * `UNSNAP_SOLVER` — `ge`, `lu` or `mkl` (default `ge`).
//! * `UNSNAP_MESH`   — cells per side of the cubic mesh (default 6).
//! * `UNSNAP_GROUPS` — energy groups (default 2).
//! * `UNSNAP_BUDGET` — inner-iteration budget per outer (default 1200).

use unsnap_bench::{
    effective_threads, emit_metrics_record, emit_trace, env_parse, run_strategy, HarnessOptions,
    MetricsRecord,
};
use unsnap_core::builder::ProblemBuilder;
use unsnap_core::json::{array_raw, JsonObject};
use unsnap_core::kernel::KernelKind;
use unsnap_core::layout::Precision;
use unsnap_core::solver::SolveOutcome;
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;

/// Documented accuracy contract of the mixed-precision mode: the
/// relative difference of the converged scalar-flux total against the
/// full-`f64` reference solve must stay below this bound.  Single
/// precision resolves ~7 significant digits; the converged aggregate of
/// a well-conditioned DG solve keeps comfortably under 1e-5 of drift.
pub const MIXED_FLUX_TOLERANCE: f64 = 1e-5;

/// Documented iteration contract of the mixed-precision mode: at most
/// double the reference sweep count plus a small constant — rounding
/// the iterates to the `f32` grid may slow the tail of convergence but
/// must not change its character.
pub fn mixed_sweep_budget(reference_sweeps: usize) -> usize {
    2 * reference_sweeps + 4
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-300)
}

struct Case {
    kernel: KernelKind,
    precision: Precision,
    outcome: SolveOutcome,
}

impl Case {
    fn label(&self) -> String {
        format!("{}/{}", self.kernel.label(), self.precision.label())
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let solver: SolverKind = env_parse("UNSNAP_SOLVER", SolverKind::GaussianElimination);
    let mesh: usize = env_parse("UNSNAP_MESH", if opts.quick { 4 } else { 6 });
    let groups: usize = env_parse("UNSNAP_GROUPS", 2);
    // At c = 0.9 source iteration contracts at ~0.9 per sweep, so a
    // 1e-5 tolerance needs on the order of 110 sweeps; give it head
    // room (the mixed mode is allowed up to double the reference).
    let budget: usize = env_parse("UNSNAP_BUDGET", if opts.quick { 600 } else { 1200 });
    // Tolerance sits well above f32 resolution so the mixed mode can
    // genuinely converge rather than oscillate on the rounding grid.
    let tolerance = 1e-5;

    let strategies = [
        StrategyKind::SourceIteration,
        StrategyKind::DsaSourceIteration,
    ];
    let combos = [
        (KernelKind::Reference, Precision::F64),
        (KernelKind::Blocked, Precision::F64),
        (KernelKind::Reference, Precision::Mixed),
        (KernelKind::Blocked, Precision::Mixed),
    ];

    if !opts.csv && !opts.json {
        println!("Kernel ablation: reference vs SoA-blocked, f64 vs mixed precision");
        println!(
            "  mesh {mesh}³, {groups} group(s), tolerance {tolerance:.0e}, dense back end {solver}"
        );
        println!(
            "  contracts: blocked f64 bit-for-bit; mixed flux within {MIXED_FLUX_TOLERANCE:.0e}"
        );
        println!();
    }
    let csv = opts.csv && !opts.json;
    if csv {
        println!(
            "strategy,kernel,precision,sweeps,converged,assemble_solve_seconds,\
             flux_rel_diff_vs_reference"
        );
    }

    let mut dumps = Vec::new();
    for strategy in strategies {
        let base = ProblemBuilder::quickstart()
            .mesh(mesh)
            .extents(12.0, 12.0, 12.0)
            .phase_space(2, groups)
            .scattering_ratio(0.9)
            .tolerance(tolerance)
            .iterations(budget, 1)
            .solver(solver)
            .strategy(strategy);
        let threads = base.build().map(|p| effective_threads(&p)).unwrap_or(1);

        let cases: Vec<Case> = combos
            .iter()
            .map(|&(kernel, precision)| Case {
                kernel,
                precision,
                outcome: run_strategy(
                    &base.clone().kernel(kernel).precision(precision),
                    strategy,
                    opts.progress,
                ),
            })
            .collect();
        let reference = &cases[0].outcome;
        assert!(
            reference.converged,
            "{strategy}: the reference solve must converge for the comparison to mean anything"
        );

        for case in &cases {
            let out = &case.outcome;
            if case.precision == Precision::F64 {
                // Contract 1: every f64 case is bit-for-bit the
                // reference physics, whichever kernel assembled it.
                for (name, ours, refs) in [
                    ("total", out.scalar_flux_total, reference.scalar_flux_total),
                    ("max", out.scalar_flux_max, reference.scalar_flux_max),
                    ("min", out.scalar_flux_min, reference.scalar_flux_min),
                ] {
                    assert_eq!(
                        ours.to_bits(),
                        refs.to_bits(),
                        "{strategy}/{}: scalar flux {name} drifted from the reference kernel",
                        case.label()
                    );
                }
                assert_eq!(out.sweep_count, reference.sweep_count, "{strategy}: sweeps");
                assert_eq!(
                    out.inner_iterations, reference.inner_iterations,
                    "{strategy}: inners"
                );
            } else {
                // Contract 2: mixed precision holds the documented flux
                // tolerance and iteration budget.
                let drift = rel_diff(reference.scalar_flux_total, out.scalar_flux_total);
                assert!(
                    out.converged,
                    "{strategy}/{}: mixed-precision solve failed to converge",
                    case.label()
                );
                assert!(
                    drift <= MIXED_FLUX_TOLERANCE,
                    "{strategy}/{}: flux drift {drift:.3e} exceeds {MIXED_FLUX_TOLERANCE:.0e}",
                    case.label()
                );
                assert!(
                    out.sweep_count <= mixed_sweep_budget(reference.sweep_count),
                    "{strategy}/{}: {} sweeps exceeds the budget of {}",
                    case.label(),
                    out.sweep_count,
                    mixed_sweep_budget(reference.sweep_count)
                );
            }

            emit_metrics_record(
                &opts,
                &MetricsRecord::from_metrics(
                    "ablation_kernels",
                    &case.label(),
                    strategy,
                    threads,
                    &out.metrics,
                ),
            );
            emit_trace(&opts, &out.trace);

            let drift = rel_diff(reference.scalar_flux_total, out.scalar_flux_total);
            if opts.json {
                dumps.push(
                    JsonObject::new()
                        .field_str("strategy", &strategy.to_string().to_ascii_lowercase())
                        .field_str("kernel", case.kernel.label())
                        .field_str("precision", case.precision.label())
                        .field_f64("flux_rel_diff_vs_reference", drift)
                        .field_raw("outcome", &out.to_json())
                        .finish(),
                );
            } else if csv {
                println!(
                    "{},{},{},{},{},{:.6},{:.3e}",
                    strategy.to_string().to_ascii_lowercase(),
                    case.kernel.label(),
                    case.precision.label(),
                    out.sweep_count,
                    out.converged,
                    out.assemble_solve_seconds,
                    drift,
                );
            }
        }

        if !csv && !opts.json {
            println!("{strategy}");
            println!(
                "  {:<18} {:>7} {:>10} {:>12} {:>14}",
                "kernel/precision", "sweeps", "converged", "seconds", "flux rel diff"
            );
            for case in &cases {
                let out = &case.outcome;
                println!(
                    "  {:<18} {:>7} {:>10} {:>12.4} {:>14.3e}",
                    case.label(),
                    out.sweep_count,
                    out.converged,
                    out.assemble_solve_seconds,
                    rel_diff(reference.scalar_flux_total, out.scalar_flux_total),
                );
            }
            println!("  all kernel-engine contracts held");
            println!();
        }
    }

    if opts.json {
        println!("{}", array_raw(dumps));
    }
}
