//! Regenerate **Figure 3** of the paper: thread scaling of the
//! assemble/solve routine under the six loop-order / threading schemes for
//! **linear** elements.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin figure3 [-- --threads 1,2,4] [--full] [--csv]
//! ```
//!
//! The default problem is a scaled-down version of the paper's
//! 16³ × 36 angles × 64 groups configuration; pass `--full` on a machine
//! with enough memory to run the published size.

use unsnap_bench::{
    emit_scaling_metrics, print_header, run_scaling_experiment, scaling_csv, scaling_table,
    HarnessOptions,
};
use unsnap_core::problem::Problem;
use unsnap_sweep::ConcurrencyScheme;

fn main() {
    let opts = HarnessOptions::from_args();
    let base = if opts.full {
        Problem::figure3_full()
    } else {
        Problem::figure3_scaled()
    };
    let threads = opts.thread_sweep();
    let schemes = ConcurrencyScheme::figure_schemes();

    if !opts.csv {
        print_header(
            "Figure 3 — thread scaling of the parallel sweep, linear elements",
            &base,
            opts.full,
        );
    }
    let points = run_scaling_experiment(&base, &threads, &schemes);
    emit_scaling_metrics(&opts, "figure3", base.strategy, &points);
    if opts.csv {
        print!("{}", scaling_csv(&points));
    } else {
        print!("{}", scaling_table(&points, &threads));
        println!();
        println!(
            "Paper shape: the angle/element*/group* scheme (collapsed element x group \
             threading, group index fastest in memory) is fastest at full thread counts; \
             schemes with the group/element data layout trail because adjacent elements \
             sit only one cache line apart."
        );
    }
}
