//! Regenerate **Table I** of the paper: the size of the local DG matrix and
//! its FP64 footprint for finite-element orders 1–5.
//!
//! ```text
//! cargo run -p unsnap-bench --bin table1 [-- --csv]
//! ```

use unsnap_bench::HarnessOptions;
use unsnap_core::report;

fn main() {
    let opts = HarnessOptions::from_args();
    let rows = report::table1(5);
    if opts.csv {
        println!("order,matrix_size,fp64_footprint_kb");
        for r in rows {
            println!("{},{},{:.1}", r.order, r.matrix_size, r.footprint_kb);
        }
    } else {
        println!("Table I — size of local matrix for different finite element orders");
        println!();
        print!("{}", report::table1_text(5));
        println!();
        println!("Paper values: 0.5, 5.7, 32.0, 122.1, 364.5 kB for orders 1-5.");
    }
}
