//! Ablation: source-iteration versus sweep-preconditioned-GMRES inner
//! solves inside the block-Jacobi distributed schedule, across 1/2/4
//! ranks.
//!
//! The distributed driver dispatches each rank's within-group solve
//! through the same `IterationStrategy` machinery as the single-domain
//! path: with source iteration every halo exchange buys one relaxation
//! sweep per rank (the seed schedule); with GMRES every halo exchange
//! buys a converged subdomain solve (additive-Schwarz style).  This
//! table measures what that trade does to the halo-iteration count, the
//! total sweep count and the wall time as the number of Jacobi blocks
//! grows.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin ablation_jacobi_krylov \
//!     [-- --quick] [--json] [--csv]
//! ```
//!
//! `--quick` shrinks the problem for CI smoke runs; `--json` emits one
//! `BlockJacobiOutcome::to_json()` dump per (strategy, decomposition)
//! cell, ready for plotting tools.
//!
//! Environment knobs (parsed via `FromStr`): `UNSNAP_SOLVER`,
//! `UNSNAP_SCHEME`, and `UNSNAP_C` (within-group scattering ratio,
//! default 0.9 — scattering-dominated, where the Krylov inner solves
//! pay off).

use unsnap_bench::{
    effective_threads, emit_metrics_record, env_parse, time_it, HarnessOptions, MetricsRecord,
};
use unsnap_comm::{BlockJacobiOutcome, BlockJacobiSolver};
use unsnap_core::json::{array_raw, JsonObject};
use unsnap_core::problem::Problem;
use unsnap_core::report::iteration_summary;
use unsnap_core::session::ProgressObserver;
use unsnap_core::strategy::StrategyKind;
use unsnap_mesh::Decomposition2D;

fn run_cell(
    problem: &Problem,
    decomp: Decomposition2D,
    progress: bool,
) -> (BlockJacobiOutcome, f64) {
    let mut solver = BlockJacobiSolver::new(problem, decomp).expect("decomposition fits");
    let (outcome, seconds) = if progress {
        eprintln!(
            "[unsnap] running {} on {} rank(s)",
            problem.strategy,
            decomp.num_ranks()
        );
        let mut observer = ProgressObserver::from_env();
        time_it(|| solver.run_observed(&mut observer).expect("solve"))
    } else {
        time_it(|| solver.run().expect("solve"))
    };
    (outcome, seconds)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let c: f64 = env_parse("UNSNAP_C", 0.9);

    let mut problem = Problem::tiny();
    if opts.quick {
        problem.nx = 4;
        problem.ny = 4;
        problem.nz = 2;
        problem.inner_iterations = 120;
    } else {
        problem.nx = 8;
        problem.ny = 8;
        problem.nz = 4;
        problem.inner_iterations = 400;
    }
    problem.num_groups = 1;
    problem.angles_per_octant = 2;
    problem.outer_iterations = 1;
    problem.convergence_tolerance = 1e-7;
    problem.scattering_ratio = Some(c);
    problem.solver = env_parse("UNSNAP_SOLVER", problem.solver);
    problem.scheme = env_parse("UNSNAP_SCHEME", problem.scheme);

    let decompositions = [
        Decomposition2D::serial(),
        Decomposition2D::new(2, 1),
        Decomposition2D::new(2, 2),
    ];

    if !opts.csv && !opts.json {
        println!("Ablation — SI vs GMRES inner solves in the block-Jacobi schedule");
        println!(
            "mesh {}x{}x{}, {} angles/octant, {} group(s), c = {c}, tolerance {:.0e}",
            problem.nx,
            problem.ny,
            problem.nz,
            problem.angles_per_octant,
            problem.num_groups,
            problem.convergence_tolerance
        );
        println!();
        println!(
            "{:>8} {:>6} {:>10} {:>12} {:>10} {:>16} {:>9}",
            "strategy", "ranks", "halo iters", "total sweeps", "Krylov its", "scalar flux", "secs"
        );
    }
    // `--json` wins over `--csv` outright: mixing a CSV header into a
    // JSON stream would pollute both consumers.
    let csv = opts.csv && !opts.json;
    if csv {
        println!(
            "strategy,ranks,halo_iterations,converged,total_sweeps,krylov_iterations,\
             scalar_flux_total,seconds"
        );
    }

    let mut dumps = Vec::new();
    for strategy in StrategyKind::all() {
        let mut p = problem.clone();
        p.strategy = strategy;
        for decomp in decompositions {
            let (outcome, seconds) = run_cell(&p, decomp, opts.progress);
            emit_metrics_record(
                &opts,
                &MetricsRecord::from_metrics(
                    "ablation_jacobi_krylov",
                    &format!("ranks={}", decomp.num_ranks()),
                    strategy,
                    effective_threads(&p),
                    &outcome.metrics,
                ),
            );
            if opts.json {
                dumps.push(
                    JsonObject::new()
                        .field_str("strategy", strategy.label())
                        .field_f64("seconds", seconds)
                        .field_raw("outcome", &outcome.to_json())
                        .finish(),
                );
            } else if csv {
                println!(
                    "{},{},{},{},{},{},{:.6e},{:.4}",
                    strategy.label(),
                    outcome.num_ranks,
                    outcome.inner_iterations,
                    outcome.converged,
                    outcome.sweep_count,
                    outcome.krylov_iterations,
                    outcome.scalar_flux_total,
                    seconds
                );
            } else {
                let mark = if outcome.converged { ' ' } else { '!' };
                println!(
                    "{:>8} {:>6} {:>9}{} {:>12} {:>10} {:>16.6e} {:>9.3}",
                    strategy.label(),
                    outcome.num_ranks,
                    outcome.inner_iterations,
                    mark,
                    outcome.sweep_count,
                    outcome.krylov_iterations,
                    outcome.scalar_flux_total,
                    seconds
                );
            }
            if !csv && !opts.json && decomp.num_ranks() == 4 {
                println!("         └─ {}", iteration_summary(&outcome));
            }
        }
    }

    if opts.json {
        println!("{}", array_raw(dumps));
    } else if !csv {
        println!();
        println!(
            "Reading: with SI inner solves every halo exchange buys one lagged sweep per \
             rank, so the halo-iteration count grows with the number of Jacobi blocks.  \
             With GMRES inner solves each rank converges its subdomain per halo exchange \
             — far fewer halo iterations at the cost of more sweeps per iteration, and \
             the trade improves as scattering dominates (raise UNSNAP_C toward 1)."
        );
    }
}
