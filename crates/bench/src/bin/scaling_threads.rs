//! Wall-clock scaling of the real worker pool: assemble/solve time and
//! speedup at 1/2/4/8 threads for the Figure 3/4 concurrency schemes plus
//! the angle-threaded ablation.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin scaling_threads \
//!     [-- --threads 1,2,4,8] [--full] [--figure4] [--quick] [--csv]
//! ```
//!
//! Until the `rayon` stand-in grew a worker pool, every scheme was a pure
//! ordering and this table would have been flat at 1.00x; it now measures
//! genuine parallel speedup.  `--quick` shrinks the problem for CI smoke
//! runs, `--figure4` switches to cubic elements.  Note that the
//! `RAYON_NUM_THREADS` override forces every pool to one width and makes
//! the sweep meaningless — leave it unset here.

use unsnap_bench::{
    emit_scaling_metrics, print_header, run_scaling_experiment, scaling_csv, HarnessOptions,
};
use unsnap_core::problem::Problem;
use unsnap_sweep::{ConcurrencyScheme, LoopOrder};

fn main() {
    let opts = HarnessOptions::from_args();
    let cubic = std::env::args().any(|a| a == "--figure4");
    let base = match (opts.quick, cubic, opts.full) {
        (true, false, _) => Problem::figure3_scaled()
            .with_mesh(4)
            .with_phase_space(4, 8),
        (true, true, _) => Problem::figure4_scaled()
            .with_mesh(3)
            .with_phase_space(4, 4),
        (false, false, false) => Problem::figure3_scaled(),
        (false, false, true) => Problem::figure3_full(),
        (false, true, false) => Problem::figure4_scaled(),
        (false, true, true) => Problem::figure4_full(),
    };
    let threads = opts.threads.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let mut schemes = ConcurrencyScheme::figure_schemes();
    // The angle-parallel ablation: threads beyond the angles of one octant
    // simply idle, which is part of what this table demonstrates.
    schemes.push(ConcurrencyScheme::angle_threaded(
        LoopOrder::ElementThenGroup,
    ));

    if !opts.csv {
        print_header(
            if cubic {
                "Thread scaling of the worker pool — Figure 4 problem (cubic elements)"
            } else {
                "Thread scaling of the worker pool — Figure 3 problem (linear elements)"
            },
            &base,
            opts.full,
        );
    }
    let points = run_scaling_experiment(&base, &threads, &schemes);
    emit_scaling_metrics(&opts, "scaling_threads", base.strategy, &points);
    if opts.csv {
        print!("{}", scaling_csv(&points));
        return;
    }

    // Speedup table relative to the first (narrowest) thread count.
    let baseline_threads = threads[0];
    println!(
        "{:<28} {}",
        "scheme \\ threads",
        threads
            .iter()
            .map(|t| format!("{t:>16}"))
            .collect::<String>()
    );
    let mut labels: Vec<String> = points.iter().map(|p| p.scheme.clone()).collect();
    labels.dedup();
    let mut angle_parallel_speedup_at_4 = None;
    for label in &labels {
        let baseline = points
            .iter()
            .find(|p| &p.scheme == label && p.threads == baseline_threads)
            .expect("baseline point")
            .seconds;
        print!("{label:<28}");
        for &t in &threads {
            let p = points
                .iter()
                .find(|p| &p.scheme == label && p.threads == t)
                .expect("point exists");
            let speedup = baseline / p.seconds;
            print!("{:>9.3}s {:>4.2}x", p.seconds, speedup);
            if t == 4 && label.starts_with("angle*") {
                angle_parallel_speedup_at_4 = Some(speedup);
            }
        }
        println!();
    }
    println!();
    if let Some(speedup) = angle_parallel_speedup_at_4 {
        println!(
            "angle-parallel scheme at 4 threads: {speedup:.2}x vs {baseline_threads} \
             (acceptance floor: 1.5x on a release build)"
        );
    }
    println!(
        "All element/group schemes stay bit-for-bit deterministic across widths; the \
         angle* ablation's contended scalar-flux lock is why the paper discards it."
    );
}
