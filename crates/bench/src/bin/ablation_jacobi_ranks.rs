//! Ablation (§III-A.1 of the paper): the block-Jacobi global schedule's
//! convergence penalty as the number of ranks (Jacobi blocks) grows,
//! contrasted with the KBA pipeline's idle time.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin ablation_jacobi_ranks [-- --csv]
//! ```

use unsnap_bench::{effective_threads, emit_metrics_record, HarnessOptions, MetricsRecord};
use unsnap_comm::{BlockJacobiSolver, KbaModel};
use unsnap_core::problem::Problem;
use unsnap_core::report::iteration_summary;
use unsnap_mesh::Decomposition2D;

fn main() {
    let opts = HarnessOptions::from_args();

    let mut problem = Problem::tiny();
    problem.nx = 8;
    problem.ny = 8;
    problem.nz = 4;
    problem.num_groups = 2;
    problem.angles_per_octant = 2;
    problem.inner_iterations = 200;
    problem.outer_iterations = 1;
    problem.convergence_tolerance = 1e-7;

    let decompositions = [
        Decomposition2D::serial(),
        Decomposition2D::new(2, 1),
        Decomposition2D::new(2, 2),
        Decomposition2D::new(4, 2),
    ];

    if opts.csv {
        println!("ranks,iterations_to_tolerance,halo_faces,scalar_flux_total,kba_efficiency");
    } else {
        println!("Ablation — block-Jacobi convergence penalty vs number of ranks");
        println!(
            "mesh {}x{}x{}, {} angles/octant, {} groups, tolerance {:.0e}",
            problem.nx,
            problem.ny,
            problem.nz,
            problem.angles_per_octant,
            problem.num_groups,
            problem.convergence_tolerance
        );
        println!();
        println!(
            "{:>6} {:>12} {:>12} {:>16} {:>17}   summary",
            "ranks", "iterations", "halo faces", "scalar flux", "KBA efficiency"
        );
    }

    for decomp in decompositions {
        let mut solver = BlockJacobiSolver::new(&problem, decomp).expect("decomposition fits");
        let outcome = solver.run().expect("solve");
        emit_metrics_record(
            &opts,
            &MetricsRecord::from_metrics(
                "ablation_jacobi_ranks",
                &format!("ranks={}", decomp.num_ranks()),
                problem.strategy,
                effective_threads(&problem),
                &outcome.metrics,
            ),
        );
        let local_stages =
            (problem.nx / decomp.npx + problem.ny / decomp.npy + problem.nz).saturating_sub(2);
        let kba = KbaModel::evaluate(decomp.npx, decomp.npy, local_stages.max(1));
        let iterations = outcome
            .iterations_to_tolerance
            .map(|i| i.to_string())
            .unwrap_or_else(|| format!(">{}", problem.inner_iterations));
        if opts.csv {
            println!(
                "{},{},{},{:.6e},{:.4}",
                outcome.num_ranks,
                iterations,
                outcome.halo_faces,
                outcome.scalar_flux_total,
                kba.efficiency
            );
        } else {
            // The shared report path (`iteration_summary` via the
            // outcome's `IterationSummary` impl) formats the iteration
            // story; only the KBA contrast column is local to this bin.
            println!(
                "{:>6} {:>12} {:>12} {:>16.6e} {:>16.1}%   {}",
                outcome.num_ranks,
                iterations,
                outcome.halo_faces,
                outcome.scalar_flux_total,
                kba.efficiency * 100.0,
                iteration_summary(&outcome),
            );
        }
    }

    if !opts.csv {
        println!();
        println!(
            "Paper/Garrett finding: block Jacobi needs more iterations as the number of \
             blocks grows (every block lags its neighbours by one iteration), but every \
             rank starts sweeping immediately.  The KBA column shows the single-octant \
             pipeline efficiency the sweep-respecting schedule would achieve instead — \
             high per-iteration efficiency is traded against iteration count."
        );
    }
}
