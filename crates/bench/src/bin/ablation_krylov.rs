//! Ablation: source iteration versus sweep-preconditioned GMRES across
//! scattering ratios c ∈ {0.1, 0.5, 0.9, 0.99}.
//!
//! Reports, per scattering ratio, the sweeps each strategy needed to hit
//! the shared tolerance, the speedup, and the relative flux difference
//! between the two solutions (the cross-check that acceleration does not
//! change the physics).
//!
//! Environment knobs (parsed via `FromStr`):
//!
//! * `UNSNAP_SOLVER`  — `ge`, `lu` or `mkl` (default `ge`).
//! * `UNSNAP_SCHEME`  — `best`, `serial` or a figure label
//!   (default `serial`).
//! * `UNSNAP_RESTART` — GMRES restart length (default 20).
//! * `UNSNAP_MESH`    — cells per side of the cubic mesh (default 4).
//! * `UNSNAP_BUDGET`  — inner-iteration budget per outer (default 600).

use unsnap_core::problem::Problem;
use unsnap_core::report::{strategy_table_text, StrategyAblationRow};
use unsnap_core::solver::TransportSolver;
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;
use unsnap_sweep::ConcurrencyScheme;

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match std::env::var(name) {
        Ok(raw) => match raw.parse() {
            Ok(value) => value,
            Err(e) => {
                eprintln!("ignoring {name}={raw}: {e}");
                default
            }
        },
        Err(_) => default,
    }
}

fn main() {
    let solver: SolverKind = env_parse("UNSNAP_SOLVER", SolverKind::GaussianElimination);
    let scheme: ConcurrencyScheme = env_parse("UNSNAP_SCHEME", ConcurrencyScheme::serial());
    let restart: usize = env_parse("UNSNAP_RESTART", 20);
    let mesh: usize = env_parse("UNSNAP_MESH", 4);
    let budget: usize = env_parse("UNSNAP_BUDGET", 600);

    println!("Krylov ablation: SI vs sweep-preconditioned GMRES");
    println!(
        "  mesh {mesh}³ (8 mfp thick), 1 group, 16 angles, tolerance 1e-8, \
         budget {budget} sweeps"
    );
    println!("  dense back end {solver}, scheme {scheme}, GMRES restart {restart}");
    println!();

    let mut rows = Vec::new();
    for c in [0.1, 0.5, 0.9, 0.99] {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.nx = mesh;
        p.ny = mesh;
        p.nz = mesh;
        p.lx = 8.0;
        p.ly = 8.0;
        p.lz = 8.0;
        p.scattering_ratio = Some(c);
        p.convergence_tolerance = 1e-8;
        p.inner_iterations = budget;
        p.outer_iterations = 1;
        p.solver = solver;
        p.scheme = scheme;
        p.gmres_restart = restart;

        let mut si_solver =
            TransportSolver::new(&p.clone().with_strategy(StrategyKind::SourceIteration))
                .expect("SI problem must validate");
        let si = si_solver.run().expect("SI solve must run");
        let mut gm_solver =
            TransportSolver::new(&p.clone().with_strategy(StrategyKind::SweepGmres))
                .expect("GMRES problem must validate");
        let gm = gm_solver.run().expect("GMRES solve must run");

        rows.push(StrategyAblationRow {
            scattering_ratio: c,
            si_sweeps: si.sweep_count,
            gmres_sweeps: gm.sweep_count,
            si_converged: si.converged,
            gmres_converged: gm.converged,
            flux_rel_diff: (si.scalar_flux_total - gm.scalar_flux_total).abs()
                / si.scalar_flux_total.abs().max(1e-300),
        });
    }

    println!("{}", strategy_table_text(&rows));
    println!("('!' marks a strategy that exhausted its budget unconverged)");
}
