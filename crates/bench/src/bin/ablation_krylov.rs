//! Ablation: source iteration versus sweep-preconditioned GMRES across
//! scattering ratios c ∈ {0.1, 0.5, 0.9, 0.99}.
//!
//! Reports, per scattering ratio, the sweeps each strategy needed to hit
//! the shared tolerance, the speedup, and the relative flux difference
//! between the two solutions (the cross-check that acceleration does not
//! change the physics).
//!
//! Pass `--json` to emit a machine-readable dump instead: one object per
//! scattering ratio with the full `SolveOutcome` of both strategies
//! (via `SolveOutcome::to_json`), ready for plotting tools; pass
//! `--progress` to stream rate-limited per-solve progress to stderr.
//!
//! Environment knobs (parsed via `FromStr`):
//!
//! * `UNSNAP_SOLVER`  — `ge`, `lu` or `mkl` (default `ge`).
//! * `UNSNAP_SCHEME`  — `best`, `serial` or a figure label
//!   (default `serial`).
//! * `UNSNAP_RESTART` — GMRES restart length (default 20).
//! * `UNSNAP_MESH`    — cells per side of the cubic mesh (default 4).
//! * `UNSNAP_BUDGET`  — inner-iteration budget per outer (default 600).

use unsnap_bench::{
    effective_threads, emit_metrics_record, env_parse, run_strategy, HarnessOptions, MetricsRecord,
};
use unsnap_core::builder::ProblemBuilder;
use unsnap_core::json::{array_raw, JsonObject};
use unsnap_core::report::{strategy_table_text, StrategyAblationRow};
use unsnap_core::strategy::StrategyKind;
use unsnap_linalg::SolverKind;
use unsnap_sweep::ConcurrencyScheme;

fn main() {
    let opts = HarnessOptions::from_args();
    let json = opts.json;
    let solver: SolverKind = env_parse("UNSNAP_SOLVER", SolverKind::GaussianElimination);
    let scheme: ConcurrencyScheme = env_parse("UNSNAP_SCHEME", ConcurrencyScheme::serial());
    let restart: usize = env_parse("UNSNAP_RESTART", 20);
    let mesh: usize = env_parse("UNSNAP_MESH", 4);
    let budget: usize = env_parse("UNSNAP_BUDGET", 600);

    if !json {
        println!("Krylov ablation: SI vs sweep-preconditioned GMRES");
        println!(
            "  mesh {mesh}³ (8 mfp thick), 1 group, 16 angles, tolerance 1e-8, \
             budget {budget} sweeps"
        );
        println!("  dense back end {solver}, scheme {scheme}, GMRES restart {restart}");
        println!();
    }

    let mut rows = Vec::new();
    let mut dumps = Vec::new();
    for c in [0.1, 0.5, 0.9, 0.99] {
        let base = ProblemBuilder::tiny()
            .mesh(mesh)
            .extents(8.0, 8.0, 8.0)
            .phase_space(2, 1)
            .scattering_ratio(c)
            .tolerance(1e-8)
            .iterations(budget, 1)
            .solver(solver)
            .scheme(scheme)
            .gmres_restart(restart);

        let si = run_strategy(&base, StrategyKind::SourceIteration, opts.progress);
        let gm = run_strategy(&base, StrategyKind::SweepGmres, opts.progress);

        let case = format!("c={c}");
        let threads = base.build().map(|p| effective_threads(&p)).unwrap_or(1);
        for (strategy, outcome) in [
            (StrategyKind::SourceIteration, &si),
            (StrategyKind::SweepGmres, &gm),
        ] {
            emit_metrics_record(
                &opts,
                &MetricsRecord::from_metrics(
                    "ablation_krylov",
                    &case,
                    strategy,
                    threads,
                    &outcome.metrics,
                ),
            );
        }

        let row = StrategyAblationRow {
            scattering_ratio: c,
            si_sweeps: si.sweep_count,
            gmres_sweeps: gm.sweep_count,
            si_converged: si.converged,
            gmres_converged: gm.converged,
            flux_rel_diff: (si.scalar_flux_total - gm.scalar_flux_total).abs()
                / si.scalar_flux_total.abs().max(1e-300),
        };
        if json {
            dumps.push(
                JsonObject::new()
                    .field_f64("scattering_ratio", c)
                    .field_f64("speedup", row.speedup())
                    .field_f64("flux_rel_diff", row.flux_rel_diff)
                    .field_raw("source_iteration", &si.to_json())
                    .field_raw("sweep_gmres", &gm.to_json())
                    .finish(),
            );
        }
        rows.push(row);
    }

    if json {
        println!("{}", array_raw(dumps));
    } else {
        println!("{}", strategy_table_text(&rows));
        println!("('!' marks a strategy that exhausted its budget unconverged)");
    }
}
