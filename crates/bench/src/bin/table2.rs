//! Regenerate **Table II** of the paper: assemble/solve time and the
//! fraction of time spent in the linear solve for the hand-written Gaussian
//! elimination versus the blocked-LU "MKL" stand-in, for element orders
//! 1 to 4.
//!
//! ```text
//! cargo run --release -p unsnap-bench --bin table2 [-- --max-order 4] [--full] [--csv | --json]
//! ```
//!
//! The paper runs this experiment flat-MPI (one rank per core); the
//! default here is a single serial rank, which preserves the quantity of
//! interest (per-core assemble/solve cost and its solve share).

use unsnap_bench::{
    effective_threads, emit_metrics_record, print_header, run_solver_comparison,
    solver_comparison_csv, solver_comparison_json, solver_comparison_table, HarnessOptions,
    MetricsRecord,
};
use unsnap_core::problem::Problem;
use unsnap_linalg::SolverKind;

fn main() {
    let opts = HarnessOptions::from_args();
    let max_order = opts.max_order.unwrap_or(if opts.full { 4 } else { 3 });
    let header_problem = if opts.full {
        Problem::table2_full(1, SolverKind::GaussianElimination)
    } else {
        Problem::table2_scaled(1, SolverKind::GaussianElimination)
    };

    if !opts.csv && !opts.json {
        print_header(
            "Table II — assemble/solve time for different finite element orders",
            &header_problem,
            opts.full,
        );
    }

    let rows = run_solver_comparison(max_order, |order, kind| {
        if opts.full {
            Problem::table2_full(order, kind)
        } else {
            Problem::table2_scaled(order, kind)
        }
    });

    for row in &rows {
        for (backend, metrics) in [("ge", &row.ge_metrics), ("mkl", &row.mkl_metrics)] {
            emit_metrics_record(
                &opts,
                &MetricsRecord::from_metrics(
                    "table2",
                    &format!("order={}/{backend}", row.order),
                    header_problem.strategy,
                    effective_threads(&header_problem),
                    metrics,
                ),
            );
        }
    }

    if opts.json {
        println!("{}", solver_comparison_json(&rows));
    } else if opts.csv {
        print!("{}", solver_comparison_csv(&rows));
    } else {
        print!("{}", solver_comparison_table(&rows));
        println!();
        println!(
            "Paper shape (on a 56-core Skylake node, full size): GE beats MKL for orders \
             1-3 (matrices up to 64x64 stay in L1); MKL wins at order 4 (125x125, larger \
             than L1) by ~1.7x.  The %-in-solve column grows from ~34% at order 1 to \
             ~74-87% at order 4 — at low order the assembly, not the solve, dominates."
        );
    }
}
