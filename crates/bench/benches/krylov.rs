//! Criterion benchmark of the Krylov acceleration subsystem.
//!
//! Two groups:
//!
//! * `krylov_kernels` — raw GMRES/CG cost on dense stand-in systems at
//!   the Table-I matrix sizes, versus the direct LU solve they replace.
//! * `inner_strategy` — the end-to-end inner solve (source iteration vs
//!   sweep-preconditioned GMRES) on a scattering-dominated transport
//!   problem, the configuration where the subsystem earns its keep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use unsnap_core::problem::Problem;
use unsnap_core::solver::TransportSolver;
use unsnap_core::strategy::StrategyKind;
use unsnap_krylov::{CgConfig, ConjugateGradient, Gmres, GmresConfig, MatrixOperator};
use unsnap_linalg::{DenseMatrix, SolverKind};

fn dominant_system(n: usize) -> (DenseMatrix, Vec<f64>) {
    let a = DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            6.0 + (i % 5) as f64
        } else {
            0.8 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
    (a, b)
}

fn spd_system(n: usize) -> (DenseMatrix, Vec<f64>) {
    let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 7) % 5) as f64 / 5.0 - 0.3);
    let mut a = b.transpose().matmul(&b).unwrap();
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    let rhs: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    (a, rhs)
}

fn bench_krylov_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("krylov_kernels");
    group.sample_size(20);
    for n in [8usize, 27, 64] {
        let (a, b) = dominant_system(n);
        let lu = SolverKind::ReferenceLu.build();
        group.bench_with_input(BenchmarkId::new("lu_direct", n), &n, |bench, _| {
            bench.iter(|| black_box(lu.solve(&a, &b).unwrap()[0]))
        });
        let gmres = Gmres::new(GmresConfig {
            restart: 20,
            max_iterations: 200,
            tolerance: 1e-10,
        });
        group.bench_with_input(BenchmarkId::new("gmres", n), &n, |bench, _| {
            bench.iter(|| {
                let mut op = MatrixOperator::new(a.clone());
                let mut x = vec![0.0; n];
                gmres.solve(&mut op, &b, &mut x).unwrap();
                black_box(x[0])
            })
        });
        let (spd, rhs) = spd_system(n);
        let cg = ConjugateGradient::new(CgConfig {
            max_iterations: 200,
            tolerance: 1e-10,
        });
        group.bench_with_input(BenchmarkId::new("cg_spd", n), &n, |bench, _| {
            bench.iter(|| {
                let mut op = MatrixOperator::new(spd.clone());
                let mut x = vec![0.0; n];
                cg.solve(&mut op, &rhs, &mut x).unwrap();
                black_box(x[0])
            })
        });
    }
    group.finish();
}

fn bench_inner_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_strategy");
    group.sample_size(10);
    let mut base = Problem::tiny();
    base.num_groups = 1;
    base.nx = 4;
    base.ny = 4;
    base.nz = 4;
    base.lx = 8.0;
    base.ly = 8.0;
    base.lz = 8.0;
    base.scattering_ratio = Some(0.9);
    base.convergence_tolerance = 1e-8;
    base.inner_iterations = 600;
    base.outer_iterations = 1;

    for strategy in StrategyKind::all() {
        let p = base.clone().with_strategy(strategy);
        group.bench_with_input(
            BenchmarkId::new("c0.9", strategy.label()),
            &p,
            |bench, problem| {
                bench.iter_batched(
                    || TransportSolver::new(problem).unwrap(),
                    |mut solver| black_box(solver.run().unwrap().sweep_count),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_krylov_kernels, bench_inner_strategy);
criterion_main!(benches);
