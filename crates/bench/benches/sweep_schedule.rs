//! Criterion benchmark of the sweep-schedule construction (§III-A.2): the
//! per-angle tlevel/bucket computation on meshes of increasing size, and
//! the KBA decomposition of the mesh.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use unsnap_mesh::{Decomposition2D, StructuredGrid, UnstructuredMesh};
use unsnap_sweep::SweepSchedule;

fn bench_schedule_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    group.sample_size(20);
    for n in [4usize, 8, 12] {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        let omega = [0.53, 0.61, 0.59];
        group.bench_with_input(BenchmarkId::from_parameter(n * n * n), &mesh, |b, m| {
            b.iter(|| black_box(SweepSchedule::build(m, omega).unwrap().num_buckets()))
        });
    }
    group.finish();
}

fn bench_mesh_and_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh");
    group.sample_size(20);
    for n in [8usize, 16] {
        let grid = StructuredGrid::cube(n, 1.0);
        group.bench_with_input(
            BenchmarkId::new("build_twisted", n * n * n),
            &grid,
            |b, g| b.iter(|| black_box(UnstructuredMesh::from_structured(g, 0.001).num_cells())),
        );
        let mesh = UnstructuredMesh::from_structured(&grid, 0.001);
        group.bench_with_input(
            BenchmarkId::new("decompose_2x2", n * n * n),
            &mesh,
            |b, m| b.iter(|| black_box(Decomposition2D::new(2, 2).decompose(m).len())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_construction,
    bench_mesh_and_partition
);
criterion_main!(benches);
