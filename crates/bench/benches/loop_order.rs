//! Criterion benchmark behind Figures 3 and 4: one inner iteration of the
//! threaded sweep under each concurrency scheme (loop order × threading),
//! on a small fixed problem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use unsnap_core::problem::Problem;
use unsnap_core::solver::TransportSolver;
use unsnap_sweep::ConcurrencyScheme;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_scheme");
    group.sample_size(10);

    let mut base = Problem::figure3_scaled();
    base.nx = 4;
    base.ny = 4;
    base.nz = 4;
    base.angles_per_octant = 2;
    base.num_groups = 4;
    base.inner_iterations = 1;
    base.outer_iterations = 1;

    for scheme in ConcurrencyScheme::figure_schemes() {
        let problem = base.clone().with_scheme(scheme);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &problem,
            |b, p| {
                b.iter_batched(
                    || TransportSolver::new(p).unwrap(),
                    |mut solver| black_box(solver.run().unwrap().scalar_flux_total),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
