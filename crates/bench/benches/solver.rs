//! Criterion micro-benchmark behind Table II: the local dense solve
//! (hand-written Gaussian elimination vs reference LU vs the blocked-LU
//! MKL stand-in) at each Table-I matrix size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use unsnap_linalg::{DenseMatrix, SolverKind};

/// Build a representative DG-like system: strongly diagonally dominant
/// with dense off-diagonal coupling.
fn system(n: usize) -> (DenseMatrix, Vec<f64>) {
    let a = DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0 + (i % 7) as f64
        } else {
            0.5 / (1.0 + (i as f64 - j as f64).abs())
        }
    });
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    (a, b)
}

fn bench_local_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_solve");
    group.sample_size(20);
    // Matrix sizes of Table I (orders 1-4).
    for (order, n) in [(1usize, 8usize), (2, 27), (3, 64), (4, 125)] {
        let (a, b) = system(n);
        for kind in SolverKind::all() {
            let solver = kind.build();
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("order{order}_n{n}")),
                &n,
                |bench, _| {
                    bench.iter(|| {
                        let mut a2 = a.clone();
                        let mut x = b.clone();
                        solver.solve_in_place(&mut a2, &mut x).unwrap();
                        black_box(x[0])
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_local_solve);
criterion_main!(benches);
