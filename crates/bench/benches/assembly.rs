//! Criterion micro-benchmark behind Table I / §IV-B.1: per-element integral
//! precomputation and the assemble-only and assemble+solve kernel costs as
//! a function of element order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use unsnap_core::kernel::{assemble, assemble_solve, KernelScratch, UpwindFace, UpwindSource};
use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::FACES;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::SolverKind;

fn bench_element_integrals(c: &mut Criterion) {
    let mut group = c.benchmark_group("element_integrals");
    group.sample_size(10);
    for order in [1usize, 2, 3] {
        let element = ReferenceElement::new(order);
        let hex = HexVertices::unit_cube();
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| black_box(ElementIntegrals::compute(&element, &hex).volume))
        });
    }
    group.finish();
}

fn bench_assemble_and_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(20);
    let omega = [0.52, 0.6, 0.61];
    for order in [1usize, 2, 3] {
        let element = ReferenceElement::new(order);
        let hex = HexVertices::unit_cube();
        let ints = ElementIntegrals::compute(&element, &hex);
        let n = ints.nodes_per_element();
        let source = vec![1.0; n];
        let upwind: Vec<UpwindFace<'_>> = FACES
            .iter()
            .filter(|f| ints.face(**f).direction_dot_normal(omega) < 0.0)
            .map(|f| UpwindFace {
                face: f.index(),
                source: UpwindSource::Boundary(0.5),
            })
            .collect();
        let mut scratch = KernelScratch::new(n);

        group.bench_with_input(BenchmarkId::new("assemble_only", order), &order, |b, _| {
            b.iter(|| {
                assemble(&ints, omega, 1.5, &source, &upwind, &mut scratch);
                black_box(scratch.rhs[0])
            })
        });

        let solver = SolverKind::GaussianElimination.build();
        group.bench_with_input(
            BenchmarkId::new("assemble_solve_ge", order),
            &order,
            |b, _| {
                b.iter(|| {
                    let t = assemble_solve(
                        &ints,
                        omega,
                        1.5,
                        &source,
                        &upwind,
                        solver.as_ref(),
                        false,
                        &mut scratch,
                    );
                    black_box(t.assemble_ns)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_element_integrals, bench_assemble_and_solve);
criterion_main!(benches);
