//! CI crash-and-resume smoke: a real process killed with SIGKILL.
//!
//! The integration suite (`tests/durability.rs`) injects crashes by
//! truncating log images and tearing writes in-process; this binary
//! closes the loop with an *actual* kill:
//!
//! ```text
//! durability_smoke run <log>       # checkpointing solve; prints the
//!                                  # normalized outcome JSON on stdout
//! durability_smoke resume <log>    # restore from the log's last intact
//!                                  # checkpoint, finish, print the same
//! ```
//!
//! The CI job starts `run` in the background, SIGKILLs it once the log
//! holds a checkpoint, then `resume`s and diffs the printed outcome
//! against an uninterrupted `run` — byte-for-byte.  The outcome is
//! *normalized*: wall-clock fields are zeroed (they differ run to run
//! by construction), so the diff pins exactly the deterministic
//! contract — flux, iteration counts, sweep/kernel tallies, metrics.
//!
//! The problem is fixed (a multi-outer quickstart variant with
//! tolerance 0, so every outer runs); `UNSNAP_SMOKE_OUTERS` scales the
//! outer count (default 24) to give the kill a wide window.

use std::process::ExitCode;

use unsnap_core::problem::Problem;
use unsnap_core::session::Session;
use unsnap_core::solver::SolveOutcome;
use unsnap_runlog::{CheckpointObserver, RunMode, SessionResume};

/// The fixed smoke problem: multi-outer, never converges (tolerance 0),
/// so the outer count — and with it the checkpoint schedule — is exact.
fn smoke_problem() -> Result<Problem, String> {
    let mut problem = Problem::quickstart();
    problem.outer_iterations = match std::env::var("UNSNAP_SMOKE_OUTERS") {
        Ok(raw) => raw
            .trim()
            .parse()
            .map_err(|e| format!("UNSNAP_SMOKE_OUTERS: {e}"))?,
        Err(_) => 24,
    };
    problem.convergence_tolerance = 0.0;
    Ok(problem)
}

/// Zero every wall-clock field so two runs of the same physics print
/// identical bytes.
fn normalized_json(mut outcome: SolveOutcome) -> String {
    outcome.assemble_solve_seconds = 0.0;
    outcome.kernel_assemble_seconds = 0.0;
    outcome.kernel_solve_seconds = 0.0;
    outcome.metrics.zero_wallclock();
    outcome.to_json()
}

fn run(path: &str) -> Result<String, String> {
    let problem = smoke_problem()?;
    let observer = CheckpointObserver::create(path, &problem, RunMode::Single, 1)
        .map_err(|e| e.to_string())?;
    let mut sink = observer.sink();
    let mut observer = observer;
    let mut session = Session::new(&problem).map_err(|e| e.to_string())?;
    let outcome = session
        .run_checkpointed(&mut observer, &mut sink)
        .map_err(|e| e.to_string())?;
    Ok(normalized_json(outcome))
}

fn resume(path: &str) -> Result<String, String> {
    let mut session = Session::resume(path).map_err(|e| e.to_string())?;
    let observer = CheckpointObserver::resume(path, 1).map_err(|e| e.to_string())?;
    let mut sink = observer.sink();
    let mut observer = observer;
    let outcome = session
        .run_checkpointed(&mut observer, &mut sink)
        .map_err(|e| e.to_string())?;
    Ok(normalized_json(outcome))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("run") if args.len() == 3 => run(&args[2]),
        Some("resume") if args.len() == 3 => resume(&args[2]),
        _ => Err("usage: durability_smoke <run|resume> <log-path>".to_string()),
    };
    match result {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("durability_smoke: {message}");
            ExitCode::FAILURE
        }
    }
}
