//! Durable runs: a write-ahead run log with checkpoint/restart.
//!
//! A solve that may be interrupted — a long paper-scale run, a serve
//! job, a machine about to lose its allocation — streams its state into
//! a compact append-only *run log*: a manifest frame pinning the exact
//! problem (canonical wire JSON plus FNV-1a hash), followed by
//! checkpoint frames at outer-iteration boundaries (scalar flux φ,
//! angular flux ψ, accumulated statistics, and the observer-event delta
//! since the previous frame).  Every frame is length-prefixed and
//! checksummed; recovery scans to the last intact frame and discards
//! the torn tail, so a crash at *any* byte leaves a resumable log.
//!
//! The resume determinism contract: checkpoint → crash → resume yields
//! an outcome **bit-for-bit identical** to the uninterrupted run —
//! flux, iteration counts, deterministic metrics, and the observer
//! event stream — at every thread width, on both the single-domain
//! [`TransportSolver`](unsnap_core::solver::TransportSolver) and the
//! block-Jacobi path.  `tests/durability.rs` pins the contract with
//! crash-and-resume fault injection (see [`fault`]) and an
//! every-byte-offset truncation property.
//!
//! ```no_run
//! use unsnap_core::problem::Problem;
//! use unsnap_core::session::Session;
//! use unsnap_runlog::{CheckpointObserver, RunMode, SessionResume};
//!
//! # fn main() -> unsnap_core::error::Result<()> {
//! // First attempt: checkpoint every outer iteration.
//! let problem = Problem::from_name("quickstart").unwrap();
//! let observer = CheckpointObserver::create("run.log", &problem, RunMode::Single, 1)?;
//! let mut sink = observer.sink();
//! let mut observer = observer;
//! let mut session = Session::new(&problem)?;
//! // …crashes mid-run…
//! let _ = session.run_checkpointed(&mut observer, &mut sink);
//!
//! // After the crash: recover and continue to the identical outcome.
//! let mut session = Session::resume("run.log")?;
//! let observer = CheckpointObserver::resume("run.log", 1)?;
//! let mut sink = observer.sink();
//! let mut observer = observer;
//! let outcome = session.run_checkpointed(&mut observer, &mut sink)?;
//! # let _ = outcome;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod fault;
pub mod frame;
pub mod manifest;
pub mod recover;
pub mod resume;
pub mod writer;

pub use checkpoint::{JacobiCheckpoint, SingleCheckpoint};
pub use fault::{FaultyWriter, SharedBuffer};
pub use manifest::{Manifest, RunMode};
pub use recover::{recover, recover_bytes, Recovered};
pub use resume::{resume_block_jacobi, SessionResume};
pub use writer::{CheckpointObserver, CheckpointSinkHandle};

use unsnap_core::error::{Error, Result};

/// Environment knob selecting the checkpoint cadence (write a
/// checkpoint frame every N outer iterations; default 1).
pub const CHECKPOINT_ITERS_ENV: &str = "UNSNAP_CHECKPOINT_ITERS";

/// Read [`CHECKPOINT_ITERS_ENV`], defaulting to 1 (checkpoint every
/// outer iteration) and rejecting zero or garbage.
pub fn checkpoint_iters_from_env() -> Result<usize> {
    match std::env::var(CHECKPOINT_ITERS_ENV) {
        Err(std::env::VarError::NotPresent) => Ok(1),
        Err(e) => Err(Error::invalid_problem(
            "checkpoint_iters",
            format!("{CHECKPOINT_ITERS_ENV}: {e}"),
        )),
        Ok(text) => match text.trim().parse::<usize>() {
            Ok(0) => Err(Error::invalid_problem(
                "checkpoint_iters",
                format!("{CHECKPOINT_ITERS_ENV}: cadence must be at least 1, got 0"),
            )),
            Ok(n) => Ok(n),
            Err(e) => Err(Error::invalid_problem(
                "checkpoint_iters",
                format!("{CHECKPOINT_ITERS_ENV}: {e}"),
            )),
        },
    }
}
