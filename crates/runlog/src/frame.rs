//! The on-disk frame format: a fixed header followed by length-prefixed,
//! checksummed frames.
//!
//! ```text
//! ┌──────────────────────────────┐
//! │ magic  "UNSNAPRL"   (8 bytes)│  file header
//! │ format version u32 LE        │
//! ├──────────────────────────────┤
//! │ tag  u8  ('M'/'C'/'F')       │  frame 0 (always a manifest)
//! │ len  u32 LE                  │
//! │ payload  (len bytes, JSON)   │
//! │ FNV-1a64 u64 LE              │  over tag ‖ len ‖ payload
//! ├──────────────────────────────┤
//! │ …more frames…                │
//! └──────────────────────────────┘
//! ```
//!
//! The checksum is the same FNV-1a (64-bit) that
//! [`Problem::canonical_hash`](unsnap_core::problem::Problem::canonical_hash)
//! uses, computed over the tag byte, the four length bytes and the
//! payload — so a torn length prefix is caught, not just a torn payload.
//!
//! [`scan`] walks a byte buffer frame by frame and stops at the first
//! defect (short header, truncated frame, checksum mismatch, unknown
//! tag).  Everything before the defect is intact; everything from it on
//! is a torn tail the recovery layer logically discards.  A scan never
//! panics on any input.

/// Magic bytes opening every run log.
pub const MAGIC: &[u8; 8] = b"UNSNAPRL";

/// The current format version (bumped on any incompatible layout
/// change; recovery refuses other versions rather than misparsing).
pub const FORMAT_VERSION: u32 = 1;

/// Total header length: magic plus version.
pub const HEADER_LEN: usize = MAGIC.len() + 4;

/// Frame tag: the manifest (problem + mode), always frame 0.
pub const TAG_MANIFEST: u8 = b'M';
/// Frame tag: a checkpoint fragment.
pub const TAG_CHECKPOINT: u8 = b'C';
/// Frame tag: the finished marker (the run completed; nothing to
/// resume).
pub const TAG_FINISHED: u8 = b'F';

/// FNV-1a 64-bit over `bytes` — the workspace's canonical content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The checksum of a frame: FNV-1a over tag, length prefix and payload.
fn frame_checksum(tag: u8, payload: &[u8]) -> u64 {
    let mut prefix = [0u8; 5];
    prefix[0] = tag;
    prefix[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut hash = fnv1a(&prefix);
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in payload {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Serialise the file header.
pub fn header_bytes() -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out
}

/// Serialise one frame (tag, length prefix, payload, checksum).
pub fn frame_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + payload.len() + 8);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&frame_checksum(tag, payload).to_le_bytes());
    out
}

/// One intact frame yielded by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// The frame tag (one of the `TAG_*` constants).
    pub tag: u8,
    /// The frame payload (JSON text for every current tag).
    pub payload: &'a [u8],
    /// Byte offset one past this frame's checksum — the length of the
    /// valid prefix ending with this frame.
    pub end_offset: usize,
}

/// The result of walking a buffer: every intact frame in order, plus
/// whether a torn tail (or a bad header) was found after them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome<'a> {
    /// Intact frames, in file order.
    pub frames: Vec<Frame<'a>>,
    /// Length of the valid prefix in bytes (header plus intact frames);
    /// re-opening for append truncates to this.
    pub valid_len: usize,
    /// `true` when bytes after the valid prefix were discarded (a torn
    /// frame, garbage, or a damaged header).
    pub truncated: bool,
}

/// `true` when the buffer opens with an intact header of the current
/// format version.
pub fn header_ok(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN
        && &bytes[..MAGIC.len()] == MAGIC
        && bytes[MAGIC.len()..HEADER_LEN] == FORMAT_VERSION.to_le_bytes()
}

/// Walk `bytes` and return every intact frame before the first defect.
///
/// Never panics; arbitrary input (including an empty or truncated
/// buffer) yields an empty frame list with `truncated` set.
pub fn scan(bytes: &[u8]) -> ScanOutcome<'_> {
    if !header_ok(bytes) {
        return ScanOutcome {
            frames: Vec::new(),
            valid_len: 0,
            truncated: !bytes.is_empty(),
        };
    }
    let mut frames = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        if offset == bytes.len() {
            // Clean end of file.
            return ScanOutcome {
                frames,
                valid_len: offset,
                truncated: false,
            };
        }
        // A frame needs at least tag + length + checksum.
        let Some(rest) = bytes.get(offset..) else {
            break;
        };
        if rest.len() < 1 + 4 + 8 {
            break;
        }
        let tag = rest[0];
        if tag != TAG_MANIFEST && tag != TAG_CHECKPOINT && tag != TAG_FINISHED {
            break;
        }
        let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
        let Some(payload) = rest.get(5..5 + len) else {
            break;
        };
        let Some(checksum_bytes) = rest.get(5 + len..5 + len + 8) else {
            break;
        };
        let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8-byte slice"));
        if stored != frame_checksum(tag, payload) {
            break;
        }
        offset += 5 + len + 8;
        frames.push(Frame {
            tag,
            payload,
            end_offset: offset,
        });
    }
    let valid_len = frames.last().map_or(HEADER_LEN, |f| f.end_offset);
    ScanOutcome {
        frames,
        valid_len,
        truncated: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<u8> {
        let mut bytes = header_bytes();
        bytes.extend_from_slice(&frame_bytes(TAG_MANIFEST, b"{\"m\":1}"));
        bytes.extend_from_slice(&frame_bytes(TAG_CHECKPOINT, b"{\"c\":1}"));
        bytes.extend_from_slice(&frame_bytes(TAG_CHECKPOINT, b"{\"c\":2}"));
        bytes
    }

    #[test]
    fn round_trips_intact_logs() {
        let bytes = sample_log();
        let scan = scan(&bytes);
        assert!(!scan.truncated);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0].tag, TAG_MANIFEST);
        assert_eq!(scan.frames[1].payload, b"{\"c\":1}");
        assert_eq!(scan.frames[2].end_offset, bytes.len());
    }

    #[test]
    fn every_truncation_yields_an_intact_prefix() {
        let bytes = sample_log();
        let full = scan(&bytes);
        for cut in 0..bytes.len() {
            let partial = scan(&bytes[..cut]);
            assert!(partial.frames.len() <= full.frames.len());
            // Every surviving frame is byte-identical to the original.
            for (kept, original) in partial.frames.iter().zip(&full.frames) {
                assert_eq!(kept, original, "cut at {cut}");
            }
            // A cut strictly inside the buffer is always reported torn
            // unless it lands exactly on a frame boundary.
            let on_boundary =
                cut == 0 || cut == HEADER_LEN || full.frames.iter().any(|f| f.end_offset == cut);
            assert_eq!(partial.truncated, !on_boundary && cut > 0, "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_bytes_never_extend_the_prefix() {
        let bytes = sample_log();
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x5a;
            let scanned = scan(&evil);
            // Corruption can only lose frames, never invent them.
            assert!(scanned.frames.len() <= 3, "flip at {i}");
            assert!(scanned.valid_len <= bytes.len());
        }
    }

    #[test]
    fn unknown_tags_stop_the_scan() {
        let mut bytes = header_bytes();
        bytes.extend_from_slice(&frame_bytes(TAG_MANIFEST, b"{}"));
        bytes.extend_from_slice(&frame_bytes(b'Z', b"{}"));
        let scanned = scan(&bytes);
        assert_eq!(scanned.frames.len(), 1);
        assert!(scanned.truncated);
    }
}
