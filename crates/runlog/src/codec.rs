//! JSON codecs for the frame payload building blocks: solver events,
//! run statistics and phase labels.
//!
//! Everything round-trips *bit-for-bit*: floats go through
//! [`json::number`] (shortest representation that re-parses to the same
//! bits; non-finite encoded as `null`, decoded back to `NaN`), so a
//! replayed event prefix reproduces the original observer stream
//! exactly — the foundation of the resume determinism contract.

use unsnap_core::session::{EventLog, Phase, SolveEvent};
use unsnap_core::solver::RunStats;
use unsnap_obs::json::{self, JsonObject};
use unsnap_obs::reader::JsonValue;

/// Parse a phase from its snake_case wire label.
pub fn phase_from_label(label: &str) -> Result<Phase, String> {
    Phase::all()
        .into_iter()
        .find(|p| p.label() == label)
        .ok_or_else(|| format!("unknown phase label {label:?}"))
}

/// Encode one solver event as a compact JSON object.
pub fn event_to_json(event: &SolveEvent) -> String {
    match *event {
        SolveEvent::OuterStart { outer } => JsonObject::new()
            .field_str("t", "outer_start")
            .field_usize("outer", outer)
            .finish(),
        SolveEvent::OuterEnd { outer, converged } => JsonObject::new()
            .field_str("t", "outer_end")
            .field_usize("outer", outer)
            .field_bool("converged", converged)
            .finish(),
        SolveEvent::InnerIteration {
            inner,
            relative_change,
        } => JsonObject::new()
            .field_str("t", "inner")
            .field_usize("inner", inner)
            .field_f64("change", relative_change)
            .finish(),
        SolveEvent::Sweep {
            sweep,
            cells,
            seconds,
        } => JsonObject::new()
            .field_str("t", "sweep")
            .field_usize("sweep", sweep)
            .field_u64("cells", cells)
            .field_f64("seconds", seconds)
            .finish(),
        SolveEvent::SweepBucket {
            angle,
            bucket,
            tasks,
        } => JsonObject::new()
            .field_str("t", "sweep_bucket")
            .field_usize("angle", angle)
            .field_usize("bucket", bucket)
            .field_u64("tasks", tasks)
            .finish(),
        SolveEvent::KrylovResidual {
            iteration,
            relative_residual,
        } => JsonObject::new()
            .field_str("t", "krylov")
            .field_usize("iteration", iteration)
            .field_f64("residual", relative_residual)
            .finish(),
        SolveEvent::AccelResidual {
            iteration,
            relative_residual,
        } => JsonObject::new()
            .field_str("t", "accel")
            .field_usize("iteration", iteration)
            .field_f64("residual", relative_residual)
            .finish(),
        SolveEvent::PhaseStart { phase } => JsonObject::new()
            .field_str("t", "phase_start")
            .field_str("phase", phase.label())
            .finish(),
        SolveEvent::PhaseEnd { phase, seconds } => JsonObject::new()
            .field_str("t", "phase_end")
            .field_str("phase", phase.label())
            .field_f64("seconds", seconds)
            .finish(),
        SolveEvent::HaloExchange {
            iteration,
            faces,
            bytes,
        } => JsonObject::new()
            .field_str("t", "halo")
            .field_usize("iteration", iteration)
            .field_usize("faces", faces)
            .field_u64("bytes", bytes)
            .finish(),
        SolveEvent::Rank { rank, ref event } => JsonObject::new()
            .field_str("t", "rank")
            .field_usize("rank", rank)
            .field_raw("e", &event_to_json(event))
            .finish(),
    }
}

/// Encode an event log as a JSON array.
pub fn events_to_json(log: &EventLog) -> String {
    let rendered: Vec<String> = log.events.iter().map(event_to_json).collect();
    json::array_raw(rendered)
}

fn str_of<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("event field {key:?} missing or not a string"))
}

fn usize_of(value: &JsonValue, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("event field {key:?} missing or not a non-negative integer"))
}

fn u64_of(value: &JsonValue, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("event field {key:?} missing or not a non-negative integer"))
}

fn bool_of(value: &JsonValue, key: &str) -> Result<bool, String> {
    value
        .get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("event field {key:?} missing or not a boolean"))
}

/// A float field; `null` decodes to `NaN` (the writer's encoding of
/// non-finite values).
fn f64_of(value: &JsonValue, key: &str) -> Result<f64, String> {
    match value.get(key) {
        Some(JsonValue::Number(n)) => Ok(*n),
        Some(JsonValue::Null) => Ok(f64::NAN),
        _ => Err(format!("event field {key:?} missing or not a number")),
    }
}

/// Decode one solver event from its parsed JSON object.
pub fn event_from_json(value: &JsonValue) -> Result<SolveEvent, String> {
    let tag = str_of(value, "t")?;
    match tag {
        "outer_start" => Ok(SolveEvent::OuterStart {
            outer: usize_of(value, "outer")?,
        }),
        "outer_end" => Ok(SolveEvent::OuterEnd {
            outer: usize_of(value, "outer")?,
            converged: bool_of(value, "converged")?,
        }),
        "inner" => Ok(SolveEvent::InnerIteration {
            inner: usize_of(value, "inner")?,
            relative_change: f64_of(value, "change")?,
        }),
        "sweep" => Ok(SolveEvent::Sweep {
            sweep: usize_of(value, "sweep")?,
            cells: u64_of(value, "cells")?,
            seconds: f64_of(value, "seconds")?,
        }),
        "sweep_bucket" => Ok(SolveEvent::SweepBucket {
            angle: usize_of(value, "angle")?,
            bucket: usize_of(value, "bucket")?,
            tasks: u64_of(value, "tasks")?,
        }),
        "krylov" => Ok(SolveEvent::KrylovResidual {
            iteration: usize_of(value, "iteration")?,
            relative_residual: f64_of(value, "residual")?,
        }),
        "accel" => Ok(SolveEvent::AccelResidual {
            iteration: usize_of(value, "iteration")?,
            relative_residual: f64_of(value, "residual")?,
        }),
        "phase_start" => Ok(SolveEvent::PhaseStart {
            phase: phase_from_label(str_of(value, "phase")?)?,
        }),
        "phase_end" => Ok(SolveEvent::PhaseEnd {
            phase: phase_from_label(str_of(value, "phase")?)?,
            seconds: f64_of(value, "seconds")?,
        }),
        "halo" => Ok(SolveEvent::HaloExchange {
            iteration: usize_of(value, "iteration")?,
            faces: usize_of(value, "faces")?,
            bytes: u64_of(value, "bytes")?,
        }),
        "rank" => {
            let inner = value
                .get("e")
                .ok_or_else(|| "rank event missing field \"e\"".to_string())?;
            let event = event_from_json(inner)?;
            if matches!(
                event,
                SolveEvent::Rank { .. } | SolveEvent::HaloExchange { .. }
            ) {
                return Err("rank event wraps a non-rankable event".to_string());
            }
            Ok(SolveEvent::Rank {
                rank: usize_of(value, "rank")?,
                event: Box::new(event),
            })
        }
        other => Err(format!("unknown event tag {other:?}")),
    }
}

/// Decode an event array into a fresh [`EventLog`].
pub fn events_from_json(value: &JsonValue) -> Result<EventLog, String> {
    let items = value
        .as_array()
        .ok_or_else(|| "events must be an array".to_string())?;
    let mut log = EventLog::default();
    for item in items {
        log.events.push(event_from_json(item)?);
    }
    Ok(log)
}

/// Encode accumulated run statistics.
pub fn stats_to_json(stats: &RunStats) -> String {
    JsonObject::new()
        .field_usize("inner_iterations", stats.inner_iterations)
        .field_usize("sweeps", stats.sweeps)
        .field_f64("sweep_seconds", stats.sweep_seconds)
        .field_u64("assemble_ns", stats.kernel_timing.assemble_ns)
        .field_u64("solve_ns", stats.kernel_timing.solve_ns)
        .field_u64("kernel_invocations", stats.kernel_invocations)
        .field_f64_array("convergence_history", &stats.convergence_history)
        .field_usize("krylov_iterations", stats.krylov_iterations)
        .field_f64_array("krylov_residual_history", &stats.krylov_residual_history)
        .field_usize("accel_cg_iterations", stats.accel_cg_iterations)
        .field_f64_array("accel_residual_history", &stats.accel_residual_history)
        .finish()
}

/// A float-array field; `null` entries decode to `NaN`.
pub fn f64_array_of(value: &JsonValue, key: &str) -> Result<Vec<f64>, String> {
    let items = value
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("field {key:?} missing or not an array"))?;
    items
        .iter()
        .map(|item| match item {
            JsonValue::Number(n) => Ok(*n),
            JsonValue::Null => Ok(f64::NAN),
            _ => Err(format!("field {key:?} holds a non-numeric element")),
        })
        .collect()
}

/// Decode accumulated run statistics.
pub fn stats_from_json(value: &JsonValue) -> Result<RunStats, String> {
    let mut stats = RunStats {
        inner_iterations: usize_of(value, "inner_iterations")?,
        sweeps: usize_of(value, "sweeps")?,
        sweep_seconds: f64_of(value, "sweep_seconds")?,
        kernel_timing: Default::default(),
        kernel_invocations: u64_of(value, "kernel_invocations")?,
        convergence_history: f64_array_of(value, "convergence_history")?,
        krylov_iterations: usize_of(value, "krylov_iterations")?,
        krylov_residual_history: f64_array_of(value, "krylov_residual_history")?,
        accel_cg_iterations: usize_of(value, "accel_cg_iterations")?,
        accel_residual_history: f64_array_of(value, "accel_residual_history")?,
    };
    stats.kernel_timing.assemble_ns = u64_of(value, "assemble_ns")?;
    stats.kernel_timing.solve_ns = u64_of(value, "solve_ns")?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_obs::reader;

    fn sample_events() -> Vec<SolveEvent> {
        vec![
            SolveEvent::PhaseStart {
                phase: Phase::Preassembly,
            },
            SolveEvent::PhaseEnd {
                phase: Phase::Preassembly,
                seconds: 0.25,
            },
            SolveEvent::OuterStart { outer: 0 },
            SolveEvent::Sweep {
                sweep: 1,
                cells: 123_456,
                seconds: 1.5e-3,
            },
            SolveEvent::SweepBucket {
                angle: 2,
                bucket: 7,
                tasks: 4096,
            },
            SolveEvent::InnerIteration {
                inner: 1,
                relative_change: 0.1 + 0.2,
            },
            SolveEvent::KrylovResidual {
                iteration: 3,
                relative_residual: 1e-9,
            },
            SolveEvent::AccelResidual {
                iteration: 2,
                relative_residual: f64::NAN,
            },
            SolveEvent::HaloExchange {
                iteration: 0,
                faces: 12,
                bytes: 9216,
            },
            SolveEvent::Rank {
                rank: 3,
                event: Box::new(SolveEvent::OuterEnd {
                    outer: 0,
                    converged: true,
                }),
            },
            SolveEvent::OuterEnd {
                outer: 0,
                converged: false,
            },
        ]
    }

    #[test]
    fn events_round_trip_bit_for_bit() {
        let log = EventLog {
            events: sample_events(),
        };
        let text = events_to_json(&log);
        let parsed = reader::parse(&text).expect("valid JSON");
        let back = events_from_json(&parsed).expect("decodes");
        assert_eq!(back.events.len(), log.events.len());
        for (a, b) in log.events.iter().zip(&back.events) {
            // NaN != NaN, so compare through the encoder.
            assert_eq!(event_to_json(a), event_to_json(b));
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = RunStats {
            inner_iterations: 17,
            sweeps: 34,
            sweep_seconds: 0.125,
            kernel_timing: unsnap_core::kernel::KernelTiming {
                assemble_ns: 1_000_000_007,
                solve_ns: 998_244_353,
            },
            kernel_invocations: 1 << 40,
            convergence_history: vec![1.0, 0.5, 1.0 / 3.0],
            krylov_iterations: 5,
            krylov_residual_history: vec![1e-1, 1e-5],
            accel_cg_iterations: 9,
            accel_residual_history: vec![f64::INFINITY],
        };
        let text = stats_to_json(&stats);
        let parsed = reader::parse(&text).expect("valid JSON");
        let back = stats_from_json(&parsed).expect("decodes");
        assert_eq!(back.inner_iterations, 17);
        assert_eq!(back.kernel_timing.assemble_ns, 1_000_000_007);
        assert_eq!(back.kernel_invocations, 1 << 40);
        assert_eq!(back.convergence_history, stats.convergence_history);
        // inf encodes as null and decodes as NaN — lossy by design.
        assert!(back.accel_residual_history[0].is_nan());
    }

    #[test]
    fn rejects_malformed_events() {
        for bad in [
            "{}",
            "{\"t\":\"nope\"}",
            "{\"t\":\"outer_start\"}",
            "{\"t\":\"outer_start\",\"outer\":-1}",
            "{\"t\":\"phase_start\",\"phase\":\"warp\"}",
            "{\"t\":\"rank\",\"rank\":0}",
            "{\"t\":\"rank\",\"rank\":0,\"e\":{\"t\":\"halo\",\"iteration\":0,\"faces\":0,\"bytes\":0}}",
        ] {
            let parsed = reader::parse(bad).expect("valid JSON");
            assert!(event_from_json(&parsed).is_err(), "accepted {bad}");
        }
    }
}
