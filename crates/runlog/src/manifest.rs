//! The manifest frame: frame 0 of every run log.
//!
//! It pins the exact problem (canonical wire JSON plus its FNV-1a
//! hash), the iteration strategy and the execution mode (single-domain
//! or block-Jacobi with its process grid), so a resume can verify it is
//! continuing *the same run* before restoring any state.

use unsnap_core::problem::Problem;
use unsnap_core::wire;
use unsnap_obs::json::JsonObject;
use unsnap_obs::reader::JsonValue;

use crate::frame::FORMAT_VERSION;

/// How the logged run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// One [`TransportSolver`](unsnap_core::solver::TransportSolver)
    /// over the whole mesh.
    Single,
    /// A [`BlockJacobiSolver`](unsnap_comm::jacobi::BlockJacobiSolver)
    /// over an `npx × npy` process grid.
    Jacobi {
        /// Subdomain count along x.
        npx: usize,
        /// Subdomain count along y.
        npy: usize,
    },
}

impl RunMode {
    /// The wire label (`"single"` / `"jacobi"`).
    pub fn label(self) -> &'static str {
        match self {
            RunMode::Single => "single",
            RunMode::Jacobi { .. } => "jacobi",
        }
    }
}

/// The decoded manifest frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The problem being solved, rebuilt from its canonical wire form.
    pub problem: Problem,
    /// `problem.canonical_hash()`, as stored in the frame.
    pub problem_hash: u64,
    /// Execution mode of the logged run.
    pub mode: RunMode,
}

impl Manifest {
    /// A manifest pinning `problem` under `mode`.
    pub fn new(problem: Problem, mode: RunMode) -> Self {
        let problem_hash = problem.canonical_hash();
        Self {
            problem,
            problem_hash,
            mode,
        }
    }

    /// Encode as the manifest frame payload.
    ///
    /// Hashes are serialised as 16-digit hex *strings*: the JSON reader
    /// parses numbers as `f64`, which cannot hold a full `u64`.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .field_usize("format_version", FORMAT_VERSION as usize)
            .field_str("mode", self.mode.label());
        if let RunMode::Jacobi { npx, npy } = self.mode {
            obj = obj.field_usize("npx", npx).field_usize("npy", npy);
        }
        obj.field_str("strategy", self.problem.strategy.label())
            .field_raw("problem", &wire::problem_to_json(&self.problem))
            .field_str("problem_hash", &format!("{:016x}", self.problem_hash))
            .finish()
    }

    /// Decode a manifest frame payload, verifying the stored problem
    /// hash against a recomputed `canonical_hash()`.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let version = value
            .get("format_version")
            .and_then(JsonValue::as_usize)
            .ok_or("manifest missing format_version")?;
        if version != FORMAT_VERSION as usize {
            return Err(format!(
                "unsupported run-log format version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let mode = match value.get("mode").and_then(JsonValue::as_str) {
            Some("single") => RunMode::Single,
            Some("jacobi") => RunMode::Jacobi {
                npx: value
                    .get("npx")
                    .and_then(JsonValue::as_usize)
                    .ok_or("jacobi manifest missing npx")?,
                npy: value
                    .get("npy")
                    .and_then(JsonValue::as_usize)
                    .ok_or("jacobi manifest missing npy")?,
            },
            other => return Err(format!("manifest mode {other:?} unknown")),
        };
        let problem_value = value.get("problem").ok_or("manifest missing problem")?;
        let problem = wire::problem_from_json_str(&problem_value.to_string())
            .map_err(|e| format!("manifest problem does not build: {e}"))?;
        let stored = value
            .get("problem_hash")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing problem_hash")?;
        let stored =
            u64::from_str_radix(stored, 16).map_err(|e| format!("bad problem_hash: {e}"))?;
        let recomputed = problem.canonical_hash();
        if stored != recomputed {
            return Err(format!(
                "manifest hash mismatch: stored {stored:016x}, recomputed {recomputed:016x}"
            ));
        }
        Ok(Self {
            problem,
            problem_hash: stored,
            mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_obs::reader;

    #[test]
    fn single_manifest_round_trips() {
        let problem = Problem::tiny();
        let manifest = Manifest::new(problem.clone(), RunMode::Single);
        let parsed = reader::parse(&manifest.to_json()).expect("valid JSON");
        let back = Manifest::from_json(&parsed).expect("decodes");
        assert_eq!(back, manifest);
        assert_eq!(back.problem, problem);
    }

    #[test]
    fn jacobi_manifest_keeps_the_grid() {
        let manifest = Manifest::new(Problem::tiny(), RunMode::Jacobi { npx: 2, npy: 3 });
        let parsed = reader::parse(&manifest.to_json()).expect("valid JSON");
        let back = Manifest::from_json(&parsed).expect("decodes");
        assert_eq!(back.mode, RunMode::Jacobi { npx: 2, npy: 3 });
    }

    #[test]
    fn tampered_problems_fail_the_hash_check() {
        let manifest = Manifest::new(Problem::tiny(), RunMode::Single);
        let tampered = manifest.to_json().replace("\"nx\":3", "\"nx\":4");
        assert_ne!(
            tampered,
            manifest.to_json(),
            "fixture must actually edit nx"
        );
        let parsed = reader::parse(&tampered).expect("valid JSON");
        let err = Manifest::from_json(&parsed).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
    }
}
