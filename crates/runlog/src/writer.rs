//! The write side: [`CheckpointObserver`] streams a solve into a run
//! log.
//!
//! The observer plays two roles at once — it listens to the full
//! [`RunObserver`] stream (buffering events since the last frame as a
//! *delta*), and it acts as the checkpoint sink that serialises solver
//! state at outer-iteration boundaries.  Rust cannot lend one value
//! mutably through two parameters, so the two roles share state through
//! an `Rc<RefCell<…>>`: the observer half is passed as the observer (or
//! inside a [`TeeObserver`](unsnap_core::session::TeeObserver)), and
//! [`CheckpointObserver::sink`] hands out the sink half.  Every hook
//! fires synchronously on the driver thread, so the single-threaded
//! `RefCell` is sound.
//!
//! Frames are flushed as written: after a crash at *any* byte, the log
//! holds a valid prefix ending at the last flushed frame, which is
//! exactly what [`recover`](crate::recover::recover) restores.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use std::rc::Rc;

use unsnap_comm::jacobi::{JacobiCheckpointSink, JacobiCheckpointView};
use unsnap_core::error::{Error, Result};
use unsnap_core::problem::Problem;
use unsnap_core::session::{EventLog, Phase, RunObserver};
use unsnap_core::solver::{CheckpointSink, CheckpointView};
use unsnap_obs::json::JsonObject;

use crate::checkpoint;
use crate::frame::{self, TAG_CHECKPOINT, TAG_FINISHED, TAG_MANIFEST};
use crate::manifest::{Manifest, RunMode};
use crate::recover;

fn io_error(context: &str, err: std::io::Error) -> Error {
    Error::Execution {
        reason: format!("run log {context}: {err}"),
    }
}

struct CkInner {
    writer: Box<dyn Write>,
    /// Events since the last written frame.
    delta: EventLog,
    /// Prefix events replayed into this observer on resume; dropped
    /// from the front of the delta at the next frame write so already
    /// persisted events are not written twice.
    skip: usize,
    /// Write a checkpoint frame every `every` outer iterations.
    every: usize,
    /// The problem's outer-iteration budget (exhaustion finishes the
    /// run even without convergence).
    outer_iterations: usize,
    mode: RunMode,
    finished: bool,
}

impl CkInner {
    fn write_frame(&mut self, tag: u8, payload: &[u8]) -> Result<()> {
        let bytes = frame::frame_bytes(tag, payload);
        self.writer
            .write_all(&bytes)
            .map_err(|e| io_error("frame write failed", e))?;
        self.writer.flush().map_err(|e| io_error("flush failed", e))
    }

    /// Take the buffered delta, dropping any still-pending resume
    /// prefix from its front.
    fn drain_delta(&mut self) -> EventLog {
        let skip = std::mem::take(&mut self.skip);
        let mut delta = std::mem::take(&mut self.delta);
        if skip > 0 {
            delta.events.drain(..skip.min(delta.events.len()));
        }
        delta
    }

    fn finished_payload(outer_completed: usize, converged: bool) -> String {
        JsonObject::new()
            .field_usize("outer_completed", outer_completed)
            .field_bool("converged", converged)
            .finish()
    }

    fn checkpoint_single(&mut self, view: &CheckpointView<'_>) -> Result<()> {
        if self.mode != RunMode::Single {
            return Err(Error::Execution {
                reason: "run log was opened for a block-Jacobi run but received a \
                         single-domain checkpoint"
                    .into(),
            });
        }
        if self.finished {
            return Ok(());
        }
        if view.converged || view.outer_completed + 1 == self.outer_iterations {
            self.drain_delta();
            let payload = Self::finished_payload(view.outer_completed, view.converged);
            self.write_frame(TAG_FINISHED, payload.as_bytes())?;
            self.finished = true;
        } else if (view.outer_completed + 1).is_multiple_of(self.every) {
            let events = self.drain_delta();
            let payload = checkpoint::single_to_json(view, &events);
            self.write_frame(TAG_CHECKPOINT, payload.as_bytes())?;
        }
        Ok(())
    }

    fn checkpoint_jacobi(&mut self, view: &JacobiCheckpointView<'_>) -> Result<()> {
        if !matches!(self.mode, RunMode::Jacobi { .. }) {
            return Err(Error::Execution {
                reason: "run log was opened for a single-domain run but received a \
                         block-Jacobi checkpoint"
                    .into(),
            });
        }
        if self.finished {
            return Ok(());
        }
        if view.converged || view.outer_completed + 1 == self.outer_iterations {
            self.drain_delta();
            let payload = Self::finished_payload(view.outer_completed, view.converged);
            self.write_frame(TAG_FINISHED, payload.as_bytes())?;
            self.finished = true;
        } else if (view.outer_completed + 1).is_multiple_of(self.every) {
            let events = self.drain_delta();
            let payload = checkpoint::jacobi_to_json(view, &events);
            self.write_frame(TAG_CHECKPOINT, payload.as_bytes())?;
        }
        Ok(())
    }
}

/// A [`RunObserver`] that persists the solve into a run log.
///
/// Pass the observer itself (usually teed with the caller's own
/// observer) to `run_observed_checkpointed` / `run_checkpointed`, and
/// pass [`CheckpointObserver::sink`] as the checkpoint sink of the same
/// call.
pub struct CheckpointObserver {
    inner: Rc<RefCell<CkInner>>,
}

/// The sink half of a [`CheckpointObserver`]; implements both the
/// single-domain and the block-Jacobi sink traits.
pub struct CheckpointSinkHandle {
    inner: Rc<RefCell<CkInner>>,
}

impl CheckpointObserver {
    /// Start a fresh run log on an arbitrary writer (the test seam:
    /// pair it with [`FaultyWriter`](crate::fault::FaultyWriter) or
    /// [`SharedBuffer`](crate::fault::SharedBuffer)).
    ///
    /// Writes the header and the manifest frame immediately, so even a
    /// run that crashes before its first checkpoint leaves a
    /// recoverable (empty) log.
    pub fn with_writer(
        mut writer: Box<dyn Write>,
        problem: &Problem,
        mode: RunMode,
        every: usize,
    ) -> Result<Self> {
        if every == 0 {
            return Err(Error::invalid_problem(
                "checkpoint_iters",
                "checkpoint cadence must be at least 1",
            ));
        }
        let manifest = Manifest::new(problem.clone(), mode);
        writer
            .write_all(&frame::header_bytes())
            .map_err(|e| io_error("header write failed", e))?;
        let inner = Rc::new(RefCell::new(CkInner {
            writer,
            delta: EventLog::default(),
            skip: 0,
            every,
            outer_iterations: problem.outer_iterations,
            mode,
            finished: false,
        }));
        inner
            .borrow_mut()
            .write_frame(TAG_MANIFEST, manifest.to_json().as_bytes())?;
        Ok(Self { inner })
    }

    /// Start a fresh run log at `path` (truncating any existing file).
    pub fn create(
        path: impl AsRef<Path>,
        problem: &Problem,
        mode: RunMode,
        every: usize,
    ) -> Result<Self> {
        let file = File::create(path.as_ref()).map_err(|e| io_error("create failed", e))?;
        Self::with_writer(Box::new(file), problem, mode, every)
    }

    /// Re-open an interrupted run log for append.
    ///
    /// The torn tail (if any) is physically truncated away, and the
    /// observer arms itself to *skip* the recovered event prefix: the
    /// resume path replays that prefix into every observer (so caller
    /// streams are bit-for-bit complete), but those events are already
    /// persisted in earlier frames and must not be written twice.
    ///
    /// Fails on a completed log — there is nothing left to append, and
    /// re-running the tail would duplicate frames.
    pub fn resume(path: impl AsRef<Path>, every: usize) -> Result<Self> {
        let path = path.as_ref();
        let recovered = recover::recover(path)?;
        if recovered.completed {
            return Err(Error::Execution {
                reason: format!(
                    "run log {} records a completed run; nothing to resume",
                    path.display()
                ),
            });
        }
        if every == 0 {
            return Err(Error::invalid_problem(
                "checkpoint_iters",
                "checkpoint cadence must be at least 1",
            ));
        }
        let prefix_events = recovered
            .single
            .as_ref()
            .map(|p| p.prefix.events.len())
            .or_else(|| recovered.jacobi.as_ref().map(|p| p.prefix.events.len()))
            .unwrap_or(0);
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_error("open for append failed", e))?;
        file.set_len(recovered.valid_len)
            .map_err(|e| io_error("truncate failed", e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_error("seek failed", e))?;
        Ok(Self {
            inner: Rc::new(RefCell::new(CkInner {
                writer: Box::new(file),
                delta: EventLog::default(),
                skip: prefix_events,
                every,
                outer_iterations: recovered.manifest.problem.outer_iterations,
                mode: recovered.manifest.mode,
                finished: false,
            })),
        })
    }

    /// The checkpoint-sink half, sharing this observer's state.
    pub fn sink(&self) -> CheckpointSinkHandle {
        CheckpointSinkHandle {
            inner: Rc::clone(&self.inner),
        }
    }

    /// `true` once a finished frame has been written.
    pub fn finished(&self) -> bool {
        self.inner.borrow().finished
    }
}

impl RunObserver for CheckpointObserver {
    fn on_outer_start(&mut self, outer: usize) {
        self.inner.borrow_mut().delta.on_outer_start(outer);
    }

    fn on_outer_end(&mut self, outer: usize, converged: bool) {
        self.inner.borrow_mut().delta.on_outer_end(outer, converged);
    }

    fn on_inner_iteration(&mut self, inner: usize, relative_change: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_inner_iteration(inner, relative_change);
    }

    fn on_sweep(&mut self, sweep: usize, cells: u64, seconds: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_sweep(sweep, cells, seconds);
    }

    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        self.inner
            .borrow_mut()
            .delta
            .on_sweep_bucket(angle, bucket, tasks);
    }

    fn on_krylov_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_krylov_residual(iteration, relative_residual);
    }

    fn on_accel_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_accel_residual(iteration, relative_residual);
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.inner.borrow_mut().delta.on_phase_start(phase);
    }

    fn on_phase_end(&mut self, phase: Phase, seconds: f64) {
        self.inner.borrow_mut().delta.on_phase_end(phase, seconds);
    }

    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        self.inner
            .borrow_mut()
            .delta
            .on_halo_exchange(iteration, faces, bytes);
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_outer_start(rank, outer);
    }

    fn on_rank_outer_end(&mut self, rank: usize, outer: usize, converged: bool) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_outer_end(rank, outer, converged);
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, inner: usize, relative_change: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_inner_iteration(rank, inner, relative_change);
    }

    fn on_rank_sweep(&mut self, rank: usize, sweep: usize, cells: u64, seconds: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_sweep(rank, sweep, cells, seconds);
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_sweep_bucket(rank, angle, bucket, tasks);
    }

    fn on_rank_krylov_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_krylov_residual(rank, iteration, relative_residual);
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, relative_residual: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_accel_residual(rank, iteration, relative_residual);
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_phase_start(rank, phase);
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, seconds: f64) {
        self.inner
            .borrow_mut()
            .delta
            .on_rank_phase_end(rank, phase, seconds);
    }
}

impl CheckpointSink for CheckpointSinkHandle {
    fn on_checkpoint(&mut self, view: &CheckpointView<'_>) -> Result<()> {
        self.inner.borrow_mut().checkpoint_single(view)
    }
}

impl JacobiCheckpointSink for CheckpointSinkHandle {
    fn on_checkpoint(&mut self, view: &JacobiCheckpointView<'_>) -> Result<()> {
        self.inner.borrow_mut().checkpoint_jacobi(view)
    }
}
