//! The read side: scan a run log, discard the torn tail, and rebuild
//! resume state.
//!
//! Recovery is a straight-line state machine over the frame stream:
//!
//! ```text
//!   header ──ok──▶ expect manifest ──'M'──▶ collect checkpoints
//!     │                  │                    │        │
//!    bad              not 'M'            'C' frame  'F' frame
//!     │                  │                (decode,   (mark run
//!     ▼                  ▼                 append)    completed)
//!    Err                Err                   │
//!                                     first defect: stop, keep
//!                                     the intact prefix, report
//!                                     `truncated`
//! ```
//!
//! The resume point is the *last* intact checkpoint; the replay prefix
//! is the concatenation of every intact checkpoint's event delta.  A
//! log whose tail is torn mid-frame simply resumes one checkpoint
//! earlier — a torn frame is never accepted, and arbitrary input is
//! never a panic (the durability suite proves both at every byte
//! offset).

use std::path::Path;

use unsnap_comm::jacobi::JacobiResumePoint;
use unsnap_core::error::{Error, Result};
use unsnap_core::solver::ResumePoint;
use unsnap_obs::reader;

use crate::checkpoint;
use crate::frame::{self, TAG_CHECKPOINT, TAG_FINISHED, TAG_MANIFEST};
use crate::manifest::{Manifest, RunMode};

/// Everything recovered from one run log.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The decoded, hash-verified manifest.
    pub manifest: Manifest,
    /// Number of intact checkpoint frames.
    pub checkpoints: usize,
    /// `true` when a finished frame survived — the run completed and
    /// there is nothing to resume.
    pub completed: bool,
    /// Length in bytes of the valid prefix (header + intact frames);
    /// re-opening for append truncates the file to this.
    pub valid_len: u64,
    /// `true` when a torn tail was discarded.
    pub truncated: bool,
    /// Resume state for a single-domain log with ≥ 1 checkpoint.
    pub single: Option<ResumePoint>,
    /// Resume state for a block-Jacobi log with ≥ 1 checkpoint.
    pub jacobi: Option<JacobiResumePoint>,
}

fn decode_error(frame_index: usize, detail: String) -> Error {
    Error::Execution {
        reason: format!("run log frame {frame_index} is checksummed but undecodable: {detail}"),
    }
}

/// Recover from an in-memory log image (the pure core of [`recover`]).
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovered> {
    let scan = frame::scan(bytes);
    if !frame::header_ok(bytes) {
        return Err(Error::Execution {
            reason: "not an UnSNAP run log (missing or damaged header)".into(),
        });
    }
    let mut frames = scan.frames.iter();
    let Some(first) = frames.next() else {
        return Err(Error::Execution {
            reason: "run log holds no intact manifest frame".into(),
        });
    };
    if first.tag != TAG_MANIFEST {
        return Err(Error::Execution {
            reason: format!(
                "run log opens with frame tag {:?}, expected the manifest",
                first.tag as char
            ),
        });
    }
    let manifest_text = std::str::from_utf8(first.payload)
        .map_err(|e| decode_error(0, format!("manifest is not UTF-8: {e}")))?;
    let manifest_value =
        reader::parse(manifest_text).map_err(|e| decode_error(0, format!("bad JSON: {e}")))?;
    let manifest = Manifest::from_json(&manifest_value).map_err(|e| decode_error(0, e))?;

    let mut completed = false;
    let mut singles = Vec::new();
    let mut jacobis = Vec::new();
    for (index, f) in frames.enumerate() {
        match f.tag {
            TAG_FINISHED => {
                completed = true;
            }
            TAG_CHECKPOINT => {
                let text = std::str::from_utf8(f.payload)
                    .map_err(|e| decode_error(index + 1, format!("not UTF-8: {e}")))?;
                let value = reader::parse(text)
                    .map_err(|e| decode_error(index + 1, format!("bad JSON: {e}")))?;
                match manifest.mode {
                    RunMode::Single => singles.push(
                        checkpoint::single_from_json(&value)
                            .map_err(|e| decode_error(index + 1, e))?,
                    ),
                    RunMode::Jacobi { .. } => jacobis.push(
                        checkpoint::jacobi_from_json(&value)
                            .map_err(|e| decode_error(index + 1, e))?,
                    ),
                }
            }
            // `scan` only yields known tags; the manifest tag mid-file
            // would mean two manifests — treat as undecodable.
            _ => {
                return Err(decode_error(
                    index + 1,
                    format!("unexpected frame tag {:?}", f.tag as char),
                ))
            }
        }
    }
    let checkpoints = singles.len() + jacobis.len();
    Ok(Recovered {
        manifest,
        checkpoints,
        completed,
        valid_len: scan.valid_len as u64,
        truncated: scan.truncated,
        single: checkpoint::fold_single(singles),
        jacobi: checkpoint::fold_jacobi(jacobis),
    })
}

/// Read and recover the run log at `path`.
pub fn recover(path: impl AsRef<Path>) -> Result<Recovered> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| Error::Execution {
        reason: format!("cannot read run log {}: {e}", path.display()),
    })?;
    recover_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_core::problem::Problem;

    fn manifest_only() -> Vec<u8> {
        let manifest = Manifest::new(Problem::tiny(), RunMode::Single);
        let mut bytes = frame::header_bytes();
        bytes.extend_from_slice(&frame::frame_bytes(
            TAG_MANIFEST,
            manifest.to_json().as_bytes(),
        ));
        bytes
    }

    #[test]
    fn a_manifest_only_log_recovers_with_no_resume_point() {
        let bytes = manifest_only();
        let recovered = recover_bytes(&bytes).expect("recovers");
        assert_eq!(recovered.checkpoints, 0);
        assert!(!recovered.completed);
        assert!(!recovered.truncated);
        assert!(recovered.single.is_none());
        assert!(recovered.jacobi.is_none());
        assert_eq!(recovered.valid_len, bytes.len() as u64);
    }

    #[test]
    fn torn_tails_are_errors_or_shorter_prefixes_never_panics() {
        let bytes = manifest_only();
        for cut in 0..bytes.len() {
            // Must not panic; a cut below the manifest end is an error,
            // at the boundary it recovers cleanly.
            let _ = recover_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn a_checkpoint_frame_in_the_wrong_mode_is_an_error() {
        let mut bytes = manifest_only();
        // A jacobi payload in a single-mode log: decodes as JSON but
        // misses the single-checkpoint fields.
        bytes.extend_from_slice(&frame::frame_bytes(TAG_CHECKPOINT, b"{\"outer_next\":1}"));
        let err = recover_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("undecodable"), "{err}");
    }

    #[test]
    fn finished_frames_mark_completion() {
        let mut bytes = manifest_only();
        bytes.extend_from_slice(&frame::frame_bytes(
            TAG_FINISHED,
            b"{\"outer_completed\":3,\"converged\":true}",
        ));
        let recovered = recover_bytes(&bytes).expect("recovers");
        assert!(recovered.completed);
    }
}
