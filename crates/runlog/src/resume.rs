//! Resume entry points: rebuild a solver from a recovered run log and
//! continue it.
//!
//! The determinism contract: a run that checkpoints, crashes and
//! resumes produces a [`SolveOutcome`](unsnap_core::solver::SolveOutcome)
//! — flux, iteration counts, deterministic metrics and observer event
//! stream — bit-for-bit identical to the same run left uninterrupted,
//! at every thread width and on both solver paths.  It holds because a
//! checkpoint captures *exactly* the state that survives an
//! outer-iteration boundary (φ, ψ, accumulated statistics), everything
//! else is deterministically rebuilt, and the persisted event prefix is
//! replayed into the fresh observers before the first resumed
//! iteration.

use std::path::Path;

use unsnap_comm::jacobi::BlockJacobiSolver;
use unsnap_core::error::{Error, Result};
use unsnap_core::session::Session;
use unsnap_mesh::Decomposition2D;

use crate::manifest::RunMode;
use crate::recover::{recover, Recovered};

fn reject_completed(recovered: &Recovered, path: &Path) -> Result<()> {
    if recovered.completed {
        return Err(Error::Execution {
            reason: format!(
                "run log {} records a completed run; re-solve instead of resuming",
                path.display()
            ),
        });
    }
    Ok(())
}

/// Extension constructor: `Session::resume(path)`.
///
/// Import the trait, then call it like an inherent method.  A log with
/// a manifest but no checkpoint yet resumes as a fresh run — by the
/// determinism contract the outcome is identical either way.
pub trait SessionResume: Sized {
    /// Rebuild a single-domain session from the run log at `path`,
    /// positioned to continue from its last intact checkpoint.
    fn resume(path: impl AsRef<Path>) -> Result<Self>;
}

impl SessionResume for Session {
    fn resume(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let recovered = recover(path)?;
        reject_completed(&recovered, path)?;
        if let RunMode::Jacobi { npx, npy } = recovered.manifest.mode {
            return Err(Error::Execution {
                reason: format!(
                    "run log {} records a {npx}x{npy} block-Jacobi run; \
                     use resume_block_jacobi",
                    path.display()
                ),
            });
        }
        let mut session = Session::new(&recovered.manifest.problem)?;
        if let Some(point) = recovered.single {
            session.solver_mut().resume_from(point)?;
        }
        Ok(session)
    }
}

/// Rebuild a block-Jacobi solver from the run log at `path`, positioned
/// to continue from its last intact checkpoint.
pub fn resume_block_jacobi(path: impl AsRef<Path>) -> Result<BlockJacobiSolver> {
    let path = path.as_ref();
    let recovered = recover(path)?;
    reject_completed(&recovered, path)?;
    let RunMode::Jacobi { npx, npy } = recovered.manifest.mode else {
        return Err(Error::Execution {
            reason: format!(
                "run log {} records a single-domain run; use Session::resume",
                path.display()
            ),
        });
    };
    let decomposition = Decomposition2D::try_new(npx, npy).map_err(|e| Error::Execution {
        reason: format!(
            "run log {} names an invalid process grid: {e}",
            path.display()
        ),
    })?;
    let mut solver = BlockJacobiSolver::new(&recovered.manifest.problem, decomposition)?;
    if let Some(point) = recovered.jacobi {
        solver.resume_from(point)?;
    }
    Ok(solver)
}
