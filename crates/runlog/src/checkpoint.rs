//! Checkpoint frame payloads for both execution modes.
//!
//! Each checkpoint frame stores the solver state at an outer-iteration
//! boundary plus the *delta* of observer events emitted since the
//! previous frame was written (the full prefix would make the log
//! quadratic in run length).  Recovery concatenates the deltas of every
//! intact frame to rebuild the exact event prefix for replay.

use unsnap_comm::jacobi::{JacobiCheckpointView, JacobiResumePoint};
use unsnap_core::session::EventLog;
use unsnap_core::solver::{CheckpointView, ResumePoint, RunStats};
use unsnap_obs::json::JsonObject;
use unsnap_obs::reader::JsonValue;

use crate::codec;

/// A decoded single-domain checkpoint frame.
#[derive(Debug, Clone, Default)]
pub struct SingleCheckpoint {
    /// First outer iteration still to run.
    pub outer_next: usize,
    /// Statistics accumulated up to the checkpoint.
    pub stats: RunStats,
    /// Scalar flux φ at the checkpoint.
    pub phi: Vec<f64>,
    /// Angular flux ψ at the checkpoint.
    pub psi: Vec<f64>,
    /// Observer events since the previous frame (delta, not prefix).
    pub events: EventLog,
}

/// A decoded block-Jacobi checkpoint frame.
#[derive(Debug, Clone, Default)]
pub struct JacobiCheckpoint {
    /// First outer iteration still to run.
    pub outer_next: usize,
    /// Inner iterations accumulated across ranks and outers.
    pub inners_run: usize,
    /// Wall-clock sweep seconds accumulated so far.
    pub sweep_seconds: f64,
    /// Per-outer maximum relative flux change so far.
    pub convergence_history: Vec<f64>,
    /// Global scalar flux φ at the checkpoint.
    pub phi: Vec<f64>,
    /// Global angular flux ψ at the checkpoint.
    pub psi: Vec<f64>,
    /// Per-rank accumulated statistics, rank order.
    pub rank_stats: Vec<RunStats>,
    /// Observer events since the previous frame (delta, not prefix).
    pub events: EventLog,
}

/// Encode a single-domain checkpoint payload from the solver's view
/// plus the event delta.
pub fn single_to_json(view: &CheckpointView<'_>, events: &EventLog) -> String {
    JsonObject::new()
        .field_usize("outer_next", view.outer_completed + 1)
        .field_raw("stats", &codec::stats_to_json(view.stats))
        .field_f64_array("phi", view.phi)
        .field_f64_array("psi", view.psi)
        .field_raw("events", &codec::events_to_json(events))
        .finish()
}

/// Decode a single-domain checkpoint payload.
pub fn single_from_json(value: &JsonValue) -> Result<SingleCheckpoint, String> {
    let stats = value.get("stats").ok_or("checkpoint missing stats")?;
    Ok(SingleCheckpoint {
        outer_next: value
            .get("outer_next")
            .and_then(JsonValue::as_usize)
            .ok_or("checkpoint missing outer_next")?,
        stats: codec::stats_from_json(stats)?,
        phi: codec::f64_array_of(value, "phi")?,
        psi: codec::f64_array_of(value, "psi")?,
        events: codec::events_from_json(value.get("events").ok_or("checkpoint missing events")?)?,
    })
}

/// Encode a block-Jacobi checkpoint payload.
pub fn jacobi_to_json(view: &JacobiCheckpointView<'_>, events: &EventLog) -> String {
    let rank_stats: Vec<String> = view
        .rank_stats
        .iter()
        .map(|stats| codec::stats_to_json(stats))
        .collect();
    JsonObject::new()
        .field_usize("outer_next", view.outer_completed + 1)
        .field_usize("inners_run", view.inners_run)
        .field_f64("sweep_seconds", view.sweep_seconds)
        .field_f64_array("convergence_history", view.convergence_history)
        .field_f64_array("phi", view.phi)
        .field_f64_array("psi", view.psi)
        .field_raw("rank_stats", &unsnap_obs::json::array_raw(rank_stats))
        .field_raw("events", &codec::events_to_json(events))
        .finish()
}

/// Decode a block-Jacobi checkpoint payload.
pub fn jacobi_from_json(value: &JsonValue) -> Result<JacobiCheckpoint, String> {
    let rank_stats = value
        .get("rank_stats")
        .and_then(JsonValue::as_array)
        .ok_or("checkpoint missing rank_stats")?
        .iter()
        .map(codec::stats_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(JacobiCheckpoint {
        outer_next: value
            .get("outer_next")
            .and_then(JsonValue::as_usize)
            .ok_or("checkpoint missing outer_next")?,
        inners_run: value
            .get("inners_run")
            .and_then(JsonValue::as_usize)
            .ok_or("checkpoint missing inners_run")?,
        sweep_seconds: value
            .get("sweep_seconds")
            .and_then(JsonValue::as_f64)
            .ok_or("checkpoint missing sweep_seconds")?,
        convergence_history: codec::f64_array_of(value, "convergence_history")?,
        phi: codec::f64_array_of(value, "phi")?,
        psi: codec::f64_array_of(value, "psi")?,
        rank_stats,
        events: codec::events_from_json(value.get("events").ok_or("checkpoint missing events")?)?,
    })
}

/// Fold a list of decoded single-domain checkpoints into the resume
/// point for the *last* one: its state, plus the concatenated event
/// deltas of every checkpoint as the replay prefix.
pub fn fold_single(checkpoints: Vec<SingleCheckpoint>) -> Option<ResumePoint> {
    let mut prefix = EventLog::default();
    let mut last = None;
    for ck in checkpoints {
        prefix.events.extend(ck.events.events);
        last = Some((ck.outer_next, ck.stats, ck.phi, ck.psi));
    }
    let (outer_next, stats, phi, psi) = last?;
    Some(ResumePoint {
        outer_next,
        stats,
        phi,
        psi,
        prefix,
    })
}

/// Fold decoded block-Jacobi checkpoints into the resume point for the
/// last one (see [`fold_single`]).
pub fn fold_jacobi(checkpoints: Vec<JacobiCheckpoint>) -> Option<JacobiResumePoint> {
    let mut prefix = EventLog::default();
    let mut last = None;
    for mut ck in checkpoints {
        prefix.events.extend(std::mem::take(&mut ck.events.events));
        last = Some(ck);
    }
    let last = last?;
    Some(JacobiResumePoint {
        outer_next: last.outer_next,
        inners_run: last.inners_run,
        sweep_seconds: last.sweep_seconds,
        convergence_history: last.convergence_history,
        phi: last.phi,
        psi: last.psi,
        rank_stats: last.rank_stats,
        prefix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_core::session::SolveEvent;
    use unsnap_obs::reader;

    #[test]
    fn single_checkpoint_round_trips() {
        let stats = RunStats {
            inner_iterations: 3,
            convergence_history: vec![0.5, 0.25],
            ..RunStats::default()
        };
        let phi = vec![1.0, 2.5, -0.125];
        let psi = vec![0.1 + 0.2; 6];
        let view = CheckpointView {
            outer_completed: 4,
            converged: false,
            phi: &phi,
            psi: &psi,
            stats: &stats,
        };
        let events = EventLog {
            events: vec![SolveEvent::OuterStart { outer: 4 }],
        };
        let text = single_to_json(&view, &events);
        let parsed = reader::parse(&text).expect("valid JSON");
        let back = single_from_json(&parsed).expect("decodes");
        assert_eq!(back.outer_next, 5);
        assert_eq!(back.phi, phi);
        assert_eq!(back.psi, psi);
        assert_eq!(back.stats.convergence_history, vec![0.5, 0.25]);
        assert_eq!(back.events.events.len(), 1);
    }

    #[test]
    fn folding_concatenates_deltas_and_keeps_the_last_state() {
        let first = SingleCheckpoint {
            outer_next: 1,
            phi: vec![1.0],
            psi: vec![1.0],
            events: EventLog {
                events: vec![SolveEvent::OuterStart { outer: 0 }],
            },
            ..SingleCheckpoint::default()
        };
        let second = SingleCheckpoint {
            outer_next: 2,
            phi: vec![2.0],
            psi: vec![2.0],
            events: EventLog {
                events: vec![SolveEvent::OuterStart { outer: 1 }],
            },
            ..SingleCheckpoint::default()
        };
        let point = fold_single(vec![first, second]).expect("non-empty");
        assert_eq!(point.outer_next, 2);
        assert_eq!(point.phi, vec![2.0]);
        assert_eq!(point.prefix.events.len(), 2);
        assert!(fold_single(Vec::new()).is_none());
    }
}
