//! Fault injection for durability tests: writers that tear mid-write.
//!
//! [`FaultyWriter`] wraps any [`Write`] and fails after a byte budget,
//! optionally completing a *partial* write first — exactly the shape of
//! a crash landing mid-`write(2)`.  It lives in the library proper (not
//! behind `cfg(test)`) so integration tests and the durability smoke
//! binary can inject crashes without killing processes.
//!
//! [`SharedBuffer`] is the matching capture target: a clonable
//! `Vec<u8>` sink whose contents survive the writer being dropped, so a
//! test can inspect exactly which bytes hit "disk" before the crash.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A writer that tears after a fixed number of bytes.
///
/// Bytes up to the budget pass through to the inner writer; the write
/// that crosses the budget is *partially* applied (everything up to the
/// budget) and then reported as failed, and every later write fails
/// immediately.  With no budget the writer is transparent.
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    budget: Option<u64>,
}

impl<W: Write> FaultyWriter<W> {
    /// A transparent pass-through writer (no injected fault).
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            budget: None,
        }
    }

    /// A writer that tears after exactly `n_bytes` bytes have been
    /// written through it.
    pub fn crash_after(inner: W, n_bytes: u64) -> Self {
        Self {
            inner,
            budget: Some(n_bytes),
        }
    }

    /// Consume the wrapper and return the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.budget {
            None => self.inner.write(buf),
            Some(0) => Err(io::Error::other("injected crash: write budget exhausted")),
            Some(remaining) => {
                let allowed = (remaining as usize).min(buf.len());
                let written = self.inner.write(&buf[..allowed])?;
                self.budget = Some(remaining - written as u64);
                if written < buf.len() {
                    // The torn write: part of the buffer landed, the
                    // rest never will.  Report the failure now so the
                    // caller aborts instead of retrying the remainder.
                    Err(io::Error::other("injected crash: torn write"))
                } else {
                    Ok(written)
                }
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A clonable in-memory byte sink; clones share the same buffer.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("shared buffer lock").clone()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("shared buffer lock").len()
    }

    /// `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer lock")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_through_without_a_budget() {
        let mut w = FaultyWriter::new(Vec::new());
        w.write_all(b"hello").unwrap();
        assert_eq!(w.into_inner(), b"hello");
    }

    #[test]
    fn tears_mid_write_and_stays_dead() {
        let sink = SharedBuffer::new();
        let mut w = FaultyWriter::crash_after(sink.clone(), 3);
        assert!(w.write_all(b"hello").is_err());
        assert_eq!(sink.bytes(), b"hel");
        assert!(w.write_all(b"x").is_err());
        assert_eq!(sink.bytes(), b"hel");
    }

    #[test]
    fn exact_budget_fails_only_on_the_next_write() {
        let sink = SharedBuffer::new();
        let mut w = FaultyWriter::crash_after(sink.clone(), 5);
        w.write_all(b"hello").unwrap();
        assert!(w.write_all(b"!").is_err());
        assert_eq!(sink.bytes(), b"hello");
    }
}
