//! Property-based tests for the low-order diffusion operator and the
//! DSA correction solver.
//!
//! Strategy: generate random small meshes (cell counts, twist) and
//! random admissible physics (σ_t per group, scattering ratio), then
//! check the invariants the acceleration scheme rests on: the operator
//! is symmetric positive definite, the CG correction matches the dense
//! LU solution of the explicitly assembled matrix, and the correction
//! scales linearly with the residual.

use proptest::prelude::*;

use unsnap_accel::{DiffusionOperator, DiffusionTopology, DsaConfig, DsaSolver};
use unsnap_krylov::LinearOperator;
use unsnap_linalg::{DenseMatrix, LinearSolver, LuSolver};
use unsnap_mesh::{StructuredGrid, UnstructuredMesh};

/// A random small problem: mesh shape + twist, and per-group totals
/// plus a scattering ratio in (0, 1); the c = 1 edge is pinned by the
/// operator unit tests.
type Scenario = ((usize, usize, usize, f64), (usize, f64, f64));

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (1usize..=3, 1usize..=3, 1usize..=2, 0.0f64..0.001),
        (1usize..=2, 0.5f64..2.0, 0.1f64..1.0),
    )
}

fn build(
    nx: usize,
    ny: usize,
    nz: usize,
    twist: f64,
    ng: usize,
    sigma_t: f64,
    c: f64,
) -> DiffusionOperator {
    let grid = StructuredGrid::new(nx, ny, nz, 1.0, 1.0, 1.0);
    let mesh = UnstructuredMesh::from_structured(&grid, twist);
    let topo = DiffusionTopology::from_mesh(&mesh);
    let cells = topo.num_cells;
    let mut d = vec![0.0; cells * ng];
    let mut r = vec![0.0; cells * ng];
    for cell in 0..cells {
        for g in 0..ng {
            let st = sigma_t + 0.01 * g as f64;
            d[cell * ng + g] = 1.0 / (3.0 * st);
            r[cell * ng + g] = (1.0 - c) * st;
        }
    }
    DiffusionOperator::assemble(&topo, ng, &d, &r)
}

fn densify(op: &mut DiffusionOperator) -> DenseMatrix {
    let n = op.dim();
    let mut a = DenseMatrix::zeros(n, n);
    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    for j in 0..n {
        x[j] = 1.0;
        op.apply(&x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            a[(i, j)] = v;
        }
        x[j] = 0.0;
    }
    a
}

proptest! {
    #[test]
    fn operator_is_symmetric_positive_definite(
        ((nx, ny, nz, twist), (ng, sigma_t, c)) in scenario()
    ) {
        let mut op = build(nx, ny, nz, twist, ng, sigma_t, c);
        let a = densify(&mut op);
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-13);
            }
        }
        // Positive definiteness via a handful of deterministic probes.
        let mut y = vec![0.0; n];
        for seed in 0..4usize {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 13 + seed * 7) % 11) as f64 / 11.0 - 0.45)
                .collect();
            op.apply(&x, &mut y);
            let xtax: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            let norm: f64 = x.iter().map(|v| v * v).sum();
            if norm > 0.0 {
                prop_assert!(xtax > 0.0, "xᵀAx = {xtax}");
            }
        }
    }

    #[test]
    fn cg_correction_matches_dense_lu(
        ((nx, ny, nz, twist), (ng, sigma_t, c)) in scenario(),
        rhs_seed in 0usize..100
    ) {
        let mut op = build(nx, ny, nz, twist, ng, sigma_t, c);
        let a = densify(&mut op);
        let n = a.rows();
        let rhs: Vec<f64> = (0..n)
            .map(|i| ((i * 17 + rhs_seed) % 9) as f64 / 9.0 - 0.3)
            .collect();
        let reference = LuSolver::new().solve(&a, &rhs).unwrap();

        let mut solver = DsaSolver::new(op, DsaConfig {
            tolerance: 1e-12,
            max_iterations: 10 * n.max(10),
        });
        let (correction, outcome) = solver.solve(&rhs, |_, _| {}).unwrap();
        prop_assert!(outcome.converged, "history {:?}", outcome.residual_history);
        let scale = reference.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (e, r) in correction.iter().zip(reference.iter()) {
            prop_assert!((e - r).abs() < 1e-8 * scale, "{e} vs {r}");
        }
    }

    #[test]
    fn correction_is_linear_in_the_residual(
        ((nx, ny, nz, twist), (ng, sigma_t, c)) in scenario(),
        alpha in 0.25f64..4.0
    ) {
        let op = build(nx, ny, nz, twist, ng, sigma_t, c);
        let n = op.dim();
        let rhs: Vec<f64> = (0..n).map(|i| ((i * 5) % 7) as f64 / 7.0 + 0.1).collect();
        let scaled: Vec<f64> = rhs.iter().map(|v| alpha * v).collect();

        let mut solver = DsaSolver::new(op, DsaConfig {
            tolerance: 1e-13,
            max_iterations: 10 * n.max(10),
        });
        let base = solver.solve(&rhs, |_, _| {}).unwrap().0.to_vec();
        let scaled_out = solver.solve(&scaled, |_, _| {}).unwrap().0.to_vec();
        let scale = base.iter().fold(1e-30f64, |m, v| m.max(v.abs()));
        for (s, b) in scaled_out.iter().zip(base.iter()) {
            prop_assert!((s - alpha * b).abs() < 1e-6 * alpha * scale);
        }
    }
}
