//! The assembled cell-centred diffusion operator.
//!
//! Two-point flux finite volumes over the [`DiffusionTopology`]: for the
//! cell-average error `e` of group `g`,
//!
//! ```text
//! (A e)_c = (σ_t − σ_s)_c V_c e_c
//!         + Σ_{faces f: c↔n}  W_f (e_c − e_n)
//!         + Σ_{boundary f}    W_b e_c
//! ```
//!
//! with `W_f = (A_f / d_cn) · harmonic(D_c, D_n)`, `D = 1/(3 σ_t)`, and
//! homogeneous Dirichlet ghosts on boundary (and rank-cut) faces.  The
//! off-diagonal couplings are symmetric and non-positive, the diagonal
//! dominates, and every cell touches at least one boundary face chain —
//! so the operator is symmetric positive definite even in the
//! conservative limit `σ_s = σ_t`, and conjugate gradients applies.
//!
//! Groups are uncoupled (the within-group error equation is solved per
//! group); they are folded into one block-diagonal operator of dimension
//! `cells × groups` so one CG solve handles all groups at once, matching
//! how the high-order Krylov strategies span all groups with one space.

use unsnap_krylov::LinearOperator;

use crate::topology::DiffusionTopology;

/// One assembled interior coupling: cell pair plus per-group weights.
#[derive(Debug, Clone)]
struct AssembledFace {
    left: usize,
    right: usize,
    /// `W_f` per group.
    weights: Vec<f64>,
}

/// The symmetric positive definite low-order diffusion operator, applied
/// matrix-free over flat `cell × group` vectors (`index = cell · ng + g`).
#[derive(Debug, Clone)]
pub struct DiffusionOperator {
    num_cells: usize,
    num_groups: usize,
    /// Diagonal: removal + boundary + interior couplings.
    diag: Vec<f64>,
    /// Interior couplings (symmetric off-diagonal pairs).
    faces: Vec<AssembledFace>,
}

/// Harmonic mean, the standard two-point diffusion-coefficient average
/// (exact for a 1-D two-material interface).
fn harmonic(a: f64, b: f64) -> f64 {
    2.0 * a * b / (a + b)
}

impl DiffusionOperator {
    /// Assemble the operator for `ng` groups.
    ///
    /// `diffusion` and `removal` are flat `cell × group` arrays
    /// (`index = cell · ng + g`) holding `D = 1/(3σ_t)` and
    /// `σ_r = σ_t − σ_s(g→g)` respectively.
    ///
    /// # Panics
    /// If the coefficient arrays do not match `topology.num_cells · ng`,
    /// or any diffusion coefficient is non-positive.
    pub fn assemble(
        topology: &DiffusionTopology,
        ng: usize,
        diffusion: &[f64],
        removal: &[f64],
    ) -> Self {
        let n = topology.num_cells;
        assert_eq!(diffusion.len(), n * ng, "diffusion coefficient shape");
        assert_eq!(removal.len(), n * ng, "removal coefficient shape");
        assert!(
            diffusion.iter().all(|&d| d > 0.0),
            "diffusion coefficients must be positive"
        );

        let mut diag = vec![0.0f64; n * ng];
        for c in 0..n {
            let volume = topology.volumes[c];
            for g in 0..ng {
                // Removal is σ_t − σ_s ≥ 0 (zero only at c = 1).
                diag[c * ng + g] = removal[c * ng + g].max(0.0) * volume;
            }
        }
        for b in &topology.boundary {
            for g in 0..ng {
                // Marshak vacuum condition: zero incoming partial
                // current at the face gives the leakage coefficient
                // A · D / (d_b + 2D) — the P1 analogue of the vacuum
                // boundary the transport error satisfies (both iterates
                // see the same prescribed inflow, so their difference
                // sees vacuum).
                let d = diffusion[b.cell * ng + g];
                diag[b.cell * ng + g] += b.area * d / (b.distance + 2.0 * d);
            }
        }
        let faces: Vec<AssembledFace> = topology
            .faces
            .iter()
            .map(|f| {
                let weights: Vec<f64> = (0..ng)
                    .map(|g| {
                        f.geometric
                            * harmonic(diffusion[f.left * ng + g], diffusion[f.right * ng + g])
                    })
                    .collect();
                for (g, &w) in weights.iter().enumerate() {
                    diag[f.left * ng + g] += w;
                    diag[f.right * ng + g] += w;
                }
                AssembledFace {
                    left: f.left,
                    right: f.right,
                    weights,
                }
            })
            .collect();

        Self {
            num_cells: n,
            num_groups: ng,
            diag,
            faces,
        }
    }

    /// Number of (local) cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Number of energy groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }
}

impl LinearOperator for DiffusionOperator {
    fn dim(&self) -> usize {
        self.num_cells * self.num_groups
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim());
        for ((yi, &xi), &di) in y.iter_mut().zip(x.iter()).zip(self.diag.iter()) {
            *yi = di * xi;
        }
        let ng = self.num_groups;
        for f in &self.faces {
            let lb = f.left * ng;
            let rb = f.right * ng;
            for (g, &w) in f.weights.iter().enumerate() {
                y[lb + g] -= w * x[rb + g];
                y[rb + g] -= w * x[lb + g];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::{StructuredGrid, UnstructuredMesh};

    fn operator(n: usize, ng: usize, c: f64) -> DiffusionOperator {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001);
        let topo = DiffusionTopology::from_mesh(&mesh);
        let cells = topo.num_cells;
        let mut d = vec![0.0; cells * ng];
        let mut r = vec![0.0; cells * ng];
        for cell in 0..cells {
            for g in 0..ng {
                let sigma_t = 1.0 + 0.01 * g as f64;
                d[cell * ng + g] = 1.0 / (3.0 * sigma_t);
                r[cell * ng + g] = (1.0 - c) * sigma_t;
            }
        }
        DiffusionOperator::assemble(&topo, ng, &d, &r)
    }

    fn dense(op: &mut DiffusionOperator) -> Vec<Vec<f64>> {
        let n = op.dim();
        let mut cols = Vec::with_capacity(n);
        let mut x = vec![0.0; n];
        let mut y = vec![0.0; n];
        for j in 0..n {
            x[j] = 1.0;
            op.apply(&x, &mut y);
            cols.push(y.clone());
            x[j] = 0.0;
        }
        cols
    }

    #[test]
    fn operator_is_symmetric() {
        let mut op = operator(3, 2, 0.9);
        let a = dense(&mut op);
        let n = a.len();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (a[i][j] - a[j][i]).abs() < 1e-14,
                    "asymmetry at ({i}, {j}): {} vs {}",
                    a[i][j],
                    a[j][i]
                );
            }
        }
    }

    #[test]
    fn operator_is_positive_definite_even_at_c_of_one() {
        // c = 1 zeroes the removal term; the Dirichlet boundary faces
        // must keep the quadratic form strictly positive.
        let mut op = operator(3, 1, 1.0);
        let n = op.dim();
        let mut y = vec![0.0; n];
        for seed in 0..5 {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 31 + seed * 17) % 13) as f64 / 13.0 - 0.4)
                .collect();
            op.apply(&x, &mut y);
            let xtax: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            let norm: f64 = x.iter().map(|v| v * v).sum();
            assert!(xtax > 1e-12 * norm, "xᵀAx = {xtax} for ‖x‖² = {norm}");
        }
    }

    #[test]
    fn groups_are_uncoupled() {
        // A vector supported on group 0 must map to a vector supported
        // on group 0.
        let mut op = operator(2, 3, 0.5);
        let n = op.dim();
        let ng = op.num_groups();
        let mut x = vec![0.0; n];
        for cell in 0..op.num_cells() {
            x[cell * ng] = 1.0 + cell as f64;
        }
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        for (i, &v) in y.iter().enumerate() {
            if i % ng != 0 {
                assert_eq!(v, 0.0, "group leak at flat index {i}");
            }
        }
    }

    #[test]
    fn constant_vector_sees_removal_plus_boundary_only() {
        // A e for e ≡ 1: interior couplings cancel, leaving the removal
        // mass plus the boundary Dirichlet terms — all positive.
        let mut op = operator(3, 1, 0.9);
        let x = vec![1.0; op.dim()];
        let mut y = vec![0.0; op.dim()];
        op.apply(&x, &mut y);
        assert!(y.iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "diffusion coefficient shape")]
    fn mismatched_coefficients_are_rejected() {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(2, 1.0), 0.0);
        let topo = DiffusionTopology::from_mesh(&mesh);
        let _ = DiffusionOperator::assemble(&topo, 2, &[1.0; 3], &[1.0; 16]);
    }
}
