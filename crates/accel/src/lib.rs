//! # unsnap-accel
//!
//! Diffusion synthetic acceleration (DSA) for the UnSNAP transport
//! solver: a mesh-consistent low-order diffusion operator plus a
//! conjugate-gradient correction solver.
//!
//! ## Why this crate exists
//!
//! Source iteration resolves the within-group scattering fixed point
//!
//! ```text
//! φ^{l+1} = D L⁻¹ (S_w φ^l + q_ext)
//! ```
//!
//! whose error contracts by the scattering ratio `c = σ_s/σ_t` per
//! sweep: as `c → 1` (scattering-dominated media) the iteration stalls.
//! The slowly-converging modes are exactly the *diffusive* ones — flat,
//! long-wavelength error shapes that a transport sweep barely touches —
//! so the classic cure is to estimate them with a cheap low-order
//! diffusion solve after every sweep and subtract them:
//!
//! ```text
//! −∇·( 1/(3σ_t) ∇e ) + (σ_t − σ_s) e  =  σ_s (φ^{l+1/2} − φ^l)
//! φ^{l+1} = φ^{l+1/2} + e
//! ```
//!
//! This collapses the spectral radius from `≈ c` to `≈ 0.22 c`, turning
//! thousands of sweeps into a handful in the high-`c` regime.
//!
//! ## What lives here
//!
//! * [`DiffusionTopology`] — the low-order geometry, extracted from an
//!   [`UnstructuredMesh`](unsnap_mesh::UnstructuredMesh) with
//!   `unsnap-fem` quadrature (cell volumes and face areas are integrated
//!   on the twisted hex geometry, not assumed Cartesian).  A *subset*
//!   constructor restricts the operator to a rank's subdomain with
//!   homogeneous Dirichlet coupling at cut faces, which is what the
//!   distributed block-Jacobi driver uses per rank.
//! * [`DiffusionOperator`] — the assembled cell-centred finite-volume
//!   diffusion operator (diffusion coefficient `1/(3σ_t)`, removal
//!   `σ_t − σ_s`, harmonic face averaging), exposed as a matrix-free
//!   [`LinearOperator`](unsnap_krylov::LinearOperator).  It is symmetric
//!   positive definite by construction, so CG applies.
//! * [`DsaSolver`] — owns the operator, a reusable
//!   [`CgWorkspace`](unsnap_krylov::CgWorkspace) and the correction
//!   vector, and solves one error equation per call through
//!   [`ConjugateGradient::solve_observed_in`](unsnap_krylov::ConjugateGradient::solve_observed_in),
//!   streaming every CG residual to the caller.
//!
//! The restriction of the high-order (DG nodal) residual to cell
//! averages and the prolongation of the cell-wise correction back onto
//! the nodes live with the flux layouts in `unsnap-core`
//! (`unsnap_core::dsa`); this crate is deliberately ignorant of flux
//! storage and works on plain `cell × group` vectors.
//!
//! Everything here is sequential and allocation-stable: a DSA solve is
//! bit-for-bit reproducible at any thread count, which is what lets the
//! transport driver keep its determinism contract when acceleration is
//! switched on.
//!
//! ## Example
//!
//! ```
//! use unsnap_accel::{DiffusionOperator, DiffusionTopology, DsaConfig, DsaSolver};
//! use unsnap_mesh::{StructuredGrid, UnstructuredMesh};
//!
//! let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.001);
//! let topology = DiffusionTopology::from_mesh(&mesh);
//! let ng = 1;
//! // σ_t = 1, c = 0.9: D = 1/3, removal = 0.1.
//! let d = vec![1.0 / 3.0; mesh.num_cells() * ng];
//! let removal = vec![0.1; mesh.num_cells() * ng];
//! let operator = DiffusionOperator::assemble(&topology, ng, &d, &removal);
//! let mut solver = DsaSolver::new(operator, DsaConfig::default());
//! let rhs = vec![1.0; mesh.num_cells() * ng];
//! let (correction, outcome) = solver.solve(&rhs, |_, _| {}).unwrap();
//! assert!(outcome.converged);
//! assert!(correction.iter().all(|&e| e > 0.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod operator;
pub mod solver;
pub mod topology;

pub use operator::DiffusionOperator;
pub use solver::{DsaConfig, DsaSolver};
pub use topology::DiffusionTopology;
