//! Low-order geometry for the diffusion operator, extracted from the
//! transport mesh.
//!
//! The diffusion correction lives on *cell averages*: one unknown per
//! (cell, group).  What the operator needs from the mesh is therefore
//! purely geometric — cell volumes, face areas, and centroid distances —
//! and all of it is integrated on the true (twisted) hex geometry with
//! the `unsnap-fem` quadrature machinery via
//! [`ElementIntegrals`], so the low-order
//! operator is consistent with the mesh the transport sweep runs on, not
//! with an idealised Cartesian grid.

use unsnap_fem::element::ReferenceElement;
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_mesh::{NeighborRef, UnstructuredMesh, NUM_FACES};

/// An interior face of the low-order mesh: two coupled cells plus the
/// geometric factor `area / centroid distance` of their shared face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteriorFace {
    /// Local index of the cell on one side.
    pub left: usize,
    /// Local index of the cell on the other side.
    pub right: usize,
    /// `A_f / |x_left − x_right|`, the geometric half of the two-point
    /// flux coupling (the material half is the harmonic diffusion mean).
    pub geometric: f64,
}

/// A boundary face (domain boundary, or a cut face of a rank subset):
/// one cell coupled to a vacuum (Marshak) ghost condition.
///
/// Area and centroid-to-face distance are kept separate because the
/// Marshak leakage coefficient `A · D / (d_b + 2D)` mixes the geometry
/// with the per-group diffusion coefficient non-multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundaryFace {
    /// Local index of the cell the face belongs to.
    pub cell: usize,
    /// Face area.
    pub area: f64,
    /// Centroid-to-face distance `d_b` (half the centroid-to-neighbour
    /// distance for cut faces).
    pub distance: f64,
}

/// The geometric skeleton of the cell-centred diffusion operator.
///
/// Built once per solver (whole domain) or per rank (subdomain subset);
/// the per-group material coefficients are applied later by
/// [`DiffusionOperator::assemble`](crate::DiffusionOperator::assemble).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionTopology {
    /// Number of (local) cells.
    pub num_cells: usize,
    /// Quadrature-integrated cell volumes, by local index.
    pub volumes: Vec<f64>,
    /// Interior faces, each listed once.
    pub faces: Vec<InteriorFace>,
    /// Boundary (and cut) faces.
    pub boundary: Vec<BoundaryFace>,
}

fn distance(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

impl DiffusionTopology {
    /// Extract the topology for the whole mesh.
    pub fn from_mesh(mesh: &UnstructuredMesh) -> Self {
        let cells: Vec<usize> = (0..mesh.num_cells()).collect();
        Self::from_mesh_subset(mesh, &cells)
    }

    /// Extract the topology for a subset of cells (a rank's subdomain),
    /// listed by global index in local order.
    ///
    /// Faces between two subset cells become interior couplings; faces
    /// whose neighbour lies outside the subset are treated exactly like
    /// domain-boundary faces — a homogeneous Dirichlet condition at the
    /// face, because the error on the far side belongs to another rank's
    /// correction.  Geometry (volumes, areas) is integrated per cell
    /// with linear-element quadrature on the true hex corners.
    pub fn from_mesh_subset(mesh: &UnstructuredMesh, cells: &[usize]) -> Self {
        let element = ReferenceElement::new(1);
        let mut local_of = vec![usize::MAX; mesh.num_cells()];
        for (local, &global) in cells.iter().enumerate() {
            local_of[global] = local;
        }

        let mut volumes = Vec::with_capacity(cells.len());
        let mut faces = Vec::new();
        let mut boundary = Vec::new();

        for (local, &global) in cells.iter().enumerate() {
            let hex = HexVertices {
                corners: *mesh.cell_corners(global),
            };
            let ints = ElementIntegrals::compute(&element, &hex);
            volumes.push(ints.volume);
            let centroid = mesh.cell_centroid(global);

            for face in 0..NUM_FACES {
                let area = ints.faces[face].area;
                match mesh.neighbor(global, face) {
                    NeighborRef::Boundary { .. } => {
                        // Centroid-to-face distance, estimated from the
                        // cell's own geometry: volume / (2 · area) is
                        // exact for an axis-aligned box and accurate to
                        // the twist angle otherwise.
                        let d_b = ints.volume / (2.0 * area);
                        boundary.push(BoundaryFace {
                            cell: local,
                            area,
                            distance: d_b,
                        });
                    }
                    NeighborRef::Interior { cell: neighbor, .. } => {
                        if local_of[neighbor] == usize::MAX {
                            // Cut face: the neighbour belongs to another
                            // rank.  Vacuum ghost at half the centroid
                            // distance.
                            let d_b = 0.5 * distance(centroid, mesh.cell_centroid(neighbor));
                            boundary.push(BoundaryFace {
                                cell: local,
                                area,
                                distance: d_b,
                            });
                        } else if global < neighbor {
                            // Interior face, recorded once (from the
                            // lower global index so subset ordering does
                            // not matter).
                            let d = distance(centroid, mesh.cell_centroid(neighbor));
                            faces.push(InteriorFace {
                                left: local,
                                right: local_of[neighbor],
                                geometric: area / d,
                            });
                        }
                    }
                }
            }
        }

        Self {
            num_cells: cells.len(),
            volumes,
            faces,
            boundary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::StructuredGrid;

    fn mesh(n: usize) -> UnstructuredMesh {
        UnstructuredMesh::from_structured(&StructuredGrid::cube(n, 1.0), 0.001)
    }

    #[test]
    fn whole_mesh_counts_faces_once() {
        let m = mesh(3);
        let topo = DiffusionTopology::from_mesh(&m);
        assert_eq!(topo.num_cells, 27);
        assert_eq!(topo.volumes.len(), 27);
        // A 3³ grid has 3 · 2 · 3² = 54 interior faces and 6 · 9 = 54
        // boundary faces.
        assert_eq!(topo.faces.len(), 54);
        assert_eq!(topo.boundary.len(), 54);
        // Volumes sum to the (almost exactly unit) twisted domain.
        let total: f64 = topo.volumes.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "total volume {total}");
        assert!(topo.faces.iter().all(|f| f.geometric > 0.0));
        assert!(topo
            .boundary
            .iter()
            .all(|f| f.area > 0.0 && f.distance > 0.0));
    }

    #[test]
    fn subset_turns_cut_faces_into_boundary() {
        let m = mesh(2);
        // The lower z-slab of a 2³ mesh: 4 cells, 4 cut faces upward.
        let cells: Vec<usize> = (0..4).collect();
        let topo = DiffusionTopology::from_mesh_subset(&m, &cells);
        assert_eq!(topo.num_cells, 4);
        // In-plane interior faces only: 2 along x + 2 along y.
        assert_eq!(topo.faces.len(), 4);
        // 3 domain faces per slab cell (4·3 = 12) plus one upward cut
        // face each.
        assert_eq!(topo.boundary.len(), 16);
        // Local indices are dense.
        assert!(topo.faces.iter().all(|f| f.left < 4 && f.right < 4));
        assert!(topo.boundary.iter().all(|f| f.cell < 4));
    }

    #[test]
    fn subset_ordering_does_not_change_the_geometry() {
        let m = mesh(2);
        let forward: Vec<usize> = (0..8).collect();
        let a = DiffusionTopology::from_mesh_subset(&m, &forward);
        let b = DiffusionTopology::from_mesh(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_factors_match_the_cartesian_limit() {
        // Untwisted unit cube with 4³ cells: every interior face has
        // area h² and centroid distance h, so geometric = h = 0.25.
        let m = UnstructuredMesh::from_structured(&StructuredGrid::cube(4, 1.0), 0.0);
        let topo = DiffusionTopology::from_mesh(&m);
        for f in &topo.faces {
            assert!((f.geometric - 0.25).abs() < 1e-12, "{}", f.geometric);
        }
        // Boundary faces: area h², centroid-to-face distance h/2.
        for f in &topo.boundary {
            assert!((f.area - 0.0625).abs() < 1e-12, "{}", f.area);
            assert!((f.distance - 0.125).abs() < 1e-12, "{}", f.distance);
        }
    }
}
