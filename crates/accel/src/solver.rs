//! The DSA correction solver: one CG solve of the low-order error
//! equation per transport sweep, with buffer reuse and residual
//! streaming.
//!
//! The residual closure is this crate's tracing surface: `unsnap-core`
//! forwards each `(iteration, relative_residual)` pair to its
//! `RunObserver` as an accel-residual event, which the PR 10
//! `TraceObserver` renders as one `cg_iter` span per CG iteration
//! nested inside the `accel_cg` phase span — so the low-order solve
//! shows up in exported profiles with per-iteration resolution without
//! this crate depending on the observability stack.

use unsnap_krylov::{
    CgConfig, CgWorkspace, ConjugateGradient, KrylovError, KrylovOutcome, LinearOperator,
    ObservedOperator,
};

use crate::operator::DiffusionOperator;

/// Tuning knobs for the low-order CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsaConfig {
    /// Relative residual target of the correction solve.  The low-order
    /// system is tiny next to a sweep, so a tight default is cheap.
    pub tolerance: f64,
    /// Hard cap on CG iterations per correction.
    pub max_iterations: usize,
}

impl Default for DsaConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 200,
        }
    }
}

/// Adapter streaming the CG residual notifications into a caller
/// closure, so `unsnap-core` can forward them to its `RunObserver`
/// without this crate depending on it.
struct Streamed<'a, F: FnMut(usize, f64)> {
    op: &'a mut DiffusionOperator,
    on_residual: F,
}

impl<F: FnMut(usize, f64)> LinearOperator for Streamed<'_, F> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.op.apply(x, y)
    }
}

impl<F: FnMut(usize, f64)> ObservedOperator for Streamed<'_, F> {
    fn on_residual(&mut self, iteration: usize, relative_residual: f64) {
        (self.on_residual)(iteration, relative_residual);
    }
}

/// Owns one assembled [`DiffusionOperator`] plus the reusable CG scratch
/// and the correction vector, and solves one error equation per call.
///
/// Every solve starts from a zero initial guess, so repeated solves are
/// independent and bit-for-bit reproducible; the buffers (CG workspace
/// and correction vector) are allocated once and reused.
#[derive(Debug, Clone)]
pub struct DsaSolver {
    operator: DiffusionOperator,
    cg: ConjugateGradient,
    workspace: CgWorkspace,
    correction: Vec<f64>,
}

impl DsaSolver {
    /// Wrap an assembled operator with a configured CG solver.
    pub fn new(operator: DiffusionOperator, config: DsaConfig) -> Self {
        let dim = operator.dim();
        Self {
            operator,
            cg: ConjugateGradient::new(CgConfig {
                max_iterations: config.max_iterations,
                tolerance: config.tolerance,
            }),
            workspace: CgWorkspace::new(),
            correction: vec![0.0; dim],
        }
    }

    /// The assembled low-order operator.
    pub fn operator(&self) -> &DiffusionOperator {
        &self.operator
    }

    /// Solve `A e = rhs` from a zero guess, streaming every CG residual
    /// (iteration index, relative residual) through `on_residual`, and
    /// return the correction alongside the CG outcome.
    ///
    /// The correction slice is owned by the solver and valid until the
    /// next call.
    pub fn solve(
        &mut self,
        rhs: &[f64],
        on_residual: impl FnMut(usize, f64),
    ) -> Result<(&[f64], KrylovOutcome), KrylovError> {
        self.correction.fill(0.0);
        let outcome = self.cg.solve_observed_in(
            &mut self.workspace,
            &mut Streamed {
                op: &mut self.operator,
                on_residual,
            },
            rhs,
            &mut self.correction,
        )?;
        Ok((&self.correction, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DiffusionTopology;
    use unsnap_mesh::{StructuredGrid, UnstructuredMesh};

    fn solver(c: f64) -> DsaSolver {
        let mesh = UnstructuredMesh::from_structured(&StructuredGrid::cube(3, 1.0), 0.001);
        let topo = DiffusionTopology::from_mesh(&mesh);
        let n = topo.num_cells;
        let d = vec![1.0 / 3.0; n];
        let r = vec![1.0 - c; n];
        DsaSolver::new(
            DiffusionOperator::assemble(&topo, 1, &d, &r),
            DsaConfig::default(),
        )
    }

    #[test]
    fn solves_and_streams_every_residual() {
        let mut s = solver(0.9);
        let rhs = vec![1.0; s.operator().dim()];
        let mut streamed = Vec::new();
        let (correction, outcome) = s.solve(&rhs, |_, r| streamed.push(r)).unwrap();
        assert!(outcome.converged);
        assert!(correction.iter().all(|&e| e > 0.0));
        assert_eq!(streamed, outcome.residual_history);
    }

    #[test]
    fn repeated_solves_are_bitwise_stable() {
        let mut s = solver(0.99);
        let rhs: Vec<f64> = (0..s.operator().dim())
            .map(|i| ((i * 7) % 5) as f64 - 1.0)
            .collect();
        let (first, first_out) = {
            let (e, o) = s.solve(&rhs, |_, _| {}).unwrap();
            (e.to_vec(), o)
        };
        let (second, second_out) = s.solve(&rhs, |_, _| {}).unwrap();
        assert_eq!(first, second.to_vec());
        assert_eq!(first_out, second_out);
    }

    #[test]
    fn zero_rhs_is_a_zero_correction() {
        let mut s = solver(0.5);
        let rhs = vec![0.0; s.operator().dim()];
        let (correction, outcome) = s.solve(&rhs, |_, _| {}).unwrap();
        assert!(outcome.converged);
        assert!(correction.iter().all(|&e| e == 0.0));
    }
}
