//! Property-based tests for the Krylov solvers.
//!
//! Strategy: generate random well-conditioned systems (strictly
//! diagonally dominant for GMRES; `BᵀB + shift·I` for CG) and check the
//! Krylov solutions against the dense LU factorisation from
//! `unsnap-linalg`, plus the invariants every iterative solver must
//! satisfy (small residuals, linearity in the right-hand side, honest
//! convergence reporting).

use proptest::prelude::*;

use unsnap_krylov::{CgConfig, ConjugateGradient, Gmres, GmresConfig, MatrixOperator};
use unsnap_linalg::vector::{max_abs_diff, norm2, norm_inf};
use unsnap_linalg::{DenseMatrix, LinearSolver, LuSolver};

/// Strategy: a strictly diagonally dominant n×n matrix plus an RHS.
fn dominant_system(max_n: usize) -> impl Strategy<Value = (DenseMatrix, Vec<f64>)> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(move |(entries, rhs)| {
                let mut a = DenseMatrix::from_vec(n, n, entries).unwrap();
                for i in 0..n {
                    let off: f64 = a
                        .row(i)
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, v)| v.abs())
                        .sum();
                    a[(i, i)] = off + 1.0 + i as f64 * 0.1;
                }
                (a, rhs)
            })
    })
}

/// Strategy: an SPD system `(BᵀB + n·I) x = b`.
fn spd_system(max_n: usize) -> impl Strategy<Value = (DenseMatrix, Vec<f64>)> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-5.0f64..5.0, n),
        )
            .prop_map(move |(entries, rhs)| {
                let b = DenseMatrix::from_vec(n, n, entries).unwrap();
                let mut a = b.transpose().matmul(&b).unwrap();
                for i in 0..n {
                    a[(i, i)] += n as f64;
                }
                (a, rhs)
            })
    })
}

fn tight_gmres(restart: usize) -> Gmres {
    Gmres::new(GmresConfig {
        restart,
        max_iterations: 600,
        tolerance: 1e-12,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gmres_matches_dense_lu((a, b) in dominant_system(20)) {
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; b.len()];
        let outcome = tight_gmres(b.len()).solve(&mut op, &b, &mut x).unwrap();
        prop_assert!(outcome.converged, "history {:?}", outcome.residual_history);
        let scale = norm_inf(&reference).max(1.0);
        prop_assert!(max_abs_diff(&x, &reference) < 1e-8 * scale);
    }

    #[test]
    fn restarted_gmres_matches_dense_lu((a, b) in dominant_system(16), restart in 2usize..6) {
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; b.len()];
        let outcome = tight_gmres(restart).solve(&mut op, &b, &mut x).unwrap();
        prop_assert!(outcome.converged);
        let scale = norm_inf(&reference).max(1.0);
        prop_assert!(max_abs_diff(&x, &reference) < 1e-7 * scale);
    }

    #[test]
    fn cg_matches_dense_lu((a, b) in spd_system(16)) {
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; b.len()];
        let outcome = ConjugateGradient::new(CgConfig {
            max_iterations: 400,
            tolerance: 1e-12,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        prop_assert!(outcome.converged, "history {:?}", outcome.residual_history);
        let scale = norm_inf(&reference).max(1.0);
        prop_assert!(max_abs_diff(&x, &reference) < 1e-8 * scale);
    }

    #[test]
    fn gmres_residual_report_is_honest((a, b) in dominant_system(14)) {
        // The reported final residual must match an independently computed
        // ‖b − A x‖ / ‖b‖.
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; b.len()];
        let outcome = tight_gmres(8).solve(&mut op, &b, &mut x).unwrap();
        let ax = op.matrix().matvec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(b.iter()).map(|(axi, bi)| bi - axi).collect();
        let b_norm = norm2(&b);
        prop_assume!(b_norm > 1e-9);
        let actual = norm2(&r) / b_norm;
        prop_assert!((actual - outcome.final_residual).abs() < 1e-9,
            "reported {} vs actual {actual}", outcome.final_residual);
    }

    #[test]
    fn gmres_is_linear_in_the_rhs((a, b) in dominant_system(12), alpha in 0.5f64..4.0) {
        let mut op = MatrixOperator::new(a);
        let mut x1 = vec![0.0; b.len()];
        tight_gmres(b.len()).solve(&mut op, &b, &mut x1).unwrap();
        let scaled: Vec<f64> = b.iter().map(|v| alpha * v).collect();
        let mut x2 = vec![0.0; b.len()];
        tight_gmres(b.len()).solve(&mut op, &scaled, &mut x2).unwrap();
        let x1_scaled: Vec<f64> = x1.iter().map(|v| alpha * v).collect();
        let scale = norm_inf(&x1_scaled).max(1.0);
        prop_assert!(max_abs_diff(&x1_scaled, &x2) < 1e-7 * scale);
    }

    #[test]
    fn identity_needs_at_most_one_iteration(b in proptest::collection::vec(-100.0f64..100.0, 2..24)) {
        let n = b.len();
        let mut op = MatrixOperator::new(DenseMatrix::identity(n));
        let mut x = vec![0.0; n];
        let outcome = tight_gmres(n).solve(&mut op, &b, &mut x).unwrap();
        prop_assert!(outcome.converged);
        prop_assert!(outcome.iterations <= 1);
        prop_assert!(max_abs_diff(&x, &b) < 1e-9 * norm_inf(&b).max(1.0));
    }
}
