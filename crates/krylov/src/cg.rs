//! Conjugate gradients over a matrix-free [`LinearOperator`].
//!
//! CG is the method of choice when the operator is symmetric positive
//! definite: it needs only three working vectors (GMRES stores the whole
//! Krylov basis) and one matrix–vector product per iteration.  The
//! transport within-group operator `I − L⁻¹S` is *not* symmetric, so the
//! sweep-preconditioned solver uses GMRES — CG is provided for the
//! symmetric systems that appear elsewhere (diffusion synthetic
//! acceleration, mass-matrix solves) and as an independent cross-check in
//! the property tests.

use unsnap_linalg::vector::{axpy, dot, norm2};

use crate::operator::{LinearOperator, ObservedOperator, SilentOperator};
use crate::{KrylovError, KrylovOutcome};

/// Tuning knobs for [`ConjugateGradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Hard cap on iterations (one matvec each).
    pub max_iterations: usize,
    /// Relative residual target: converged when
    /// `‖b − A x‖₂ ≤ tolerance · ‖b‖₂`.
    pub tolerance: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            tolerance: 1e-10,
        }
    }
}

/// Reusable scratch for [`ConjugateGradient`] solves: the residual,
/// search-direction and operator-product vectors.
///
/// CG needs three working vectors of the operator dimension; drivers
/// that solve many same-shaped systems — one low-order DSA correction
/// per transport sweep in `unsnap-accel` — can hold one workspace and
/// pass it to [`ConjugateGradient::solve_observed_in`] so the buffers
/// are allocated once and reused.  Every entry is overwritten before it
/// is read, so a reused workspace produces bit-for-bit the same
/// iterates, residual stream and outcome as a fresh one (including
/// across dimension changes) — only the allocator traffic differs.
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    /// Residual vector `r = b − A x`.
    r: Vec<f64>,
    /// Search direction `p`.
    p: Vec<f64>,
    /// Operator product `A p`.
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for dimension `n`, reusing allocations when the
    /// shape is unchanged.
    fn prepare(&mut self, n: usize) {
        self.r.clear();
        self.r.resize(n, 0.0);
        self.p.clear();
        self.p.resize(n, 0.0);
        self.ap.clear();
        self.ap.resize(n, 0.0);
    }
}

/// Conjugate-gradient solver for symmetric positive definite operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConjugateGradient {
    config: CgConfig,
}

impl ConjugateGradient {
    /// Create a solver with the given configuration.
    pub fn new(config: CgConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// Solve `A x = b` for SPD `A`, using `x` as the initial guess and
    /// leaving the solution in it.
    pub fn solve(
        &self,
        op: &mut dyn LinearOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        self.solve_observed(&mut SilentOperator(op), b, x)
    }

    /// Solve `A x = b` while streaming every residual-history entry to
    /// the operator's [`ObservedOperator::on_residual`] hook.
    ///
    /// The notifications mirror [`KrylovOutcome::residual_history`]
    /// entry-for-entry (the initial-guess residual fires with iteration
    /// 0), so an observer that records them reconstructs the history
    /// exactly — the same contract as
    /// [`Gmres::solve_observed`](crate::Gmres::solve_observed).
    pub fn solve_observed(
        &self,
        op: &mut dyn ObservedOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        self.solve_observed_in(&mut CgWorkspace::new(), op, b, x)
    }

    /// [`ConjugateGradient::solve_observed`] with caller-owned scratch:
    /// the three working vectors live in `ws` and are reused across
    /// calls instead of reallocated.  The numerical behaviour is
    /// identical to a fresh workspace, including across dimension
    /// changes.
    pub fn solve_observed_in(
        &self,
        ws: &mut CgWorkspace,
        op: &mut dyn ObservedOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        let n = op.dim();
        if b.len() != n || x.len() != n {
            return Err(KrylovError::DimensionMismatch {
                operator: n,
                vector: if b.len() != n { b.len() } else { x.len() },
            });
        }
        let b_norm = norm2(b);
        if b_norm == 0.0 {
            x.fill(0.0);
            return Ok(KrylovOutcome::trivial());
        }
        let target = self.config.tolerance * b_norm;

        let mut outcome = KrylovOutcome::default();
        ws.prepare(n);
        op.apply(x, &mut ws.r);
        outcome.matvecs += 1;
        for (ri, bi) in ws.r.iter_mut().zip(b.iter()) {
            *ri = bi - *ri;
        }
        ws.p.copy_from_slice(&ws.r);
        let mut rho = dot(&ws.r, &ws.r);
        let mut res_norm = rho.sqrt();
        outcome.residual_history.push(res_norm / b_norm);
        op.on_residual(outcome.iterations, res_norm / b_norm);

        while res_norm > target && outcome.iterations < self.config.max_iterations {
            op.apply(&ws.p, &mut ws.ap);
            outcome.iterations += 1;
            outcome.matvecs += 1;
            let p_ap = dot(&ws.p, &ws.ap);
            if p_ap <= 0.0 {
                // A direction of non-positive curvature: the operator is
                // not SPD (or rounding has destroyed it).
                return Err(KrylovError::NotPositiveDefinite {
                    at_iteration: outcome.iterations,
                });
            }
            let alpha = rho / p_ap;
            axpy(alpha, &ws.p, x);
            axpy(-alpha, &ws.ap, &mut ws.r);
            let rho_next = dot(&ws.r, &ws.r);
            let beta = rho_next / rho;
            for (pi, &ri) in ws.p.iter_mut().zip(ws.r.iter()) {
                *pi = ri + beta * *pi;
            }
            rho = rho_next;
            res_norm = rho.sqrt();
            outcome.residual_history.push(res_norm / b_norm);
            op.on_residual(outcome.iterations, res_norm / b_norm);
        }

        outcome.converged = res_norm <= target;
        outcome.final_residual = res_norm / b_norm;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatrixOperator;
    use unsnap_linalg::vector::max_abs_diff;
    use unsnap_linalg::{DenseMatrix, LinearSolver, LuSolver};

    /// A symmetric positive definite matrix: Bᵀ B + n·I.
    fn spd(n: usize) -> DenseMatrix {
        let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 7) as f64 / 7.0 - 0.4);
        let mut a = b.transpose().matmul(&b).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn matches_lu_on_spd_system() {
        let n = 20;
        let a = spd(n);
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; n];
        let outcome = ConjugateGradient::new(CgConfig {
            max_iterations: 200,
            tolerance: 1e-12,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(outcome.converged);
        assert!(max_abs_diff(&x, &reference) < 1e-8);
    }

    #[test]
    fn converges_within_n_iterations_on_identity() {
        let mut op = MatrixOperator::new(DenseMatrix::identity(8));
        let b = vec![3.0; 8];
        let mut x = vec![0.0; 8];
        let outcome = ConjugateGradient::default()
            .solve(&mut op, &b, &mut x)
            .unwrap();
        assert!(outcome.converged);
        assert!(outcome.iterations <= 1);
        assert!(max_abs_diff(&x, &b) < 1e-12);
    }

    #[test]
    fn rejects_indefinite_operator() {
        // diag(1, -1) has a negative-curvature direction.
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, -1.0]).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; 2];
        let result = ConjugateGradient::default().solve(&mut op, &[0.0, 1.0], &mut x);
        assert!(matches!(
            result,
            Err(KrylovError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn reused_workspace_is_bit_for_bit_identical_to_fresh() {
        // One workspace driven through several solves (including
        // dimension changes) must reproduce the fresh-workspace outcome
        // exactly — iterates, history, counters.
        let solver = ConjugateGradient::new(CgConfig {
            max_iterations: 300,
            tolerance: 1e-12,
        });
        let mut ws = CgWorkspace::new();
        for n in [16usize, 16, 9, 16] {
            let a = spd(n);
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();

            let mut fresh_op = MatrixOperator::new(a.clone());
            let mut fresh_x = vec![0.0; n];
            let fresh = solver.solve(&mut fresh_op, &b, &mut fresh_x).unwrap();

            let mut op = MatrixOperator::new(a);
            let mut x = vec![0.0; n];
            let reused = solver
                .solve_observed_in(&mut ws, &mut crate::SilentOperator(&mut op), &b, &mut x)
                .unwrap();

            assert_eq!(fresh, reused, "outcome diverged at n = {n}");
            assert_eq!(fresh_x, x, "iterate diverged at n = {n}");
        }
    }

    #[test]
    fn observed_solve_streams_the_residual_history() {
        struct Watched {
            op: MatrixOperator,
            seen: Vec<(usize, f64)>,
        }
        impl LinearOperator for Watched {
            fn dim(&self) -> usize {
                self.op.dim()
            }
            fn apply(&mut self, x: &[f64], y: &mut [f64]) {
                self.op.apply(x, y)
            }
        }
        impl crate::ObservedOperator for Watched {
            fn on_residual(&mut self, iteration: usize, relative_residual: f64) {
                self.seen.push((iteration, relative_residual));
            }
        }

        let n = 12;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut watched = Watched {
            op: MatrixOperator::new(spd(n)),
            seen: Vec::new(),
        };
        let outcome = ConjugateGradient::default()
            .solve_observed(&mut watched, &b, &mut x)
            .unwrap();
        assert!(outcome.converged);
        // One notification per residual-history entry, starting with the
        // iteration-0 initial residual.
        let streamed: Vec<f64> = watched.seen.iter().map(|&(_, r)| r).collect();
        assert_eq!(streamed, outcome.residual_history);
        assert_eq!(watched.seen[0].0, 0);
        assert_eq!(watched.seen.last().unwrap().0, outcome.iterations);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let mut op = MatrixOperator::new(spd(4));
        let mut x = vec![1.0; 4];
        let outcome = ConjugateGradient::default()
            .solve(&mut op, &[0.0; 4], &mut x)
            .unwrap();
        assert!(outcome.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut op = MatrixOperator::new(spd(4));
        let mut x = vec![0.0; 4];
        assert!(ConjugateGradient::default()
            .solve(&mut op, &[1.0; 5], &mut x)
            .is_err());
    }

    #[test]
    fn iteration_cap_reports_unconverged() {
        let n = 30;
        let mut op = MatrixOperator::new(spd(n));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let outcome = ConjugateGradient::new(CgConfig {
            max_iterations: 2,
            tolerance: 1e-15,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 2);
    }
}
