//! The matrix-free [`LinearOperator`] abstraction.
//!
//! Krylov methods only ever touch the system matrix through its action on
//! a vector, which is exactly what a transport sweep provides: one sweep
//! applies `L⁻¹` (the streaming-collision inverse) without `L` ever being
//! formed.  The trait therefore exposes a single `apply` and takes `&mut
//! self` so implementations may keep scratch state (sweep buffers, flux
//! storage) without interior mutability.

use unsnap_linalg::DenseMatrix;

/// A linear map `y = A x` on flat `f64` vectors.
///
/// `apply` must be *linear* in `x` for the Krylov solvers built on top of
/// it to converge; nothing checks this at run time.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Compute `y = A x`.  Both slices have length [`LinearOperator::dim`].
    fn apply(&mut self, x: &[f64], y: &mut [f64]);
}

/// A [`LinearOperator`] that also wants to watch the solver's progress.
///
/// [`Gmres::solve_observed`](crate::Gmres::solve_observed) notifies the
/// operator every time it appends to the residual history, so callers that
/// drive expensive operator applications (a transport sweep per matvec)
/// can stream per-iteration residuals to a logger, a progress bar or an
/// observer instead of parsing the history after the fact.  The default
/// implementation ignores the notification, so any quiet operator can opt
/// in with an empty `impl` block.
pub trait ObservedOperator: LinearOperator {
    /// Called after every residual-history entry: `iteration` is the
    /// number of Krylov iterations completed (0 for the initial-guess
    /// residual) and `relative_residual` is `‖b − A x‖₂ / ‖b‖₂` (for
    /// iterations after the first, the incremental Givens estimate of it).
    fn on_residual(&mut self, iteration: usize, relative_residual: f64) {
        let _ = (iteration, relative_residual);
    }
}

/// Adapter running any [`LinearOperator`] through the observed entry
/// points without emitting notifications.
pub struct SilentOperator<'a>(pub &'a mut dyn LinearOperator);

impl LinearOperator for SilentOperator<'_> {
    fn dim(&self) -> usize {
        self.0.dim()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.0.apply(x, y)
    }
}

impl ObservedOperator for SilentOperator<'_> {}

/// A dense matrix viewed as a [`LinearOperator`] (used by tests and by
/// callers that assemble small systems explicitly).
pub struct MatrixOperator {
    matrix: DenseMatrix,
}

impl MatrixOperator {
    /// Wrap a square dense matrix.
    ///
    /// # Panics
    /// If the matrix is not square.
    pub fn new(matrix: DenseMatrix) -> Self {
        assert!(matrix.is_square(), "MatrixOperator needs a square matrix");
        Self { matrix }
    }

    /// Borrow the wrapped matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }
}

impl LinearOperator for MatrixOperator {
    fn dim(&self) -> usize {
        self.matrix.rows()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.matrix
            .matvec_into(x, y)
            .expect("MatrixOperator dimension mismatch");
    }
}

/// A closure viewed as a [`LinearOperator`].
///
/// This is the adapter the transport solver uses: the closure captures
/// whatever sweep machinery it needs and the Krylov solver stays oblivious.
pub struct FnOperator<F: FnMut(&[f64], &mut [f64])> {
    dim: usize,
    f: F,
}

impl<F: FnMut(&[f64], &mut [f64])> FnOperator<F> {
    /// Wrap `f` as an operator of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F: FnMut(&[f64], &mut [f64])> LinearOperator for FnOperator<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_operator_applies_matvec() {
        let m = DenseMatrix::from_vec(2, 2, vec![2.0, 0.0, 0.0, 3.0]).unwrap();
        let mut op = MatrixOperator::new(m);
        assert_eq!(op.dim(), 2);
        let mut y = [0.0; 2];
        op.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, [2.0, 3.0]);
        assert_eq!(op.matrix().rows(), 2);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_matrix_rejected() {
        let _ = MatrixOperator::new(DenseMatrix::zeros(2, 3));
    }

    #[test]
    fn fn_operator_captures_state() {
        let mut calls = 0usize;
        {
            let mut op = FnOperator::new(3, |x, y| {
                calls += 1;
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi = 2.0 * xi;
                }
            });
            let mut y = [0.0; 3];
            op.apply(&[1.0, 2.0, 3.0], &mut y);
            assert_eq!(y, [2.0, 4.0, 6.0]);
            op.apply(&[1.0, 0.0, 0.0], &mut y);
        }
        assert_eq!(calls, 2);
    }
}
