//! # unsnap-krylov
//!
//! Matrix-free Krylov-subspace solvers for the UnSNAP workspace:
//! restarted GMRES(m) and conjugate gradients over an abstract
//! [`LinearOperator`].
//!
//! ## Why this crate exists
//!
//! The transport solver's inner ("source") iteration is a fixed point
//!
//! ```text
//! φ ← D L⁻¹ (S φ + q)
//! ```
//!
//! whose error contracts by the scattering ratio `c = σ_s/σ_t` per sweep.
//! For the paper's artificial data (`c ≈ 0.5–0.7`) that is tolerable; for
//! scattering-dominated media (`c ≥ 0.9`) source iteration needs hundreds
//! of sweeps and effectively stalls as `c → 1`.  The standard cure —
//! used by SNAP itself and by production codes — is to treat one sweep as
//! a preconditioner and hand the within-group equation
//!
//! ```text
//! (I − D L⁻¹ S) φ = D L⁻¹ q
//! ```
//!
//! to a Krylov method that only needs the operator's *action*, i.e. one
//! transport sweep per iteration.  This crate supplies those methods; the
//! sweep stays in `unsnap-core` behind the [`LinearOperator`] trait.
//!
//! ## Choosing a solver
//!
//! | situation | reach for |
//! |-----------|-----------|
//! | operator nonsymmetric (transport `I − L⁻¹S`, upwinded anything) | [`Gmres`] |
//! | operator SPD (diffusion, mass matrices, normal equations) | [`ConjugateGradient`] |
//! | `c ≲ 0.5`, a handful of sweeps converge anyway | plain source iteration — a Krylov basis buys nothing |
//! | `c ≥ 0.9` or tight tolerances | GMRES(m): sweep count grows like `√` of the SI count |
//! | memory-bound at huge `n` | shrink the GMRES `restart`; CG if symmetry allows |
//!
//! Rules of thumb: GMRES(m) stores `m + 1` vectors of the operator
//! dimension — on a transport problem that dimension is
//! `nodes × cells × groups`, so restart lengths of 10–30 are plenty and
//! memory stays far below the angular flux.  CG on a nonsymmetric
//! operator silently diverges or errors with
//! [`KrylovError::NotPositiveDefinite`]; when in doubt, use GMRES.
//!
//! Drivers that solve many same-shaped systems — one per subdomain per
//! outer iteration in the distributed block-Jacobi path — should hold a
//! [`GmresWorkspace`] per system and call
//! [`Gmres::solve_observed_in`], which reuses the Krylov basis
//! allocation across solves with bit-for-bit identical numerics.  CG
//! has the same surface at parity: a [`CgWorkspace`] per system plus
//! [`ConjugateGradient::solve_observed_in`] reuses the three working
//! vectors, and [`ConjugateGradient::solve_observed`] streams every
//! residual through [`ObservedOperator::on_residual`] — the low-order
//! DSA solves in `unsnap-accel` run through exactly this path.
//!
//! ## Example
//!
//! ```
//! use unsnap_krylov::{Gmres, GmresConfig, LinearOperator, MatrixOperator};
//! use unsnap_linalg::DenseMatrix;
//!
//! let a = DenseMatrix::from_fn(8, 8, |i, j| if i == j { 5.0 } else { 0.3 });
//! let b = vec![1.0; 8];
//! let mut op = MatrixOperator::new(a);
//! let mut x = vec![0.0; 8];
//! let outcome = Gmres::new(GmresConfig::default())
//!     .solve(&mut op, &b, &mut x)
//!     .unwrap();
//! assert!(outcome.converged);
//! assert!(outcome.final_residual < 1e-10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cg;
pub mod gmres;
pub mod operator;

pub use cg::{CgConfig, CgWorkspace, ConjugateGradient};
pub use gmres::{Gmres, GmresConfig, GmresWorkspace};
pub use operator::{FnOperator, LinearOperator, MatrixOperator, ObservedOperator, SilentOperator};

/// What a Krylov solve did: iteration counts and the residual trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KrylovOutcome {
    /// Whether the relative-residual tolerance was met.
    pub converged: bool,
    /// Krylov iterations executed (Arnoldi/CG steps; excludes residual
    /// recomputations).
    pub iterations: usize,
    /// Total operator applications, including residual recomputations —
    /// for a sweep-preconditioned transport solve this is the sweep count.
    pub matvecs: usize,
    /// Relative residual after the initial guess and after every
    /// iteration.
    pub residual_history: Vec<f64>,
    /// Final relative residual `‖b − A x‖₂ / ‖b‖₂`.
    pub final_residual: f64,
}

impl KrylovOutcome {
    /// Outcome for a trivially solved system (zero right-hand side).
    pub fn trivial() -> Self {
        Self {
            converged: true,
            ..Self::default()
        }
    }
}

/// Failure modes of the Krylov solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum KrylovError {
    /// Operand length does not match the operator dimension.
    DimensionMismatch {
        /// Operator dimension.
        operator: usize,
        /// Offending vector length.
        vector: usize,
    },
    /// A configuration value is unusable (e.g. zero restart length).
    InvalidConfig(&'static str),
    /// The Arnoldi/Hessenberg solve hit an exactly singular pivot.
    Breakdown {
        /// Iteration at which the breakdown occurred.
        at_iteration: usize,
        /// Relative residual estimate at the point of breakdown.
        residual: f64,
    },
    /// CG observed a direction of non-positive curvature: the operator is
    /// not symmetric positive definite.
    NotPositiveDefinite {
        /// Iteration at which the curvature test failed.
        at_iteration: usize,
    },
}

impl std::fmt::Display for KrylovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KrylovError::DimensionMismatch { operator, vector } => write!(
                f,
                "vector length {vector} does not match operator dimension {operator}"
            ),
            KrylovError::InvalidConfig(message) => f.write_str(message),
            KrylovError::Breakdown {
                at_iteration,
                residual,
            } => {
                write!(
                    f,
                    "Krylov breakdown at iteration {at_iteration} \
                     (relative residual {residual:.3e})"
                )
            }
            KrylovError::NotPositiveDefinite { at_iteration } => write!(
                f,
                "operator is not positive definite (detected at CG iteration {at_iteration})"
            ),
        }
    }
}

impl std::error::Error for KrylovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_trivial_is_converged_and_free() {
        let o = KrylovOutcome::trivial();
        assert!(o.converged);
        assert_eq!(o.iterations, 0);
        assert_eq!(o.matvecs, 0);
        assert!(o.residual_history.is_empty());
    }

    #[test]
    fn errors_display_useful_messages() {
        let e = KrylovError::DimensionMismatch {
            operator: 8,
            vector: 7,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('7'));
        assert!(KrylovError::Breakdown {
            at_iteration: 3,
            residual: 0.5
        }
        .to_string()
        .contains('3'));
        assert!(KrylovError::NotPositiveDefinite { at_iteration: 2 }
            .to_string()
            .contains("positive definite"));
        assert_eq!(KrylovError::InvalidConfig("bad").to_string(), "bad");
    }
}
