//! Restarted GMRES(m) over a matrix-free [`LinearOperator`].
//!
//! The implementation is the textbook Saad–Schultz method: an Arnoldi
//! process with modified Gram–Schmidt builds an orthonormal Krylov basis
//! `V` and an upper-Hessenberg projection `H`; Givens rotations maintain
//! the QR factorisation of `H` incrementally, so the least-squares residual
//! is available after every matrix–vector product without solving
//! anything.  When the basis reaches the restart length `m` (or the
//! residual estimate passes the tolerance), the minimiser is recovered by
//! one small back-substitution and the outer loop restarts from the true
//! residual.
//!
//! The Hessenberg matrix lives in a [`DenseMatrix`] from `unsnap-linalg`
//! and all vector arithmetic uses that crate's `vector` kernels, keeping
//! the hot inner products on the same stride-1 primitives as the rest of
//! the workspace.

use unsnap_linalg::matrix::DenseMatrix;
use unsnap_linalg::vector::{axpy, dot, norm2, scale};

use crate::operator::{LinearOperator, ObservedOperator, SilentOperator};
use crate::{KrylovError, KrylovOutcome};

/// Tuning knobs for [`Gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresConfig {
    /// Restart length `m`: the Krylov basis is rebuilt after this many
    /// matrix–vector products.  Memory grows as `m` basis vectors.
    pub restart: usize,
    /// Hard cap on matrix–vector products across all restart cycles.
    pub max_iterations: usize,
    /// Relative residual target: convergence is declared when
    /// `‖b − A x‖₂ ≤ tolerance · ‖b‖₂`.
    pub tolerance: f64,
}

impl Default for GmresConfig {
    fn default() -> Self {
        Self {
            restart: 30,
            max_iterations: 500,
            tolerance: 1e-10,
        }
    }
}

/// Reusable scratch for [`Gmres`] solves: the Arnoldi basis, the
/// Hessenberg projection and the small rotation/residual vectors.
///
/// A GMRES(m) solve allocates `m + 1` basis vectors of the operator
/// dimension; drivers that solve many same-shaped systems (one per
/// subdomain per outer iteration in the distributed block-Jacobi path)
/// can hold one workspace per system and pass it to
/// [`Gmres::solve_observed_in`] so the Krylov space is allocated once
/// and reused.  Every entry is overwritten before it is read, so a
/// reused workspace produces bit-for-bit the same iterates, residual
/// stream and outcome as a fresh one — only the allocator traffic
/// changes.
#[derive(Debug, Clone)]
pub struct GmresWorkspace {
    /// Arnoldi basis vectors, grown on demand up to `m + 1` slots.
    basis: Vec<Vec<f64>>,
    /// Hessenberg projection, `(m + 1) × m`.
    hess: DenseMatrix,
    /// Givens cosines.
    cs: Vec<f64>,
    /// Givens sines.
    sn: Vec<f64>,
    /// Rotated residual vector.
    g: Vec<f64>,
    /// True-residual scratch.
    residual: Vec<f64>,
    /// Arnoldi candidate vector.
    w: Vec<f64>,
}

impl Default for GmresWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl GmresWorkspace {
    /// An empty workspace; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        Self {
            basis: Vec::new(),
            hess: DenseMatrix::zeros(1, 1),
            cs: Vec::new(),
            sn: Vec::new(),
            g: Vec::new(),
            residual: Vec::new(),
            w: Vec::new(),
        }
    }

    /// Size every buffer for a restart length `m` and dimension `n`,
    /// reusing allocations when the shape is unchanged.
    fn prepare(&mut self, m: usize, n: usize) {
        if self.hess.rows() != m + 1 || self.hess.cols() != m {
            self.hess = DenseMatrix::zeros(m + 1, m);
        } else {
            self.hess.clear();
        }
        self.cs.clear();
        self.cs.resize(m, 0.0);
        self.sn.clear();
        self.sn.resize(m, 0.0);
        self.g.clear();
        self.g.resize(m + 1, 0.0);
        self.residual.clear();
        self.residual.resize(n, 0.0);
        self.w.clear();
        self.w.resize(n, 0.0);
        self.basis.retain(|v| v.len() == n);
        self.basis.truncate(m + 1);
    }

    /// Ensure basis slot `i` exists (length `n`) and return it.
    fn basis_slot(&mut self, i: usize, n: usize) -> &mut Vec<f64> {
        while self.basis.len() <= i {
            self.basis.push(vec![0.0; n]);
        }
        &mut self.basis[i]
    }
}

/// Restarted GMRES(m) solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gmres {
    config: GmresConfig,
}

impl Gmres {
    /// Create a solver with the given configuration.
    pub fn new(config: GmresConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GmresConfig {
        &self.config
    }

    /// Solve `A x = b`, using `x` as the initial guess and leaving the
    /// solution in it.
    pub fn solve(
        &self,
        op: &mut dyn LinearOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        self.solve_observed(&mut SilentOperator(op), b, x)
    }

    /// Solve `A x = b` while streaming every residual-history entry to the
    /// operator's [`ObservedOperator::on_residual`] hook.
    ///
    /// The notifications mirror [`KrylovOutcome::residual_history`]
    /// entry-for-entry, so an observer that records them reconstructs the
    /// history exactly.
    pub fn solve_observed(
        &self,
        op: &mut dyn ObservedOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        self.solve_observed_in(&mut GmresWorkspace::new(), op, b, x)
    }

    /// [`Gmres::solve_observed`] with caller-owned scratch: the Krylov
    /// basis and projection buffers live in `workspace` and are reused
    /// across calls instead of reallocated, which matters for drivers
    /// that solve one same-shaped system per subdomain per iteration.
    /// The numerical behaviour is identical to a fresh workspace.
    pub fn solve_observed_in(
        &self,
        ws: &mut GmresWorkspace,
        op: &mut dyn ObservedOperator,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<KrylovOutcome, KrylovError> {
        let n = op.dim();
        if b.len() != n || x.len() != n {
            return Err(KrylovError::DimensionMismatch {
                operator: n,
                vector: if b.len() != n { b.len() } else { x.len() },
            });
        }
        if self.config.restart == 0 {
            return Err(KrylovError::InvalidConfig(
                "GMRES restart length must be at least 1",
            ));
        }
        let m = self.config.restart.min(n.max(1));
        let b_norm = norm2(b);
        let target = if b_norm == 0.0 {
            // A zero right-hand side has the zero solution.
            x.fill(0.0);
            return Ok(KrylovOutcome::trivial());
        } else {
            self.config.tolerance * b_norm
        };

        let mut outcome = KrylovOutcome::default();
        ws.prepare(m, n);

        // True residual r = b − A x for the current iterate.
        let true_residual = |x: &mut [f64],
                             residual: &mut [f64],
                             op: &mut dyn ObservedOperator,
                             outcome: &mut KrylovOutcome| {
            op.apply(x, residual);
            outcome.matvecs += 1;
            for (r, bi) in residual.iter_mut().zip(b.iter()) {
                *r = bi - *r;
            }
            norm2(residual)
        };

        let mut beta = true_residual(x, &mut ws.residual, op, &mut outcome);
        outcome.residual_history.push(beta / b_norm);
        op.on_residual(outcome.iterations, beta / b_norm);
        if beta <= target {
            outcome.converged = true;
            outcome.final_residual = beta / b_norm;
            return Ok(outcome);
        }

        while outcome.iterations < self.config.max_iterations {
            // Start a cycle from the normalised true residual.  Basis
            // slots are overwritten before they are read, so a reused
            // workspace behaves exactly like a fresh one.
            ws.basis_slot(0, n);
            ws.basis[0].copy_from_slice(&ws.residual);
            scale(1.0 / beta, &mut ws.basis[0]);
            ws.hess.clear();
            ws.g.fill(0.0);
            ws.g[0] = beta;

            let mut k = 0; // columns of H filled this cycle
            while k < m && outcome.iterations < self.config.max_iterations {
                // Arnoldi step: w = A v_k, orthogonalise against the basis.
                op.apply(&ws.basis[k], &mut ws.w);
                outcome.iterations += 1;
                outcome.matvecs += 1;
                let w_norm = norm2(&ws.w);
                for i in 0..=k {
                    let h = dot(&ws.w, &ws.basis[i]);
                    ws.hess[(i, k)] = h;
                    axpy(-h, &ws.basis[i], &mut ws.w);
                }
                let h_next = norm2(&ws.w);
                ws.hess[(k + 1, k)] = h_next;

                // Apply the accumulated Givens rotations to the new column,
                // then generate the rotation that annihilates h_next.
                for i in 0..k {
                    let (hi, hj) = (ws.hess[(i, k)], ws.hess[(i + 1, k)]);
                    ws.hess[(i, k)] = ws.cs[i] * hi + ws.sn[i] * hj;
                    ws.hess[(i + 1, k)] = -ws.sn[i] * hi + ws.cs[i] * hj;
                }
                let (c, s) = givens(ws.hess[(k, k)], ws.hess[(k + 1, k)]);
                ws.cs[k] = c;
                ws.sn[k] = s;
                ws.hess[(k, k)] = c * ws.hess[(k, k)] + s * ws.hess[(k + 1, k)];
                ws.hess[(k + 1, k)] = 0.0;
                ws.g[k + 1] = -s * ws.g[k];
                ws.g[k] *= c;

                let est = ws.g[k + 1].abs();
                outcome.residual_history.push(est / b_norm);
                op.on_residual(outcome.iterations, est / b_norm);
                k += 1;

                // Happy breakdown: A v_k lay (numerically) inside the
                // span of the basis.  The test is scaled by ‖A v_k‖ —
                // the basis is orthonormal, so that is the only scale
                // the subdiagonal can be compared against.
                if est <= target || h_next <= f64::EPSILON * w_norm.max(f64::MIN_POSITIVE) {
                    // Converged (or happy breakdown: the Krylov space is
                    // invariant and the projected solution is exact).
                    break;
                }
                ws.basis_slot(k, n);
                ws.basis[k].copy_from_slice(&ws.w);
                scale(1.0 / h_next, &mut ws.basis[k]);
            }

            // Back-substitute R y = g and expand x += V y.
            let mut y = vec![0.0f64; k];
            for i in (0..k).rev() {
                let mut acc = ws.g[i];
                for j in (i + 1)..k {
                    acc -= ws.hess[(i, j)] * y[j];
                }
                let diag = ws.hess[(i, i)];
                if diag.abs() <= f64::MIN_POSITIVE {
                    return Err(KrylovError::Breakdown {
                        at_iteration: outcome.iterations,
                        residual: outcome.residual_history.last().copied().unwrap_or(1.0),
                    });
                }
                y[i] = acc / diag;
            }
            for (j, &yj) in y.iter().enumerate() {
                axpy(yj, &ws.basis[j], x);
            }

            // Restart from the true residual (guards against drift in the
            // incremental estimate).
            beta = true_residual(x, &mut ws.residual, op, &mut outcome);
            if beta <= target {
                outcome.converged = true;
                break;
            }
        }

        // `residual_history` keeps the incremental estimates exactly as
        // they were streamed to `on_residual`; the *true* relative
        // residual of the returned iterate is reported separately here.
        outcome.final_residual = beta / b_norm;
        Ok(outcome)
    }
}

/// Stable Givens rotation annihilating `b` against `a`:
/// returns `(c, s)` with `c·a + s·b = r`, `−s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64) {
    if b == 0.0 {
        (1.0, 0.0)
    } else if a.abs() > b.abs() {
        let t = b / a;
        let c = 1.0 / (1.0 + t * t).sqrt();
        (c.copysign(a.signum()), c * t * a.signum())
    } else {
        let t = a / b;
        let s = 1.0 / (1.0 + t * t).sqrt();
        (s * t * b.signum(), s.copysign(b.signum()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatrixOperator;
    use unsnap_linalg::vector::max_abs_diff;
    use unsnap_linalg::{LinearSolver, LuSolver};

    fn dominant(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + (i % 3) as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
    }

    #[test]
    fn givens_annihilates() {
        for (a, b) in [
            (3.0, 4.0),
            (-2.0, 1.0),
            (5.0, 0.0),
            (0.0, 2.0),
            (-1.0, -7.0),
        ] {
            let (c, s) = givens(a, b);
            assert!((-s * a + c * b).abs() < 1e-12, "({a}, {b})");
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_small_dominant_system_to_lu_accuracy() {
        let n = 12;
        let a = dominant(n);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let reference = LuSolver::new().solve(&a, &b).unwrap();

        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: n,
            max_iterations: 100,
            tolerance: 1e-12,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(outcome.converged, "history {:?}", outcome.residual_history);
        assert!(max_abs_diff(&x, &reference) < 1e-9);
        assert!(outcome.iterations <= n + 1);
    }

    #[test]
    fn full_memory_gmres_is_exact_in_n_steps() {
        // Unrestarted GMRES on an n-dimensional system converges in at
        // most n matvecs (exact arithmetic); allow slack for rounding.
        let n = 6;
        let a = dominant(n);
        let b = vec![1.0; n];
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: n,
            max_iterations: 4 * n,
            tolerance: 1e-11,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(outcome.converged);
        assert!(outcome.iterations <= n + 1);
    }

    #[test]
    fn restarting_still_converges() {
        let n = 24;
        let a = dominant(n);
        let b = vec![1.0; n];
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: 4,
            max_iterations: 400,
            tolerance: 1e-11,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(outcome.converged);
        assert!(max_abs_diff(&x, &reference) < 1e-8);
    }

    #[test]
    fn warm_start_reduces_work() {
        let n = 16;
        let a = dominant(n);
        let b = vec![2.0; n];
        let solver = Gmres::new(GmresConfig::default());

        let mut op = MatrixOperator::new(a);
        let mut cold = vec![0.0; n];
        let cold_out = solver.solve(&mut op, &b, &mut cold).unwrap();

        // Start from the converged answer: zero additional iterations.
        let mut warm = cold.clone();
        let warm_out = solver.solve(&mut op, &b, &mut warm).unwrap();
        assert!(warm_out.converged);
        assert_eq!(warm_out.iterations, 0);
        assert!(cold_out.iterations > 0);
    }

    #[test]
    fn huge_rhs_norm_does_not_trigger_false_breakdown() {
        // Regression: the happy-breakdown test was scaled by ‖b‖, so a
        // large right-hand side on a well-scaled operator collapsed
        // every cycle after one iteration.  The test must scale with
        // ‖A v‖ instead.
        let n = 24;
        let a = dominant(n);
        let b: Vec<f64> = (0..n).map(|i| 1e16 * (1.0 + (i % 3) as f64)).collect();
        let reference = LuSolver::new().solve(&a, &b).unwrap();
        let mut op = MatrixOperator::new(a);
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: 8,
            max_iterations: 200,
            tolerance: 1e-11,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(outcome.converged, "history {:?}", outcome.residual_history);
        let scale = reference.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_abs_diff(&x, &reference) < 1e-8 * scale);
    }

    #[test]
    fn reused_workspace_is_bit_for_bit_identical_to_fresh() {
        // One workspace driven through several solves (including a
        // dimension change) must reproduce the fresh-workspace outcome
        // exactly — iterates, history, counters.
        let solver = Gmres::new(GmresConfig {
            restart: 5,
            max_iterations: 200,
            tolerance: 1e-11,
        });
        let mut ws = GmresWorkspace::new();
        for n in [12usize, 12, 7, 12] {
            let a = dominant(n);
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();

            let mut fresh_op = MatrixOperator::new(a.clone());
            let mut fresh_x = vec![0.0; n];
            let fresh = solver.solve(&mut fresh_op, &b, &mut fresh_x).unwrap();

            let mut op = MatrixOperator::new(a);
            let mut x = vec![0.0; n];
            let reused = solver
                .solve_observed_in(&mut ws, &mut SilentOperator(&mut op), &b, &mut x)
                .unwrap();

            assert_eq!(fresh, reused, "outcome diverged at n = {n}");
            assert_eq!(fresh_x, x, "iterate diverged at n = {n}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let mut op = MatrixOperator::new(dominant(5));
        let mut x = vec![3.0; 5];
        let outcome = Gmres::default().solve(&mut op, &[0.0; 5], &mut x).unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn residual_history_is_monotone_within_a_cycle() {
        let n = 10;
        let mut op = MatrixOperator::new(dominant(n));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: n,
            max_iterations: 50,
            tolerance: 1e-12,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        // GMRES minimises the residual over a growing space: within the
        // (single) cycle the estimates never increase.
        for pair in outcome.residual_history.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1e-14,
                "history {:?}",
                outcome.residual_history
            );
        }
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut op = MatrixOperator::new(dominant(4));
        let mut x = vec![0.0; 4];
        let err = Gmres::default().solve(&mut op, &[1.0; 3], &mut x);
        assert!(matches!(err, Err(KrylovError::DimensionMismatch { .. })));
        let mut x_bad = vec![0.0; 2];
        assert!(Gmres::default()
            .solve(&mut op, &[1.0; 4], &mut x_bad)
            .is_err());
    }

    #[test]
    fn zero_restart_is_rejected() {
        let mut op = MatrixOperator::new(dominant(4));
        let mut x = vec![0.0; 4];
        let cfg = GmresConfig {
            restart: 0,
            ..GmresConfig::default()
        };
        assert!(matches!(
            Gmres::new(cfg).solve(&mut op, &[1.0; 4], &mut x),
            Err(KrylovError::InvalidConfig(_))
        ));
    }

    #[test]
    fn iteration_cap_reports_unconverged() {
        let n = 32;
        let mut op = MatrixOperator::new(dominant(n));
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let outcome = Gmres::new(GmresConfig {
            restart: 2,
            max_iterations: 2,
            tolerance: 1e-14,
        })
        .solve(&mut op, &b, &mut x)
        .unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.iterations, 2);
        assert!(outcome.final_residual > 0.0);
    }
}
