//! [`ProblemBuilder`]: validating, grouped construction of [`Problem`]s.
//!
//! A [`Problem`] is a flat struct of ~30 fields; filling it by hand is
//! error-prone and its `validate()` only runs deep inside
//! `TransportSolver::new`.  The builder groups the fields into five
//! sub-configurations that mirror how runs are actually specified —
//!
//! * [`GridConfig`] — mesh extents and twist;
//! * [`PhysicsConfig`] — discretisation and data (element order, phase
//!   space, materials, boundaries, scattering ratio);
//! * [`IterationConfig`] — iteration counts, tolerance, the inner
//!   strategy and the distributed subdomain budget;
//! * [`AccelConfig`] — the low-order (DSA) accelerator selection and
//!   its CG tolerance/budget;
//! * [`ExecutionConfig`] — dense back end, concurrency scheme, threads,
//!   precomputation and timing knobs —
//!
//! and validates everything (including cross-field invariants no single
//! setter can check) *up front* in [`ProblemBuilder::build`], reporting
//! failures as [`Error::InvalidProblem`] with the offending field named.
//!
//! Every paper preset is available as a builder shorthand
//! ([`ProblemBuilder::tiny`], [`ProblemBuilder::quickstart`],
//! [`ProblemBuilder::figure3_full`], …), and building an untouched preset
//! reproduces the corresponding `Problem::*` constructor exactly, so
//! existing callers migrate without behaviour change:
//!
//! ```
//! use unsnap_core::builder::ProblemBuilder;
//! use unsnap_core::problem::Problem;
//!
//! let built = ProblemBuilder::quickstart().build().unwrap();
//! assert_eq!(built, Problem::quickstart());
//!
//! let custom = ProblemBuilder::tiny()
//!     .mesh(4)
//!     .scattering_ratio(0.9)
//!     .build()
//!     .unwrap();
//! assert_eq!(custom.num_cells(), 64);
//! ```

use unsnap_linalg::SolverKind;
use unsnap_mesh::boundary::DomainBoundaries;
use unsnap_sweep::{ConcurrencyScheme, ThreadedLoops};

use crate::data::{MaterialOption, SourceOption};
use crate::error::{Error, Result};
use crate::kernel::KernelKind;
use crate::layout::Precision;
use crate::problem::Problem;
use crate::session::Session;
use crate::solver::TransportSolver;
use crate::strategy::{AcceleratorKind, StrategyKind};

/// Mesh extents and twist (the spatial half of a [`Problem`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cells along z.
    pub nz: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// Domain length along z.
    pub lz: f64,
    /// Maximum mesh twist angle in radians.
    pub twist: f64,
}

impl Default for GridConfig {
    /// The `tiny` preset's grid: a unit cube of 3³ cells, twisted by the
    /// paper's 0.001 rad.
    fn default() -> Self {
        Self {
            nx: 3,
            ny: 3,
            nz: 3,
            lx: 1.0,
            ly: 1.0,
            lz: 1.0,
            twist: 0.001,
        }
    }
}

/// Discretisation and physical data.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicsConfig {
    /// Lagrange element order (1 = linear).
    pub element_order: usize,
    /// Angles per octant of the Sn quadrature.
    pub angles_per_octant: usize,
    /// Number of energy groups.
    pub num_groups: usize,
    /// Artificial material layout.
    pub material: MaterialOption,
    /// Artificial fixed-source layout.
    pub source: SourceOption,
    /// Boundary conditions on the six domain faces.
    pub boundaries: DomainBoundaries,
    /// Optional within-group scattering-ratio override (see
    /// [`Problem::scattering_ratio`]).
    pub scattering_ratio: Option<f64>,
    /// Optional upscatter fraction layered on the scattering-ratio
    /// override (see [`Problem::upscatter_ratio`]).
    pub upscatter_ratio: Option<f64>,
}

impl Default for PhysicsConfig {
    /// The `tiny` preset's physics: linear elements, 2 angles/octant,
    /// 2 groups, Option-1 data, vacuum boundaries.
    fn default() -> Self {
        Self {
            element_order: 1,
            angles_per_octant: 2,
            num_groups: 2,
            material: MaterialOption::Option1,
            source: SourceOption::Option1,
            boundaries: DomainBoundaries::vacuum(),
            scattering_ratio: None,
            upscatter_ratio: None,
        }
    }
}

/// Iteration structure and inner-solve strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationConfig {
    /// Inner (source) iterations per outer iteration.
    pub inner_iterations: usize,
    /// Outer (group-coupling) iterations.
    pub outer_iterations: usize,
    /// Pointwise convergence tolerance (0 = run every iteration).
    pub convergence_tolerance: f64,
    /// Inner-iteration strategy.
    pub strategy: StrategyKind,
    /// GMRES restart length (read by the Krylov strategies).
    pub gmres_restart: usize,
    /// Dedicated per-rank subdomain Krylov budget for the distributed
    /// block-Jacobi driver (`None` = cap with `inner_iterations`, the
    /// historical behaviour; see
    /// [`Problem::subdomain_krylov_budget`]).
    pub subdomain_krylov_budget: Option<usize>,
}

impl Default for IterationConfig {
    /// The `tiny` preset's iteration structure: 2 inners × 1 outer, no
    /// tolerance, source iteration, shared subdomain budget.
    fn default() -> Self {
        Self {
            inner_iterations: 2,
            outer_iterations: 1,
            convergence_tolerance: 0.0,
            strategy: StrategyKind::SourceIteration,
            gmres_restart: 20,
            subdomain_krylov_budget: None,
        }
    }
}

/// Low-order acceleration: accelerator selection and the DSA CG knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Which accelerator (if any) augments the Krylov strategies; the
    /// `DSA-SI` strategy applies DSA regardless (see
    /// [`Problem::accelerator`]).
    pub accelerator: AcceleratorKind,
    /// Relative residual target of the low-order DSA CG solve.
    pub cg_tolerance: f64,
    /// Iteration cap of the low-order DSA CG solve.
    pub cg_iterations: usize,
}

impl Default for AccelConfig {
    /// No accelerator; a tight, cheap low-order solve when one runs.
    fn default() -> Self {
        Self {
            accelerator: AcceleratorKind::None,
            cg_tolerance: 1e-8,
            cg_iterations: 200,
        }
    }
}

/// Execution environment: back end, concurrency and instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionConfig {
    /// Local dense solver back end.
    pub solver: SolverKind,
    /// Concurrency scheme for the sweep.
    pub scheme: ConcurrencyScheme,
    /// Worker threads for the solver's pool (`None` = the machine
    /// default; force-overridable with `RAYON_NUM_THREADS`).
    pub num_threads: Option<usize>,
    /// Precompute per-element integrals.
    pub precompute_integrals: bool,
    /// Time the linear solve separately.
    pub time_solve: bool,
    /// Which assemble kernel runs the per-cell hot loop (see
    /// [`Problem::kernel`]).
    pub kernel: KernelKind,
    /// Storage/solve precision of the per-cell dense solves (see
    /// [`Problem::precision`]).
    pub precision: Precision,
}

impl Default for ExecutionConfig {
    /// The `tiny` preset's execution: Gaussian elimination, serial
    /// scheme, one thread, precomputed integrals, no solve timer, the
    /// reference kernel in full double precision.
    fn default() -> Self {
        Self {
            solver: SolverKind::GaussianElimination,
            scheme: ConcurrencyScheme::serial(),
            num_threads: Some(1),
            precompute_integrals: true,
            time_solve: false,
            kernel: KernelKind::Reference,
            precision: Precision::F64,
        }
    }
}

/// A validating builder for [`Problem`]s.
///
/// Defaults to the `tiny` preset; see the [module docs](self) for the
/// grouping rationale and examples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProblemBuilder {
    /// Mesh extents and twist.
    pub grid: GridConfig,
    /// Discretisation and physical data.
    pub physics: PhysicsConfig,
    /// Iteration structure and strategy.
    pub iteration: IterationConfig,
    /// Low-order acceleration (DSA) knobs.
    pub accel: AccelConfig,
    /// Execution environment.
    pub execution: ExecutionConfig,
}

impl ProblemBuilder {
    /// A builder preloaded with the defaults (the `tiny` preset).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decompose an existing [`Problem`] into a builder, so presets and
    /// externally-constructed problems can be tweaked field-by-field.
    pub fn from_problem(p: &Problem) -> Self {
        Self {
            grid: GridConfig {
                nx: p.nx,
                ny: p.ny,
                nz: p.nz,
                lx: p.lx,
                ly: p.ly,
                lz: p.lz,
                twist: p.twist,
            },
            physics: PhysicsConfig {
                element_order: p.element_order,
                angles_per_octant: p.angles_per_octant,
                num_groups: p.num_groups,
                material: p.material,
                source: p.source,
                boundaries: p.boundaries,
                scattering_ratio: p.scattering_ratio,
                upscatter_ratio: p.upscatter_ratio,
            },
            iteration: IterationConfig {
                inner_iterations: p.inner_iterations,
                outer_iterations: p.outer_iterations,
                convergence_tolerance: p.convergence_tolerance,
                strategy: p.strategy,
                gmres_restart: p.gmres_restart,
                subdomain_krylov_budget: p.subdomain_krylov_budget,
            },
            accel: AccelConfig {
                accelerator: p.accelerator,
                cg_tolerance: p.accel_cg_tolerance,
                cg_iterations: p.accel_cg_iterations,
            },
            execution: ExecutionConfig {
                solver: p.solver,
                scheme: p.scheme,
                num_threads: p.num_threads,
                precompute_integrals: p.precompute_integrals,
                time_solve: p.time_solve,
                kernel: p.kernel,
                precision: p.precision,
            },
        }
    }

    // ------------------------------------------------------------------
    // Preset shorthands (each reproduces the matching `Problem::*`).
    // ------------------------------------------------------------------

    /// The `tiny` smoke-test preset.
    pub fn tiny() -> Self {
        Self::from_problem(&Problem::tiny())
    }

    /// The `quickstart` preset.
    pub fn quickstart() -> Self {
        Self::from_problem(&Problem::quickstart())
    }

    /// The full-size Figure 3 preset.
    pub fn figure3_full() -> Self {
        Self::from_problem(&Problem::figure3_full())
    }

    /// The scaled-down Figure 3 preset.
    pub fn figure3_scaled() -> Self {
        Self::from_problem(&Problem::figure3_scaled())
    }

    /// The full-size Figure 4 preset.
    pub fn figure4_full() -> Self {
        Self::from_problem(&Problem::figure4_full())
    }

    /// The scaled-down Figure 4 preset.
    pub fn figure4_scaled() -> Self {
        Self::from_problem(&Problem::figure4_scaled())
    }

    /// The full-size Table II preset.
    pub fn table2_full(element_order: usize, solver: SolverKind) -> Self {
        Self::from_problem(&Problem::table2_full(element_order, solver))
    }

    /// The scaled-down Table II preset.
    pub fn table2_scaled(element_order: usize, solver: SolverKind) -> Self {
        Self::from_problem(&Problem::table2_scaled(element_order, solver))
    }

    // ------------------------------------------------------------------
    // Grouped setters.
    // ------------------------------------------------------------------

    /// Replace the whole grid configuration.
    pub fn grid(mut self, grid: GridConfig) -> Self {
        self.grid = grid;
        self
    }

    /// Replace the whole physics configuration.
    pub fn physics(mut self, physics: PhysicsConfig) -> Self {
        self.physics = physics;
        self
    }

    /// Replace the whole iteration configuration.
    pub fn iteration(mut self, iteration: IterationConfig) -> Self {
        self.iteration = iteration;
        self
    }

    /// Replace the whole acceleration configuration.
    pub fn accel(mut self, accel: AccelConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Replace the whole execution configuration.
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    // ------------------------------------------------------------------
    // Fluent per-field setters.
    // ------------------------------------------------------------------

    /// Cubic mesh with `n` cells per side.
    pub fn mesh(mut self, n: usize) -> Self {
        self.grid.nx = n;
        self.grid.ny = n;
        self.grid.nz = n;
        self
    }

    /// Mesh cell counts per axis.
    pub fn cells(mut self, nx: usize, ny: usize, nz: usize) -> Self {
        self.grid.nx = nx;
        self.grid.ny = ny;
        self.grid.nz = nz;
        self
    }

    /// Domain extents per axis.
    pub fn extents(mut self, lx: f64, ly: f64, lz: f64) -> Self {
        self.grid.lx = lx;
        self.grid.ly = ly;
        self.grid.lz = lz;
        self
    }

    /// Maximum mesh twist angle in radians.
    pub fn twist(mut self, twist: f64) -> Self {
        self.grid.twist = twist;
        self
    }

    /// Lagrange element order.
    pub fn order(mut self, order: usize) -> Self {
        self.physics.element_order = order;
        self
    }

    /// Angles per octant and energy groups.
    pub fn phase_space(mut self, angles_per_octant: usize, num_groups: usize) -> Self {
        self.physics.angles_per_octant = angles_per_octant;
        self.physics.num_groups = num_groups;
        self
    }

    /// Boundary conditions on the six domain faces.
    pub fn boundaries(mut self, boundaries: DomainBoundaries) -> Self {
        self.physics.boundaries = boundaries;
        self
    }

    /// Within-group scattering-ratio override.
    pub fn scattering_ratio(mut self, c: f64) -> Self {
        self.physics.scattering_ratio = Some(c);
        self
    }

    /// Upscatter fraction layered on the scattering-ratio override: the
    /// matrix keeps `(1 − u) · c · σ_t` within group and spreads
    /// `u · c · σ_t` equally over every other group, making the group
    /// coupling irreducible (see [`Problem::upscatter_ratio`]).
    pub fn upscatter(mut self, u: f64) -> Self {
        self.physics.upscatter_ratio = Some(u);
        self
    }

    /// Inner and outer iteration counts.
    pub fn iterations(mut self, inner: usize, outer: usize) -> Self {
        self.iteration.inner_iterations = inner;
        self.iteration.outer_iterations = outer;
        self
    }

    /// Pointwise convergence tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.iteration.convergence_tolerance = tolerance;
        self
    }

    /// Inner-iteration strategy.
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.iteration.strategy = strategy;
        self
    }

    /// GMRES restart length.
    pub fn gmres_restart(mut self, restart: usize) -> Self {
        self.iteration.gmres_restart = restart;
        self
    }

    /// Dedicated per-rank subdomain Krylov budget for the distributed
    /// block-Jacobi driver.
    pub fn subdomain_krylov_budget(mut self, budget: usize) -> Self {
        self.iteration.subdomain_krylov_budget = Some(budget);
        self
    }

    /// Low-order accelerator selection.
    pub fn accelerator(mut self, accelerator: AcceleratorKind) -> Self {
        self.accel.accelerator = accelerator;
        self
    }

    /// Relative residual target of the low-order DSA CG solve.
    pub fn accel_cg_tolerance(mut self, tolerance: f64) -> Self {
        self.accel.cg_tolerance = tolerance;
        self
    }

    /// Iteration cap of the low-order DSA CG solve.
    pub fn accel_cg_iterations(mut self, iterations: usize) -> Self {
        self.accel.cg_iterations = iterations;
        self
    }

    /// Local dense solver back end.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.execution.solver = solver;
        self
    }

    /// Concurrency scheme for the sweep.
    pub fn scheme(mut self, scheme: ConcurrencyScheme) -> Self {
        self.execution.scheme = scheme;
        self
    }

    /// Worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.execution.num_threads = Some(threads);
        self
    }

    /// Precompute per-element integrals.
    pub fn precompute_integrals(mut self, on: bool) -> Self {
        self.execution.precompute_integrals = on;
        self
    }

    /// Time the linear solve separately.
    pub fn time_solve(mut self, on: bool) -> Self {
        self.execution.time_solve = on;
        self
    }

    /// Assemble kernel for the per-cell hot loop.
    pub fn kernel(mut self, kernel: KernelKind) -> Self {
        self.execution.kernel = kernel;
        self
    }

    /// Storage/solve precision of the per-cell dense solves.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.execution.precision = precision;
        self
    }

    /// Apply the `UNSNAP_STRATEGY`, `UNSNAP_ACCEL`, `UNSNAP_SOLVER`,
    /// `UNSNAP_SCHEME`, `UNSNAP_KERNEL`, `UNSNAP_PRECISION`,
    /// `UNSNAP_THREADS` and `UNSNAP_SUBDOMAIN_ITERS`
    /// environment overrides (the enum knobs round-trip through
    /// `FromStr`/`Display`, so any label the workspace prints is
    /// accepted; `UNSNAP_THREADS` is a positive worker-thread count for
    /// the solver's pool and `UNSNAP_SUBDOMAIN_ITERS` a positive
    /// per-rank Krylov budget for the distributed driver).  Unset
    /// variables leave the builder unchanged; a set but unparsable
    /// variable is an [`Error::InvalidProblem`] naming the knob.
    ///
    /// `UNSNAP_PROGRESS_MS` and `UNSNAP_CHECKPOINT_ITERS` are validated
    /// here too — a non-negative millisecond count (zero disables rate
    /// limiting) and a positive outer-iteration cadence respectively —
    /// even though the progress value is consumed by
    /// [`ProgressObserver::from_env`](crate::session::ProgressObserver::from_env)
    /// rather than stored on the builder: a typo'd interval should fail
    /// the run up front, not silently fall back to the default cadence.
    ///
    /// `UNSNAP_THREADS` sizes the pool *request* like
    /// [`ProblemBuilder::threads`] and is subject to builder validation
    /// (e.g. the angle-threaded scheme's thread bound).  The lower-level
    /// `RAYON_NUM_THREADS` variable instead force-overrides every pool at
    /// construction time, bypassing problem validation — that is the CI
    /// determinism-matrix knob, not a configuration surface.
    pub fn env_overrides(mut self) -> Result<Self> {
        fn parse_env<T: std::str::FromStr<Err = String>>(
            var: &str,
            field: &'static str,
        ) -> Result<Option<T>> {
            match std::env::var(var) {
                Ok(raw) => raw
                    .parse()
                    .map(Some)
                    .map_err(|e: String| Error::invalid_problem(field, format!("{var}: {e}"))),
                Err(_) => Ok(None),
            }
        }
        if let Some(strategy) = parse_env::<StrategyKind>("UNSNAP_STRATEGY", "strategy")? {
            self.iteration.strategy = strategy;
        }
        if let Some(accelerator) = parse_env::<AcceleratorKind>("UNSNAP_ACCEL", "accelerator")? {
            self.accel.accelerator = accelerator;
        }
        if let Ok(raw) = std::env::var("UNSNAP_SUBDOMAIN_ITERS") {
            let budget: usize = raw.trim().parse().map_err(|e| {
                Error::invalid_problem(
                    "subdomain_krylov_budget",
                    format!("UNSNAP_SUBDOMAIN_ITERS: {e}"),
                )
            })?;
            if budget == 0 {
                return Err(Error::invalid_problem(
                    "subdomain_krylov_budget",
                    "UNSNAP_SUBDOMAIN_ITERS: per-rank Krylov budget must be at least 1",
                ));
            }
            self.iteration.subdomain_krylov_budget = Some(budget);
        }
        if let Some(solver) = parse_env::<SolverKind>("UNSNAP_SOLVER", "solver")? {
            self.execution.solver = solver;
        }
        if let Some(scheme) = parse_env::<ConcurrencyScheme>("UNSNAP_SCHEME", "scheme")? {
            self.execution.scheme = scheme;
        }
        if let Some(kernel) = parse_env::<KernelKind>("UNSNAP_KERNEL", "kernel")? {
            self.execution.kernel = kernel;
        }
        if let Some(precision) = parse_env::<Precision>("UNSNAP_PRECISION", "precision")? {
            self.execution.precision = precision;
        }
        if let Ok(raw) = std::env::var("UNSNAP_THREADS") {
            let threads: usize = raw.trim().parse().map_err(|e| {
                Error::invalid_problem("num_threads", format!("UNSNAP_THREADS: {e}"))
            })?;
            if threads == 0 {
                return Err(Error::invalid_problem(
                    "num_threads",
                    "UNSNAP_THREADS: thread count must be at least 1",
                ));
            }
            self.execution.num_threads = Some(threads);
        }
        if let Ok(raw) = std::env::var(crate::session::ProgressObserver::INTERVAL_ENV) {
            raw.trim().parse::<u64>().map_err(|e| {
                Error::invalid_problem("progress_interval_ms", format!("UNSNAP_PROGRESS_MS: {e}"))
            })?;
        }
        // `UNSNAP_CHECKPOINT_ITERS` is consumed by the `unsnap-runlog`
        // checkpoint cadence (checkpoint every N outer iterations), but
        // validated here for the same reason as the progress interval:
        // a typo'd cadence should fail the run up front.
        if let Ok(raw) = std::env::var("UNSNAP_CHECKPOINT_ITERS") {
            let every: usize = raw.trim().parse().map_err(|e| {
                Error::invalid_problem("checkpoint_iters", format!("UNSNAP_CHECKPOINT_ITERS: {e}"))
            })?;
            if every == 0 {
                return Err(Error::invalid_problem(
                    "checkpoint_iters",
                    "UNSNAP_CHECKPOINT_ITERS: checkpoint cadence must be at least 1",
                ));
            }
        }
        Ok(self)
    }

    /// Assemble the flat [`Problem`] without validating (used by `build`
    /// and by tests that target `Problem::validate` directly).
    pub fn assemble(&self) -> Problem {
        Problem {
            nx: self.grid.nx,
            ny: self.grid.ny,
            nz: self.grid.nz,
            lx: self.grid.lx,
            ly: self.grid.ly,
            lz: self.grid.lz,
            twist: self.grid.twist,
            element_order: self.physics.element_order,
            angles_per_octant: self.physics.angles_per_octant,
            num_groups: self.physics.num_groups,
            material: self.physics.material,
            source: self.physics.source,
            boundaries: self.physics.boundaries,
            inner_iterations: self.iteration.inner_iterations,
            outer_iterations: self.iteration.outer_iterations,
            convergence_tolerance: self.iteration.convergence_tolerance,
            solver: self.execution.solver,
            strategy: self.iteration.strategy,
            gmres_restart: self.iteration.gmres_restart,
            accelerator: self.accel.accelerator,
            accel_cg_tolerance: self.accel.cg_tolerance,
            accel_cg_iterations: self.accel.cg_iterations,
            subdomain_krylov_budget: self.iteration.subdomain_krylov_budget,
            scattering_ratio: self.physics.scattering_ratio,
            upscatter_ratio: self.physics.upscatter_ratio,
            scheme: self.execution.scheme,
            num_threads: self.execution.num_threads,
            precompute_integrals: self.execution.precompute_integrals,
            time_solve: self.execution.time_solve,
            kernel: self.execution.kernel,
            precision: self.execution.precision,
        }
    }

    /// Validate every field and cross-field invariant, returning the
    /// assembled [`Problem`] or the first [`Error::InvalidProblem`].
    ///
    /// On top of [`Problem::validate`]'s per-field checks, the builder
    /// enforces the invariants only a construction-time view can see:
    ///
    /// * the angular-flux size `(p+1)³ · cells · groups · angles` must
    ///   not overflow `usize` (element order versus mesh size);
    /// * the convergence tolerance must be finite and non-negative;
    /// * the angle-threaded scheme cannot use more threads than there are
    ///   angles in an octant (the extra threads could never be assigned
    ///   work).
    ///
    /// Cross-field rules involving only `Problem` fields (such as
    /// rejecting `accelerator = dsa` with plain source iteration, which
    /// would silently ignore the knob) live in [`Problem::validate`] so
    /// they hold on every construction path, not just the builder's.
    pub fn build(&self) -> Result<Problem> {
        let problem = self.assemble();
        problem.validate()?;

        if !(problem.convergence_tolerance >= 0.0 && problem.convergence_tolerance.is_finite()) {
            return Err(Error::invalid_problem(
                "convergence_tolerance",
                format!(
                    "tolerance must be finite and non-negative, got {}",
                    problem.convergence_tolerance
                ),
            ));
        }

        // Element order versus mesh size: the angular flux must be
        // addressable.  `(p+1)³` nodes per element times cells, groups
        // and angles overflows usize long before it allocates.
        let unknowns = (problem.element_order + 1)
            .checked_pow(3)
            .and_then(|nodes| nodes.checked_mul(problem.num_cells()))
            .and_then(|n| n.checked_mul(problem.num_groups))
            .and_then(|n| n.checked_mul(problem.num_angles()));
        if unknowns.is_none() {
            return Err(Error::invalid_problem(
                "element_order",
                format!(
                    "order-{} elements on a {}x{}x{} mesh with {} groups and {} angles \
                     overflow the addressable angular-flux size",
                    problem.element_order,
                    problem.nx,
                    problem.ny,
                    problem.nz,
                    problem.num_groups,
                    problem.num_angles(),
                ),
            ));
        }

        if problem.scheme.threaded == ThreadedLoops::Angles {
            if let Some(threads) = problem.num_threads {
                if threads > problem.angles_per_octant {
                    return Err(Error::invalid_problem(
                        "num_threads",
                        format!(
                            "the angle-threaded scheme parallelises over the {} angles of one \
                             octant; {} threads cannot all be assigned work",
                            problem.angles_per_octant, threads
                        ),
                    ));
                }
            }
        }

        Ok(problem)
    }

    /// Build the problem and a [`TransportSolver`] for it in one step.
    pub fn solver_for(&self) -> Result<TransportSolver> {
        TransportSolver::new(&self.build()?)
    }

    /// Build the problem and open a [`Session`] on it in one step.
    pub fn session(&self) -> Result<Session> {
        Session::new(&self.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_the_tiny_preset() {
        assert_eq!(ProblemBuilder::new().build().unwrap(), Problem::tiny());
        assert_eq!(ProblemBuilder::tiny(), ProblemBuilder::default());
    }

    #[test]
    fn presets_round_trip() {
        assert_eq!(
            ProblemBuilder::quickstart().build().unwrap(),
            Problem::quickstart()
        );
        assert_eq!(
            ProblemBuilder::figure3_full().build().unwrap(),
            Problem::figure3_full()
        );
        assert_eq!(
            ProblemBuilder::figure4_scaled().build().unwrap(),
            Problem::figure4_scaled()
        );
        assert_eq!(
            ProblemBuilder::table2_scaled(2, SolverKind::Mkl)
                .build()
                .unwrap(),
            Problem::table2_scaled(2, SolverKind::Mkl)
        );
    }

    #[test]
    fn fluent_setters_apply() {
        let p = ProblemBuilder::tiny()
            .mesh(5)
            .order(2)
            .phase_space(3, 7)
            .threads(2)
            .solver(SolverKind::Mkl)
            .strategy(StrategyKind::SweepGmres)
            .gmres_restart(11)
            .tolerance(1e-7)
            .iterations(9, 2)
            .time_solve(true)
            .build()
            .unwrap();
        assert_eq!(p.num_cells(), 125);
        assert_eq!(p.nodes_per_element(), 27);
        assert_eq!((p.angles_per_octant, p.num_groups), (3, 7));
        assert_eq!(p.num_threads, Some(2));
        assert_eq!(p.solver, SolverKind::Mkl);
        assert_eq!(p.strategy, StrategyKind::SweepGmres);
        assert_eq!(p.gmres_restart, 11);
        assert_eq!(p.convergence_tolerance, 1e-7);
        assert_eq!((p.inner_iterations, p.outer_iterations), (9, 2));
        assert!(p.time_solve);
    }

    #[test]
    fn invalid_fields_name_themselves() {
        let err = ProblemBuilder::tiny().mesh(0).build().unwrap_err();
        assert_eq!(err.invalid_field(), Some("nx"));
        let err = ProblemBuilder::tiny().order(0).build().unwrap_err();
        assert_eq!(err.invalid_field(), Some("element_order"));
        let err = ProblemBuilder::tiny()
            .scattering_ratio(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("scattering_ratio"));
        let err = ProblemBuilder::tiny()
            .scattering_ratio(1.5)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("scattering_ratio"));
    }

    #[test]
    fn upscatter_validation_needs_a_base_ratio_and_two_groups() {
        // Dangling upscatter (no scattering_ratio to split).
        let err = ProblemBuilder::tiny().upscatter(0.2).build().unwrap_err();
        assert_eq!(err.invalid_field(), Some("upscatter_ratio"));
        // One group has nothing to scatter up into.
        let err = ProblemBuilder::tiny()
            .phase_space(2, 1)
            .scattering_ratio(0.9)
            .upscatter(0.2)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("upscatter_ratio"));
        // Out-of-range fractions.
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let err = ProblemBuilder::tiny()
                .scattering_ratio(0.9)
                .upscatter(bad)
                .build()
                .unwrap_err();
            assert_eq!(err.invalid_field(), Some("upscatter_ratio"), "u = {bad}");
        }
        // The valid combination builds.
        let p = ProblemBuilder::tiny()
            .scattering_ratio(0.9)
            .upscatter(0.2)
            .build()
            .unwrap();
        assert_eq!(p.upscatter_ratio, Some(0.2));
    }

    #[test]
    fn cross_field_overflow_is_rejected() {
        let err = ProblemBuilder::tiny()
            .mesh(1 << 21)
            .order(7)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("element_order"));
    }

    #[test]
    fn cross_field_tolerance_must_be_finite() {
        let err = ProblemBuilder::tiny()
            .tolerance(f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("convergence_tolerance"));
        let err = ProblemBuilder::tiny().tolerance(-1e-6).build().unwrap_err();
        assert_eq!(err.invalid_field(), Some("convergence_tolerance"));
    }

    #[test]
    fn cross_field_dangling_accelerator_is_rejected() {
        // DSA with plain SI would silently never run: reject it and
        // point at the dedicated strategy.
        let err = ProblemBuilder::tiny()
            .accelerator(AcceleratorKind::Dsa)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("accelerator"));
        // With a strategy that reads the knob, the same selection is fine.
        for strategy in [StrategyKind::DsaSourceIteration, StrategyKind::SweepGmres] {
            assert!(ProblemBuilder::tiny()
                .strategy(strategy)
                .accelerator(AcceleratorKind::Dsa)
                .build()
                .is_ok());
        }
        // DSA-SI without the knob is also fine (the strategy implies it).
        assert!(ProblemBuilder::tiny()
            .strategy(StrategyKind::DsaSourceIteration)
            .build()
            .is_ok());
    }

    #[test]
    fn accel_and_subdomain_knobs_apply_and_validate() {
        let p = ProblemBuilder::tiny()
            .strategy(StrategyKind::DsaSourceIteration)
            .accel_cg_tolerance(1e-11)
            .accel_cg_iterations(33)
            .subdomain_krylov_budget(5)
            .build()
            .unwrap();
        assert_eq!(p.accel_cg_tolerance, 1e-11);
        assert_eq!(p.accel_cg_iterations, 33);
        assert_eq!(p.subdomain_krylov_budget, Some(5));

        let err = ProblemBuilder::tiny()
            .accel_cg_tolerance(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("accel_cg_tolerance"));
        let err = ProblemBuilder::tiny()
            .accel_cg_iterations(0)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("accel_cg_iterations"));
        let err = ProblemBuilder::tiny()
            .subdomain_krylov_budget(0)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("subdomain_krylov_budget"));
    }

    #[test]
    fn cross_field_angle_threads_are_bounded() {
        let scheme = crate::problem::angle_threaded_scheme();
        let err = ProblemBuilder::tiny()
            .scheme(scheme)
            .threads(16)
            .build()
            .unwrap_err();
        assert_eq!(err.invalid_field(), Some("num_threads"));
        // Within the angle budget the same scheme is fine.
        assert!(ProblemBuilder::tiny()
            .scheme(scheme)
            .threads(2)
            .build()
            .is_ok());
    }

    #[test]
    fn scattering_ratio_of_one_is_now_expressible() {
        // The conservative-medium limit c = 1 is a valid (if slowly
        // converging) configuration; the seed rejected it and instead
        // accepted the meaningless c = 0.  The whole path must agree:
        // build, cross-section generation and solver construction.
        let problem = ProblemBuilder::tiny()
            .scattering_ratio(1.0)
            .build()
            .unwrap();
        assert!(TransportSolver::new(&problem).is_ok());
    }

    #[test]
    fn builder_solver_and_session_shortcuts_work() {
        let mut solver = ProblemBuilder::tiny().solver_for().unwrap();
        let direct = solver.run().unwrap();
        let mut session = ProblemBuilder::tiny().session().unwrap();
        let via_session = session.run().unwrap();
        assert_eq!(direct.scalar_flux_total, via_session.scalar_flux_total);
    }

    #[test]
    fn env_overrides_apply_and_reject_garbage() {
        // Env vars are process-global; this is the only test that touches
        // the UNSNAP_* names, and it removes them before returning.
        std::env::set_var("UNSNAP_STRATEGY", "gmres");
        std::env::set_var("UNSNAP_ACCEL", "dsa");
        std::env::set_var("UNSNAP_SOLVER", "mkl");
        std::env::set_var("UNSNAP_SCHEME", "best");
        std::env::set_var("UNSNAP_KERNEL", "blocked");
        std::env::set_var("UNSNAP_PRECISION", "mixed");
        std::env::set_var("UNSNAP_THREADS", "3");
        std::env::set_var("UNSNAP_SUBDOMAIN_ITERS", "9");
        let b = ProblemBuilder::tiny().env_overrides().unwrap();
        assert_eq!(b.iteration.strategy, StrategyKind::SweepGmres);
        assert_eq!(b.accel.accelerator, AcceleratorKind::Dsa);
        assert_eq!(b.execution.solver, SolverKind::Mkl);
        assert_eq!(b.execution.scheme, ConcurrencyScheme::best());
        assert_eq!(b.execution.kernel, KernelKind::Blocked);
        assert_eq!(b.execution.precision, Precision::Mixed);
        assert_eq!(b.execution.num_threads, Some(3));
        assert_eq!(b.iteration.subdomain_krylov_budget, Some(9));

        std::env::set_var("UNSNAP_KERNEL", "nonsense");
        let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
        assert_eq!(err.invalid_field(), Some("kernel"));
        std::env::set_var("UNSNAP_KERNEL", "blocked");

        std::env::set_var("UNSNAP_PRECISION", "f16");
        let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
        assert_eq!(err.invalid_field(), Some("precision"));
        std::env::set_var("UNSNAP_PRECISION", "mixed");

        std::env::set_var("UNSNAP_STRATEGY", "nonsense");
        let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
        assert_eq!(err.invalid_field(), Some("strategy"));
        std::env::set_var("UNSNAP_STRATEGY", "gmres");

        std::env::set_var("UNSNAP_ACCEL", "nonsense");
        let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
        assert_eq!(err.invalid_field(), Some("accelerator"));
        std::env::set_var("UNSNAP_ACCEL", "dsa");

        for bad in ["0", "-2", "many"] {
            std::env::set_var("UNSNAP_THREADS", bad);
            let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
            assert_eq!(err.invalid_field(), Some("num_threads"), "'{bad}'");
        }
        std::env::set_var("UNSNAP_THREADS", "3");

        for bad in ["0", "-1", "lots"] {
            std::env::set_var("UNSNAP_SUBDOMAIN_ITERS", bad);
            let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
            assert_eq!(
                err.invalid_field(),
                Some("subdomain_krylov_budget"),
                "'{bad}'"
            );
        }
        std::env::set_var("UNSNAP_SUBDOMAIN_ITERS", "9");

        // The progress-interval knob is validated (zero = unthrottled is
        // legal) even though its value is consumed by
        // ProgressObserver::from_env, not stored on the builder.
        for good in ["0", "250", " 40 "] {
            std::env::set_var("UNSNAP_PROGRESS_MS", good);
            ProblemBuilder::tiny()
                .env_overrides()
                .unwrap_or_else(|e| panic!("'{good}' must validate: {e}"));
        }
        for bad in ["-5", "soon", "1.5"] {
            std::env::set_var("UNSNAP_PROGRESS_MS", bad);
            let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
            assert_eq!(err.invalid_field(), Some("progress_interval_ms"), "'{bad}'");
        }
        std::env::remove_var("UNSNAP_PROGRESS_MS");

        // Same story for the checkpoint cadence consumed by the runlog
        // crate: positive counts pass, zero and garbage name the knob.
        for good in ["1", "5", " 12 "] {
            std::env::set_var("UNSNAP_CHECKPOINT_ITERS", good);
            ProblemBuilder::tiny()
                .env_overrides()
                .unwrap_or_else(|e| panic!("'{good}' must validate: {e}"));
        }
        for bad in ["0", "-3", "often", "2.5"] {
            std::env::set_var("UNSNAP_CHECKPOINT_ITERS", bad);
            let err = ProblemBuilder::tiny().env_overrides().unwrap_err();
            assert_eq!(err.invalid_field(), Some("checkpoint_iters"), "'{bad}'");
        }
        std::env::remove_var("UNSNAP_CHECKPOINT_ITERS");

        std::env::remove_var("UNSNAP_STRATEGY");
        std::env::remove_var("UNSNAP_ACCEL");
        std::env::remove_var("UNSNAP_SOLVER");
        std::env::remove_var("UNSNAP_SCHEME");
        std::env::remove_var("UNSNAP_KERNEL");
        std::env::remove_var("UNSNAP_PRECISION");
        std::env::remove_var("UNSNAP_THREADS");
        std::env::remove_var("UNSNAP_SUBDOMAIN_ITERS");
        let b = ProblemBuilder::tiny().env_overrides().unwrap();
        assert_eq!(b, ProblemBuilder::tiny());
    }
}
