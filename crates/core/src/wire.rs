//! The JSON wire format for problem configurations.
//!
//! `unsnap-serve` accepts solve requests over HTTP, and bench/test
//! tooling wants to ship problem configurations between processes; both
//! need one canonical, dependency-free serialisation of a
//! [`ProblemBuilder`].  This module provides it, built on the
//! workspace's own JSON writer ([`unsnap_obs::json`]) and reader
//! ([`unsnap_obs::reader`]) — no external serde machinery, per the
//! offline-vendor idiom.
//!
//! The wire shape mirrors the builder's five sub-configurations, with
//! every enum knob carried as the same label `Display`/`FromStr`
//! round-trip elsewhere in the workspace (`"SI"`, `"dsa"`, `"MKL"`,
//! `"angle/element*/group*"`, `"option1"`):
//!
//! ```json
//! {
//!   "grid":      {"nx": 3, "ny": 3, "nz": 3, "lx": 1, "ly": 1, "lz": 1, "twist": 0.001},
//!   "physics":   {"element_order": 1, "angles_per_octant": 2, "num_groups": 2,
//!                 "material": "option1", "source": "option1",
//!                 "boundaries": ["vacuum", "vacuum", "vacuum", "vacuum", "vacuum", "vacuum"],
//!                 "scattering_ratio": null, "upscatter_ratio": null},
//!   "iteration": {"inner_iterations": 2, "outer_iterations": 1,
//!                 "convergence_tolerance": 0, "strategy": "SI",
//!                 "gmres_restart": 20, "subdomain_krylov_budget": null},
//!   "accel":     {"accelerator": "none", "cg_tolerance": 1e-8, "cg_iterations": 200},
//!   "execution": {"solver": "GE", "scheme": "angle/element*/group", "num_threads": 1,
//!                 "precompute_integrals": true, "time_solve": false,
//!                 "kernel": "reference", "precision": "f64"}
//! }
//! ```
//!
//! Parsing is *lenient about omission, strict about everything else*:
//! any section or field may be left out (the [`ProblemBuilder::default`]
//! — the `tiny` preset — fills the gap), but an **unknown** section or
//! field name, or a value of the wrong type, is an
//! [`Error::InvalidProblem`] naming the offender.  A request that typos
//! `"num_thread"` should be a 4xx, not a silently-default run.
//!
//! Serialisation always writes every field, in declared order, so the
//! output is canonical: two builders serialise to the same string iff
//! they are equal.  [`Problem::canonical_hash`] relies on exactly this.

use std::str::FromStr;

use unsnap_linalg::SolverKind;
use unsnap_mesh::boundary::{BoundaryCondition, DomainBoundaries};
use unsnap_obs::json::{self, JsonObject};
use unsnap_obs::reader::{self, JsonValue};
use unsnap_sweep::ConcurrencyScheme;

use crate::builder::{
    AccelConfig, ExecutionConfig, GridConfig, IterationConfig, PhysicsConfig, ProblemBuilder,
};
use crate::data::{MaterialOption, SourceOption};
use crate::error::{Error, Result};
use crate::kernel::KernelKind;
use crate::layout::Precision;
use crate::problem::Problem;
use crate::strategy::{AcceleratorKind, StrategyKind};

// ---------------------------------------------------------------------
// Serialisation.
// ---------------------------------------------------------------------

fn option_usize(obj: JsonObject, key: &str, value: Option<usize>) -> JsonObject {
    match value {
        Some(v) => obj.field_usize(key, v),
        None => obj.field_raw(key, "null"),
    }
}

fn option_f64(obj: JsonObject, key: &str, value: Option<f64>) -> JsonObject {
    match value {
        Some(v) => obj.field_f64(key, v),
        None => obj.field_raw(key, "null"),
    }
}

fn boundary_json(bc: BoundaryCondition) -> String {
    match bc {
        BoundaryCondition::Vacuum => "\"vacuum\"".to_string(),
        BoundaryCondition::Reflective => "\"reflective\"".to_string(),
        BoundaryCondition::IsotropicInflow(v) => json::number(v),
    }
}

fn grid_json(grid: &GridConfig) -> String {
    JsonObject::new()
        .field_usize("nx", grid.nx)
        .field_usize("ny", grid.ny)
        .field_usize("nz", grid.nz)
        .field_f64("lx", grid.lx)
        .field_f64("ly", grid.ly)
        .field_f64("lz", grid.lz)
        .field_f64("twist", grid.twist)
        .finish()
}

fn physics_json(physics: &PhysicsConfig) -> String {
    let boundaries = json::array_raw(physics.boundaries.faces.iter().map(|bc| boundary_json(*bc)));
    let obj = JsonObject::new()
        .field_usize("element_order", physics.element_order)
        .field_usize("angles_per_octant", physics.angles_per_octant)
        .field_usize("num_groups", physics.num_groups)
        .field_str("material", physics.material.label())
        .field_str("source", physics.source.label())
        .field_raw("boundaries", &boundaries);
    let obj = option_f64(obj, "scattering_ratio", physics.scattering_ratio);
    option_f64(obj, "upscatter_ratio", physics.upscatter_ratio).finish()
}

fn iteration_json(iteration: &IterationConfig) -> String {
    let obj = JsonObject::new()
        .field_usize("inner_iterations", iteration.inner_iterations)
        .field_usize("outer_iterations", iteration.outer_iterations)
        .field_f64("convergence_tolerance", iteration.convergence_tolerance)
        .field_str("strategy", iteration.strategy.label())
        .field_usize("gmres_restart", iteration.gmres_restart);
    option_usize(
        obj,
        "subdomain_krylov_budget",
        iteration.subdomain_krylov_budget,
    )
    .finish()
}

fn accel_json(accel: &AccelConfig) -> String {
    JsonObject::new()
        .field_str("accelerator", accel.accelerator.label())
        .field_f64("cg_tolerance", accel.cg_tolerance)
        .field_usize("cg_iterations", accel.cg_iterations)
        .finish()
}

fn execution_json(execution: &ExecutionConfig) -> String {
    let obj = JsonObject::new()
        .field_str("solver", execution.solver.label())
        .field_str("scheme", &execution.scheme.label());
    option_usize(obj, "num_threads", execution.num_threads)
        .field_bool("precompute_integrals", execution.precompute_integrals)
        .field_bool("time_solve", execution.time_solve)
        .field_str("kernel", execution.kernel.label())
        .field_str("precision", execution.precision.label())
        .finish()
}

/// Serialise a builder to the canonical wire JSON (every field, declared
/// order).
pub fn builder_to_json(builder: &ProblemBuilder) -> String {
    JsonObject::new()
        .field_raw("grid", &grid_json(&builder.grid))
        .field_raw("physics", &physics_json(&builder.physics))
        .field_raw("iteration", &iteration_json(&builder.iteration))
        .field_raw("accel", &accel_json(&builder.accel))
        .field_raw("execution", &execution_json(&builder.execution))
        .finish()
}

/// Serialise a flat [`Problem`] to the canonical wire JSON (via
/// [`ProblemBuilder::from_problem`], so builders and problems share one
/// wire shape).  This is the byte stream [`Problem::canonical_hash`]
/// hashes.
pub fn problem_to_json(problem: &Problem) -> String {
    builder_to_json(&ProblemBuilder::from_problem(problem))
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn describe(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Number(_) => "a number",
        JsonValue::String(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

fn expect_usize(value: &JsonValue, field: &'static str) -> Result<usize> {
    value.as_usize().ok_or_else(|| {
        Error::invalid_problem(
            field,
            format!("expected a non-negative integer, got {}", describe(value)),
        )
    })
}

fn expect_f64(value: &JsonValue, field: &'static str) -> Result<f64> {
    value.as_f64().ok_or_else(|| {
        Error::invalid_problem(field, format!("expected a number, got {}", describe(value)))
    })
}

fn expect_bool(value: &JsonValue, field: &'static str) -> Result<bool> {
    value.as_bool().ok_or_else(|| {
        Error::invalid_problem(
            field,
            format!("expected a boolean, got {}", describe(value)),
        )
    })
}

/// Parse a labelled enum knob (strategy, accelerator, solver, scheme,
/// material, source) through its workspace `FromStr`, accepting every
/// alias the CLI/env surface accepts.
fn expect_label<T: FromStr<Err = String>>(value: &JsonValue, field: &'static str) -> Result<T> {
    let text = value.as_str().ok_or_else(|| {
        Error::invalid_problem(field, format!("expected a string, got {}", describe(value)))
    })?;
    text.parse()
        .map_err(|e: String| Error::invalid_problem(field, e))
}

fn option_of<T>(
    value: &JsonValue,
    field: &'static str,
    parse: impl Fn(&JsonValue, &'static str) -> Result<T>,
) -> Result<Option<T>> {
    if value.is_null() {
        Ok(None)
    } else {
        parse(value, field).map(Some)
    }
}

fn parse_boundary(value: &JsonValue) -> Result<BoundaryCondition> {
    if let Some(text) = value.as_str() {
        return match text.to_ascii_lowercase().as_str() {
            "vacuum" => Ok(BoundaryCondition::Vacuum),
            "reflective" => Ok(BoundaryCondition::Reflective),
            other => Err(Error::invalid_problem(
                "boundaries",
                format!("unknown boundary condition '{other}' (expected 'vacuum', 'reflective' or an inflow value)"),
            )),
        };
    }
    if let Some(v) = value.as_f64() {
        return Ok(BoundaryCondition::IsotropicInflow(v));
    }
    Err(Error::invalid_problem(
        "boundaries",
        format!(
            "each face must be 'vacuum', 'reflective' or an inflow number, got {}",
            describe(value)
        ),
    ))
}

fn parse_boundaries(value: &JsonValue) -> Result<DomainBoundaries> {
    let entries = value.as_array().ok_or_else(|| {
        Error::invalid_problem(
            "boundaries",
            format!(
                "expected an array of 6 face conditions (x-, x+, y-, y+, z-, z+), got {}",
                describe(value)
            ),
        )
    })?;
    if entries.len() != 6 {
        return Err(Error::invalid_problem(
            "boundaries",
            format!("expected exactly 6 face conditions, got {}", entries.len()),
        ));
    }
    let mut faces = [BoundaryCondition::Vacuum; 6];
    for (face, entry) in faces.iter_mut().zip(entries) {
        *face = parse_boundary(entry)?;
    }
    Ok(DomainBoundaries { faces })
}

fn fields_of<'v>(value: &'v JsonValue, section: &'static str) -> Result<&'v [(String, JsonValue)]> {
    value.as_object().ok_or_else(|| {
        Error::invalid_problem(
            section,
            format!(
                "the '{section}' section must be an object, got {}",
                describe(value)
            ),
        )
    })
}

fn unknown_field(section: &'static str, key: &str, known: &[&str]) -> Error {
    Error::invalid_problem(
        section,
        format!(
            "unknown field '{key}' in the '{section}' section; known fields: {}",
            known.join(", ")
        ),
    )
}

fn apply_grid(grid: &mut GridConfig, value: &JsonValue) -> Result<()> {
    const KNOWN: &[&str] = &["nx", "ny", "nz", "lx", "ly", "lz", "twist"];
    for (key, v) in fields_of(value, "grid")? {
        match key.as_str() {
            "nx" => grid.nx = expect_usize(v, "nx")?,
            "ny" => grid.ny = expect_usize(v, "ny")?,
            "nz" => grid.nz = expect_usize(v, "nz")?,
            "lx" => grid.lx = expect_f64(v, "lx")?,
            "ly" => grid.ly = expect_f64(v, "ly")?,
            "lz" => grid.lz = expect_f64(v, "lz")?,
            "twist" => grid.twist = expect_f64(v, "twist")?,
            other => return Err(unknown_field("grid", other, KNOWN)),
        }
    }
    Ok(())
}

fn apply_physics(physics: &mut PhysicsConfig, value: &JsonValue) -> Result<()> {
    const KNOWN: &[&str] = &[
        "element_order",
        "angles_per_octant",
        "num_groups",
        "material",
        "source",
        "boundaries",
        "scattering_ratio",
        "upscatter_ratio",
    ];
    for (key, v) in fields_of(value, "physics")? {
        match key.as_str() {
            "element_order" => physics.element_order = expect_usize(v, "element_order")?,
            "angles_per_octant" => {
                physics.angles_per_octant = expect_usize(v, "angles_per_octant")?;
            }
            "num_groups" => physics.num_groups = expect_usize(v, "num_groups")?,
            "material" => {
                physics.material = expect_label::<MaterialOption>(v, "material")?;
            }
            "source" => physics.source = expect_label::<SourceOption>(v, "source")?,
            "boundaries" => physics.boundaries = parse_boundaries(v)?,
            "scattering_ratio" => {
                physics.scattering_ratio = option_of(v, "scattering_ratio", expect_f64)?;
            }
            "upscatter_ratio" => {
                physics.upscatter_ratio = option_of(v, "upscatter_ratio", expect_f64)?;
            }
            other => return Err(unknown_field("physics", other, KNOWN)),
        }
    }
    Ok(())
}

fn apply_iteration(iteration: &mut IterationConfig, value: &JsonValue) -> Result<()> {
    const KNOWN: &[&str] = &[
        "inner_iterations",
        "outer_iterations",
        "convergence_tolerance",
        "strategy",
        "gmres_restart",
        "subdomain_krylov_budget",
    ];
    for (key, v) in fields_of(value, "iteration")? {
        match key.as_str() {
            "inner_iterations" => {
                iteration.inner_iterations = expect_usize(v, "inner_iterations")?;
            }
            "outer_iterations" => {
                iteration.outer_iterations = expect_usize(v, "outer_iterations")?;
            }
            "convergence_tolerance" => {
                iteration.convergence_tolerance = expect_f64(v, "convergence_tolerance")?;
            }
            "strategy" => iteration.strategy = expect_label::<StrategyKind>(v, "strategy")?,
            "gmres_restart" => iteration.gmres_restart = expect_usize(v, "gmres_restart")?,
            "subdomain_krylov_budget" => {
                iteration.subdomain_krylov_budget =
                    option_of(v, "subdomain_krylov_budget", expect_usize)?;
            }
            other => return Err(unknown_field("iteration", other, KNOWN)),
        }
    }
    Ok(())
}

fn apply_accel(accel: &mut AccelConfig, value: &JsonValue) -> Result<()> {
    const KNOWN: &[&str] = &["accelerator", "cg_tolerance", "cg_iterations"];
    for (key, v) in fields_of(value, "accel")? {
        match key.as_str() {
            "accelerator" => {
                accel.accelerator = expect_label::<AcceleratorKind>(v, "accelerator")?;
            }
            "cg_tolerance" => accel.cg_tolerance = expect_f64(v, "accel_cg_tolerance")?,
            "cg_iterations" => accel.cg_iterations = expect_usize(v, "accel_cg_iterations")?,
            other => return Err(unknown_field("accel", other, KNOWN)),
        }
    }
    Ok(())
}

fn apply_execution(execution: &mut ExecutionConfig, value: &JsonValue) -> Result<()> {
    const KNOWN: &[&str] = &[
        "solver",
        "scheme",
        "num_threads",
        "precompute_integrals",
        "time_solve",
        "kernel",
        "precision",
    ];
    for (key, v) in fields_of(value, "execution")? {
        match key.as_str() {
            "solver" => execution.solver = expect_label::<SolverKind>(v, "solver")?,
            "scheme" => execution.scheme = expect_label::<ConcurrencyScheme>(v, "scheme")?,
            "num_threads" => {
                execution.num_threads = option_of(v, "num_threads", expect_usize)?;
            }
            "precompute_integrals" => {
                execution.precompute_integrals = expect_bool(v, "precompute_integrals")?;
            }
            "time_solve" => execution.time_solve = expect_bool(v, "time_solve")?,
            "kernel" => execution.kernel = expect_label::<KernelKind>(v, "kernel")?,
            "precision" => execution.precision = expect_label::<Precision>(v, "precision")?,
            other => return Err(unknown_field("execution", other, KNOWN)),
        }
    }
    Ok(())
}

/// Build a [`ProblemBuilder`] from a parsed wire document.
///
/// Missing sections and fields keep their [`ProblemBuilder::default`]
/// (`tiny` preset) values; unknown names and mistyped values are
/// [`Error::InvalidProblem`]s naming the offender.  Note this returns
/// the *builder* — call [`ProblemBuilder::build`] (or use
/// [`problem_from_json_str`]) to run validation.
pub fn builder_from_json(value: &JsonValue) -> Result<ProblemBuilder> {
    let sections = value.as_object().ok_or_else(|| {
        Error::invalid_problem(
            "problem",
            format!(
                "the problem document must be a JSON object, got {}",
                describe(value)
            ),
        )
    })?;
    let mut builder = ProblemBuilder::default();
    for (key, v) in sections {
        match key.as_str() {
            "grid" => apply_grid(&mut builder.grid, v)?,
            "physics" => apply_physics(&mut builder.physics, v)?,
            "iteration" => apply_iteration(&mut builder.iteration, v)?,
            "accel" => apply_accel(&mut builder.accel, v)?,
            "execution" => apply_execution(&mut builder.execution, v)?,
            other => {
                return Err(Error::invalid_problem(
                    "problem",
                    format!(
                        "unknown section '{other}'; known sections: \
                         grid, physics, iteration, accel, execution"
                    ),
                ));
            }
        }
    }
    Ok(builder)
}

/// Parse wire text into a [`ProblemBuilder`] (no validation beyond the
/// wire shape).
pub fn builder_from_json_str(text: &str) -> Result<ProblemBuilder> {
    let value = reader::parse(text)
        .map_err(|e| Error::invalid_problem("problem", format!("malformed JSON: {e}")))?;
    builder_from_json(&value)
}

/// Parse wire text all the way to a validated [`Problem`]: JSON shape
/// errors and `Problem`/builder validation failures both surface as
/// [`Error::InvalidProblem`].
pub fn problem_from_json_str(text: &str) -> Result<Problem> {
    builder_from_json_str(text)?.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_preset_round_trips() {
        for name in Problem::registry_names() {
            let problem = Problem::from_name(name).unwrap();
            let text = problem_to_json(&problem);
            let parsed = builder_from_json_str(&text)
                .unwrap_or_else(|e| panic!("{name} must parse: {e}"))
                .assemble();
            assert_eq!(parsed, problem, "{name} must round-trip");
        }
    }

    #[test]
    fn serialisation_is_canonical() {
        let a = builder_to_json(&ProblemBuilder::quickstart());
        let b = builder_to_json(&ProblemBuilder::quickstart());
        assert_eq!(a, b);
        assert_ne!(a, builder_to_json(&ProblemBuilder::tiny()));
    }

    #[test]
    fn missing_sections_default_to_tiny() {
        let builder = builder_from_json_str(r#"{"grid": {"nx": 5}}"#).unwrap();
        let mut expected = ProblemBuilder::tiny();
        expected.grid.nx = 5;
        assert_eq!(builder, expected);
        assert_eq!(
            builder_from_json_str("{}").unwrap(),
            ProblemBuilder::default()
        );
    }

    #[test]
    fn unknown_sections_and_fields_are_rejected() {
        let err = builder_from_json_str(r#"{"gird": {}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("problem"));
        assert!(err.to_string().contains("gird"));

        let err = builder_from_json_str(r#"{"grid": {"nx": 3, "mx": 4}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("grid"));
        assert!(err.to_string().contains("mx"));

        let err = builder_from_json_str(r#"{"execution": {"num_thread": 2}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("execution"));
    }

    #[test]
    fn mistyped_values_name_their_field() {
        let err = builder_from_json_str(r#"{"grid": {"nx": "three"}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("nx"));

        let err = builder_from_json_str(r#"{"iteration": {"strategy": 7}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("strategy"));

        let err = builder_from_json_str(r#"{"iteration": {"strategy": "warp"}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("strategy"));
        assert!(err.to_string().contains("warp"));

        let err =
            builder_from_json_str(r#"{"execution": {"precompute_integrals": 1}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("precompute_integrals"));
    }

    #[test]
    fn malformed_json_is_an_invalid_problem() {
        let err = builder_from_json_str("{\"grid\": ").unwrap_err();
        assert_eq!(err.invalid_field(), Some("problem"));
        assert!(err.to_string().contains("malformed JSON"));

        let err = builder_from_json_str("[1, 2]").unwrap_err();
        assert_eq!(err.invalid_field(), Some("problem"));
    }

    #[test]
    fn enum_knobs_accept_workspace_aliases() {
        let builder = builder_from_json_str(
            r#"{
                "iteration": {"strategy": "gmres"},
                "accel": {"accelerator": "diffusion"},
                "execution": {"solver": "dgesv", "scheme": "best",
                              "kernel": "soa", "precision": "fp32"},
                "physics": {"material": "2", "source": "central"}
            }"#,
        )
        .unwrap();
        assert_eq!(builder.iteration.strategy, StrategyKind::SweepGmres);
        assert_eq!(builder.accel.accelerator, AcceleratorKind::Dsa);
        assert_eq!(builder.execution.solver, SolverKind::Mkl);
        assert_eq!(builder.execution.scheme, ConcurrencyScheme::best());
        assert_eq!(builder.execution.kernel, KernelKind::Blocked);
        assert_eq!(builder.execution.precision, Precision::Mixed);
        assert_eq!(builder.physics.material, MaterialOption::Option2);
        assert_eq!(builder.physics.source, SourceOption::Option2);
    }

    #[test]
    fn boundaries_parse_all_three_kinds() {
        let builder = builder_from_json_str(
            r#"{"physics": {"boundaries":
                ["vacuum", "reflective", 1.5, "vacuum", "vacuum", "vacuum"]}}"#,
        )
        .unwrap();
        assert_eq!(
            builder.physics.boundaries.face(1),
            BoundaryCondition::Reflective
        );
        assert_eq!(
            builder.physics.boundaries.face(2),
            BoundaryCondition::IsotropicInflow(1.5)
        );

        let err = builder_from_json_str(r#"{"physics": {"boundaries": ["vacuum"]}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("boundaries"));
        let err = builder_from_json_str(
            r#"{"physics": {"boundaries":
                ["porous", "vacuum", "vacuum", "vacuum", "vacuum", "vacuum"]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("porous"));
    }

    #[test]
    fn nullable_fields_round_trip_both_ways() {
        let builder = builder_from_json_str(
            r#"{
                "physics": {"scattering_ratio": null, "upscatter_ratio": null},
                "iteration": {"subdomain_krylov_budget": 7},
                "execution": {"num_threads": null}
            }"#,
        )
        .unwrap();
        assert_eq!(builder.physics.scattering_ratio, None);
        assert_eq!(builder.physics.upscatter_ratio, None);
        assert_eq!(builder.iteration.subdomain_krylov_budget, Some(7));
        assert_eq!(builder.execution.num_threads, None);

        let builder = builder_from_json_str(
            r#"{"physics": {"scattering_ratio": 0.9, "upscatter_ratio": 0.25}}"#,
        )
        .unwrap();
        assert_eq!(builder.physics.upscatter_ratio, Some(0.25));

        let text = builder_to_json(&builder);
        let reparsed = builder_from_json_str(&text).unwrap();
        assert_eq!(reparsed, builder);
    }

    #[test]
    fn problem_from_json_str_runs_validation() {
        let err = problem_from_json_str(r#"{"grid": {"nx": 0}}"#).unwrap_err();
        assert_eq!(err.invalid_field(), Some("nx"));
        let problem = problem_from_json_str("{}").unwrap();
        assert_eq!(problem, Problem::tiny());
    }

    #[test]
    fn canonical_hash_matches_equality() {
        let quickstart = Problem::quickstart();
        assert_eq!(
            quickstart.canonical_hash(),
            Problem::quickstart().canonical_hash()
        );
        assert_ne!(
            quickstart.canonical_hash(),
            Problem::tiny().canonical_hash()
        );
        // Every single-field tweak moves the hash.
        let tweaks: Vec<Problem> = vec![
            ProblemBuilder::quickstart().mesh(7).assemble(),
            ProblemBuilder::quickstart().order(2).assemble(),
            ProblemBuilder::quickstart().tolerance(1e-7).assemble(),
            ProblemBuilder::quickstart()
                .strategy(StrategyKind::SweepGmres)
                .assemble(),
            ProblemBuilder::quickstart().threads(3).assemble(),
            ProblemBuilder::quickstart()
                .scattering_ratio(0.5)
                .assemble(),
            ProblemBuilder::quickstart()
                .scattering_ratio(0.5)
                .upscatter(0.2)
                .assemble(),
            ProblemBuilder::quickstart().time_solve(true).assemble(),
            ProblemBuilder::quickstart()
                .kernel(crate::kernel::KernelKind::Blocked)
                .assemble(),
            ProblemBuilder::quickstart()
                .precision(crate::layout::Precision::Mixed)
                .assemble(),
        ];
        for tweaked in tweaks {
            assert_ne!(
                tweaked.canonical_hash(),
                quickstart.canonical_hash(),
                "tweak must change the hash: {tweaked:?}"
            );
        }
    }

    #[test]
    fn hash_is_stable_across_processes() {
        // Pin the tiny preset's hash: the cache key must not drift when
        // unrelated code moves (a drift shows up here as a changed
        // constant, which is a deliberate, reviewable event).
        let h = Problem::tiny().canonical_hash();
        assert_eq!(h, Problem::tiny().canonical_hash());
        assert_ne!(h, 0);
    }
}
