//! Table I data and small reporting helpers shared by the examples and the
//! benchmark binaries.

use serde::{Deserialize, Serialize};

use unsnap_fem::element::{local_matrix_footprint_bytes, nodes_for_order};

use crate::solver::SolveOutcome;

/// One row of Table I of the paper: the size of the local matrix for a
/// finite-element order and its FP64 footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Finite-element order.
    pub order: usize,
    /// Local matrix dimension, `(order + 1)³`.
    pub matrix_size: usize,
    /// FP64 footprint of the matrix in kilobytes.
    pub footprint_kb: f64,
}

/// Generate Table I for orders `1..=max_order`.
pub fn table1(max_order: usize) -> Vec<Table1Row> {
    (1..=max_order)
        .map(|order| Table1Row {
            order,
            matrix_size: nodes_for_order(order),
            footprint_kb: local_matrix_footprint_bytes(order) as f64 / 1024.0,
        })
        .collect()
}

/// Render Table I as fixed-width text matching the layout of the paper.
pub fn table1_text(max_order: usize) -> String {
    let mut out = String::from("Order  Matrix size   FP64 footprint (kB)\n");
    for row in table1(max_order) {
        out.push_str(&format!(
            "{:>5}  {:>4} x {:<4}  {:>10.1}\n",
            row.order, row.matrix_size, row.matrix_size, row.footprint_kb
        ));
    }
    out
}

/// The counters a one-line iteration summary needs, abstracted so both
/// the single-domain [`SolveOutcome`] and distributed outcomes (the
/// block-Jacobi `BlockJacobiOutcome` in `unsnap-comm`) share one report
/// path instead of hand-formatting in every binary.
pub trait IterationSummary {
    /// Whether the solve met its convergence tolerance.
    fn summary_converged(&self) -> bool;
    /// Total transport sweeps executed (summed over ranks, if any).
    fn summary_sweeps(&self) -> usize;
    /// Inner (or halo) iterations executed.
    fn summary_inner_iterations(&self) -> usize;
    /// Krylov iterations executed (0 under plain source iteration).
    fn summary_krylov_iterations(&self) -> usize;
    /// Final relative Krylov residual, when one meaningful scalar exists.
    fn summary_final_krylov_residual(&self) -> Option<f64>;
}

impl IterationSummary for SolveOutcome {
    fn summary_converged(&self) -> bool {
        self.converged
    }

    fn summary_sweeps(&self) -> usize {
        self.sweep_count
    }

    fn summary_inner_iterations(&self) -> usize {
        self.inner_iterations
    }

    fn summary_krylov_iterations(&self) -> usize {
        self.krylov_iterations
    }

    fn summary_final_krylov_residual(&self) -> Option<f64> {
        self.krylov_residual_history.last().copied()
    }
}

/// One-line iteration summary of a solve, including the Krylov counters
/// when the run used a Krylov strategy.  Accepts anything implementing
/// [`IterationSummary`] — single-domain and distributed outcomes alike.
pub fn iteration_summary<T: IterationSummary + ?Sized>(outcome: &T) -> String {
    let mut out = format!(
        "{} in {} sweeps ({} inner iterations)",
        if outcome.summary_converged() {
            "converged"
        } else {
            "NOT converged"
        },
        outcome.summary_sweeps(),
        outcome.summary_inner_iterations(),
    );
    if outcome.summary_krylov_iterations() > 0 {
        out.push_str(&format!(
            ", {} Krylov iterations",
            outcome.summary_krylov_iterations()
        ));
        if let Some(final_residual) = outcome.summary_final_krylov_residual() {
            out.push_str(&format!(", final residual {final_residual:.2e}"));
        }
    }
    out
}

/// One row of the three-way acceleration ablation (`ablation_dsa`): the
/// sweeps SI, DSA-SI and sweep-preconditioned GMRES each needed at one
/// scattering ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelAblationRow {
    /// Within-group scattering ratio `c` of the scenario.
    pub scattering_ratio: f64,
    /// Sweeps source iteration needed.
    pub si_sweeps: usize,
    /// Sweeps DSA-accelerated source iteration needed.
    pub dsa_sweeps: usize,
    /// Sweeps the GMRES strategy needed (incl. RHS/consistency sweeps).
    pub gmres_sweeps: usize,
    /// Low-order CG iterations the DSA runs spent (not sweeps).
    pub dsa_cg_iterations: usize,
    /// Whether each strategy met the tolerance within its budget, in
    /// (SI, DSA-SI, GMRES) order.
    pub converged: [bool; 3],
    /// Relative difference of the DSA-SI flux total against SI.
    pub dsa_flux_rel_diff: f64,
    /// Relative difference of the GMRES flux total against SI.
    pub gmres_flux_rel_diff: f64,
}

impl AccelAblationRow {
    /// Sweep-count ratio SI / DSA-SI (the DSA acceleration factor).
    pub fn dsa_speedup(&self) -> f64 {
        if self.dsa_sweeps == 0 {
            0.0
        } else {
            self.si_sweeps as f64 / self.dsa_sweeps as f64
        }
    }

    /// Sweep-count ratio SI / GMRES.
    pub fn gmres_speedup(&self) -> f64 {
        if self.gmres_sweeps == 0 {
            0.0
        } else {
            self.si_sweeps as f64 / self.gmres_sweeps as f64
        }
    }
}

/// Render the three-way acceleration ablation as fixed-width text.
pub fn accel_table_text(rows: &[AccelAblationRow]) -> String {
    let mut out = String::from(
        "     c   SI sweeps  DSA sweeps  GMRES sweeps  DSA speedup  GMRES speedup  \
         DSA CG its\n",
    );
    for row in rows {
        let mark = |converged: bool| if converged { ' ' } else { '!' };
        out.push_str(&format!(
            "{:>6.3}  {:>9}{} {:>10}{} {:>12}{} {:>11.1}  {:>13.1}  {:>10}\n",
            row.scattering_ratio,
            row.si_sweeps,
            mark(row.converged[0]),
            row.dsa_sweeps,
            mark(row.converged[1]),
            row.gmres_sweeps,
            mark(row.converged[2]),
            row.dsa_speedup(),
            row.gmres_speedup(),
            row.dsa_cg_iterations,
        ));
    }
    out
}

/// One row of the source-iteration-versus-GMRES ablation: how many
/// sweeps each strategy needed at one scattering ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyAblationRow {
    /// Within-group scattering ratio `c` of the scenario.
    pub scattering_ratio: f64,
    /// Sweeps source iteration needed (its inner-iteration count).
    pub si_sweeps: usize,
    /// Sweeps the GMRES strategy needed (including RHS/consistency
    /// sweeps).
    pub gmres_sweeps: usize,
    /// Whether source iteration met the tolerance within its budget.
    pub si_converged: bool,
    /// Whether GMRES met the tolerance within its budget.
    pub gmres_converged: bool,
    /// Relative difference of the two scalar-flux totals.
    pub flux_rel_diff: f64,
}

impl StrategyAblationRow {
    /// Sweep-count ratio SI / GMRES (the acceleration factor).
    pub fn speedup(&self) -> f64 {
        if self.gmres_sweeps == 0 {
            0.0
        } else {
            self.si_sweeps as f64 / self.gmres_sweeps as f64
        }
    }
}

/// Render the SI-versus-GMRES ablation as fixed-width text.
pub fn strategy_table_text(rows: &[StrategyAblationRow]) -> String {
    let mut out = String::from("    c   SI sweeps  GMRES sweeps  speedup  flux rel diff\n");
    for row in rows {
        let mark = |converged: bool| if converged { ' ' } else { '!' };
        out.push_str(&format!(
            "{:>5.2}  {:>9}{} {:>12}{} {:>8.1}  {:>13.2e}\n",
            row.scattering_ratio,
            row.si_sweeps,
            mark(row.si_converged),
            row.gmres_sweeps,
            mark(row.gmres_converged),
            row.speedup(),
            row.flux_rel_diff,
        ));
    }
    out
}

/// Format a duration in seconds with sensible precision for tables.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 100.0 {
        format!("{seconds:.1}")
    } else if seconds >= 1.0 {
        format!("{seconds:.2}")
    } else {
        format!("{seconds:.4}")
    }
}

/// A short description of the machine the benchmark ran on, recorded in the
/// harness output so results can be compared against the paper's dual-socket
/// 56-core Skylake node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Number of logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
}

impl MachineInfo {
    /// Detect the current machine.
    pub fn detect() -> Self {
        Self {
            logical_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    /// Thread counts to sweep for the Figure 3/4 scaling study: powers of
    /// two (plus the full count) capped at the available CPUs, mirroring
    /// the paper's 1 · 2 · 4 · 8 · 14 · 28 · 56 series on its 56-core node.
    pub fn thread_sweep(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut t = 1;
        while t < self.logical_cpus {
            counts.push(t);
            t *= 2;
        }
        counts.push(self.logical_cpus);
        counts.dedup();
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1(5);
        assert_eq!(rows.len(), 5);
        let expected = [
            (1usize, 8usize, 0.5f64),
            (2, 27, 5.7),
            (3, 64, 32.0),
            (4, 125, 122.1),
            (5, 216, 364.5),
        ];
        for (row, (order, size, kb)) in rows.iter().zip(expected.iter()) {
            assert_eq!(row.order, *order);
            assert_eq!(row.matrix_size, *size);
            assert!(
                (row.footprint_kb - kb).abs() < 0.06,
                "order {order}: {} vs {kb}",
                row.footprint_kb
            );
        }
    }

    #[test]
    fn table1_text_contains_all_rows() {
        let text = table1_text(5);
        assert!(text.contains("216 x 216"));
        assert!(text.contains("8 x 8"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn iteration_summary_mentions_krylov_only_when_used() {
        let mut outcome = SolveOutcome {
            inner_iterations: 12,
            outer_iterations: 1,
            sweep_count: 12,
            krylov_iterations: 0,
            krylov_residual_history: Vec::new(),
            accel_cg_iterations: 0,
            accel_residual_history: Vec::new(),
            converged: true,
            convergence_history: vec![0.1, 0.01],
            assemble_solve_seconds: 0.0,
            kernel_assemble_seconds: 0.0,
            kernel_solve_seconds: 0.0,
            kernel_invocations: 0,
            scalar_flux_total: 1.0,
            scalar_flux_max: 1.0,
            scalar_flux_min: 0.0,
            metrics: crate::metrics::RunMetrics::default(),
            trace: Default::default(),
        };
        let text = iteration_summary(&outcome);
        assert!(text.contains("converged in 12 sweeps"));
        assert!(!text.contains("Krylov"));

        outcome.krylov_iterations = 9;
        outcome.krylov_residual_history = vec![1.0, 1e-9];
        outcome.sweep_count = 12;
        let text = iteration_summary(&outcome);
        assert!(text.contains("9 Krylov iterations"));
        assert!(text.contains("1.00e-9"));
    }

    #[test]
    fn strategy_table_lists_all_rows_and_flags_nonconvergence() {
        let rows = [
            StrategyAblationRow {
                scattering_ratio: 0.5,
                si_sweeps: 40,
                gmres_sweeps: 10,
                si_converged: true,
                gmres_converged: true,
                flux_rel_diff: 1e-10,
            },
            StrategyAblationRow {
                scattering_ratio: 0.99,
                si_sweeps: 1000,
                gmres_sweeps: 25,
                si_converged: false,
                gmres_converged: true,
                flux_rel_diff: 2e-6,
            },
        ];
        assert!((rows[0].speedup() - 4.0).abs() < 1e-12);
        let text = strategy_table_text(&rows);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("0.99"));
        assert!(
            text.contains("1000!"),
            "non-converged rows are flagged: {text}"
        );
    }

    #[test]
    fn accel_table_lists_all_rows_and_speedups() {
        let rows = [AccelAblationRow {
            scattering_ratio: 0.99,
            si_sweeps: 1200,
            dsa_sweeps: 40,
            gmres_sweeps: 30,
            dsa_cg_iterations: 500,
            converged: [false, true, true],
            dsa_flux_rel_diff: 1e-7,
            gmres_flux_rel_diff: 2e-8,
        }];
        assert!((rows[0].dsa_speedup() - 30.0).abs() < 1e-12);
        assert!((rows[0].gmres_speedup() - 40.0).abs() < 1e-12);
        let text = accel_table_text(&rows);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("0.990"));
        assert!(text.contains("1200!"), "unconverged SI is flagged: {text}");
        assert!(text.contains("DSA CG its"));
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(1426.98), "1427.0");
        assert_eq!(format_seconds(4.29), "4.29");
        assert_eq!(format_seconds(0.01234), "0.0123");
    }

    #[test]
    fn machine_info_detects_something() {
        let m = MachineInfo::detect();
        assert!(m.logical_cpus >= 1);
        assert!(!m.os.is_empty());
        assert!(!m.arch.is_empty());
        let sweep = m.thread_sweep();
        assert!(!sweep.is_empty());
        assert_eq!(*sweep.first().unwrap(), 1);
        assert_eq!(*sweep.last().unwrap(), m.logical_cpus);
        // Strictly increasing.
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }
}
