//! Table I data and small reporting helpers shared by the examples and the
//! benchmark binaries.

use serde::{Deserialize, Serialize};

use unsnap_fem::element::{local_matrix_footprint_bytes, nodes_for_order};

/// One row of Table I of the paper: the size of the local matrix for a
/// finite-element order and its FP64 footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Finite-element order.
    pub order: usize,
    /// Local matrix dimension, `(order + 1)³`.
    pub matrix_size: usize,
    /// FP64 footprint of the matrix in kilobytes.
    pub footprint_kb: f64,
}

/// Generate Table I for orders `1..=max_order`.
pub fn table1(max_order: usize) -> Vec<Table1Row> {
    (1..=max_order)
        .map(|order| Table1Row {
            order,
            matrix_size: nodes_for_order(order),
            footprint_kb: local_matrix_footprint_bytes(order) as f64 / 1024.0,
        })
        .collect()
}

/// Render Table I as fixed-width text matching the layout of the paper.
pub fn table1_text(max_order: usize) -> String {
    let mut out = String::from("Order  Matrix size   FP64 footprint (kB)\n");
    for row in table1(max_order) {
        out.push_str(&format!(
            "{:>5}  {:>4} x {:<4}  {:>10.1}\n",
            row.order, row.matrix_size, row.matrix_size, row.footprint_kb
        ));
    }
    out
}

/// Format a duration in seconds with sensible precision for tables.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 100.0 {
        format!("{seconds:.1}")
    } else if seconds >= 1.0 {
        format!("{seconds:.2}")
    } else {
        format!("{seconds:.4}")
    }
}

/// A short description of the machine the benchmark ran on, recorded in the
/// harness output so results can be compared against the paper's dual-socket
/// 56-core Skylake node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Number of logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Operating system family.
    pub os: String,
    /// CPU architecture.
    pub arch: String,
}

impl MachineInfo {
    /// Detect the current machine.
    pub fn detect() -> Self {
        Self {
            logical_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    /// Thread counts to sweep for the Figure 3/4 scaling study: powers of
    /// two (plus the full count) capped at the available CPUs, mirroring
    /// the paper's 1 · 2 · 4 · 8 · 14 · 28 · 56 series on its 56-core node.
    pub fn thread_sweep(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut t = 1;
        while t < self.logical_cpus {
            counts.push(t);
            t *= 2;
        }
        counts.push(self.logical_cpus);
        counts.dedup();
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1(5);
        assert_eq!(rows.len(), 5);
        let expected = [
            (1usize, 8usize, 0.5f64),
            (2, 27, 5.7),
            (3, 64, 32.0),
            (4, 125, 122.1),
            (5, 216, 364.5),
        ];
        for (row, (order, size, kb)) in rows.iter().zip(expected.iter()) {
            assert_eq!(row.order, *order);
            assert_eq!(row.matrix_size, *size);
            assert!(
                (row.footprint_kb - kb).abs() < 0.06,
                "order {order}: {} vs {kb}",
                row.footprint_kb
            );
        }
    }

    #[test]
    fn table1_text_contains_all_rows() {
        let text = table1_text(5);
        assert!(text.contains("216 x 216"));
        assert!(text.contains("8 x 8"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(1426.98), "1427.0");
        assert_eq!(format_seconds(4.29), "4.29");
        assert_eq!(format_seconds(0.01234), "0.0123");
    }

    #[test]
    fn machine_info_detects_something() {
        let m = MachineInfo::detect();
        assert!(m.logical_cpus >= 1);
        assert!(!m.os.is_empty());
        assert!(!m.arch.is_empty());
        let sweep = m.thread_sweep();
        assert!(!sweep.is_empty());
        assert_eq!(*sweep.first().unwrap(), 1);
        assert_eq!(*sweep.last().unwrap(), m.logical_cpus);
        // Strictly increasing.
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }
}
