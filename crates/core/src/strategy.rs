//! Pluggable inner-iteration strategies for the transport solver.
//!
//! The seed solver resolves the within-group scattering fixed point
//!
//! ```text
//! φ = D L⁻¹ (S_w φ + q_ext)
//! ```
//!
//! by **source iteration** (SI): apply the right-hand side repeatedly and
//! let the contraction — whose rate is the within-group scattering ratio
//! `c` — do the work.  That is [`SourceIteration`], reproduced here
//! bit-for-bit from the original inner loop.  SI needs `O(log tol / log
//! c)` sweeps, which blows up as `c → 1` (scattering-dominated media).
//!
//! [`SweepGmres`] instead treats one full transport sweep `D L⁻¹` as the
//! preconditioner application and hands the equivalent linear system
//!
//! ```text
//! (I − D L⁻¹ S_w) φ = D L⁻¹ q_ext
//! ```
//!
//! to the matrix-free GMRES(m) solver from `unsnap-krylov`.  Every Krylov
//! iteration costs exactly one sweep (the same unit of work as one SI
//! iteration), so sweep counts are directly comparable between the two
//! strategies — and on high-`c` problems GMRES needs dramatically fewer.
//!
//! Strategies are selected per [`Problem`](crate::problem::Problem) via
//! [`StrategyKind`] and run by
//! [`TransportSolver::run`](crate::solver::TransportSolver::run); both see
//! the same convergence tolerance and the same `inner_iterations` budget
//! per outer iteration.  The group-to-group (outer Jacobi) coupling is
//! untouched: within one outer iteration the operator is block-diagonal
//! over groups, so a single Krylov space over the full scalar-flux vector
//! solves every group's within-group equation simultaneously.
//!
//! Strategies do not touch the solver type directly: they drive the
//! [`InnerSolveContext`] trait, which both the single-domain
//! [`TransportSolver`](crate::solver::TransportSolver) and the per-rank
//! subdomain contexts of the distributed block-Jacobi driver
//! (`unsnap-comm`) implement — the same SI/GMRES objects therefore run
//! whole-domain and rank-decomposed solves alike.

use serde::{Deserialize, Serialize};

use unsnap_krylov::{Gmres, GmresConfig, GmresWorkspace, LinearOperator, ObservedOperator};

use crate::error::Result;
use crate::session::RunObserver;
use crate::solver::{relative_change, RunStats};

/// Which inner-iteration strategy the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum StrategyKind {
    /// Classic lagged source iteration (the SNAP/UnSNAP scheme).
    #[default]
    SourceIteration,
    /// Sweep-preconditioned GMRES(m) on the within-group fixed point.
    SweepGmres,
}

impl StrategyKind {
    /// All selectable strategies, in report order.
    pub fn all() -> [StrategyKind; 2] {
        [StrategyKind::SourceIteration, StrategyKind::SweepGmres]
    }

    /// Instantiate the strategy object.
    pub fn build(self) -> Box<dyn IterationStrategy> {
        match self {
            StrategyKind::SourceIteration => Box::new(SourceIteration),
            StrategyKind::SweepGmres => Box::new(SweepGmres),
        }
    }

    /// Short name used in tables and for CLI/env selection.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::SourceIteration => "SI",
            StrategyKind::SweepGmres => "GMRES",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "si" | "source" | "source-iteration" => Ok(StrategyKind::SourceIteration),
            "gmres" | "sweep-gmres" | "krylov" => Ok(StrategyKind::SweepGmres),
            other => Err(format!("unknown iteration strategy '{other}'")),
        }
    }
}

/// The solve surface an [`IterationStrategy`] drives: a within-group
/// transport problem mid-outer-iteration (`phi_outer` freshly saved),
/// exposing exactly the operations the strategies need — source
/// assembly, one-sweep preconditioner applications, and the scalar-flux
/// state vector.
///
/// Two implementations exist: the single-domain
/// [`TransportSolver`](crate::solver::TransportSolver) (the seed path,
/// bit-for-bit unchanged), and the per-rank subdomain context of the
/// distributed block-Jacobi driver in `unsnap-comm`, whose sweeps are
/// masked to the rank's cells and read cross-rank upwind data from the
/// lagged halo.  Both run the *same* strategy objects, so SI and
/// sweep-preconditioned GMRES behave identically whether the domain is
/// whole or decomposed.
pub trait InnerSolveContext {
    /// Maximum inner iterations (sweeps or Krylov steps) per invocation.
    fn inner_iteration_budget(&self) -> usize;

    /// Pointwise convergence tolerance (0 = run every iteration).
    fn convergence_tolerance(&self) -> f64;

    /// GMRES restart length for the Krylov strategies.
    fn gmres_restart(&self) -> usize;

    /// Assemble the full source: fixed + cross-group scattering from the
    /// previous outer iterate + within-group scattering from the current
    /// scalar flux.
    fn compute_source(&mut self);

    /// Assemble the *external* source only (within-group term omitted) —
    /// the `q_ext` of the within-group system the Krylov strategies solve.
    fn compute_external_source(&mut self);

    /// Overwrite the source with the within-group scatter of `v`
    /// (`q(e, g) = σ_s(g → g) · v(e, g)`), the `S_w v` half of the
    /// matrix-free operator.
    fn set_source_to_within_group_scatter(&mut self, v: &[f64]);

    /// Enable/disable homogeneous (zero-inflow) treatment of *affine*
    /// inflow for subsequent sweeps.  For a whole domain that is the
    /// boundary condition; for a rank subdomain it is the boundary
    /// condition *and* the lagged halo data — both belong to the
    /// right-hand side, and a sweep that re-injects them during operator
    /// applications is affine rather than linear.
    fn set_homogeneous_boundaries(&mut self, on: bool);

    /// Zero the scalar flux and run one full sweep of the current source
    /// (`φ ← D L⁻¹ q`), accounting the work in `stats` and notifying
    /// `observer` when the sweep completes.
    fn sweep_once(&mut self, stats: &mut RunStats, observer: &mut dyn RunObserver);

    /// Snapshot the scalar flux into the previous-inner-iterate buffer.
    fn save_phi_inner(&mut self);

    /// Overwrite the scalar flux with `v`.
    fn set_phi(&mut self, v: &[f64]);

    /// The scalar flux as a flat slice.
    fn phi_slice(&self) -> &[f64];

    /// The previous inner iterate as a flat slice.
    fn phi_inner_slice(&self) -> &[f64];

    /// Hand out the context's reusable Krylov workspace (a fresh one by
    /// default).  Contexts that are invoked repeatedly — one per rank per
    /// halo iteration — override this together with
    /// [`InnerSolveContext::put_krylov_workspace`] so the Krylov basis is
    /// allocated once per rank.
    fn take_krylov_workspace(&mut self) -> GmresWorkspace {
        GmresWorkspace::new()
    }

    /// Return the workspace after the solve (dropped by default).
    fn put_krylov_workspace(&mut self, workspace: GmresWorkspace) {
        let _ = workspace;
    }
}

/// An inner-iteration scheme: given a solve context mid-outer-iteration
/// (`phi_outer` freshly saved), drive the within-group solve.
///
/// Implementations report work through `stats` (sweep counts, kernel
/// timing, convergence history) and return whether the inner solve met
/// the context's convergence tolerance.
pub trait IterationStrategy {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Run the inner iterations of one outer iteration, streaming
    /// progress (inner iterates, sweeps, Krylov residuals) to `observer`.
    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool>;
}

/// The seed's lagged source iteration, unchanged.
pub struct SourceIteration;

impl IterationStrategy for SourceIteration {
    fn name(&self) -> &'static str {
        "source iteration"
    }

    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool> {
        let inner_iterations = context.inner_iteration_budget();
        let tolerance = context.convergence_tolerance();
        for _inner in 0..inner_iterations {
            stats.inner_iterations += 1;
            context.compute_source();
            context.save_phi_inner();
            context.sweep_once(stats, observer);
            let diff = relative_change(context.phi_slice(), context.phi_inner_slice());
            stats.convergence_history.push(diff);
            observer.on_inner_iteration(stats.inner_iterations, diff);
            if tolerance > 0.0 && diff < tolerance {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// The within-group transport operator `v ↦ (I − D L⁻¹ S_w) v`, applied
/// matrix-free: one scatter-scale plus one full sweep per application.
///
/// The operator also carries the run's observer: every sweep it performs
/// fires `on_sweep`, and the GMRES driver's residual notifications are
/// forwarded as `on_krylov_residual` through the
/// [`ObservedOperator`] hook.
struct SweepOperator<'a, 'b, 'c> {
    context: &'a mut dyn InnerSolveContext,
    stats: &'b mut RunStats,
    observer: &'c mut dyn RunObserver,
}

impl LinearOperator for SweepOperator<'_, '_, '_> {
    fn dim(&self) -> usize {
        self.context.phi_slice().len()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.context.set_source_to_within_group_scatter(x);
        // Boundary (and, for rank subdomains, halo) inflow is part of the
        // affine right-hand side, not the operator: sweep with
        // homogeneous (vacuum) inflow so the application stays linear in
        // `x`.
        self.context.set_homogeneous_boundaries(true);
        self.context.sweep_once(self.stats, self.observer);
        self.context.set_homogeneous_boundaries(false);
        for ((yi, xi), phi) in y
            .iter_mut()
            .zip(x.iter())
            .zip(self.context.phi_slice().iter())
        {
            *yi = xi - phi;
        }
    }
}

impl ObservedOperator for SweepOperator<'_, '_, '_> {
    fn on_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.observer
            .on_krylov_residual(iteration, relative_residual);
    }
}

/// Sweep-preconditioned GMRES(m) on the within-group fixed point.
pub struct SweepGmres;

impl IterationStrategy for SweepGmres {
    fn name(&self) -> &'static str {
        "sweep-preconditioned GMRES"
    }

    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool> {
        let config = GmresConfig {
            restart: context.gmres_restart(),
            // One Krylov iteration costs one sweep, so the inner budget
            // carries over unchanged from source iteration.
            max_iterations: context.inner_iteration_budget(),
            tolerance: context.convergence_tolerance(),
        };

        // Warm-start from the current flux (zero on the first outer,
        // the previous outer's solution afterwards).
        let mut x = context.phi_slice().to_vec();

        // Right-hand side b = D L⁻¹ q_ext: one sweep of the external
        // (fixed + cross-group) source.
        context.compute_external_source();
        context.sweep_once(stats, observer);
        let b = context.phi_slice().to_vec();

        let mut workspace = context.take_krylov_workspace();
        let outcome = Gmres::new(config).solve_observed_in(
            &mut workspace,
            &mut SweepOperator {
                context,
                stats,
                observer,
            },
            &b,
            &mut x,
        );
        context.put_krylov_workspace(workspace);
        let outcome = outcome?;
        stats.inner_iterations += outcome.iterations;
        stats.krylov_iterations += outcome.iterations;
        stats
            .krylov_residual_history
            .extend_from_slice(&outcome.residual_history);

        // Consistency sweep: regenerate the angular flux (and the final
        // scalar flux) from the converged iterate with the full source,
        // so ψ/φ leave the solver physically consistent exactly as a
        // source-iteration step would.
        context.set_phi(&x);
        context.save_phi_inner();
        context.compute_source();
        context.sweep_once(stats, observer);
        let diff = relative_change(context.phi_slice(), context.phi_inner_slice());
        stats.convergence_history.push(diff);
        observer.on_inner_iteration(stats.inner_iterations, diff);

        Ok(outcome.converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_strings() {
        for kind in StrategyKind::all() {
            let parsed: StrategyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(
            "si".parse::<StrategyKind>().unwrap(),
            StrategyKind::SourceIteration
        );
        assert_eq!(
            "krylov".parse::<StrategyKind>().unwrap(),
            StrategyKind::SweepGmres
        );
        assert!("nonsense".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn default_is_source_iteration() {
        assert_eq!(StrategyKind::default(), StrategyKind::SourceIteration);
    }

    #[test]
    fn build_produces_named_strategies() {
        assert_eq!(
            StrategyKind::SourceIteration.build().name(),
            "source iteration"
        );
        assert_eq!(
            StrategyKind::SweepGmres.build().name(),
            "sweep-preconditioned GMRES"
        );
    }
}
