//! Pluggable inner-iteration strategies for the transport solver.
//!
//! The seed solver resolves the within-group scattering fixed point
//!
//! ```text
//! φ = D L⁻¹ (S_w φ + q_ext)
//! ```
//!
//! by **source iteration** (SI): apply the right-hand side repeatedly and
//! let the contraction — whose rate is the within-group scattering ratio
//! `c` — do the work.  That is [`SourceIteration`], reproduced here
//! bit-for-bit from the original inner loop.  SI needs `O(log tol / log
//! c)` sweeps, which blows up as `c → 1` (scattering-dominated media).
//!
//! [`SweepGmres`] instead treats one full transport sweep `D L⁻¹` as the
//! preconditioner application and hands the equivalent linear system
//!
//! ```text
//! (I − D L⁻¹ S_w) φ = D L⁻¹ q_ext
//! ```
//!
//! to the matrix-free GMRES(m) solver from `unsnap-krylov`.  Every Krylov
//! iteration costs exactly one sweep (the same unit of work as one SI
//! iteration), so sweep counts are directly comparable between the two
//! strategies — and on high-`c` problems GMRES needs dramatically fewer.
//!
//! Strategies are selected per [`Problem`](crate::problem::Problem) via
//! [`StrategyKind`] and run by
//! [`TransportSolver::run`](crate::solver::TransportSolver::run); both see
//! the same convergence tolerance and the same `inner_iterations` budget
//! per outer iteration.  The group-to-group (outer Jacobi) coupling is
//! untouched: within one outer iteration the operator is block-diagonal
//! over groups, so a single Krylov space over the full scalar-flux vector
//! solves every group's within-group equation simultaneously.
//!
//! Strategies do not touch the solver type directly: they drive the
//! [`InnerSolveContext`] trait, which both the single-domain
//! [`TransportSolver`](crate::solver::TransportSolver) and the per-rank
//! subdomain contexts of the distributed block-Jacobi driver
//! (`unsnap-comm`) implement — the same SI/GMRES objects therefore run
//! whole-domain and rank-decomposed solves alike.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use unsnap_krylov::{Gmres, GmresConfig, GmresWorkspace, LinearOperator, ObservedOperator};

use crate::error::Result;
use crate::session::{Phase, RunObserver};
use crate::solver::{relative_change, RunStats};

/// Which inner-iteration strategy the solver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum StrategyKind {
    /// Classic lagged source iteration (the SNAP/UnSNAP scheme).
    #[default]
    SourceIteration,
    /// Source iteration with a diffusion-synthetic-acceleration
    /// correction after every sweep: a cheap low-order diffusion solve
    /// estimates the slowly-converging (diffusive) error modes and
    /// subtracts them, collapsing the spectral radius from `≈ c` to
    /// `≈ 0.22 c` in scattering-dominated media.
    DsaSourceIteration,
    /// Sweep-preconditioned GMRES(m) on the within-group fixed point.
    SweepGmres,
}

impl StrategyKind {
    /// All selectable strategies, in report order.
    pub fn all() -> [StrategyKind; 3] {
        [
            StrategyKind::SourceIteration,
            StrategyKind::DsaSourceIteration,
            StrategyKind::SweepGmres,
        ]
    }

    /// Instantiate the strategy object.
    pub fn build(self) -> Box<dyn IterationStrategy> {
        match self {
            StrategyKind::SourceIteration => Box::new(SourceIteration),
            StrategyKind::DsaSourceIteration => Box::new(DsaSourceIteration),
            StrategyKind::SweepGmres => Box::new(SweepGmres),
        }
    }

    /// Short name used in tables and for CLI/env selection.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::SourceIteration => "SI",
            StrategyKind::DsaSourceIteration => "DSA-SI",
            StrategyKind::SweepGmres => "GMRES",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "si" | "source" | "source-iteration" => Ok(StrategyKind::SourceIteration),
            "dsa-si" | "dsa" | "dsa-source-iteration" => Ok(StrategyKind::DsaSourceIteration),
            "gmres" | "sweep-gmres" | "krylov" => Ok(StrategyKind::SweepGmres),
            other => Err(format!("unknown iteration strategy '{other}'")),
        }
    }
}

/// Which low-order accelerator (if any) augments the Krylov strategies.
///
/// [`StrategyKind::DsaSourceIteration`] always applies its DSA
/// correction — that is the strategy's definition.  This knob instead
/// controls the *optional* DSA preconditioning of
/// [`StrategyKind::SweepGmres`]: with [`AcceleratorKind::Dsa`] the
/// Krylov operator (and right-hand side) is the DSA-accelerated
/// iteration map rather than the bare sweep map, so each GMRES iteration
/// costs one sweep plus one low-order CG solve and the Krylov space
/// needs far fewer dimensions in the high-`c` regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AcceleratorKind {
    /// No low-order acceleration.
    #[default]
    None,
    /// Diffusion synthetic acceleration (the `unsnap-accel` operator).
    Dsa,
}

impl AcceleratorKind {
    /// All selectable accelerators, in report order.
    pub fn all() -> [AcceleratorKind; 2] {
        [AcceleratorKind::None, AcceleratorKind::Dsa]
    }

    /// Short name used in tables and for CLI/env selection.
    pub fn label(&self) -> &'static str {
        match self {
            AcceleratorKind::None => "none",
            AcceleratorKind::Dsa => "dsa",
        }
    }
}

impl std::fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for AcceleratorKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(AcceleratorKind::None),
            "dsa" | "diffusion" => Ok(AcceleratorKind::Dsa),
            other => Err(format!("unknown accelerator '{other}'")),
        }
    }
}

/// The solve surface an [`IterationStrategy`] drives: a within-group
/// transport problem mid-outer-iteration (`phi_outer` freshly saved),
/// exposing exactly the operations the strategies need — source
/// assembly, one-sweep preconditioner applications, and the scalar-flux
/// state vector.
///
/// Two implementations exist: the single-domain
/// [`TransportSolver`](crate::solver::TransportSolver) (the seed path,
/// bit-for-bit unchanged), and the per-rank subdomain context of the
/// distributed block-Jacobi driver in `unsnap-comm`, whose sweeps are
/// masked to the rank's cells and read cross-rank upwind data from the
/// lagged halo.  Both run the *same* strategy objects, so SI and
/// sweep-preconditioned GMRES behave identically whether the domain is
/// whole or decomposed.
pub trait InnerSolveContext {
    /// Maximum inner iterations (sweeps or Krylov steps) per invocation.
    fn inner_iteration_budget(&self) -> usize;

    /// Pointwise convergence tolerance (0 = run every iteration).
    fn convergence_tolerance(&self) -> f64;

    /// The context's current clock reading, used by the strategies to
    /// time the phase spans they open ([`Phase::SourceAssembly`],
    /// [`Phase::Krylov`]).  Both real contexts override this with their
    /// swappable solver clock; the default reads nothing and reports
    /// [`Duration::ZERO`], so span *counts* stay deterministic even for
    /// a context without a clock.
    fn now(&self) -> Duration {
        Duration::ZERO
    }

    /// GMRES restart length for the Krylov strategies.
    fn gmres_restart(&self) -> usize;

    /// Assemble the full source: fixed + cross-group scattering from the
    /// previous outer iterate + within-group scattering from the current
    /// scalar flux.
    fn compute_source(&mut self);

    /// Assemble the *external* source only (within-group term omitted) —
    /// the `q_ext` of the within-group system the Krylov strategies solve.
    fn compute_external_source(&mut self);

    /// Overwrite the source with the within-group scatter of `v`
    /// (`q(e, g) = σ_s(g → g) · v(e, g)`), the `S_w v` half of the
    /// matrix-free operator.
    fn set_source_to_within_group_scatter(&mut self, v: &[f64]);

    /// Enable/disable homogeneous (zero-inflow) treatment of *affine*
    /// inflow for subsequent sweeps.  For a whole domain that is the
    /// boundary condition; for a rank subdomain it is the boundary
    /// condition *and* the lagged halo data — both belong to the
    /// right-hand side, and a sweep that re-injects them during operator
    /// applications is affine rather than linear.
    fn set_homogeneous_boundaries(&mut self, on: bool);

    /// Zero the scalar flux and run one full sweep of the current source
    /// (`φ ← D L⁻¹ q`), accounting the work in `stats` and notifying
    /// `observer` when the sweep completes.
    fn sweep_once(&mut self, stats: &mut RunStats, observer: &mut dyn RunObserver);

    /// Snapshot the scalar flux into the previous-inner-iterate buffer.
    fn save_phi_inner(&mut self);

    /// Overwrite the scalar flux with `v`.
    fn set_phi(&mut self, v: &[f64]);

    /// The scalar flux as a flat slice.
    fn phi_slice(&self) -> &[f64];

    /// The previous inner iterate as a flat slice.
    fn phi_inner_slice(&self) -> &[f64];

    /// Hand out the context's reusable Krylov workspace (a fresh one by
    /// default).  Contexts that are invoked repeatedly — one per rank per
    /// halo iteration — override this together with
    /// [`InnerSolveContext::put_krylov_workspace`] so the Krylov basis is
    /// allocated once per rank.
    fn take_krylov_workspace(&mut self) -> GmresWorkspace {
        GmresWorkspace::new()
    }

    /// Return the workspace after the solve (dropped by default).
    fn put_krylov_workspace(&mut self, workspace: GmresWorkspace) {
        let _ = workspace;
    }

    /// Which optional low-order accelerator the Krylov strategies should
    /// apply (the [`Problem::accelerator`](crate::problem::Problem)
    /// knob).  Defaults to none.
    fn accelerator(&self) -> AcceleratorKind {
        AcceleratorKind::None
    }

    /// Apply one DSA correction to the scalar flux in place: restrict
    /// the sweep residual `σ_s (φ − previous)` to cell averages, solve
    /// the low-order diffusion error equation with CG, and prolongate
    /// the correction back onto the flux nodes (see
    /// [`DsaAccelerator`](crate::dsa::DsaAccelerator)).
    ///
    /// `previous` is the iterate the sweep started from — flux-shaped,
    /// in the context's own layout.  CG work is accounted in `stats` and
    /// residuals stream through
    /// [`RunObserver::on_accel_residual`].
    /// Contexts that own mesh and material data override this (both the
    /// single-domain solver and the block-Jacobi rank contexts do,
    /// building their accelerator lazily on first use); the default
    /// reports an unsupported-context execution error.
    fn dsa_correct(
        &mut self,
        previous: &[f64],
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<()> {
        let _ = (previous, stats, observer);
        Err(crate::error::Error::Execution {
            reason: "this inner-solve context does not support DSA correction".to_string(),
        })
    }
}

/// An inner-iteration scheme: given a solve context mid-outer-iteration
/// (`phi_outer` freshly saved), drive the within-group solve.
///
/// Implementations report work through `stats` (sweep counts, kernel
/// timing, convergence history) and return whether the inner solve met
/// the context's convergence tolerance.
pub trait IterationStrategy {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Run the inner iterations of one outer iteration, streaming
    /// progress (inner iterates, sweeps, Krylov residuals) to `observer`.
    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool>;
}

/// Assemble the total or external source inside a timed
/// [`Phase::SourceAssembly`] span.  Shared by every strategy so the
/// span count per inner iteration is uniform.
fn assemble_source_timed(
    context: &mut dyn InnerSolveContext,
    observer: &mut dyn RunObserver,
    external_only: bool,
) {
    observer.on_phase_start(Phase::SourceAssembly);
    let t0 = context.now();
    if external_only {
        context.compute_external_source();
    } else {
        context.compute_source();
    }
    let seconds = context.now().saturating_sub(t0).as_secs_f64();
    observer.on_phase_end(Phase::SourceAssembly, seconds);
}

/// The seed's lagged source iteration, unchanged.
pub struct SourceIteration;

impl IterationStrategy for SourceIteration {
    fn name(&self) -> &'static str {
        "source iteration"
    }

    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool> {
        let inner_iterations = context.inner_iteration_budget();
        let tolerance = context.convergence_tolerance();
        for _inner in 0..inner_iterations {
            stats.inner_iterations += 1;
            assemble_source_timed(context, observer, false);
            context.save_phi_inner();
            context.sweep_once(stats, observer);
            let diff = relative_change(context.phi_slice(), context.phi_inner_slice());
            stats.convergence_history.push(diff);
            observer.on_inner_iteration(stats.inner_iterations, diff);
            if tolerance > 0.0 && diff < tolerance {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Source iteration with a DSA correction after every sweep.
///
/// Each inner iteration is one transport sweep (the same unit of work
/// as plain SI) followed by one low-order diffusion solve for the
/// iteration error, applied through
/// [`InnerSolveContext::dsa_correct`]:
///
/// ```text
/// φ^{l+1/2} = D L⁻¹ (S_w φ^l + q_ext)          (the sweep)
/// −∇·(D∇e) + σ_r e = σ_s (φ^{l+1/2} − φ^l)     (the correction)
/// φ^{l+1} = φ^{l+1/2} + e
/// ```
///
/// Sweep counts therefore remain directly comparable with SI and
/// sweep-preconditioned GMRES — the correction costs CG iterations on a
/// system that is `nodes × angles` times smaller than a sweep.
pub struct DsaSourceIteration;

impl IterationStrategy for DsaSourceIteration {
    fn name(&self) -> &'static str {
        "DSA-accelerated source iteration"
    }

    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool> {
        let inner_iterations = context.inner_iteration_budget();
        let tolerance = context.convergence_tolerance();
        let mut previous = Vec::new();
        for _inner in 0..inner_iterations {
            stats.inner_iterations += 1;
            assemble_source_timed(context, observer, false);
            context.save_phi_inner();
            context.sweep_once(stats, observer);
            // The DSA correction needs the pre-sweep iterate; `phi_inner`
            // holds it, but `dsa_correct` mutates the flux, so snapshot
            // it into a reused scratch first.
            previous.clear();
            previous.extend_from_slice(context.phi_inner_slice());
            context.dsa_correct(&previous, stats, observer)?;
            let diff = relative_change(context.phi_slice(), context.phi_inner_slice());
            stats.convergence_history.push(diff);
            observer.on_inner_iteration(stats.inner_iterations, diff);
            if tolerance > 0.0 && diff < tolerance {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// The within-group transport operator `v ↦ (I − D L⁻¹ S_w) v`, applied
/// matrix-free: one scatter-scale plus one full sweep per application.
///
/// With `accelerated` set the operator is the *DSA-preconditioned*
/// iteration map instead: after the homogeneous sweep produces
/// `φ_half = D L⁻¹ S_w x`, the low-order correction
/// `C (φ_half − x)` is added before the difference is formed, i.e.
/// `y = x − [(I + C)(D L⁻¹ S_w x) − C x]` — the linear part of one
/// DSA-SI step.  The correction solve is exact to the (tight) low-order
/// CG tolerance, so the operator is linear to that tolerance and plain
/// GMRES applies; any correction failure is latched in `dsa_error` and
/// surfaced after the Krylov solve ([`LinearOperator::apply`] is
/// infallible).
///
/// The operator also carries the run's observer: every sweep it performs
/// fires `on_sweep`, and the GMRES driver's residual notifications are
/// forwarded as `on_krylov_residual` through the
/// [`ObservedOperator`] hook.
struct SweepOperator<'a, 'b, 'c> {
    context: &'a mut dyn InnerSolveContext,
    stats: &'b mut RunStats,
    observer: &'c mut dyn RunObserver,
    /// Apply the DSA correction inside every operator application.
    accelerated: bool,
    /// First DSA failure, surfaced by the strategy after the solve.
    dsa_error: Option<crate::error::Error>,
}

impl LinearOperator for SweepOperator<'_, '_, '_> {
    fn dim(&self) -> usize {
        self.context.phi_slice().len()
    }

    fn apply(&mut self, x: &[f64], y: &mut [f64]) {
        self.context.set_source_to_within_group_scatter(x);
        // Boundary (and, for rank subdomains, halo) inflow is part of the
        // affine right-hand side, not the operator: sweep with
        // homogeneous (vacuum) inflow so the application stays linear in
        // `x`.
        self.context.set_homogeneous_boundaries(true);
        self.context.sweep_once(self.stats, self.observer);
        self.context.set_homogeneous_boundaries(false);
        if self.accelerated && self.dsa_error.is_none() {
            if let Err(e) = self.context.dsa_correct(x, self.stats, self.observer) {
                self.dsa_error = Some(e);
            }
        }
        for ((yi, xi), phi) in y
            .iter_mut()
            .zip(x.iter())
            .zip(self.context.phi_slice().iter())
        {
            *yi = xi - phi;
        }
    }
}

impl ObservedOperator for SweepOperator<'_, '_, '_> {
    fn on_residual(&mut self, iteration: usize, relative_residual: f64) {
        self.observer
            .on_krylov_residual(iteration, relative_residual);
    }
}

/// Sweep-preconditioned GMRES(m) on the within-group fixed point.
///
/// When the solve context selects [`AcceleratorKind::Dsa`], the Krylov
/// system is the *DSA-preconditioned* fixed point instead: both the
/// right-hand side and every operator application carry the low-order
/// correction (see `SweepOperator`), so the GMRES space only has to
/// capture what the diffusion solve missed.
pub struct SweepGmres;

impl IterationStrategy for SweepGmres {
    fn name(&self) -> &'static str {
        "sweep-preconditioned GMRES"
    }

    fn run_inners(
        &self,
        context: &mut dyn InnerSolveContext,
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<bool> {
        let config = GmresConfig {
            restart: context.gmres_restart(),
            // One Krylov iteration costs one sweep, so the inner budget
            // carries over unchanged from source iteration.
            max_iterations: context.inner_iteration_budget(),
            tolerance: context.convergence_tolerance(),
        };
        let accelerated = context.accelerator() == AcceleratorKind::Dsa;

        // Warm-start from the current flux (zero on the first outer,
        // the previous outer's solution afterwards).
        let mut x = context.phi_slice().to_vec();

        // Right-hand side b = D L⁻¹ q_ext: one sweep of the external
        // (fixed + cross-group) source — corrected to
        // (I + C) D L⁻¹ q_ext under DSA preconditioning (the affine part
        // of one DSA-SI step from a zero iterate).
        assemble_source_timed(context, observer, true);
        context.sweep_once(stats, observer);
        if accelerated {
            let zeros = vec![0.0f64; context.phi_slice().len()];
            context.dsa_correct(&zeros, stats, observer)?;
        }
        let b = context.phi_slice().to_vec();

        let mut workspace = context.take_krylov_workspace();
        observer.on_phase_start(Phase::Krylov);
        let krylov_t0 = context.now();
        let (outcome, dsa_error) = {
            let mut operator = SweepOperator {
                context,
                stats,
                observer,
                accelerated,
                dsa_error: None,
            };
            let outcome =
                Gmres::new(config).solve_observed_in(&mut workspace, &mut operator, &b, &mut x);
            (outcome, operator.dsa_error)
        };
        let krylov_seconds = context.now().saturating_sub(krylov_t0).as_secs_f64();
        observer.on_phase_end(Phase::Krylov, krylov_seconds);
        context.put_krylov_workspace(workspace);
        if let Some(e) = dsa_error {
            return Err(e);
        }
        let outcome = outcome?;
        stats.inner_iterations += outcome.iterations;
        stats.krylov_iterations += outcome.iterations;
        stats
            .krylov_residual_history
            .extend_from_slice(&outcome.residual_history);

        // Consistency sweep: regenerate the angular flux (and the final
        // scalar flux) from the converged iterate with the full source,
        // so ψ/φ leave the solver physically consistent exactly as a
        // source-iteration step would.
        context.set_phi(&x);
        context.save_phi_inner();
        assemble_source_timed(context, observer, false);
        context.sweep_once(stats, observer);
        let diff = relative_change(context.phi_slice(), context.phi_inner_slice());
        stats.convergence_history.push(diff);
        observer.on_inner_iteration(stats.inner_iterations, diff);

        Ok(outcome.converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_strings() {
        for kind in StrategyKind::all() {
            let parsed: StrategyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(
            "si".parse::<StrategyKind>().unwrap(),
            StrategyKind::SourceIteration
        );
        assert_eq!(
            "krylov".parse::<StrategyKind>().unwrap(),
            StrategyKind::SweepGmres
        );
        assert_eq!(
            "dsa".parse::<StrategyKind>().unwrap(),
            StrategyKind::DsaSourceIteration
        );
        assert!("nonsense".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn accelerator_kinds_round_trip_through_strings() {
        for kind in AcceleratorKind::all() {
            let parsed: AcceleratorKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(format!("{kind}"), kind.label());
        }
        assert_eq!(
            "diffusion".parse::<AcceleratorKind>().unwrap(),
            AcceleratorKind::Dsa
        );
        assert_eq!(
            "off".parse::<AcceleratorKind>().unwrap(),
            AcceleratorKind::None
        );
        assert!("nonsense".parse::<AcceleratorKind>().is_err());
        assert_eq!(AcceleratorKind::default(), AcceleratorKind::None);
    }

    #[test]
    fn default_is_source_iteration() {
        assert_eq!(StrategyKind::default(), StrategyKind::SourceIteration);
    }

    #[test]
    fn build_produces_named_strategies() {
        assert_eq!(
            StrategyKind::SourceIteration.build().name(),
            "source iteration"
        );
        assert_eq!(
            StrategyKind::DsaSourceIteration.build().name(),
            "DSA-accelerated source iteration"
        );
        assert_eq!(
            StrategyKind::SweepGmres.build().name(),
            "sweep-preconditioned GMRES"
        );
    }
}
