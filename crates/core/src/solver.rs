//! The transport solver: sweep driver, concurrency schemes, iteration
//! structure and timing.
//!
//! The solver follows SNAP's iteration structure (which UnSNAP inherits,
//! §III of the paper):
//!
//! * **outer iterations** resolve the group-to-group coupling of the
//!   scattering source with Jacobi iterations;
//! * **inner (source) iterations** lag the within-group scattering source;
//! * each inner iteration performs one full **sweep**: for every octant,
//!   for every angle in the octant, the wavefront buckets of that angle's
//!   schedule are processed in order, and inside a bucket the
//!   element × group work is executed according to the selected
//!   [`ConcurrencyScheme`](unsnap_sweep::ConcurrencyScheme) (the six
//!   variants of Figures 3/4 plus the
//!   angle-threaded ablation of §IV-A.3).
//!
//! The assemble/solve region is timed as a whole (the quantity plotted in
//! Figures 3 and 4 and tabulated in Table II), and — when
//! `Problem::time_solve` is set — the linear-solve share is accumulated
//! separately so the "% in solve" column of Table II can be reproduced.
//!
//! The element × group (and angle-threaded) fan-out executes on a **real
//! worker pool** sized by `Problem::num_threads` (force-overridable with
//! `RAYON_NUM_THREADS`).  Bucket tasks are split into index-ordered
//! chunks whose results are written back in input order, so every scheme
//! except the deliberately-contended angle-threaded ablation produces
//! bit-for-bit identical fluxes at any thread count — the invariant
//! `tests/parallel_determinism.rs` enforces.

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use unsnap_obs::clock::{Clock, SystemClock};
use unsnap_obs::trace::TraceTree;

use unsnap_fem::element::ReferenceElement;
use unsnap_fem::face::{face_node_indices, FACES};
use unsnap_fem::geometry::HexVertices;
use unsnap_fem::integrals::ElementIntegrals;
use unsnap_linalg::LinearSolver;
use unsnap_mesh::{NeighborRef, UnstructuredMesh};
use unsnap_sweep::{LoopOrder, SweepSchedule, ThreadedLoops};

use crate::angular::AngularQuadrature;
use crate::cancel::CancelToken;
use crate::data::ProblemData;
use crate::error::{Error, Result};
use crate::kernel::{KernelEngine, KernelScratch, KernelTiming, UpwindFace, UpwindSource};
use crate::layout::{FluxLayout, FluxStorage, Precision};
use crate::metrics::{MetricsObserver, RunMetrics};
use crate::problem::Problem;
use crate::session::{EventLog, NoopObserver, Phase, RunObserver, TeeObserver};

/// Result of one kernel task (one element × group for one angle).
struct TaskResult {
    element: usize,
    group: usize,
    psi: Vec<f64>,
    timing: KernelTiming,
}

/// Summary of a completed transport solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// Inner iterations actually executed (across all outers).  For
    /// source iteration every inner iteration is one sweep; for the
    /// Krylov strategies it is one Krylov step (also one sweep).
    pub inner_iterations: usize,
    /// Outer iterations executed.
    pub outer_iterations: usize,
    /// Full transport sweeps executed, including the right-hand-side and
    /// consistency sweeps of the Krylov strategies.  This is the honest
    /// unit of work for comparing iteration strategies.
    pub sweep_count: usize,
    /// Krylov iterations executed (zero under plain source iteration).
    pub krylov_iterations: usize,
    /// Relative Krylov residual trajectory, concatenated across outer
    /// iterations (empty under plain source iteration).
    pub krylov_residual_history: Vec<f64>,
    /// Low-order DSA CG iterations executed (zero unless the `DSA-SI`
    /// strategy or DSA-preconditioned GMRES ran).  These are *not*
    /// sweeps: the low-order system is `nodes × angles` times smaller
    /// than the transport system.
    pub accel_cg_iterations: usize,
    /// Relative DSA CG residual trajectory, concatenated across
    /// correction solves (empty when DSA is off).
    pub accel_residual_history: Vec<f64>,
    /// Whether the scalar flux met the convergence tolerance.
    pub converged: bool,
    /// Maximum relative scalar-flux change after each inner iteration.
    pub convergence_history: Vec<f64>,
    /// Wall-clock seconds spent in the assemble/solve (sweep) region —
    /// the quantity reported by Figures 3/4 and Table II.
    pub assemble_solve_seconds: f64,
    /// Accumulated per-kernel assembly time in seconds (summed over all
    /// worker threads, so it can exceed the wall-clock time).
    pub kernel_assemble_seconds: f64,
    /// Accumulated per-kernel solve time in seconds (only populated when
    /// `Problem::time_solve` is enabled).
    pub kernel_solve_seconds: f64,
    /// Number of local systems assembled and solved.
    pub kernel_invocations: u64,
    /// Sum of the scalar flux over all nodes, elements and groups.
    pub scalar_flux_total: f64,
    /// Maximum scalar-flux value.
    pub scalar_flux_max: f64,
    /// Minimum scalar-flux value.
    pub scalar_flux_min: f64,
    /// The run's telemetry snapshot, aggregated from the full observer
    /// event stream by the solver's internal
    /// [`crate::metrics::MetricsObserver`] — attached
    /// to every outcome with no caller wiring.  Deterministic half is
    /// bit-for-bit thread/rank-count invariant; the wall-clock half is
    /// stripped by [`RunMetrics::zero_wallclock`] before such
    /// comparisons.
    pub metrics: RunMetrics,
    /// The run's hierarchical span tree, built by the solver's internal
    /// [`crate::trace::TraceObserver`] tee.  Structure (ids, nesting,
    /// lanes, counts) is deterministic; timestamps are wall-clock and
    /// ignored by `PartialEq`.  Excluded from [`SolveOutcome::to_json`]
    /// — export it with [`TraceTree::to_chrome_json`] or
    /// [`TraceTree::to_collapsed`] instead.
    pub trace: TraceTree,
}

impl SolveOutcome {
    /// Fraction of the accumulated kernel time spent in the linear solve
    /// (the "% in solve" column of Table II).  Zero when solve timing was
    /// disabled.
    pub fn solve_fraction(&self) -> f64 {
        let total = self.kernel_assemble_seconds + self.kernel_solve_seconds;
        if total == 0.0 {
            0.0
        } else {
            self.kernel_solve_seconds / total
        }
    }

    /// Sum of the scalar flux (alias kept for API clarity in examples).
    pub fn scalar_flux_total(&self) -> f64 {
        self.scalar_flux_total
    }

    /// Serialise the outcome as a JSON object (via the workspace's
    /// hand-rolled [`json`](crate::json) writer — the vendored `serde` is
    /// a no-op stand-in).
    ///
    /// Doubles are written in shortest-round-trip form, so tooling that
    /// parses the dump recovers the exact values; non-finite entries
    /// become `null`.
    pub fn to_json(&self) -> String {
        crate::json::JsonObject::new()
            .field_usize("inner_iterations", self.inner_iterations)
            .field_usize("outer_iterations", self.outer_iterations)
            .field_usize("sweep_count", self.sweep_count)
            .field_usize("krylov_iterations", self.krylov_iterations)
            .field_f64_array("krylov_residual_history", &self.krylov_residual_history)
            .field_usize("accel_cg_iterations", self.accel_cg_iterations)
            .field_f64_array("accel_residual_history", &self.accel_residual_history)
            .field_bool("converged", self.converged)
            .field_f64_array("convergence_history", &self.convergence_history)
            .field_f64("assemble_solve_seconds", self.assemble_solve_seconds)
            .field_f64("kernel_assemble_seconds", self.kernel_assemble_seconds)
            .field_f64("kernel_solve_seconds", self.kernel_solve_seconds)
            .field_u64("kernel_invocations", self.kernel_invocations)
            .field_f64("scalar_flux_total", self.scalar_flux_total)
            .field_f64("scalar_flux_max", self.scalar_flux_max)
            .field_f64("scalar_flux_min", self.scalar_flux_min)
            .field_raw("metrics", &self.metrics.to_json())
            .finish()
    }
}

/// Work and convergence accounting shared between the solver driver and
/// the [`IterationStrategy`](crate::strategy::IterationStrategy)
/// implementations.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Inner iterations executed (SI sweeps or Krylov steps).
    pub inner_iterations: usize,
    /// Full transport sweeps executed.
    pub sweeps: usize,
    /// Wall-clock seconds spent inside the sweep region.
    pub sweep_seconds: f64,
    /// Accumulated per-kernel assemble/solve timing.
    pub kernel_timing: KernelTiming,
    /// Local systems assembled and solved.
    pub kernel_invocations: u64,
    /// Maximum relative scalar-flux change per inner iteration.
    pub convergence_history: Vec<f64>,
    /// Krylov iterations executed.
    pub krylov_iterations: usize,
    /// Relative Krylov residuals, concatenated across outer iterations.
    pub krylov_residual_history: Vec<f64>,
    /// Low-order DSA CG iterations executed.
    pub accel_cg_iterations: usize,
    /// Relative DSA CG residuals, concatenated across correction solves.
    pub accel_residual_history: Vec<f64>,
}

/// A borrowed, consistent snapshot of solver state at an outer-iteration
/// boundary — everything a durable run log needs to restart the solve
/// from this point (see [`ResumePoint`]).
///
/// Only φ, ψ and the accumulated [`RunStats`] are exposed: every other
/// piece of solver state (`phi_outer`, `phi_inner`, the assembled
/// source, Krylov and DSA scratch) is overwritten before it is read on
/// the next outer iteration, so checkpointing it would be dead weight.
#[derive(Debug)]
pub struct CheckpointView<'a> {
    /// The outer iteration that just completed (0-based).
    pub outer_completed: usize,
    /// Whether that outer iteration met the tolerance (a converged run
    /// has nothing left to resume).
    pub converged: bool,
    /// Scalar flux φ, in storage order.
    pub phi: &'a [f64],
    /// Angular flux ψ, in storage order.
    pub psi: &'a [f64],
    /// Work and convergence accounting so far.
    pub stats: &'a RunStats,
}

/// A durability hook invoked at every outer-iteration boundary of an
/// observed run (after `on_outer_end`, while the flux arrays are
/// quiescent).  An error return aborts the solve — the write-ahead log
/// layer uses this to simulate crashes deterministically.
pub trait CheckpointSink {
    /// Persist (or skip) a checkpoint of the given state.
    fn on_checkpoint(&mut self, view: &CheckpointView<'_>) -> Result<()>;
}

/// The sink used when nobody is checkpointing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl CheckpointSink for NoopSink {
    fn on_checkpoint(&mut self, _view: &CheckpointView<'_>) -> Result<()> {
        Ok(())
    }
}

/// Solver state recovered from a run log, to be installed with
/// [`TransportSolver::resume_from`] before re-running.
///
/// The resume contract: a run restarted from a `ResumePoint` produces a
/// [`SolveOutcome`] (flux, deterministic counters, histories, metrics)
/// and an observer event stream bit-for-bit identical to the
/// uninterrupted run's, because the saved `prefix` is replayed into the
/// observer before live iteration continues at `outer_next`.
#[derive(Debug, Clone, Default)]
pub struct ResumePoint {
    /// The first outer iteration the resumed run will execute.
    pub outer_next: usize,
    /// Accounting accumulated up to the checkpoint.
    pub stats: RunStats,
    /// Scalar flux φ at the checkpoint, in storage order.
    pub phi: Vec<f64>,
    /// Angular flux ψ at the checkpoint, in storage order.
    pub psi: Vec<f64>,
    /// Every observer event emitted before the checkpoint, replayed
    /// verbatim on resume so streams and metrics match the original run.
    pub prefix: EventLog,
}

/// The UnSNAP transport solver for a single (serial or threaded) domain.
pub struct TransportSolver {
    problem: Problem,
    mesh: UnstructuredMesh,
    element: ReferenceElement,
    /// Face-local node index lists for the six faces (identical for every
    /// element of a given order).
    face_nodes: [Vec<usize>; 6],
    /// Precomputed per-element integrals (`None` = compute on the fly).
    integrals: Option<Vec<ElementIntegrals>>,
    quadrature: AngularQuadrature,
    data: ProblemData,
    /// One sweep schedule per global angle index.
    schedules: Vec<SweepSchedule>,
    /// Angular flux ψ(node, element, group, angle).
    psi: FluxStorage,
    /// Scalar flux φ(node, element, group).
    phi: FluxStorage,
    /// Scalar flux at the previous inner iteration.
    phi_inner: FluxStorage,
    /// Scalar flux at the previous outer iteration.
    phi_outer: FluxStorage,
    /// Total source (fixed + scattering), same shape as φ.
    source: FluxStorage,
    /// Dense solver back end.
    solver: Box<dyn LinearSolver>,
    /// Worker pool the sweep fans out on, sized according to
    /// `Problem::num_threads` (a width of 1 runs inline on this thread).
    pool: rayon::ThreadPool,
    /// When set, sweeps treat every domain boundary as vacuum (zero
    /// incoming flux) regardless of the problem's boundary conditions.
    /// The Krylov strategies enable this during operator applications:
    /// the boundary source is part of the affine right-hand side, and
    /// including it in `apply` would make the "linear" operator affine.
    homogeneous_boundaries: bool,
    /// Reusable Krylov scratch handed to the iteration strategies, so
    /// repeated outer iterations (and repeated session runs) reuse the
    /// Arnoldi basis allocation instead of rebuilding it per solve.
    krylov_workspace: Option<unsnap_krylov::GmresWorkspace>,
    /// Lazily-built DSA accelerator (whole-mesh low-order diffusion
    /// operator + CG scratch), shared across iterations and runs.  Only
    /// materialises when a strategy actually asks for a correction.
    dsa: Option<crate::dsa::DsaAccelerator>,
    /// Time source for phase spans and per-sweep latency.  Swappable via
    /// [`TransportSolver::set_clock`], so tests inject a mock and pin
    /// the wall-clock metrics exactly; deterministic metrics never read
    /// it.
    clock: Box<dyn Clock>,
    /// Optional cooperative cancellation flag, polled at outer-iteration
    /// boundaries (see [`crate::cancel`]).  `None` = never cancellable.
    cancel: Option<CancelToken>,
    /// Wall-clock seconds spent precomputing integrals and sweep
    /// schedules in [`TransportSolver::new`].
    preassembly_seconds: f64,
    /// Whether the one-shot [`Phase::Preassembly`] span has been
    /// reported yet (it fires on the first observed run only — the work
    /// happened once, at construction).
    preassembly_reported: bool,
    /// Recovered state installed by [`TransportSolver::resume_from`],
    /// consumed by the next run.
    resume: Option<ResumePoint>,
    /// Per-cell assemble+solve engine: kernel implementation (reference
    /// scalar vs SoA cache-blocked) × arithmetic precision, resolved
    /// once from [`Problem::kernel`]/[`Problem::precision`] at build
    /// time.  `Copy`, so sweep closures capture it by value.
    engine: KernelEngine,
}

impl TransportSolver {
    /// Build a solver for the given problem.
    pub fn new(problem: &Problem) -> Result<Self> {
        problem.validate()?;
        let mesh = problem.build_mesh();
        let element = ReferenceElement::new(problem.element_order);
        let nodes = element.nodes_per_element();

        let face_nodes: [Vec<usize>; 6] =
            std::array::from_fn(|f| face_node_indices(FACES[f], problem.element_order));

        let quadrature = AngularQuadrature::product(problem.angles_per_octant);
        let grid = problem.grid();
        let mut data = ProblemData::generate(
            mesh.num_cells(),
            |cell| mesh.cell_centroid(cell),
            [grid.lx, grid.ly, grid.lz],
            problem.num_groups,
            problem.material,
            problem.source,
        );
        if let Some(c) = problem.scattering_ratio {
            data.xs = match problem.upscatter_ratio {
                Some(u) => crate::data::CrossSections::with_upscatter(
                    problem.num_groups,
                    data.xs.num_materials(),
                    c,
                    u,
                ),
                None => crate::data::CrossSections::with_scattering_ratio(
                    problem.num_groups,
                    data.xs.num_materials(),
                    c,
                ),
            };
        }

        let num_threads = problem
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(num_threads)
            .build()
            .map_err(|e| Error::Execution {
                reason: format!("failed to build thread pool: {e}"),
            })?;

        // Per-element integrals (the paper's precomputed basis-pair
        // integrals) — built in parallel, they are embarrassingly
        // independent.
        let preassembly_start = Instant::now();
        let integrals = if problem.precompute_integrals {
            let list: Vec<ElementIntegrals> = pool.install(|| {
                (0..mesh.num_cells())
                    .into_par_iter()
                    .map(|cell| {
                        let hex = HexVertices {
                            corners: *mesh.cell_corners(cell),
                        };
                        ElementIntegrals::compute(&element, &hex)
                    })
                    .collect()
            });
            Some(list)
        } else {
            None
        };

        // One wavefront schedule per angle (§III-A.2: potentially unique
        // per direction on an unstructured mesh).
        let schedules: Vec<SweepSchedule> = pool.install(|| {
            quadrature
                .directions()
                .par_iter()
                .map(|d| {
                    SweepSchedule::build(&mesh, d.omega)
                        .map_err(|e| Error::schedule(format!("angle {:?}", d.omega), e))
                })
                .collect::<Result<Vec<_>>>()
        })?;
        let preassembly_seconds = preassembly_start.elapsed().as_secs_f64();

        let order = problem.scheme.loop_order;
        let psi = FluxStorage::zeros(FluxLayout::angular(
            nodes,
            mesh.num_cells(),
            problem.num_groups,
            quadrature.num_angles(),
            order,
        ));
        let scalar_layout = FluxLayout::scalar(nodes, mesh.num_cells(), problem.num_groups, order);
        let phi = FluxStorage::zeros(scalar_layout);
        let phi_inner = FluxStorage::zeros(scalar_layout);
        let phi_outer = FluxStorage::zeros(scalar_layout);
        let source = FluxStorage::zeros(scalar_layout);

        Ok(Self {
            problem: problem.clone(),
            mesh,
            element,
            face_nodes,
            integrals,
            quadrature,
            data,
            schedules,
            psi,
            phi,
            phi_inner,
            phi_outer,
            source,
            solver: problem.solver.build(),
            pool,
            homogeneous_boundaries: false,
            krylov_workspace: None,
            dsa: None,
            clock: Box::new(SystemClock::new()),
            cancel: None,
            preassembly_seconds,
            preassembly_reported: false,
            resume: None,
            engine: KernelEngine::new(problem.kernel, problem.precision),
        })
    }

    /// Install recovered state so the next run continues from a
    /// checkpoint instead of starting cold.
    ///
    /// Validates the flux shapes against this solver's layout (the run
    /// log's manifest hash should already have guaranteed the problem
    /// matches, but a torn or foreign log must fail loudly, not
    /// corrupt state).  The point is consumed by the next
    /// `run`/`run_observed` call; an untouched solver runs normally.
    pub fn resume_from(&mut self, point: ResumePoint) -> Result<()> {
        if point.phi.len() != self.phi.as_slice().len() {
            return Err(Error::Execution {
                reason: format!(
                    "resume state has {} scalar-flux entries, solver expects {}",
                    point.phi.len(),
                    self.phi.as_slice().len()
                ),
            });
        }
        if point.psi.len() != self.psi.as_slice().len() {
            return Err(Error::Execution {
                reason: format!(
                    "resume state has {} angular-flux entries, solver expects {}",
                    point.psi.len(),
                    self.psi.as_slice().len()
                ),
            });
        }
        if point.outer_next > self.problem.outer_iterations {
            return Err(Error::Execution {
                reason: format!(
                    "resume state starts at outer {} but the problem runs only {}",
                    point.outer_next, self.problem.outer_iterations
                ),
            });
        }
        self.resume = Some(point);
        Ok(())
    }

    /// Replace the solver's time source.
    ///
    /// Tests inject a [`MockClock`](unsnap_obs::clock::MockClock) here
    /// to pin the wall-clock metrics (phase seconds, per-sweep latency)
    /// to exact values; deterministic metrics never read the clock and
    /// are unaffected.
    pub fn set_clock(&mut self, clock: Box<dyn Clock>) {
        self.clock = clock;
    }

    /// The problem this solver was built for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Arm cooperative cancellation: subsequent runs poll `token` at
    /// every outer-iteration boundary and bail out with
    /// [`Error::Cancelled`] once it fires (see [`crate::cancel`]).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Disarm cancellation; subsequent runs ignore any previous token.
    pub fn clear_cancel_token(&mut self) {
        self.cancel = None;
    }

    /// The armed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The mesh the solver operates on.
    pub fn mesh(&self) -> &UnstructuredMesh {
        &self.mesh
    }

    /// The angular quadrature in use.
    pub fn quadrature(&self) -> &AngularQuadrature {
        &self.quadrature
    }

    /// The scalar flux after the most recent `run`.
    pub fn scalar_flux(&self) -> &FluxStorage {
        &self.phi
    }

    /// The angular flux after the most recent `run`.
    pub fn angular_flux(&self) -> &FluxStorage {
        &self.psi
    }

    /// The per-angle sweep schedules.
    pub fn schedules(&self) -> &[SweepSchedule] {
        &self.schedules
    }

    /// Run the full outer/inner iteration structure and return a summary.
    ///
    /// Equivalent to [`TransportSolver::run_observed`] with a silent
    /// observer.  Most callers should prefer a
    /// [`Session`](crate::session::Session), which owns the solver state
    /// and exposes both entry points.
    pub fn run(&mut self) -> Result<SolveOutcome> {
        self.run_observed(&mut NoopObserver)
    }

    /// Run the full outer/inner iteration structure, streaming progress
    /// events to `observer`, and return a summary.
    ///
    /// The outer (Jacobi group-coupling) loop lives here; each outer
    /// iteration hands the within-group solve to the
    /// [`IterationStrategy`](crate::strategy::IterationStrategy) selected
    /// by [`Problem::strategy`](crate::problem::Problem).
    pub fn run_observed(&mut self, observer: &mut dyn RunObserver) -> Result<SolveOutcome> {
        self.run_observed_checkpointed(observer, &mut NoopSink)
    }

    /// [`TransportSolver::run_observed`] with a durability hook: `sink`
    /// is offered a [`CheckpointView`] at every outer-iteration boundary
    /// (after the outer's `on_outer_end` event).  A sink error aborts
    /// the run, which is how the write-ahead log layer injects
    /// deterministic crashes.
    pub fn run_observed_checkpointed(
        &mut self,
        observer: &mut dyn RunObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome> {
        // Tee the caller's observer with an internal metrics aggregator
        // and a trace builder, so every outcome carries its telemetry
        // and span tree without caller wiring.
        let mut metrics = MetricsObserver::new();
        let mut tracer = crate::trace::TraceObserver::new();
        let mut outcome = {
            let mut inner_tee = TeeObserver::new(observer, &mut metrics);
            let mut tee = TeeObserver::new(&mut inner_tee, &mut tracer);
            self.run_observed_inner(&mut tee, sink)?
        };
        let mut snapshot = metrics.snapshot();
        snapshot.kernel_assemble_seconds = outcome.kernel_assemble_seconds;
        snapshot.kernel_solve_seconds = outcome.kernel_solve_seconds;
        outcome.metrics = snapshot;
        outcome.trace = tracer.into_tree();
        Ok(outcome)
    }

    fn run_observed_inner(
        &mut self,
        observer: &mut dyn RunObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome> {
        // Consume any installed resume point: restore the flux state,
        // replay the saved event prefix into the observer tee (so the
        // caller's stream and the internal metrics aggregator both see
        // the run's full history), and continue from the saved outer.
        // The preassembly span is part of the replayed prefix, so the
        // one-shot report below must not fire again.
        let (mut stats, start_outer) = match self.resume.take() {
            Some(point) => {
                self.preassembly_reported = true;
                self.phi.as_mut_slice().copy_from_slice(&point.phi);
                self.psi.as_mut_slice().copy_from_slice(&point.psi);
                point.prefix.replay(observer);
                (point.stats, point.outer_next)
            }
            None => (RunStats::default(), 0),
        };
        if !self.preassembly_reported {
            self.preassembly_reported = true;
            observer.on_phase_start(Phase::Preassembly);
            observer.on_phase_end(Phase::Preassembly, self.preassembly_seconds);
        }
        let strategy = self.problem.strategy.build();
        let mut converged = false;

        for outer in start_outer..self.problem.outer_iterations {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(Error::Cancelled { outer });
                }
            }
            observer.on_outer_start(outer);
            self.phi_outer
                .as_mut_slice()
                .copy_from_slice(self.phi.as_slice());
            let inner_converged = strategy.run_inners(self, &mut stats, observer)?;
            observer.on_outer_end(outer, inner_converged);
            sink.on_checkpoint(&CheckpointView {
                outer_completed: outer,
                converged: inner_converged,
                phi: self.phi.as_slice(),
                psi: self.psi.as_slice(),
                stats: &stats,
            })?;
            if inner_converged {
                converged = true;
                break;
            }
        }

        let phi = self.phi.as_slice();
        let scalar_flux_total: f64 = phi.iter().sum();
        let scalar_flux_max = phi.iter().fold(f64::MIN, |m, &x| m.max(x));
        let scalar_flux_min = phi.iter().fold(f64::MAX, |m, &x| m.min(x));

        Ok(SolveOutcome {
            inner_iterations: stats.inner_iterations,
            outer_iterations: self.problem.outer_iterations,
            sweep_count: stats.sweeps,
            krylov_iterations: stats.krylov_iterations,
            krylov_residual_history: stats.krylov_residual_history,
            accel_cg_iterations: stats.accel_cg_iterations,
            accel_residual_history: stats.accel_residual_history,
            converged,
            convergence_history: stats.convergence_history,
            assemble_solve_seconds: stats.sweep_seconds,
            kernel_assemble_seconds: stats.kernel_timing.assemble_ns as f64 * 1e-9,
            kernel_solve_seconds: stats.kernel_timing.solve_ns as f64 * 1e-9,
            kernel_invocations: stats.kernel_invocations,
            scalar_flux_total,
            scalar_flux_max,
            scalar_flux_min,
            metrics: RunMetrics::default(),
            trace: TraceTree::default(),
        })
    }

    /// Compute the total source: fixed source plus scattering.
    ///
    /// Within-group scattering is taken from the latest scalar flux (the
    /// source-iteration lag); group-to-group transfer uses the previous
    /// outer iterate (Jacobi group coupling, as in SNAP).
    pub fn compute_source(&mut self) {
        self.assemble_source(true);
    }

    /// Compute the *external* source only: fixed source plus cross-group
    /// scattering from the previous outer iterate, with the within-group
    /// term omitted.  This is the `q_ext` of the within-group linear
    /// system `(I − D L⁻¹ S_w) φ = D L⁻¹ q_ext` the Krylov strategies
    /// solve.
    pub fn compute_external_source(&mut self) {
        self.assemble_source(false);
    }

    fn assemble_source(&mut self, include_within_group: bool) {
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        for element in 0..self.mesh.num_cells() {
            let mat = self.data.material(element);
            let q_fixed = self.data.fixed_source(element);
            for g in 0..ng {
                let mut acc = vec![q_fixed; nodes];
                for g_from in 0..ng {
                    if g_from == g && !include_within_group {
                        continue;
                    }
                    let sigma_s = self.data.xs.scatter(mat, g_from, g);
                    if sigma_s == 0.0 {
                        continue;
                    }
                    let phi_ref = if g_from == g {
                        self.phi.nodes(element, g_from, 0)
                    } else {
                        self.phi_outer.nodes(element, g_from, 0)
                    };
                    for (a, &p) in acc.iter_mut().zip(phi_ref.iter()) {
                        *a += sigma_s * p;
                    }
                }
                self.source.nodes_mut(element, g, 0).copy_from_slice(&acc);
            }
        }
    }

    /// Overwrite the source with the within-group scatter of an arbitrary
    /// flux-shaped vector: `q(e, g) = σ_s(g → g) · v(e, g)`.
    ///
    /// This is the `S_w v` half of the matrix-free within-group operator;
    /// the other half is one [`TransportSolver::sweep_once`].
    pub fn set_source_to_within_group_scatter(&mut self, v: &[f64]) {
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        let layout = *self.phi.layout();
        debug_assert_eq!(v.len(), self.phi.as_slice().len());
        for element in 0..self.mesh.num_cells() {
            let mat = self.data.material(element);
            for g in 0..ng {
                let sigma_s = self.data.xs.scatter(mat, g, g);
                let base = layout.base(element, g, 0);
                let src = self.source.nodes_mut(element, g, 0);
                for (s, &value) in src.iter_mut().zip(v[base..base + nodes].iter()) {
                    *s = sigma_s * value;
                }
            }
        }
    }

    /// Zero the scalar flux and run one full sweep of the current source
    /// (`φ ← D L⁻¹ q`), accounting the work in `stats` and notifying
    /// `observer` when the sweep completes.
    pub fn sweep_once(&mut self, stats: &mut RunStats, observer: &mut dyn RunObserver) {
        self.phi.fill(0.0);
        observer.on_phase_start(Phase::Sweep);
        let t0 = self.clock.now();
        let (timing, count) = self.sweep_all();
        let seconds = self.clock.now().saturating_sub(t0).as_secs_f64();
        // Per-wavefront-bucket structure events, emitted inside the
        // Sweep span with no extra clock reads (the MockClock pinning
        // contract).  Every (element, group) pair of a bucket is exactly
        // one kernel task in every concurrency scheme, so the payloads
        // are derived from the schedules in (angle, bucket) order —
        // identical at every thread count by construction.
        let ng = self.problem.num_groups as u64;
        let mut bucket_tasks = 0u64;
        for angle in 0..self.quadrature.num_angles() {
            for (bucket_index, bucket) in self.schedules[angle].buckets.iter().enumerate() {
                let tasks = bucket.len() as u64 * ng;
                bucket_tasks += tasks;
                observer.on_sweep_bucket(angle, bucket_index, tasks);
            }
        }
        debug_assert_eq!(bucket_tasks, count);
        observer.on_phase_end(Phase::Sweep, seconds);
        stats.sweep_seconds += seconds;
        stats.kernel_timing.accumulate(timing);
        stats.kernel_invocations += count;
        stats.sweeps += 1;
        observer.on_sweep(stats.sweeps, count, seconds);
    }

    /// Enable/disable homogeneous (zero-inflow) boundary treatment for
    /// subsequent sweeps.
    ///
    /// Matrix-free iteration strategies must sweep with homogeneous
    /// boundaries when applying the within-group operator — the
    /// prescribed incoming flux belongs to the right-hand side, and a
    /// sweep that re-injects it is affine rather than linear.  Plain
    /// source iteration never needs this.
    pub fn set_homogeneous_boundaries(&mut self, on: bool) {
        self.homogeneous_boundaries = on;
    }

    /// Snapshot the scalar flux into the previous-inner-iterate buffer.
    pub fn save_phi_inner(&mut self) {
        self.phi_inner
            .as_mut_slice()
            .copy_from_slice(self.phi.as_slice());
    }

    /// Overwrite the scalar flux with `v` (flux-shaped, current layout).
    pub fn set_phi(&mut self, v: &[f64]) {
        self.phi.as_mut_slice().copy_from_slice(v);
    }

    /// The scalar flux as a flat slice in the current layout.
    pub fn phi_slice(&self) -> &[f64] {
        self.phi.as_slice()
    }

    /// The previous inner iterate as a flat slice in the current layout.
    pub fn phi_inner_slice(&self) -> &[f64] {
        self.phi_inner.as_slice()
    }

    /// Sweep every octant and every angle, accumulating the scalar flux.
    fn sweep_all(&mut self) -> (KernelTiming, u64) {
        let mut timing = KernelTiming::default();
        let mut count = 0u64;
        match self.problem.scheme.threaded {
            ThreadedLoops::Angles => {
                for octant in 0..8 {
                    let (t, c) = self.sweep_octant_angle_threaded(octant);
                    timing.accumulate(t);
                    count += c;
                }
            }
            _ => {
                for angle in 0..self.quadrature.num_angles() {
                    let (t, c) = self.sweep_one_angle(angle);
                    timing.accumulate(t);
                    count += c;
                }
            }
        }
        (timing, count)
    }

    /// Sweep a single angle following its wavefront schedule, using the
    /// element/group threading dictated by the concurrency scheme.
    fn sweep_one_angle(&mut self, angle: usize) -> (KernelTiming, u64) {
        let direction = self.quadrature.directions()[angle];
        let omega = direction.omega;
        let weight = direction.weight;
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        let scheme = self.problem.scheme;
        let time_solve = self.problem.time_solve;

        let mut timing = KernelTiming::default();
        let mut count = 0u64;

        let num_buckets = self.schedules[angle].num_buckets();
        for bucket_index in 0..num_buckets {
            // Collect the results of the bucket first (immutable borrows of
            // psi/source/mesh), then write them back (mutable borrows).
            let results: Vec<TaskResult> = {
                let schedule = &self.schedules[angle];
                let bucket = &schedule.buckets[bucket_index];
                let mesh = &self.mesh;
                let element = &self.element;
                let integrals = self.integrals.as_deref();
                let data = &self.data;
                let psi = &self.psi;
                let source = &self.source;
                let face_nodes = &self.face_nodes;
                let boundaries = &self.problem.boundaries;
                let boundary_scale = if self.homogeneous_boundaries {
                    0.0
                } else {
                    1.0
                };
                let solver = self.solver.as_ref();
                let engine = self.engine;

                let run_task = |scratch: &mut KernelScratch, e: usize, g: usize| -> TaskResult {
                    let computed;
                    let ints: &ElementIntegrals = match integrals {
                        Some(list) => &list[e],
                        None => {
                            let hex = HexVertices {
                                corners: *mesh.cell_corners(e),
                            };
                            computed = ElementIntegrals::compute(element, &hex);
                            &computed
                        }
                    };
                    let sigma_t = data.xs.total(data.material(e), g);
                    let source_nodes = source.nodes(e, g, 0);
                    // Upwind faces for this element and direction.
                    let inflow = &schedule.inflow_faces[e];
                    let mut upwind: Vec<UpwindFace<'_>> = Vec::with_capacity(inflow.len());
                    for &face in inflow {
                        let src = match mesh.neighbor(e, face) {
                            NeighborRef::Boundary { domain_face } => UpwindSource::Boundary(
                                boundary_scale * boundaries.face(domain_face).incoming_flux(),
                            ),
                            NeighborRef::Interior { cell, face: nf } => UpwindSource::Interior {
                                neighbor_psi: psi.nodes(cell, g, angle),
                                neighbor_face_nodes: &face_nodes[nf],
                            },
                        };
                        upwind.push(UpwindFace { face, source: src });
                    }
                    let t = engine.assemble_solve(
                        e,
                        ints,
                        omega,
                        sigma_t,
                        source_nodes,
                        &upwind,
                        solver,
                        time_solve,
                        scratch,
                    );
                    TaskResult {
                        element: e,
                        group: g,
                        psi: scratch.rhs.clone(),
                        timing: t,
                    }
                };

                match scheme.threaded {
                    ThreadedLoops::Collapsed => {
                        // Flattened element × group iteration space, in the
                        // lexicographic order of the selected loop nest.
                        let pairs: Vec<(usize, usize)> = match scheme.loop_order {
                            LoopOrder::ElementThenGroup => bucket
                                .iter()
                                .flat_map(|&e| (0..ng).map(move |g| (e, g)))
                                .collect(),
                            LoopOrder::GroupThenElement => (0..ng)
                                .flat_map(|g| bucket.iter().map(move |&e| (e, g)))
                                .collect(),
                        };
                        // Small buckets (the narrow ends of a wavefront)
                        // are where a static split leaves workers idle
                        // behind one slow chunk — steal there.  Results
                        // land in per-index slots either way, so the
                        // outputs (and thus the physics) are identical
                        // bit for bit; the flag is purely a scheduling
                        // choice.
                        let stealing = pairs.len() < 8 * self.pool.current_num_threads();
                        self.pool.install(|| {
                            pairs
                                .par_iter()
                                .with_stealing(stealing)
                                .map_init(
                                    || KernelScratch::new(nodes),
                                    |scratch, &(e, g)| run_task(scratch, e, g),
                                )
                                .collect()
                        })
                    }
                    ThreadedLoops::OuterOnly => match scheme.loop_order {
                        LoopOrder::ElementThenGroup => self.pool.install(|| {
                            bucket
                                .par_iter()
                                .map_init(
                                    || KernelScratch::new(nodes),
                                    |scratch, &e| {
                                        (0..ng).map(|g| run_task(scratch, e, g)).collect::<Vec<_>>()
                                    },
                                )
                                .flatten()
                                .collect()
                        }),
                        LoopOrder::GroupThenElement => self.pool.install(|| {
                            (0..ng)
                                .into_par_iter()
                                .map_init(
                                    || KernelScratch::new(nodes),
                                    |scratch, g| {
                                        bucket
                                            .iter()
                                            .map(|&e| run_task(scratch, e, g))
                                            .collect::<Vec<_>>()
                                    },
                                )
                                .flatten()
                                .collect()
                        }),
                    },
                    ThreadedLoops::InnerOnly => {
                        let mut out = Vec::with_capacity(bucket.len() * ng);
                        match scheme.loop_order {
                            LoopOrder::ElementThenGroup => {
                                for &e in bucket.iter() {
                                    let inner: Vec<TaskResult> = self.pool.install(|| {
                                        (0..ng)
                                            .into_par_iter()
                                            .map_init(
                                                || KernelScratch::new(nodes),
                                                |scratch, g| run_task(scratch, e, g),
                                            )
                                            .collect()
                                    });
                                    out.extend(inner);
                                }
                            }
                            LoopOrder::GroupThenElement => {
                                for g in 0..ng {
                                    let inner: Vec<TaskResult> = self.pool.install(|| {
                                        bucket
                                            .par_iter()
                                            .map_init(
                                                || KernelScratch::new(nodes),
                                                |scratch, &e| run_task(scratch, e, g),
                                            )
                                            .collect()
                                    });
                                    out.extend(inner);
                                }
                            }
                        }
                        out
                    }
                    ThreadedLoops::Angles => unreachable!("handled by sweep_octant_angle_threaded"),
                }
            };

            // Write-back: store ψ and accumulate the scalar flux.
            for r in &results {
                self.psi
                    .nodes_mut(r.element, r.group, angle)
                    .copy_from_slice(&r.psi);
                let phi = self.phi.nodes_mut(r.element, r.group, 0);
                for (p, &v) in phi.iter_mut().zip(r.psi.iter()) {
                    *p += weight * v;
                }
                timing.accumulate(r.timing);
                count += 1;
            }
        }

        (timing, count)
    }

    /// The angle-threaded ablation (§IV-A.3): thread over the angles of an
    /// octant; every scalar-flux update contends on a single lock, which is
    /// the safe-Rust analogue of the OpenMP `atomic`/`critical` update the
    /// paper shows does not scale.  Now that the pool is real this lock is
    /// *genuinely* contended, and the scalar-flux reduction order depends
    /// on the interleaving — this is the one scheme whose flux is only
    /// reproducible to floating-point reduction accuracy, not bitwise
    /// (the angular flux, which needs no reduction, stays exact).
    fn sweep_octant_angle_threaded(&mut self, octant: usize) -> (KernelTiming, u64) {
        let ng = self.problem.num_groups;
        let nodes = self.element.nodes_per_element();
        let ne = self.mesh.num_cells();
        let time_solve = self.problem.time_solve;
        let n_angles = self.quadrature.angles_per_octant();

        // Shared scalar-flux accumulator guarded by one lock (deliberately
        // coarse to model the reduction contention).
        let phi_acc = Mutex::new(vec![0.0f64; self.phi.as_slice().len()]);
        let phi_layout = *self.phi.layout();

        let per_angle: Vec<(usize, Vec<f64>, KernelTiming, u64)> = {
            let mesh = &self.mesh;
            let element = &self.element;
            let integrals = self.integrals.as_deref();
            let data = &self.data;
            let source = &self.source;
            let face_nodes = &self.face_nodes;
            let boundaries = &self.problem.boundaries;
            let boundary_scale = if self.homogeneous_boundaries {
                0.0
            } else {
                1.0
            };
            let solver = self.solver.as_ref();
            let engine = self.engine;
            let quadrature = &self.quadrature;
            let schedules = &self.schedules;
            let phi_acc = &phi_acc;

            self.pool.install(|| {
                (0..n_angles)
                    .into_par_iter()
                    .map(|index_in_octant| {
                        let angle = quadrature.angle_index(octant, index_in_octant);
                        let direction = quadrature.directions()[angle];
                        let omega = direction.omega;
                        let weight = direction.weight;
                        let schedule = &schedules[angle];
                        // Local angular flux for this angle only
                        // (element × group × node, element-then-group order).
                        let mut psi_local = vec![0.0f64; ne * ng * nodes];
                        let psi_base = |e: usize, g: usize| (e * ng + g) * nodes;
                        let mut scratch = KernelScratch::new(nodes);
                        let mut timing = KernelTiming::default();
                        let mut count = 0u64;

                        for bucket in &schedule.buckets {
                            for &e in bucket {
                                for g in 0..ng {
                                    let computed;
                                    let ints: &ElementIntegrals = match integrals {
                                        Some(list) => &list[e],
                                        None => {
                                            let hex = HexVertices {
                                                corners: *mesh.cell_corners(e),
                                            };
                                            computed = ElementIntegrals::compute(element, &hex);
                                            &computed
                                        }
                                    };
                                    let sigma_t = data.xs.total(data.material(e), g);
                                    let source_nodes = source.nodes(e, g, 0);
                                    let inflow = &schedule.inflow_faces[e];
                                    let mut upwind: Vec<UpwindFace<'_>> =
                                        Vec::with_capacity(inflow.len());
                                    for &face in inflow {
                                        let src = match mesh.neighbor(e, face) {
                                            NeighborRef::Boundary { domain_face } => {
                                                UpwindSource::Boundary(
                                                    boundary_scale
                                                        * boundaries
                                                            .face(domain_face)
                                                            .incoming_flux(),
                                                )
                                            }
                                            NeighborRef::Interior { cell, face: nf } => {
                                                let b = psi_base(cell, g);
                                                UpwindSource::Interior {
                                                    neighbor_psi: &psi_local[b..b + nodes],
                                                    neighbor_face_nodes: &face_nodes[nf],
                                                }
                                            }
                                        };
                                        upwind.push(UpwindFace { face, source: src });
                                    }
                                    let t = engine.assemble_solve(
                                        e,
                                        ints,
                                        omega,
                                        sigma_t,
                                        source_nodes,
                                        &upwind,
                                        solver,
                                        time_solve,
                                        &mut scratch,
                                    );
                                    timing.accumulate(t);
                                    count += 1;
                                    let b = psi_base(e, g);
                                    psi_local[b..b + nodes].copy_from_slice(&scratch.rhs);
                                    // Contended scalar-flux reduction.
                                    {
                                        let mut phi = phi_acc.lock();
                                        let base = phi_layout.base(e, g, 0);
                                        for (node, &v) in scratch.rhs.iter().enumerate() {
                                            phi[base + node] += weight * v;
                                        }
                                    }
                                }
                            }
                        }
                        (angle, psi_local, timing, count)
                    })
                    .collect()
            })
        };

        // Write ψ back into the global storage and fold the accumulator
        // into the scalar flux.
        let mut timing = KernelTiming::default();
        let mut count = 0u64;
        for (angle, psi_local, t, c) in per_angle {
            for e in 0..ne {
                for g in 0..ng {
                    let b = (e * ng + g) * nodes;
                    self.psi
                        .nodes_mut(e, g, angle)
                        .copy_from_slice(&psi_local[b..b + nodes]);
                }
            }
            timing.accumulate(t);
            count += c;
        }
        let acc = phi_acc.into_inner();
        for (p, a) in self.phi.as_mut_slice().iter_mut().zip(acc.iter()) {
            *p += a;
        }
        (timing, count)
    }
}

/// The single-domain solver *is* an inner-solve context: the iteration
/// strategies drive it directly, and the distributed block-Jacobi driver
/// in `unsnap-comm` runs the very same strategy objects against its
/// per-rank subdomain contexts.  Every method delegates to the inherent
/// implementation above, so this impl changes nothing about the seed
/// iteration path.
impl crate::strategy::InnerSolveContext for TransportSolver {
    fn inner_iteration_budget(&self) -> usize {
        self.problem.inner_iterations
    }

    fn convergence_tolerance(&self) -> f64 {
        self.problem.convergence_tolerance
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn gmres_restart(&self) -> usize {
        self.problem.gmres_restart
    }

    fn compute_source(&mut self) {
        TransportSolver::compute_source(self);
    }

    fn compute_external_source(&mut self) {
        TransportSolver::compute_external_source(self);
    }

    fn set_source_to_within_group_scatter(&mut self, v: &[f64]) {
        TransportSolver::set_source_to_within_group_scatter(self, v);
    }

    fn set_homogeneous_boundaries(&mut self, on: bool) {
        TransportSolver::set_homogeneous_boundaries(self, on);
    }

    fn sweep_once(&mut self, stats: &mut RunStats, observer: &mut dyn RunObserver) {
        TransportSolver::sweep_once(self, stats, observer);
    }

    fn save_phi_inner(&mut self) {
        TransportSolver::save_phi_inner(self);
    }

    fn set_phi(&mut self, v: &[f64]) {
        TransportSolver::set_phi(self, v);
    }

    fn phi_slice(&self) -> &[f64] {
        TransportSolver::phi_slice(self)
    }

    fn phi_inner_slice(&self) -> &[f64] {
        TransportSolver::phi_inner_slice(self)
    }

    fn take_krylov_workspace(&mut self) -> unsnap_krylov::GmresWorkspace {
        self.krylov_workspace.take().unwrap_or_default()
    }

    fn put_krylov_workspace(&mut self, workspace: unsnap_krylov::GmresWorkspace) {
        self.krylov_workspace = Some(workspace);
    }

    fn accelerator(&self) -> crate::strategy::AcceleratorKind {
        self.problem.accelerator
    }

    fn dsa_correct(
        &mut self,
        previous: &[f64],
        stats: &mut RunStats,
        observer: &mut dyn RunObserver,
    ) -> Result<()> {
        if self.dsa.is_none() {
            let cells: Vec<usize> = (0..self.mesh.num_cells()).collect();
            self.dsa = Some(crate::dsa::DsaAccelerator::build(
                &self.mesh,
                &cells,
                &self.element,
                self.integrals.as_deref(),
                &self.data,
                *self.phi.layout(),
                unsnap_accel::DsaConfig {
                    tolerance: self.problem.accel_cg_tolerance,
                    max_iterations: self.problem.accel_cg_iterations,
                },
            ));
        }
        let dsa = self.dsa.as_mut().expect("accelerator just built");
        observer.on_phase_start(Phase::AccelCg);
        let t0 = self.clock.now();
        let result = dsa.correct(self.phi.as_mut_slice(), previous, stats, observer);
        if result.is_ok() && self.problem.precision == Precision::Mixed {
            // Mixed mode resolves fluxes at single precision; round the
            // f64 diffusion correction onto the same grid so the next
            // sweep's convergence test sees a self-consistent state.
            for p in self.phi.as_mut_slice() {
                *p = *p as f32 as f64;
            }
        }
        let seconds = self.clock.now().saturating_sub(t0).as_secs_f64();
        observer.on_phase_end(Phase::AccelCg, seconds);
        result
    }
}

/// Maximum relative pointwise change between two flux arrays — the
/// convergence measure of the SNAP-style iteration drivers.
///
/// The result is always a defined, non-NaN value:
///
/// * when the reference (`old`) vector is all zeros and `new` is too —
///   including the empty-slice case — every term is `0 / 1e-12` and the
///   change is `0.0` (nothing moved);
/// * zero reference entries with nonzero new entries are measured against
///   the `1e-12` floor, yielding a large but finite change (returning 0
///   here would falsely report convergence of the very first iterate,
///   which always starts from a zero flux);
/// * a non-finite difference (NaN/∞ anywhere in the inputs) reports
///   `f64::INFINITY`, so a poisoned flux can never pass a `< tolerance`
///   convergence test.  (The previous `fold(max)` silently *ignored* NaN
///   entries.)
pub fn relative_change(new: &[f64], old: &[f64]) -> f64 {
    let floor = 1e-12;
    new.iter().zip(old.iter()).fold(0.0, |m, (a, b)| {
        let d = (a - b).abs() / b.abs().max(floor);
        if d.is_nan() {
            f64::INFINITY
        } else {
            m.max(d)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SourceOption;
    use unsnap_linalg::SolverKind;
    use unsnap_mesh::boundary::DomainBoundaries;
    use unsnap_sweep::ConcurrencyScheme;

    #[test]
    fn tiny_problem_runs_and_produces_positive_flux() {
        let mut solver = TransportSolver::new(&Problem::tiny()).unwrap();
        let outcome = solver.run().unwrap();
        assert_eq!(outcome.inner_iterations, 2);
        assert!(outcome.scalar_flux_total > 0.0);
        // Small DG undershoots near the vacuum boundary are permitted.
        assert!(outcome.scalar_flux_min > -1e-6);
        assert!(outcome.kernel_invocations > 0);
        assert!(outcome.assemble_solve_seconds > 0.0);
        // 3³ cells × 2 groups × 16 angles × 2 inners kernel calls.
        assert_eq!(outcome.kernel_invocations, 27 * 2 * 16 * 2);
    }

    #[test]
    fn all_schemes_give_identical_physics() {
        // The six figure schemes and the angle-threaded ablation must all
        // produce the same scalar flux (they only change execution order).
        let base = Problem::tiny().with_threads(2);
        let mut reference: Option<Vec<f64>> = None;
        let mut schemes = ConcurrencyScheme::figure_schemes();
        schemes.push(crate::problem::angle_threaded_scheme());
        for scheme in schemes {
            let p = base.clone().with_scheme(scheme);
            let mut solver = TransportSolver::new(&p).unwrap();
            solver.run().unwrap();
            // Compare in a layout-independent way.
            let nodes = p.nodes_per_element();
            let mut values = Vec::new();
            for e in 0..p.num_cells() {
                for g in 0..p.num_groups {
                    values.extend_from_slice(solver.scalar_flux().nodes(e, g, 0));
                    assert_eq!(solver.scalar_flux().nodes(e, g, 0).len(), nodes);
                }
            }
            match &reference {
                None => reference = Some(values),
                Some(r) => {
                    let max_diff = r
                        .iter()
                        .zip(values.iter())
                        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
                    assert!(
                        max_diff < 1e-10,
                        "scheme {scheme} diverges from reference by {max_diff}"
                    );
                }
            }
        }
    }

    #[test]
    fn solver_backends_agree() {
        let mut fluxes = Vec::new();
        for kind in SolverKind::all() {
            let p = Problem::tiny().with_solver(kind);
            let mut solver = TransportSolver::new(&p).unwrap();
            let outcome = solver.run().unwrap();
            fluxes.push(outcome.scalar_flux_total);
        }
        for pair in fluxes.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-8 * pair[0].abs());
        }
    }

    #[test]
    fn infinite_medium_limit_is_approached_with_inflow_boundaries() {
        // With incoming flux equal to the infinite-medium solution
        // ψ∞ = q / (σ_t − σ_s_total), the converged scalar flux equals ψ∞
        // everywhere (the problem is effectively an infinite medium).
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 60;
        p.outer_iterations = 1;
        p.convergence_tolerance = 1e-10;
        p.twist = 0.0;
        let xs = crate::data::CrossSections::generate(1, 1);
        let sigma_t = xs.total(0, 0);
        let sigma_s = xs.scatter(0, 0, 0);
        let psi_inf = 1.0 / (sigma_t - sigma_s);
        p.boundaries = DomainBoundaries::uniform_inflow(psi_inf);
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        assert!(
            outcome.converged,
            "history: {:?}",
            outcome.convergence_history
        );
        assert!(
            (outcome.scalar_flux_max - psi_inf).abs() < 1e-6,
            "max {} vs ψ∞ {psi_inf}",
            outcome.scalar_flux_max
        );
        assert!(
            (outcome.scalar_flux_min - psi_inf).abs() < 1e-6,
            "min {} vs ψ∞ {psi_inf}",
            outcome.scalar_flux_min
        );
    }

    #[test]
    fn vacuum_problem_flux_is_bounded_by_infinite_medium() {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 30;
        p.convergence_tolerance = 1e-8;
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        let xs = crate::data::CrossSections::generate(1, 1);
        let psi_inf = 1.0 / (xs.total(0, 0) - xs.scatter(0, 0, 0));
        assert!(outcome.scalar_flux_max <= psi_inf + 1e-9);
        // Small DG undershoots near the vacuum boundary are permitted.
        assert!(outcome.scalar_flux_min >= -1e-3);
        // Leakage through vacuum boundaries keeps the flux strictly below
        // the infinite-medium limit.
        assert!(outcome.scalar_flux_max < psi_inf);
    }

    #[test]
    fn convergence_history_decreases() {
        let mut p = Problem::tiny();
        p.inner_iterations = 10;
        p.convergence_tolerance = 0.0;
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        let h = &outcome.convergence_history;
        assert_eq!(h.len(), 10);
        // Source iteration converges monotonically for this problem.
        assert!(h.last().unwrap() < &h[1]);
    }

    #[test]
    fn solve_timing_populates_split() {
        let p = Problem::tiny().with_solve_timing(true);
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        assert!(outcome.kernel_solve_seconds > 0.0);
        assert!(outcome.kernel_assemble_seconds > 0.0);
        let f = outcome.solve_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn on_the_fly_integrals_match_precomputed() {
        let pre = {
            let mut s =
                TransportSolver::new(&Problem::tiny().with_precomputed_integrals(true)).unwrap();
            s.run().unwrap().scalar_flux_total
        };
        let fly = {
            let mut s =
                TransportSolver::new(&Problem::tiny().with_precomputed_integrals(false)).unwrap();
            s.run().unwrap().scalar_flux_total
        };
        assert!((pre - fly).abs() < 1e-9 * pre.abs());
    }

    #[test]
    fn source_option2_concentrates_flux_in_the_centre() {
        let mut p = Problem::tiny();
        p.source = SourceOption::Option2;
        p.nx = 4;
        p.ny = 4;
        p.nz = 4;
        p.inner_iterations = 4;
        let mut solver = TransportSolver::new(&p).unwrap();
        solver.run().unwrap();
        // Mean flux of central cells exceeds mean flux of corner cells.
        let grid = p.grid();
        let phi = solver.scalar_flux();
        let mean_of = |cell: usize| -> f64 {
            let mut acc = 0.0;
            for g in 0..p.num_groups {
                acc += phi.nodes(cell, g, 0).iter().sum::<f64>();
            }
            acc
        };
        let centre = grid.cell_id(1, 1, 1);
        let corner = grid.cell_id(0, 0, 0);
        assert!(mean_of(centre) > mean_of(corner));
    }

    #[test]
    fn invalid_problem_is_rejected() {
        let mut p = Problem::tiny();
        p.num_groups = 0;
        assert!(TransportSolver::new(&p).is_err());
    }

    #[test]
    fn sweep_gmres_agrees_with_source_iteration_on_tiny() {
        let mut p = Problem::tiny();
        p.convergence_tolerance = 1e-10;
        p.inner_iterations = 200;
        let mut totals = Vec::new();
        for strategy in crate::strategy::StrategyKind::all() {
            let mut solver = TransportSolver::new(&p.clone().with_strategy(strategy)).unwrap();
            let outcome = solver.run().unwrap();
            assert!(outcome.converged, "{strategy} failed to converge");
            totals.push(outcome.scalar_flux_total);
        }
        assert!(
            (totals[0] - totals[1]).abs() < 1e-8 * totals[0].abs(),
            "SI {} vs GMRES {}",
            totals[0],
            totals[1]
        );
    }

    /// A single-group, optically thick, scattering-dominated problem:
    /// the regime where source iteration contracts at rate `c` and
    /// crawls.
    fn high_c_problem(c: f64) -> Problem {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.nx = 4;
        p.ny = 4;
        p.nz = 4;
        p.lx = 8.0;
        p.ly = 8.0;
        p.lz = 8.0;
        p.scattering_ratio = Some(c);
        p.convergence_tolerance = 1e-8;
        p.inner_iterations = 1000;
        p.outer_iterations = 1;
        p
    }

    #[test]
    fn sweep_gmres_needs_fewer_sweeps_when_scattering_dominates() {
        let p = high_c_problem(0.95);
        let mut si_solver = TransportSolver::new(
            &p.clone()
                .with_strategy(crate::strategy::StrategyKind::SourceIteration),
        )
        .unwrap();
        let si = si_solver.run().unwrap();
        let mut gm_solver =
            TransportSolver::new(&p.with_strategy(crate::strategy::StrategyKind::SweepGmres))
                .unwrap();
        let gm = gm_solver.run().unwrap();

        assert!(
            si.converged,
            "SI history: {:?}",
            si.convergence_history.last()
        );
        assert!(
            gm.converged,
            "GMRES history: {:?}",
            gm.krylov_residual_history
        );
        // The acceptance criterion: strictly fewer sweeps at equal
        // tolerance.  At c = 0.95 the gap is over an order of magnitude.
        assert!(
            gm.sweep_count < si.sweep_count,
            "GMRES took {} sweeps, SI took {}",
            gm.sweep_count,
            si.sweep_count
        );
        // And both strategies agree on the physics.  SI stops on the
        // iterate *change*, which leaves a true error of up to
        // tol / (1 − c) — the agreement bound must carry that factor.
        let bound = 1e-8 / (1.0 - 0.95) * si.scalar_flux_total.abs();
        assert!(
            (si.scalar_flux_total - gm.scalar_flux_total).abs() < bound,
            "SI {} vs GMRES {}",
            si.scalar_flux_total,
            gm.scalar_flux_total
        );
    }

    #[test]
    fn dsa_source_iteration_matches_si_and_wins_when_scattering_dominates() {
        let p = high_c_problem(0.95);
        let mut si_solver = TransportSolver::new(&p).unwrap();
        let si = si_solver.run().unwrap();
        assert_eq!(si.accel_cg_iterations, 0);
        assert!(si.accel_residual_history.is_empty());

        let mut dsa_solver = TransportSolver::new(
            &p.clone()
                .with_strategy(crate::strategy::StrategyKind::DsaSourceIteration),
        )
        .unwrap();
        let dsa = dsa_solver.run().unwrap();

        assert!(si.converged && dsa.converged);
        assert!(dsa.accel_cg_iterations > 0);
        assert!(!dsa.accel_residual_history.is_empty());
        // The acceleration pays: strictly fewer transport sweeps at the
        // same tolerance (the low-order CG iterations are not sweeps).
        assert!(
            dsa.sweep_count < si.sweep_count,
            "DSA-SI took {} sweeps, SI took {}",
            dsa.sweep_count,
            si.sweep_count
        );
        // Same fixed point.  SI stops on the iterate change, leaving a
        // true error of up to tol / (1 − c).
        let bound = 1e-8 / (1.0 - 0.95) * si.scalar_flux_total.abs();
        assert!(
            (si.scalar_flux_total - dsa.scalar_flux_total).abs() < bound,
            "SI {} vs DSA-SI {}",
            si.scalar_flux_total,
            dsa.scalar_flux_total
        );
    }

    #[test]
    fn dsa_preconditioned_gmres_agrees_with_plain_gmres() {
        let p = high_c_problem(0.95).with_strategy(crate::strategy::StrategyKind::SweepGmres);
        let mut plain_solver = TransportSolver::new(&p).unwrap();
        let plain = plain_solver.run().unwrap();
        assert_eq!(plain.accel_cg_iterations, 0);

        let accelerated_problem = p.with_accelerator(crate::strategy::AcceleratorKind::Dsa);
        let mut accel_solver = TransportSolver::new(&accelerated_problem).unwrap();
        let accel = accel_solver.run().unwrap();

        assert!(plain.converged && accel.converged);
        assert!(accel.accel_cg_iterations > 0);
        // On a small problem the bare sweep operator is already easy for
        // GMRES, so the iteration counts are comparable — the spectrum
        // claim is pinned at c → 1 below.  Here: same physics.
        let rel = (plain.scalar_flux_total - accel.scalar_flux_total).abs()
            / plain.scalar_flux_total.abs();
        assert!(
            rel < 1e-6,
            "plain {} vs DSA-preconditioned {}",
            plain.scalar_flux_total,
            accel.scalar_flux_total
        );
    }

    #[test]
    fn dsa_preconditioning_tightens_the_gmres_spectrum_in_the_diffusive_regime() {
        // A genuinely diffusive problem (24 mfp thick, c = 0.99): the
        // bare fixed-point operator has near-unit eigenvalues GMRES must
        // resolve one by one, while the DSA-preconditioned map is
        // contracted to ~0.2 — strictly fewer Krylov iterations.
        let mut p = Problem::quickstart();
        p.num_groups = 1;
        p.lx = 24.0;
        p.ly = 24.0;
        p.lz = 24.0;
        p.scattering_ratio = Some(0.99);
        p.inner_iterations = 2000;
        p.outer_iterations = 1;
        p.convergence_tolerance = 1e-6;
        p.num_threads = Some(1);
        p.strategy = crate::strategy::StrategyKind::SweepGmres;

        let mut plain_solver = TransportSolver::new(&p).unwrap();
        let plain = plain_solver.run().unwrap();
        let accelerated = p.with_accelerator(crate::strategy::AcceleratorKind::Dsa);
        let mut accel_solver = TransportSolver::new(&accelerated).unwrap();
        let accel = accel_solver.run().unwrap();
        assert!(plain.converged && accel.converged);
        assert!(
            accel.krylov_iterations < plain.krylov_iterations,
            "DSA-GMRES took {} Krylov iterations, plain took {}",
            accel.krylov_iterations,
            plain.krylov_iterations
        );
    }

    #[test]
    fn sweep_gmres_handles_inflow_boundaries() {
        // Regression: boundary inflow is affine data — it must live in
        // the Krylov right-hand side only.  A sweep that re-injects it
        // during operator applications breaks linearity and produced
        // unconverged, negative fluxes.
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.convergence_tolerance = 1e-10;
        p.inner_iterations = 300;
        p.outer_iterations = 1;
        p.boundaries = DomainBoundaries::uniform_inflow(1.0);

        let mut si_solver = TransportSolver::new(&p.clone()).unwrap();
        let si = si_solver.run().unwrap();
        let mut gm_solver =
            TransportSolver::new(&p.with_strategy(crate::strategy::StrategyKind::SweepGmres))
                .unwrap();
        let gm = gm_solver.run().unwrap();
        assert!(
            si.converged && gm.converged,
            "SI {} GMRES {}",
            si.converged,
            gm.converged
        );
        assert!(
            gm.scalar_flux_min > 0.0,
            "inflow problem must have positive flux"
        );
        assert!(
            (si.scalar_flux_total - gm.scalar_flux_total).abs() < 1e-8 * si.scalar_flux_total.abs(),
            "SI {} vs GMRES {}",
            si.scalar_flux_total,
            gm.scalar_flux_total
        );
    }

    #[test]
    fn sweep_gmres_reproduces_the_infinite_medium_limit() {
        // Same setup as the SI infinite-medium test: with incoming flux
        // equal to ψ∞ the converged solution is ψ∞ everywhere.
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 100;
        p.outer_iterations = 1;
        p.convergence_tolerance = 1e-10;
        p.twist = 0.0;
        p.strategy = crate::strategy::StrategyKind::SweepGmres;
        let xs = crate::data::CrossSections::generate(1, 1);
        let psi_inf = 1.0 / (xs.total(0, 0) - xs.scatter(0, 0, 0));
        p.boundaries = DomainBoundaries::uniform_inflow(psi_inf);
        let mut solver = TransportSolver::new(&p).unwrap();
        let outcome = solver.run().unwrap();
        assert!(outcome.converged);
        assert!((outcome.scalar_flux_max - psi_inf).abs() < 1e-6);
        assert!((outcome.scalar_flux_min - psi_inf).abs() < 1e-6);
    }

    #[test]
    fn krylov_stats_are_populated_only_by_the_krylov_strategy() {
        let p = high_c_problem(0.9);
        let mut si_solver = TransportSolver::new(&p.clone()).unwrap();
        let si = si_solver.run().unwrap();
        assert_eq!(si.krylov_iterations, 0);
        assert!(si.krylov_residual_history.is_empty());
        // For SI every inner iteration is exactly one sweep.
        assert_eq!(si.sweep_count, si.inner_iterations);

        let mut gm_solver =
            TransportSolver::new(&p.with_strategy(crate::strategy::StrategyKind::SweepGmres))
                .unwrap();
        let gm = gm_solver.run().unwrap();
        assert!(gm.krylov_iterations > 0);
        assert!(!gm.krylov_residual_history.is_empty());
        // Residuals decrease overall and end below the tolerance.
        let last = *gm.krylov_residual_history.last().unwrap();
        assert!(last <= 1e-8, "final Krylov residual {last}");
        // RHS + initial-residual + consistency sweeps mean a few more
        // sweeps than Krylov iterations, never fewer.
        assert!(gm.sweep_count > gm.krylov_iterations);
    }

    #[test]
    fn metrics_are_attached_to_every_outcome() {
        let mut solver = TransportSolver::new(&Problem::tiny()).unwrap();
        let outcome = solver.run().unwrap();
        let m = &outcome.metrics;
        assert_eq!(m.sweeps, outcome.sweep_count);
        assert_eq!(m.cells_swept, outcome.kernel_invocations);
        assert_eq!(m.inner_iterations, outcome.inner_iterations);
        assert_eq!(m.phase_count(Phase::Preassembly), 1);
        assert_eq!(m.phase_count(Phase::Sweep), outcome.sweep_count);
        assert_eq!(m.sweep_latency.count() as usize, outcome.sweep_count);
        assert_eq!(m.cells_per_sweep.count() as usize, outcome.sweep_count);
        assert_eq!(m.halo_exchanges, 0, "single domain never exchanges halos");
        assert_eq!(m.kernel_assemble_seconds, outcome.kernel_assemble_seconds);
        // A second run re-aggregates from scratch but skips the one-shot
        // preassembly span (the work happened once, at construction).
        let again = solver.run().unwrap();
        assert_eq!(again.metrics.phase_count(Phase::Preassembly), 0);
        assert_eq!(again.metrics.sweeps, again.sweep_count);
    }

    #[test]
    fn mock_clock_pins_wall_clock_metrics_exactly() {
        use unsnap_obs::clock::MockClock;
        // Only the driver thread reads the clock, and every span is one
        // bracketed pair of readings, so an auto-stepping mock makes
        // each span exactly one step long.
        let step = Duration::from_millis(5);
        let mut solver = TransportSolver::new(&Problem::tiny()).unwrap();
        solver.set_clock(Box::new(MockClock::with_step(step)));
        let outcome = solver.run().unwrap();
        let m = &outcome.metrics;
        let s = step.as_secs_f64();
        assert_eq!(m.sweep_p50(), Some(s));
        assert_eq!(m.sweep_p95(), Some(s));
        assert_eq!(m.phase_time(Phase::Sweep), s * outcome.sweep_count as f64);
        assert_eq!(
            m.phase_time(Phase::SourceAssembly),
            s * m.phase_count(Phase::SourceAssembly) as f64
        );
        assert_eq!(
            outcome.assemble_solve_seconds,
            s * outcome.sweep_count as f64
        );
    }

    #[test]
    fn relative_change_helper() {
        assert_eq!(relative_change(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((relative_change(&[1.1, 2.0], &[1.0, 2.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_change_is_defined_for_zero_reference() {
        // All-zero reference and all-zero new: nothing moved.
        assert_eq!(relative_change(&[0.0; 4], &[0.0; 4]), 0.0);
        assert_eq!(relative_change(&[], &[]), 0.0);
        // Zero reference with nonzero new: large but finite (a zero
        // would falsely pass the convergence test on the first iterate).
        let d = relative_change(&[1.0, 0.0], &[0.0, 0.0]);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn relative_change_never_returns_nan() {
        assert!(!relative_change(&[f64::NAN], &[1.0]).is_nan());
        assert_eq!(relative_change(&[f64::NAN], &[1.0]), f64::INFINITY);
        assert_eq!(relative_change(&[1.0], &[f64::NAN]), f64::INFINITY);
        // A NaN must not be masked by a larger finite entry elsewhere.
        assert_eq!(
            relative_change(&[5.0, f64::NAN], &[1.0, 1.0]),
            f64::INFINITY
        );
    }
}
