//! Flat flux/source storage with explicit extent ordering.
//!
//! §IV-A of the paper: "The storage arrays of the angular flux, scalar flux
//! and source terms were likewise updated to match the loop ordering."  The
//! two candidate layouts differ in whether the *energy group* or the
//! *element* index moves faster (the node index is always fastest — element
//! nodes are stored contiguously so the vectorised node loop is stride-1,
//! and the angle index is always slowest).
//!
//! `angle/element/group` layout (group faster than element):
//!
//! ```text
//! index = node + N·( group + G·( element + E·angle ) )
//! ```
//!
//! `angle/group/element` layout (element faster than group):
//!
//! ```text
//! index = node + N·( element + E·( group + G·angle ) )
//! ```
//!
//! The layout choice controls the stride between consecutive elements of a
//! wavefront bucket: `N × G × 8` bytes in the first layout (4 kB for linear
//! elements with 64 groups — the "large gap in memory between adjacent
//! elements" the paper identifies as beneficial) versus `N × 8` bytes in
//! the second (one cache line for linear elements).

use serde::{Deserialize, Serialize};

use unsnap_sweep::LoopOrder;

/// Storage/solve precision of the sweep kernel's local systems.
///
/// `F64` is the seed behaviour: assembly, dense solve, and flux storage
/// all in double precision.  `Mixed` keeps the assembly and the outer
/// iterations in `f64` but runs the per-cell dense solve in `f32`
/// (single-precision elimination with partial pivoting), trading a few
/// extra source iterations for roughly half the solve bandwidth — the
/// paper's mixed-precision sweep variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// Full double precision everywhere (the seed behaviour).
    #[default]
    F64,
    /// `f32` per-cell solves inside `f64` outer iterations.
    Mixed,
}

impl Precision {
    /// Every precision mode, in fixed ablation order.
    pub fn all() -> [Precision; 2] {
        [Precision::F64, Precision::Mixed]
    }

    /// Short name used in tables and for CLI/env selection.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" | "fp64" => Ok(Precision::F64),
            "mixed" | "f32" | "single" | "fp32" => Ok(Precision::Mixed),
            other => Err(format!("unknown precision '{other}'")),
        }
    }
}

/// Shape and ordering of a flux-like array
/// (node × element × group × angle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FluxLayout {
    /// Nodes per element (always the fastest index).
    pub nodes_per_element: usize,
    /// Number of elements.
    pub num_elements: usize,
    /// Number of energy groups.
    pub num_groups: usize,
    /// Number of angles stored (1 for scalar-flux-like arrays).
    pub num_angles: usize,
    /// Which of element/group moves faster; matches the loop order the
    /// solver will use.
    pub order: LoopOrder,
}

impl FluxLayout {
    /// Layout for an angular-flux array.
    pub fn angular(
        nodes_per_element: usize,
        num_elements: usize,
        num_groups: usize,
        num_angles: usize,
        order: LoopOrder,
    ) -> Self {
        Self {
            nodes_per_element,
            num_elements,
            num_groups,
            num_angles,
            order,
        }
    }

    /// Layout for a scalar-flux or source array (no angle dimension).
    pub fn scalar(
        nodes_per_element: usize,
        num_elements: usize,
        num_groups: usize,
        order: LoopOrder,
    ) -> Self {
        Self::angular(nodes_per_element, num_elements, num_groups, 1, order)
    }

    /// Total number of FP64 entries.
    pub fn len(&self) -> usize {
        self.nodes_per_element * self.num_elements * self.num_groups * self.num_angles
    }

    /// `true` if the layout holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }

    /// Flat index of the first node of `(element, group, angle)`.
    #[inline]
    pub fn base(&self, element: usize, group: usize, angle: usize) -> usize {
        debug_assert!(element < self.num_elements);
        debug_assert!(group < self.num_groups);
        debug_assert!(angle < self.num_angles);
        let n = self.nodes_per_element;
        match self.order {
            LoopOrder::ElementThenGroup => {
                // group fastest after node
                n * (group + self.num_groups * (element + self.num_elements * angle))
            }
            LoopOrder::GroupThenElement => {
                // element fastest after node
                n * (element + self.num_elements * (group + self.num_groups * angle))
            }
        }
    }

    /// Flat index of `(node, element, group, angle)`.
    #[inline]
    pub fn index(&self, node: usize, element: usize, group: usize, angle: usize) -> usize {
        debug_assert!(node < self.nodes_per_element);
        self.base(element, group, angle) + node
    }

    /// Stride in *entries* between the same node of two consecutive
    /// elements (at fixed group and angle) — the quantity the paper's
    /// data-layout discussion revolves around.
    pub fn element_stride(&self) -> usize {
        match self.order {
            LoopOrder::ElementThenGroup => self.nodes_per_element * self.num_groups,
            LoopOrder::GroupThenElement => self.nodes_per_element,
        }
    }

    /// Stride in entries between consecutive groups (fixed element/angle).
    pub fn group_stride(&self) -> usize {
        match self.order {
            LoopOrder::ElementThenGroup => self.nodes_per_element,
            LoopOrder::GroupThenElement => self.nodes_per_element * self.num_elements,
        }
    }
}

/// A flat `f64` array addressed through a [`FluxLayout`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluxStorage {
    layout: FluxLayout,
    data: Vec<f64>,
}

impl FluxStorage {
    /// Allocate zero-initialised storage for a layout.
    pub fn zeros(layout: FluxLayout) -> Self {
        Self {
            data: vec![0.0; layout.len()],
            layout,
        }
    }

    /// The layout describing this storage.
    pub fn layout(&self) -> &FluxLayout {
        &self.layout
    }

    /// Raw data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The node-contiguous slice for `(element, group, angle)`.
    #[inline]
    pub fn nodes(&self, element: usize, group: usize, angle: usize) -> &[f64] {
        let base = self.layout.base(element, group, angle);
        &self.data[base..base + self.layout.nodes_per_element]
    }

    /// Mutable node slice for `(element, group, angle)`.
    #[inline]
    pub fn nodes_mut(&mut self, element: usize, group: usize, angle: usize) -> &mut [f64] {
        let base = self.layout.base(element, group, angle);
        &mut self.data[base..base + self.layout.nodes_per_element]
    }

    /// Read a single value.
    #[inline]
    pub fn get(&self, node: usize, element: usize, group: usize, angle: usize) -> f64 {
        self.data[self.layout.index(node, element, group, angle)]
    }

    /// Write a single value.
    #[inline]
    pub fn set(&mut self, node: usize, element: usize, group: usize, angle: usize, value: f64) {
        let idx = self.layout.index(node, element, group, angle);
        self.data[idx] = value;
    }

    /// Fill the whole array with a value.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Sum of all entries (used by tests and the conservation checks).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Maximum absolute pointwise difference against another storage of
    /// identical layout.
    pub fn max_abs_diff(&self, other: &FluxStorage) -> f64 {
        assert_eq!(self.layout, other.layout, "layout mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Copy the contents of a storage with a *different* ordering into this
    /// one (same logical shape).  Used when comparing results across
    /// layouts.
    pub fn copy_reordered_from(&mut self, other: &FluxStorage) {
        let l = self.layout;
        let lo = other.layout;
        assert_eq!(l.nodes_per_element, lo.nodes_per_element);
        assert_eq!(l.num_elements, lo.num_elements);
        assert_eq!(l.num_groups, lo.num_groups);
        assert_eq!(l.num_angles, lo.num_angles);
        for angle in 0..l.num_angles {
            for element in 0..l.num_elements {
                for group in 0..l.num_groups {
                    let src = other.nodes(element, group, angle);
                    let dst = self.nodes_mut(element, group, angle);
                    dst.copy_from_slice(src);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> [FluxLayout; 2] {
        [
            FluxLayout::angular(8, 10, 4, 3, LoopOrder::ElementThenGroup),
            FluxLayout::angular(8, 10, 4, 3, LoopOrder::GroupThenElement),
        ]
    }

    #[test]
    fn lengths_and_footprints() {
        for l in layouts() {
            assert_eq!(l.len(), 8 * 10 * 4 * 3);
            assert_eq!(l.footprint_bytes(), l.len() * 8);
            assert!(!l.is_empty());
        }
    }

    #[test]
    fn indices_are_unique_and_in_range() {
        for l in layouts() {
            let mut seen = vec![false; l.len()];
            for angle in 0..l.num_angles {
                for element in 0..l.num_elements {
                    for group in 0..l.num_groups {
                        for node in 0..l.nodes_per_element {
                            let idx = l.index(node, element, group, angle);
                            assert!(idx < l.len());
                            assert!(!seen[idx], "duplicate index");
                            seen[idx] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn node_is_always_fastest() {
        for l in layouts() {
            let a = l.index(0, 3, 2, 1);
            let b = l.index(1, 3, 2, 1);
            assert_eq!(b, a + 1);
        }
    }

    #[test]
    fn element_strides_match_paper_description() {
        // Linear elements (8 nodes), 64 groups: the element/group layout
        // separates adjacent elements by 8 * 64 * 8 B = 4 kB; the
        // group/element layout by only 8 * 8 B = 64 B (§IV-A.1).
        let eg = FluxLayout::angular(8, 100, 64, 1, LoopOrder::ElementThenGroup);
        assert_eq!(eg.element_stride() * 8, 4096);
        assert_eq!(eg.group_stride() * 8, 64);
        let ge = FluxLayout::angular(8, 100, 64, 1, LoopOrder::GroupThenElement);
        assert_eq!(ge.element_stride() * 8, 64);
        // Cubic elements: 64 nodes → 32 kB stride in the element/group
        // layout (the L1-capacity observation of §IV-A.2).
        let cubic = FluxLayout::angular(64, 100, 64, 1, LoopOrder::ElementThenGroup);
        assert_eq!(cubic.element_stride() * 8, 32 * 1024);
    }

    #[test]
    fn node_slices_are_contiguous_and_disjoint() {
        for l in layouts() {
            let mut s = FluxStorage::zeros(l);
            s.nodes_mut(2, 1, 0).iter_mut().for_each(|x| *x = 7.0);
            assert_eq!(s.nodes(2, 1, 0), &[7.0; 8]);
            // Other slices untouched.
            assert_eq!(s.nodes(2, 2, 0), &[0.0; 8]);
            assert_eq!(s.nodes(3, 1, 0), &[0.0; 8]);
            assert!((s.total() - 56.0).abs() < 1e-12);
        }
    }

    #[test]
    fn get_set_round_trip() {
        let l = FluxLayout::scalar(4, 5, 3, LoopOrder::ElementThenGroup);
        let mut s = FluxStorage::zeros(l);
        s.set(2, 4, 1, 0, 3.25);
        assert_eq!(s.get(2, 4, 1, 0), 3.25);
        s.fill(1.0);
        assert_eq!(s.total(), l.len() as f64);
    }

    #[test]
    fn reordered_copy_preserves_logical_content() {
        let a_layout = FluxLayout::angular(3, 4, 2, 2, LoopOrder::ElementThenGroup);
        let b_layout = FluxLayout::angular(3, 4, 2, 2, LoopOrder::GroupThenElement);
        let mut a = FluxStorage::zeros(a_layout);
        // Fill with a recognisable pattern.
        for angle in 0..2 {
            for e in 0..4 {
                for g in 0..2 {
                    for node in 0..3 {
                        a.set(
                            node,
                            e,
                            g,
                            angle,
                            (1000 * angle + 100 * e + 10 * g + node) as f64,
                        );
                    }
                }
            }
        }
        let mut b = FluxStorage::zeros(b_layout);
        b.copy_reordered_from(&a);
        for angle in 0..2 {
            for e in 0..4 {
                for g in 0..2 {
                    for node in 0..3 {
                        assert_eq!(b.get(node, e, g, angle), a.get(node, e, g, angle));
                    }
                }
            }
        }
        // The raw orderings differ even though the logical content matches.
        assert_ne!(a.as_slice(), b.as_slice());
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn precision_round_trips_through_strings() {
        for p in Precision::all() {
            let parsed: Precision = p.label().parse().unwrap();
            assert_eq!(parsed, p);
            assert_eq!(format!("{p}"), p.label());
        }
        assert_eq!("fp32".parse::<Precision>(), Ok(Precision::Mixed));
        assert_eq!("DOUBLE".parse::<Precision>(), Ok(Precision::F64));
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    #[should_panic]
    fn max_abs_diff_requires_same_layout() {
        let a = FluxStorage::zeros(FluxLayout::scalar(2, 2, 2, LoopOrder::ElementThenGroup));
        let b = FluxStorage::zeros(FluxLayout::scalar(2, 2, 2, LoopOrder::GroupThenElement));
        let _ = a.max_abs_diff(&b);
    }
}
