//! The [`TraceObserver`]: folds the [`RunObserver`] event stream into a
//! hierarchical [`TraceTree`] (PR 10).
//!
//! The observer is teed into every `run_observed` alongside the
//! [`MetricsObserver`](crate::metrics::MetricsObserver), so each
//! [`SolveOutcome`](crate::solver::SolveOutcome) (and the distributed
//! `BlockJacobiOutcome`) carries a span tree with no caller wiring.
//!
//! ## Span model
//!
//! Untagged events land on **lane 0** (the driver); rank-tagged events
//! land on **lane `rank + 1`**.  Within a lane the nesting is:
//!
//! ```text
//! solve                              (lane 0 root, opened at tee time)
//! └── outer / rank_solve             (on_outer_start .. on_outer_end)
//!     └── inner                      (synthesised: first phase event of
//!         │                           the iterate .. on_inner_iteration)
//!         ├── source_assembly        (phase span)
//!         ├── sweep                  (phase span)
//!         │   └── bucket             (one per wavefront bucket, in
//!         │       └── local_solve    (angle, bucket) order; the leaf
//!         │                           carries the task count)
//!         ├── krylov                 (phase span)
//!         ├── accel_cg               (phase span)
//!         │   └── cg_iter            (one per streamed DSA CG residual
//!         │                           — `unsnap-accel` reports them
//!         │                           through its residual closure)
//!         └── halo_exchange          (phase span + instant marker)
//! ```
//!
//! ## The determinism split
//!
//! Span *structure* — ids, parents, lanes, depths, names, details,
//! counts — is derived purely from the deterministic half of the event
//! stream, so it is bit-for-bit identical at every thread and rank
//! count (and across checkpoint/resume, because the replayed prefix
//! reproduces the stream verbatim).  Timestamps come from the tracer's
//! own clock at event *arrival* time — never from the solver's clock,
//! so the `MockClock` phase-pinning contract is untouched — and are
//! wall-clock: [`TraceTree::zero_wallclock`] strips them, and
//! [`TraceTree`]'s `PartialEq` ignores them outright.

use unsnap_obs::clock::Clock;
use unsnap_obs::trace::{TraceTree, Tracer};

use crate::session::{Phase, RunObserver};

/// A [`RunObserver`] that builds a [`TraceTree`] from the event stream.
///
/// See the [module docs](self) for the span model and determinism
/// contract.
#[derive(Debug)]
pub struct TraceObserver {
    tracer: Tracer,
    /// Per lane: is an `outer`/`rank_solve` span currently open?
    outer_open: Vec<bool>,
    /// Per lane: is a synthesised `inner` span currently open?
    inner_open: Vec<bool>,
}

impl Default for TraceObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceObserver {
    /// A trace observer over the system clock, with the driver-lane
    /// `solve` root already open.
    pub fn new() -> Self {
        Self::with_tracer(Tracer::new())
    }

    /// A trace observer over the given clock (tests inject a
    /// [`MockClock`](unsnap_obs::clock::MockClock) to pin timestamps).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self::with_tracer(Tracer::with_clock(clock))
    }

    fn with_tracer(mut tracer: Tracer) -> Self {
        tracer.open(0, "solve", "");
        Self {
            tracer,
            outer_open: Vec::new(),
            inner_open: Vec::new(),
        }
    }

    /// Close everything still open and return the finished tree.
    pub fn into_tree(self) -> TraceTree {
        self.tracer.finish()
    }

    fn flag(v: &mut Vec<bool>, lane: usize) -> &mut bool {
        if v.len() <= lane {
            v.resize(lane + 1, false);
        }
        &mut v[lane]
    }

    fn outer_start(&mut self, lane: usize, outer: usize) {
        let name = if lane == 0 { "outer" } else { "rank_solve" };
        self.tracer.open(lane, name, &format!("outer={outer}"));
        *Self::flag(&mut self.outer_open, lane) = true;
    }

    fn outer_end(&mut self, lane: usize) {
        self.close_inner(lane);
        if std::mem::take(Self::flag(&mut self.outer_open, lane)) {
            self.tracer.close(lane);
        }
    }

    fn close_inner(&mut self, lane: usize) {
        if std::mem::take(Self::flag(&mut self.inner_open, lane)) {
            self.tracer.close(lane);
        }
    }

    fn phase_start(&mut self, lane: usize, phase: Phase) {
        // The iterate has no event of its own: the first phase span of
        // an outer opens the synthesised `inner`, and
        // `on_inner_iteration` (the iterate's summary event) closes it.
        if *Self::flag(&mut self.outer_open, lane)
            && !*Self::flag(&mut self.inner_open, lane)
            && phase != Phase::Preassembly
        {
            self.tracer.open(lane, "inner", "");
            *Self::flag(&mut self.inner_open, lane) = true;
        }
        self.tracer.open(lane, phase.label(), "");
    }

    fn phase_end(&mut self, lane: usize) {
        self.tracer.close(lane);
    }

    fn inner_iteration(&mut self, lane: usize) {
        self.close_inner(lane);
    }

    fn sweep_bucket(&mut self, lane: usize, angle: usize, bucket: usize, tasks: u64) {
        self.tracer
            .open(lane, "bucket", &format!("angle={angle} bucket={bucket}"));
        self.tracer
            .open(lane, "local_solve", &format!("tasks={tasks}"));
        self.tracer.close(lane);
        self.tracer.close(lane);
    }

    fn accel_iter(&mut self, lane: usize, iteration: usize) {
        self.tracer
            .open(lane, "cg_iter", &format!("iter={iteration}"));
        self.tracer.close(lane);
    }

    fn halo_exchange(&mut self, lane: usize, iteration: usize, faces: usize, bytes: u64) {
        self.tracer.open(
            lane,
            "halo_exchange",
            &format!("iter={iteration} faces={faces} bytes={bytes}"),
        );
        self.tracer.close(lane);
    }
}

impl RunObserver for TraceObserver {
    fn on_outer_start(&mut self, outer: usize) {
        self.outer_start(0, outer);
    }

    fn on_outer_end(&mut self, _outer: usize, _converged: bool) {
        self.outer_end(0);
    }

    fn on_inner_iteration(&mut self, _inner: usize, _relative_change: f64) {
        self.inner_iteration(0);
    }

    fn on_sweep_bucket(&mut self, angle: usize, bucket: usize, tasks: u64) {
        self.sweep_bucket(0, angle, bucket, tasks);
    }

    fn on_phase_start(&mut self, phase: Phase) {
        self.phase_start(0, phase);
    }

    fn on_phase_end(&mut self, phase: Phase, _seconds: f64) {
        let _ = phase;
        self.phase_end(0);
    }

    fn on_accel_residual(&mut self, iteration: usize, _relative_residual: f64) {
        self.accel_iter(0, iteration);
    }

    fn on_halo_exchange(&mut self, iteration: usize, faces: usize, bytes: u64) {
        self.halo_exchange(0, iteration, faces, bytes);
    }

    fn on_rank_outer_start(&mut self, rank: usize, outer: usize) {
        self.outer_start(rank + 1, outer);
    }

    fn on_rank_outer_end(&mut self, rank: usize, _outer: usize, _converged: bool) {
        self.outer_end(rank + 1);
    }

    fn on_rank_inner_iteration(&mut self, rank: usize, _inner: usize, _relative_change: f64) {
        self.inner_iteration(rank + 1);
    }

    fn on_rank_sweep_bucket(&mut self, rank: usize, angle: usize, bucket: usize, tasks: u64) {
        self.sweep_bucket(rank + 1, angle, bucket, tasks);
    }

    fn on_rank_accel_residual(&mut self, rank: usize, iteration: usize, _residual: f64) {
        self.accel_iter(rank + 1, iteration);
    }

    fn on_rank_phase_start(&mut self, rank: usize, phase: Phase) {
        self.phase_start(rank + 1, phase);
    }

    fn on_rank_phase_end(&mut self, rank: usize, phase: Phase, _seconds: f64) {
        let _ = phase;
        self.phase_end(rank + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use unsnap_obs::clock::MockClock;

    fn observer() -> TraceObserver {
        TraceObserver::with_clock(Box::new(MockClock::with_step(Duration::from_micros(7))))
    }

    fn feed(t: &mut TraceObserver) {
        t.on_phase_start(Phase::Preassembly);
        t.on_phase_end(Phase::Preassembly, 0.5);
        t.on_outer_start(0);
        t.on_phase_start(Phase::SourceAssembly);
        t.on_phase_end(Phase::SourceAssembly, 0.1);
        t.on_phase_start(Phase::Sweep);
        t.on_sweep_bucket(0, 0, 8);
        t.on_sweep_bucket(0, 1, 4);
        t.on_phase_end(Phase::Sweep, 0.2);
        t.on_inner_iteration(1, 0.5);
        t.on_outer_end(0, true);
    }

    #[test]
    fn driver_stream_builds_the_documented_nesting() {
        let mut t = observer();
        feed(&mut t);
        let tree = t.into_tree();
        // solve, preassembly, outer, inner, source_assembly, sweep,
        // 2 × (bucket + local_solve), = 10 spans.
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.count_named("bucket"), 2);
        let solve = &tree.spans[0];
        assert_eq!(solve.name, "solve");
        assert_eq!(solve.parent, None);
        let pre = tree.spans.iter().find(|s| s.name == "preassembly").unwrap();
        assert_eq!(pre.parent, Some(solve.id));
        let outer = tree.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, Some(solve.id));
        let inner = tree.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        let sweep = tree.spans.iter().find(|s| s.name == "sweep").unwrap();
        assert_eq!(sweep.parent, Some(inner.id));
        for bucket in tree.spans.iter().filter(|s| s.name == "bucket") {
            assert_eq!(bucket.parent, Some(sweep.id));
        }
        let leaf = tree.spans.iter().find(|s| s.name == "local_solve").unwrap();
        assert_eq!(leaf.detail, "tasks=8");
    }

    #[test]
    fn rank_events_land_on_their_own_lane() {
        let mut t = observer();
        t.on_rank_outer_start(2, 0);
        t.on_rank_phase_start(2, Phase::Sweep);
        t.on_rank_sweep_bucket(2, 1, 0, 16);
        t.on_rank_phase_end(2, Phase::Sweep, 0.1);
        t.on_rank_inner_iteration(2, 1, 0.5);
        t.on_rank_outer_end(2, 0, true);
        let tree = t.into_tree();
        let rank_solve = tree.spans.iter().find(|s| s.name == "rank_solve").unwrap();
        assert_eq!(rank_solve.lane, 3);
        assert_eq!(rank_solve.parent, None);
        let inner = tree.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.lane, 3);
        assert_eq!(inner.parent, Some(rank_solve.id));
        // The driver-lane root is untouched by rank traffic.
        assert_eq!(tree.spans[0].name, "solve");
        assert_eq!(tree.spans[0].lane, 0);
    }

    #[test]
    fn identical_streams_give_structurally_equal_trees() {
        let mut a = observer();
        feed(&mut a);
        // Different clock step — every timestamp differs.
        let mut b =
            TraceObserver::with_clock(Box::new(MockClock::with_step(Duration::from_micros(31))));
        feed(&mut b);
        let (ta, tb) = (a.into_tree(), b.into_tree());
        assert_eq!(ta, tb);
        assert_ne!(ta.spans[1].start_us, tb.spans[1].start_us);
    }
}
