//! The structured diamond-difference baseline — the spatial discretisation
//! of the original SNAP mini-app.
//!
//! §II-A and §II-C of the paper describe the finite-difference (diamond
//! difference) method that SNAP uses on its structured Cartesian grid and
//! compare its cost against the finite-element method: a single
//! multiply–add per diamond-difference relation, one unknown per cell per
//! angle per group (versus `(p+1)³` nodal unknowns for the FEM), and
//! second-order accuracy (versus third order for linear DG elements).
//!
//! This module implements that baseline so the repository can reproduce the
//! FD-versus-FEM trade-off discussion (memory footprint, work per cell) and
//! serve as an independent cross-check of the transport physics: on the
//! same problem both discretisations must converge towards the same
//! infinite-medium limits and show the same qualitative flux shapes.

use serde::{Deserialize, Serialize};

use crate::angular::AngularQuadrature;
use crate::data::ProblemData;
use crate::error::Result;
use crate::problem::Problem;

/// Outcome of a diamond-difference solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FdOutcome {
    /// Inner iterations executed.
    pub inner_iterations: usize,
    /// Maximum relative scalar-flux change per inner iteration.
    pub convergence_history: Vec<f64>,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Sum of the cell scalar fluxes over all cells and groups.
    pub scalar_flux_total: f64,
    /// Maximum cell scalar flux.
    pub scalar_flux_max: f64,
    /// Minimum cell scalar flux.
    pub scalar_flux_min: f64,
    /// Wall-clock seconds in the sweep region.
    pub sweep_seconds: f64,
}

/// Diamond-difference (SNAP) solver on the structured grid of a
/// [`Problem`].
///
/// The mesh twist is ignored — the finite-difference method is only defined
/// on the regular Cartesian grid, which is exactly why the paper needed the
/// finite-element formulation for unstructured meshes.
pub struct DiamondDifferenceSolver {
    problem: Problem,
    quadrature: AngularQuadrature,
    data: ProblemData,
    /// Scalar flux per (cell, group), cell-major.
    phi: Vec<f64>,
}

impl DiamondDifferenceSolver {
    /// Build the FD solver for a problem (uses the problem's structured
    /// grid, angular quadrature, cross sections and iteration counts).
    pub fn new(problem: &Problem) -> Result<Self> {
        problem.validate()?;
        let grid = problem.grid();
        let quadrature = AngularQuadrature::product(problem.angles_per_octant);
        let centroid = |cell: usize| {
            let (i, j, k) = grid.cell_ijk(cell);
            let (dx, dy, dz) = grid.cell_widths();
            [
                (i as f64 + 0.5) * dx,
                (j as f64 + 0.5) * dy,
                (k as f64 + 0.5) * dz,
            ]
        };
        let data = ProblemData::generate(
            grid.num_cells(),
            centroid,
            [grid.lx, grid.ly, grid.lz],
            problem.num_groups,
            problem.material,
            problem.source,
        );
        Ok(Self {
            problem: problem.clone(),
            quadrature,
            data,
            phi: vec![0.0; grid.num_cells() * problem.num_groups],
        })
    }

    /// Scalar flux of `(cell, group)` after `run`.
    pub fn scalar_flux(&self, cell: usize, group: usize) -> f64 {
        self.phi[cell * self.problem.num_groups + group]
    }

    /// Number of angular-flux unknowns of the FD method (one per cell per
    /// angle per group) — 1/(p+1)³ of the FEM count on the same mesh.
    pub fn angular_flux_unknowns(&self) -> usize {
        self.problem.num_cells() * self.problem.num_groups * self.quadrature.num_angles()
    }

    /// Run the source iteration with diamond-difference sweeps.
    pub fn run(&mut self) -> Result<FdOutcome> {
        let p = &self.problem;
        let grid = p.grid();
        let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
        let (dx, dy, dz) = grid.cell_widths();
        let ng = p.num_groups;
        let ncells = grid.num_cells();

        let mut history = Vec::new();
        let mut converged = false;
        let mut inners_run = 0usize;
        let mut sweep_seconds = 0.0f64;
        let mut phi_outer = self.phi.clone();

        for _outer in 0..p.outer_iterations {
            phi_outer.copy_from_slice(&self.phi);
            for _inner in 0..p.inner_iterations {
                inners_run += 1;

                // Total source per (cell, group).
                let mut source = vec![0.0f64; ncells * ng];
                for cell in 0..ncells {
                    let mat = self.data.material(cell);
                    let q = self.data.fixed_source(cell);
                    for g in 0..ng {
                        let mut s = q;
                        for g_from in 0..ng {
                            let sigma_s = self.data.xs.scatter(mat, g_from, g);
                            if sigma_s == 0.0 {
                                continue;
                            }
                            let phi_ref = if g_from == g {
                                self.phi[cell * ng + g_from]
                            } else {
                                phi_outer[cell * ng + g_from]
                            };
                            s += sigma_s * phi_ref;
                        }
                        source[cell * ng + g] = s;
                    }
                }

                let phi_old = self.phi.clone();
                let mut phi_new = vec![0.0f64; ncells * ng];

                let t0 = std::time::Instant::now();
                for d in self.quadrature.directions() {
                    let omega = d.omega;
                    let w = d.weight;
                    // Sweep order per axis follows the direction sign.
                    let xs_range: Vec<usize> = if omega[0] > 0.0 {
                        (0..nx).collect()
                    } else {
                        (0..nx).rev().collect()
                    };
                    let ys_range: Vec<usize> = if omega[1] > 0.0 {
                        (0..ny).collect()
                    } else {
                        (0..ny).rev().collect()
                    };
                    let zs_range: Vec<usize> = if omega[2] > 0.0 {
                        (0..nz).collect()
                    } else {
                        (0..nz).rev().collect()
                    };
                    let boundary_in = 0.0_f64.max(self.problem.boundaries.face(0).incoming_flux());

                    for g in 0..ng {
                        // Incoming-face storage: x faces (ny × nz),
                        // y faces (nx × nz), z faces (nx × ny).
                        let mut in_x = vec![boundary_in; ny * nz];
                        let mut in_y = vec![boundary_in; nx * nz];
                        let mut in_z = vec![boundary_in; nx * ny];

                        let cx = 2.0 * omega[0].abs() / dx;
                        let cy = 2.0 * omega[1].abs() / dy;
                        let cz = 2.0 * omega[2].abs() / dz;

                        for &k in &zs_range {
                            for &j in &ys_range {
                                for &i in &xs_range {
                                    let cell = grid.cell_id(i, j, k);
                                    let mat = self.data.material(cell);
                                    let sigma_t = self.data.xs.total(mat, g);
                                    let psi_in_x = in_x[j + ny * k];
                                    let psi_in_y = in_y[i + nx * k];
                                    let psi_in_z = in_z[i + nx * j];
                                    let numerator = source[cell * ng + g]
                                        + cx * psi_in_x
                                        + cy * psi_in_y
                                        + cz * psi_in_z;
                                    let psi_c = numerator / (sigma_t + cx + cy + cz);
                                    // Diamond-difference closure for the
                                    // outgoing faces, with a simple negative
                                    // flux fix-up (set-to-zero) as in SNAP.
                                    let out_x = (2.0 * psi_c - psi_in_x).max(0.0);
                                    let out_y = (2.0 * psi_c - psi_in_y).max(0.0);
                                    let out_z = (2.0 * psi_c - psi_in_z).max(0.0);
                                    in_x[j + ny * k] = out_x;
                                    in_y[i + nx * k] = out_y;
                                    in_z[i + nx * j] = out_z;
                                    phi_new[cell * ng + g] += w * psi_c;
                                }
                            }
                        }
                    }
                }
                sweep_seconds += t0.elapsed().as_secs_f64();

                self.phi.copy_from_slice(&phi_new);
                let diff = phi_new
                    .iter()
                    .zip(phi_old.iter())
                    .fold(0.0f64, |m, (a, b)| {
                        m.max((a - b).abs() / b.abs().max(1e-12))
                    });
                history.push(diff);
                if p.convergence_tolerance > 0.0 && diff < p.convergence_tolerance {
                    converged = true;
                    break;
                }
            }
            if converged {
                break;
            }
        }

        let total: f64 = self.phi.iter().sum();
        let max = self.phi.iter().fold(f64::MIN, |m, &x| m.max(x));
        let min = self.phi.iter().fold(f64::MAX, |m, &x| m.min(x));
        Ok(FdOutcome {
            inner_iterations: inners_run,
            convergence_history: history,
            converged,
            scalar_flux_total: total,
            scalar_flux_max: max,
            scalar_flux_min: min,
            sweep_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsnap_mesh::boundary::DomainBoundaries;

    #[test]
    fn fd_solver_runs_and_is_positive() {
        let mut p = Problem::tiny();
        p.inner_iterations = 4;
        let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
        let out = fd.run().unwrap();
        assert_eq!(out.inner_iterations, 4);
        assert!(out.scalar_flux_total > 0.0);
        assert!(out.scalar_flux_min >= 0.0);
        assert!(out.sweep_seconds > 0.0);
    }

    #[test]
    fn fd_reaches_infinite_medium_limit_with_inflow() {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 80;
        p.convergence_tolerance = 1e-10;
        let xs = crate::data::CrossSections::generate(1, 1);
        let psi_inf = 1.0 / (xs.total(0, 0) - xs.scatter(0, 0, 0));
        p.boundaries = DomainBoundaries::uniform_inflow(psi_inf);
        let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
        let out = fd.run().unwrap();
        assert!(out.converged);
        assert!((out.scalar_flux_max - psi_inf).abs() < 1e-6);
        assert!((out.scalar_flux_min - psi_inf).abs() < 1e-6);
    }

    #[test]
    fn fd_flux_bounded_by_infinite_medium_for_vacuum() {
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 40;
        p.convergence_tolerance = 1e-9;
        let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
        let out = fd.run().unwrap();
        let xs = crate::data::CrossSections::generate(1, 1);
        let psi_inf = 1.0 / (xs.total(0, 0) - xs.scatter(0, 0, 0));
        assert!(out.scalar_flux_max < psi_inf);
        assert!(out.scalar_flux_min > 0.0);
    }

    #[test]
    fn fd_memory_footprint_is_one_eighth_of_linear_fem() {
        let p = Problem::tiny();
        let fd = DiamondDifferenceSolver::new(&p).unwrap();
        assert_eq!(fd.angular_flux_unknowns() * 8, p.angular_flux_unknowns());
    }

    #[test]
    fn fd_centre_flux_exceeds_corner_flux() {
        // Leakage makes the flux peak in the middle of the domain.
        let mut p = Problem::tiny();
        p.nx = 5;
        p.ny = 5;
        p.nz = 5;
        p.num_groups = 1;
        p.inner_iterations = 30;
        p.convergence_tolerance = 1e-8;
        let grid = p.grid();
        let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
        fd.run().unwrap();
        let centre = fd.scalar_flux(grid.cell_id(2, 2, 2), 0);
        let corner = fd.scalar_flux(grid.cell_id(0, 0, 0), 0);
        assert!(centre > corner);
    }

    #[test]
    fn fd_and_fem_agree_on_converged_scalar_flux_scale() {
        // The two discretisations solve the same physics; on a small,
        // optically thin problem their converged mean scalar flux should
        // agree to within a few percent.
        let mut p = Problem::tiny();
        p.num_groups = 1;
        p.inner_iterations = 50;
        p.convergence_tolerance = 1e-9;
        p.twist = 0.0;
        let mut fd = DiamondDifferenceSolver::new(&p).unwrap();
        let fd_out = fd.run().unwrap();
        let fd_mean = fd_out.scalar_flux_total / p.num_cells() as f64;

        let mut fem = crate::solver::TransportSolver::new(&p).unwrap();
        let fem_out = fem.run().unwrap();
        let fem_mean = fem_out.scalar_flux_total / (p.num_cells() * p.nodes_per_element()) as f64;

        let rel = (fd_mean - fem_mean).abs() / fem_mean;
        assert!(
            rel < 0.05,
            "FD mean {fd_mean} vs FEM mean {fem_mean} differ by {rel:.3}"
        );
    }
}
